#!/usr/bin/env bash
# Tier-1 verification for this repo, plus the simulator-throughput
# smoke bench. Run from anywhere; builds into ./build.
#
#   scripts/verify.sh            full tier-1 + bench smoke + sanitizers
#   scripts/verify.sh --no-bench tier-1 only (skips bench smoke)
#   UHLL_NO_SANITIZE=1 ...       skip the ASan+UBSan leg
#
# The bench smoke runs bench_sim_throughput with a short
# --benchmark_min_time so a perf regression that breaks the harness
# (or a simulator change that stops halting) fails the gate quickly;
# it also refreshes build/BENCH_sim.json. The same smoke is wired as
# the CTest test `bench_sim_throughput_smoke`.

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
if [[ "${1:-}" == "--no-bench" ]]; then
    run_bench=0
fi

cmake -B build -S .
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

# Observability smoke: profile + stats dump through the uhllc CLI must
# produce non-empty, parseable JSON (python3's json module is the
# independent referee; the in-tree validator is itself under test).
(
    cd build
    printf '.entry main\nmain:\n[ ldi r1, #0 ]\nloop:\n[ addi r1, r1, #1 ]\n[ cmpi r1, #100 ] if nz jump loop\n[ ] halt\n' \
        > obs_smoke.uasm
    ./src/uhllc --lang masm --machine hm1 obs_smoke.uasm --run \
        --profile --stats-json obs_smoke_stats.json \
        --trace obs_smoke_trace.json > obs_smoke.out
    grep -q "hot microwords" obs_smoke.out
    python3 - <<'EOF'
import json
stats = json.load(open("obs_smoke_stats.json"))
assert stats and "result" in stats and "stats" in stats, stats.keys()
assert stats["result"]["halted"] is True
trace = json.load(open("obs_smoke_trace.json"))
assert trace.get("traceEvents"), "empty traceEvents"
print("obs smoke: OK")
EOF
)

# Batch-driver determinism smoke: the same manifest serially and at
# -j8 must produce byte-identical reports once timing fields are
# suppressed. cmp (not a JSON-aware diff) is the point: the guarantee
# is bit-identical output, not merely equivalent output.
(
    cd build
    ./src/uhllc --batch ../tests/data/batch_smoke.json -j1 \
        --no-timings --report batch_j1.json >/dev/null
    ./src/uhllc --batch ../tests/data/batch_smoke.json -j8 \
        --no-timings --report batch_j8.json >/dev/null
    cmp batch_j1.json batch_j8.json
    echo "batch determinism smoke: OK"
)

# Exit-code smoke: a structured simulation error inside a batch must
# surface as exit code 3, a manifest problem as 2.
(
    cd build
    rc=0
    ./src/uhllc --batch ../tests/data/failing_smoke.json \
        --no-timings >/dev/null || rc=$?
    [[ "$rc" == 3 ]] || { echo "expected exit 3, got $rc"; exit 1; }
    rc=0
    ./src/uhllc --batch no_such_manifest.json >/dev/null 2>&1 || rc=$?
    [[ "$rc" == 2 ]] || { echo "expected exit 2, got $rc"; exit 1; }
    echo "batch exit-code smoke: OK"
)

# JIT differential smoke: the same manifest with the native tier
# forced hot (threshold 1) and disabled must produce byte-identical
# deterministic reports -- the tier may never be observable. Also
# checks the contradictory-flag diagnostic exits 2.
(
    cd build
    ./src/uhllc --batch ../tests/data/batch_smoke.json -j8 \
        --jit --jit-threshold 1 \
        --no-timings --report batch_jit.json >/dev/null
    ./src/uhllc --batch ../tests/data/batch_smoke.json -j8 \
        --no-jit \
        --no-timings --report batch_nojit.json >/dev/null
    cmp batch_jit.json batch_nojit.json
    rc=0
    ./src/uhllc --jit --no-jit --list >/dev/null 2>&1 || rc=$?
    [[ "$rc" == 2 ]] || { echo "expected exit 2, got $rc"; exit 1; }
    echo "jit differential smoke: OK"
)

# Telemetry smoke: the batch matrix with span tracing, metrics export
# and the flight recorder armed. The trace and both metrics files must
# validate (via the uhllc JSON referee), the deterministic metrics
# must be byte-identical across -j values, a clean batch must leave
# the post-mortem directory empty -- and a forced failure must write
# a validating artifact.
(
    cd build
    rm -rf tel_pm tel_pm_fail
    ./src/uhllc --batch ../tests/data/batch_matrix.json -j1 \
        --no-timings --report tel_j1.json --otrace tel_j1_trace.json \
        --metrics-out tel_j1_metrics.jsonl --metrics-every 5000 \
        --postmortem-dir tel_pm >/dev/null
    ./src/uhllc --batch ../tests/data/batch_matrix.json -j8 \
        --no-timings --report tel_j8.json --otrace tel_j8_trace.json \
        --metrics-out tel_j8_metrics.jsonl --metrics-every 5000 \
        --postmortem-dir tel_pm >/dev/null
    ./src/uhllc --validate-json tel_j8_trace.json
    ./src/uhllc --validate-jsonl tel_j8_metrics.jsonl
    grep -q '^# TYPE uhll_sim_cycles gauge$' tel_j8_metrics.jsonl.prom
    cmp tel_j1_metrics.jsonl tel_j8_metrics.jsonl
    cmp tel_j1_metrics.jsonl.prom tel_j8_metrics.jsonl.prom
    cmp tel_j1.json tel_j8.json
    grep -q '"uhll driver"' tel_j8_trace.json
    grep -q 'uhll_span_stats' tel_j8_trace.json
    if [[ -d tel_pm ]] && ls tel_pm/* >/dev/null 2>&1; then
        echo "clean batch wrote post-mortems"; exit 1
    fi
    (cd ../tests/data && ../../build/src/uhllc --batch \
        failing_smoke.json --no-timings \
        --postmortem-dir ../../build/tel_pm_fail >/dev/null) || true
    ./src/uhllc --validate-json tel_pm_fail/doomed.postmortem.json
    grep -q '"reason": "sim_error"' tel_pm_fail/doomed.postmortem.json
    echo "telemetry smoke: OK"
)

# Fuzz farm smoke: a fixed-seed differential campaign must come back
# divergence-free, be byte-identical across -j values AND across two
# separate processes (--no-timings strips the wall-clock fields), and
# the committed regression corpus must replay green -- that last bit
# also runs as the CorpusReplay ctest, but here it goes through the
# real CLI.
(
    cd build
    ./src/uhllc --fuzz --fuzz-seed 7 --fuzz-jobs 60 -j1 \
        --no-timings --report fuzz_j1.json >/dev/null
    ./src/uhllc --fuzz --fuzz-seed 7 --fuzz-jobs 60 -j8 \
        --no-timings --report fuzz_j8.json >/dev/null
    ./src/uhllc --fuzz --fuzz-seed 7 --fuzz-jobs 60 -j8 \
        --no-timings --report fuzz_j8b.json >/dev/null
    cmp fuzz_j1.json fuzz_j8.json
    cmp fuzz_j8.json fuzz_j8b.json
    python3 - <<'EOF'
import json
rep = json.load(open("fuzz_j1.json"))["fuzz"]
assert rep["jobs_run"] == 60, rep
assert rep["golden_failures"] == 0, rep
assert not rep.get("findings"), rep
print("fuzz determinism smoke: OK")
EOF
)

# Kill-and-resume smoke: SIGKILL a batch mid-run (active fault plans,
# periodic checkpoints), resume it, and demand the merged report be
# byte-identical to an uninterrupted run -- completed jobs spliced
# from the journal, the interrupted one resumed from its checkpoint
# with the same remaining faults.
(
    cd build
    ./src/uhllc --batch ../tests/data/resume_smoke.json -j1 \
        --no-timings --report resume_clean.json >/dev/null

    rm -f resume_kill.json resume_kill.json.journal \
        resume_kill.json.journal.ckpt.*
    ./src/uhllc --batch ../tests/data/resume_smoke.json -j1 \
        --no-timings --report resume_kill.json >/dev/null &
    pid=$!
    sleep 1
    if kill -9 "$pid" 2>/dev/null; then
        wait "$pid" 2>/dev/null || true
        [[ -s resume_kill.json.journal ]] ||
            echo "warning: batch died before journaling anything"
    else
        # The batch beat the kill; the resume below still must be a
        # no-op merge that reproduces the clean report.
        wait "$pid" || true
    fi
    ./src/uhllc --batch ../tests/data/resume_smoke.json -j1 \
        --no-timings --resume resume_kill.json >/dev/null
    cmp resume_clean.json resume_kill.json
    echo "kill-and-resume smoke: OK"
)

# Service smoke: uhlld must serve a batch byte-identically to a
# local run -- including three concurrent clients -- export its
# metrics as Prometheus text, and survive a SIGKILL mid-batch: a
# restarted daemon serving the same journal dir resumes the
# resubmitted batch_id from the journal and still matches the
# uninterrupted local report byte for byte.
(
    cd build
    sock=uhlld_smoke.sock
    rm -rf uhlld_journals "$sock" svc_local.json svc_remote*.json \
        svc_kill.json svc_kill_local.json
    ./src/uhllc --batch ../tests/data/batch_matrix.json -j8 \
        --no-timings --report svc_local.json >/dev/null
    ./src/uhlld --socket "$sock" --journal-dir uhlld_journals -j8 \
        --quiet 2>/dev/null & dpid=$!
    for _ in $(seq 1 50); do
        ./src/uhllc --connect "$sock" --ping >/dev/null 2>&1 && break
        sleep 0.1
    done
    cpids=()
    for i in 1 2 3; do
        ./src/uhllc --connect "$sock" --tenant "t$i" \
            --batch ../tests/data/batch_matrix.json \
            --no-timings --report "svc_remote$i.json" \
            >/dev/null 2>&1 & cpids+=($!)
    done
    for p in "${cpids[@]}"; do wait "$p"; done
    for i in 1 2 3; do cmp svc_local.json "svc_remote$i.json"; done
    ./src/uhllc --connect "$sock" --scrape-metrics \
        | grep -q '^# TYPE uhll_service_requests gauge$'
    ./src/uhllc --connect "$sock" --scrape-metrics \
        | grep -q 'uhll_toolchain_cacheHitRate'

    # SIGKILL the daemon mid-batch, restart it on the same journal
    # dir, resubmit the same batch_id.
    ./src/uhllc --connect "$sock" --tenant kill --batch-id killcase \
        --batch ../tests/data/resume_smoke.json --no-timings \
        --report svc_kill.json >/dev/null 2>&1 & cpid=$!
    sleep 1
    kill -9 "$dpid" 2>/dev/null || true
    wait "$dpid" 2>/dev/null || true
    wait "$cpid" 2>/dev/null || true
    [[ -s uhlld_journals/killcase.journal ]] ||
        echo "warning: daemon died before journaling anything"
    ./src/uhlld --socket "$sock" --journal-dir uhlld_journals -j8 \
        --quiet 2>/dev/null & dpid=$!
    for _ in $(seq 1 50); do
        ./src/uhllc --connect "$sock" --ping >/dev/null 2>&1 && break
        sleep 0.1
    done
    ./src/uhllc --connect "$sock" --tenant kill --batch-id killcase \
        --batch ../tests/data/resume_smoke.json --no-timings \
        --report svc_kill.json >/dev/null
    ./src/uhllc --batch ../tests/data/resume_smoke.json -j8 \
        --no-timings --report svc_kill_local.json >/dev/null
    cmp svc_kill_local.json svc_kill.json
    ./src/uhllc --connect "$sock" --shutdown >/dev/null
    wait "$dpid" 2>/dev/null || true
    echo "service smoke: OK"
)

# Crash-isolation smoke: the same batch through in-thread and
# process-isolated execution must be byte-identical; then chaos mode
# SIGKILLs a sandboxed worker mid-batch (kill-once, marker file keeps
# it to one death) and the batch must STILL complete byte-identically
# -- the daemon respawns the worker, retries the job, and keeps
# serving. The daemon itself must never die.
(
    cd build
    sock=uhlld_chaos.sock
    rm -rf chaos_markers "$sock" pool_thread.json pool_proc.json \
        pool_chaos.json
    mkdir chaos_markers
    ./src/uhllc --batch ../tests/data/batch_matrix.json -j4 \
        --no-timings --report pool_thread.json >/dev/null
    ./src/uhllc --batch ../tests/data/batch_matrix.json -j4 \
        --isolation process \
        --no-timings --report pool_proc.json >/dev/null
    cmp pool_thread.json pool_proc.json

    UHLL_WORKER_CHAOS=kill-once UHLL_WORKER_CHAOS_DIR=chaos_markers \
        ./src/uhlld --socket "$sock" --workers 2 -j4 \
        --quiet 2>/dev/null & dpid=$!
    for _ in $(seq 1 50); do
        ./src/uhllc --connect "$sock" --ping >/dev/null 2>&1 && break
        sleep 0.1
    done
    ./src/uhllc --connect "$sock" \
        --batch ../tests/data/batch_matrix.json \
        --no-timings --report pool_chaos.json >/dev/null
    cmp pool_thread.json pool_chaos.json
    [[ -e chaos_markers/chaos.kill.fired ]] ||
        echo "warning: chaos worker was never killed"
    kill -0 "$dpid" 2>/dev/null ||
        { echo "daemon died under worker chaos"; exit 1; }
    ./src/uhllc --connect "$sock" --ping >/dev/null
    ./src/uhllc --connect "$sock" --shutdown >/dev/null
    wait "$dpid" 2>/dev/null || true
    echo "crash isolation smoke: OK"
)

if [[ "$run_bench" == 1 ]]; then
    (cd build && UHLL_BENCH_JSON=BENCH_sim.json \
        ./bench/bench_sim_throughput --benchmark_min_time=0.1)
    # Fuzz farm gate: the fixed-seed 500-job acceptance campaign must
    # stay divergence-free; refreshes build/BENCH_fuzz.json.
    (cd build && UHLL_BENCH_JSON=BENCH_fuzz.json \
        ./bench/bench_fuzz --benchmark_min_time=0.1)
    # Service gate: concurrent clients against an in-process uhlld;
    # fails if any request fails or the shared-cache hit rate is not
    # > 0.9. Refreshes build/BENCH_service.json.
    (cd build && UHLL_BENCH_JSON=BENCH_service.json \
        ./bench/bench_service --benchmark_min_time=0.1)
    # Pool gate: in-thread vs process-isolated execution of the same
    # warm job mix; fails if the reports diverge or process mode
    # falls below half the thread-mode jobs/sec. Refreshes
    # build/BENCH_pool.json.
    (cd build && UHLL_BENCH_JSON=BENCH_pool.json \
        ./bench/bench_pool --benchmark_min_time=0.1)
fi

# Sanitizer leg: the whole test suite again under ASan+UBSan (the
# fault-injection and recovery paths exercise restart/retry corners
# where lifetime bugs like to hide). Separate build tree; opt out
# with UHLL_NO_SANITIZE=1 on constrained hosts.
if [[ "${UHLL_NO_SANITIZE:-0}" != 1 ]]; then
    cmake -B build-asan -S . -DUHLL_SANITIZE="address;undefined"
    cmake --build build-asan -j"$(nproc)"
    (cd build-asan && ctest --output-on-failure -j"$(nproc)")

    # TSan leg: the BatchRunner shares machines, artefacts,
    # decoded-word caches and now the mutex-guarded JitRegionCache
    # across worker threads; ThreadSanitizer (incompatible with ASan,
    # hence its own tree) watches the batch determinism stress tests,
    # the supervision/checkpoint layer (journal writes race-prone by
    # construction), the JIT differential suite, the span tracer's
    # multi-lane recording, the fuzz campaign's parallel waves and
    # corpus replay, the service daemon's admission control and
    # per-connection threads (the Service tests), the worker pool's
    # dispatch threads, reaper and heartbeat monitor (the Proc and
    # WorkerPool tests), and the CLI smokes for data races.
    cmake -B build-tsan -S . -DUHLL_SANITIZE=thread
    cmake --build build-tsan -j"$(nproc)"
    (cd build-tsan &&
        ctest --output-on-failure \
            -R 'Batch|Toolchain|Supervisor|Checkpoint|JitDiff|SpanTracer|Metrics|FlightRecorder|Fuzz|Corpus|Service|Proc|WorkerPool|uhllc_batch|uhllc_supervised')
fi

echo "verify: OK"
