#!/usr/bin/env bash
# Tier-1 verification for this repo, plus the simulator-throughput
# smoke bench. Run from anywhere; builds into ./build.
#
#   scripts/verify.sh            full tier-1 + bench smoke
#   scripts/verify.sh --no-bench tier-1 only
#
# The bench smoke runs bench_sim_throughput with a short
# --benchmark_min_time so a perf regression that breaks the harness
# (or a simulator change that stops halting) fails the gate quickly;
# it also refreshes build/BENCH_sim.json. The same smoke is wired as
# the CTest test `bench_sim_throughput_smoke`.

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
if [[ "${1:-}" == "--no-bench" ]]; then
    run_bench=0
fi

cmake -B build -S .
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "$run_bench" == 1 ]]; then
    (cd build && UHLL_BENCH_JSON=BENCH_sim.json \
        ./bench/bench_sim_throughput --benchmark_min_time=0.1)
fi

echo "verify: OK"
