/**
 * @file
 * Dependence analysis over straight-line sequences of bound
 * microoperations (sec. 2.1.4 of the survey: data dependence and
 * resource dependence are the two inputs to microinstruction
 * composition).
 *
 * Data dependence is computed here; resource dependence is delegated
 * to MachineDescription::conflict() (the DeWitt control-word model).
 *
 * The flag latch is modelled as a pseudo-register written by every
 * flag-setting operation: ordering flag writers preserves the final
 * flag state the block terminator tests. Memory is modelled as a
 * single location (no alias analysis -- faithful to 1980 practice).
 */

#ifndef UHLL_SCHEDULE_DEPGRAPH_HH
#define UHLL_SCHEDULE_DEPGRAPH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "machine/machine_desc.hh"

namespace uhll {

/** Kind of a data dependence edge. */
enum class DepKind : uint8_t {
    Flow,   //!< true dependence: to reads what from wrote
    Anti,   //!< anti dependence: to overwrites what from read
    Output, //!< output dependence: both write the same location
};

/** One dependence edge between op indices (from < to). */
struct Dep {
    uint32_t from;
    uint32_t to;
    DepKind kind;
};

/**
 * The dependence DAG of one straight-line op sequence. Indices refer
 * to positions in the sequence passed at construction.
 */
class DepGraph
{
  public:
    DepGraph(const MachineDescription &mach,
             std::span<const BoundOp> ops);

    size_t numOps() const { return n_; }
    const std::vector<Dep> &deps() const { return deps_; }

    /** Edges leaving op @p i (as indices into deps()). */
    const std::vector<uint32_t> &succs(uint32_t i) const
    {
        return succs_.at(i);
    }

    /** Edges entering op @p i (as indices into deps()). */
    const std::vector<uint32_t> &preds(uint32_t i) const
    {
        return preds_.at(i);
    }

    /**
     * Length (in ops) of the longest dependence chain starting at
     * @p i, counting @p i itself: the list-scheduling priority.
     */
    uint32_t heightOf(uint32_t i) const { return height_.at(i); }

    /** Longest chain in the whole DAG (a lower bound on words). */
    uint32_t criticalPathLength() const;

    /**
     * Would placing @p from and @p to as given satisfy dependence
     * @p kind? Phases are those of the ops' specs.
     *
     * Flow: strictly earlier word, or (when @p phase_chaining) the
     * same word with a strictly earlier phase (cocycle chaining).
     * Anti: earlier word, or same word with phase(from) <=
     * phase(to) -- reads precede writes within a phase.
     * Output: earlier word, or same word with a strictly earlier
     * phase.
     */
    static bool placementLegal(DepKind kind, uint32_t from_word,
                               unsigned from_phase, uint32_t to_word,
                               unsigned to_phase, bool phase_chaining);

  private:
    size_t n_;
    std::vector<Dep> deps_;
    std::vector<std::vector<uint32_t>> succs_;
    std::vector<std::vector<uint32_t>> preds_;
    std::vector<uint32_t> height_;
};

} // namespace uhll

#endif // UHLL_SCHEDULE_DEPGRAPH_HH
