#include "schedule/compact.hh"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "support/logging.hh"

namespace uhll {

namespace {

/** Shared placement machinery for the greedy compactors. */
class Placer
{
  public:
    Placer(const MachineDescription &mach, std::span<const BoundOp> ops,
           const DepGraph &dg, bool phase_aware, bool chaining)
        : mach_(mach), ops_(ops), dg_(dg), phaseAware_(phase_aware),
          chaining_(chaining),
          wordOf_(ops.size(), kUnplaced)
    {}

    static constexpr uint32_t kUnplaced = 0xffffffffu;

    unsigned
    phaseOf(uint32_t i) const
    {
        return mach_.uop(ops_[i].spec).phase;
    }

    bool
    placed(uint32_t i) const
    {
        return wordOf_[i] != kUnplaced;
    }

    uint32_t wordOf(uint32_t i) const { return wordOf_[i]; }

    /** All of @p i 's predecessors already placed? */
    bool
    predsPlaced(uint32_t i) const
    {
        for (uint32_t d : dg_.preds(i)) {
            if (!placed(dg_.deps()[d].from))
                return false;
        }
        return true;
    }

    /**
     * Can op @p i go into word @p w (whose current members are
     * @p members)? Checks dependences against every placed pred and
     * resource conflicts against the word's members.
     */
    bool
    canPlace(uint32_t i, uint32_t w,
             const std::vector<uint32_t> &members) const
    {
        for (uint32_t d : dg_.preds(i)) {
            const Dep &dep = dg_.deps()[d];
            if (!placed(dep.from))
                return false;
            if (!DepGraph::placementLegal(dep.kind, wordOf_[dep.from],
                                          phaseOf(dep.from), w,
                                          phaseOf(i), chaining_)) {
                return false;
            }
        }
        for (uint32_t m : members) {
            if (mach_.conflict(ops_[m], ops_[i], phaseAware_))
                return false;
        }
        if (mach_.vertical() && !members.empty())
            return false;
        return true;
    }

    void
    place(uint32_t i, uint32_t w, std::vector<uint32_t> &members)
    {
        wordOf_[i] = w;
        members.push_back(i);
    }

  private:
    const MachineDescription &mach_;
    std::span<const BoundOp> ops_;
    const DepGraph &dg_;
    bool phaseAware_;
    bool chaining_;
    std::vector<uint32_t> wordOf_;
};

/** FCFS: scan existing words from the earliest dep-legal one. */
CompactionResult
fcfsCompact(const MachineDescription &mach, std::span<const BoundOp> ops,
            bool phase_aware, bool chaining)
{
    DepGraph dg(mach, ops);
    Placer pl(mach, ops, dg, phase_aware, chaining);
    CompactionResult res;

    for (uint32_t i = 0; i < ops.size(); ++i) {
        bool done = false;
        for (uint32_t w = 0; w < res.words.size() && !done; ++w) {
            if (pl.canPlace(i, w, res.words[w])) {
                pl.place(i, w, res.words[w]);
                done = true;
            }
        }
        if (!done) {
            res.words.emplace_back();
            uint32_t w = static_cast<uint32_t>(res.words.size() - 1);
            if (!pl.canPlace(i, w, res.words[w]))
                panic("compaction: op %u cannot be placed in a fresh "
                      "word", i);
            pl.place(i, w, res.words[w]);
        }
    }
    return res;
}

/** Height-priority list scheduling, one word at a time. */
CompactionResult
listCompact(const MachineDescription &mach, std::span<const BoundOp> ops,
            bool phase_aware, bool chaining)
{
    DepGraph dg(mach, ops);
    Placer pl(mach, ops, dg, phase_aware, chaining);
    CompactionResult res;

    size_t remaining = ops.size();
    while (remaining > 0) {
        res.words.emplace_back();
        uint32_t w = static_cast<uint32_t>(res.words.size() - 1);
        auto &word = res.words.back();
        bool progress = true;
        while (progress) {
            progress = false;
            // Highest dependence height first, program order as the
            // tie breaker.
            uint32_t pick = Placer::kUnplaced;
            for (uint32_t i = 0; i < ops.size(); ++i) {
                if (pl.placed(i) || !pl.predsPlaced(i))
                    continue;
                if (!pl.canPlace(i, w, word))
                    continue;
                if (pick == Placer::kUnplaced ||
                    dg.heightOf(i) > dg.heightOf(pick)) {
                    pick = i;
                }
            }
            if (pick != Placer::kUnplaced) {
                pl.place(pick, w, word);
                --remaining;
                progress = true;
            }
        }
        if (word.empty())
            panic("compaction: no schedulable op for a fresh word "
                  "(%zu remaining)", remaining);
    }
    return res;
}

} // namespace

CompactionResult
LinearCompactor::compact(const MachineDescription &mach,
                         std::span<const BoundOp> ops) const
{
    return fcfsCompact(mach, ops, /*phase_aware=*/false,
                       /*chaining=*/false);
}

CompactionResult
CriticalPathCompactor::compact(const MachineDescription &mach,
                               std::span<const BoundOp> ops) const
{
    return listCompact(mach, ops, /*phase_aware=*/false,
                       /*chaining=*/false);
}

namespace {
std::atomic<bool> g_sabotage{false};
} // namespace

void
setCompactorSabotage(bool on)
{
    g_sabotage.store(on, std::memory_order_relaxed);
}

bool
compactorSabotage()
{
    return g_sabotage.load(std::memory_order_relaxed);
}

CompactionResult
TokoroCompactor::compact(const MachineDescription &mach,
                         std::span<const BoundOp> ops) const
{
    CompactionResult res = listCompact(mach, ops,
                                       /*phase_aware=*/true,
                                       /*chaining=*/true);
    if (compactorSabotage()) {
        for (auto &word : res.words) {
            if (word.size() >= 2) {
                word.pop_back();
                break;
            }
        }
    }
    return res;
}

CompactionResult
DasguptaTartarCompactor::compact(const MachineDescription &mach,
                                 std::span<const BoundOp> ops) const
{
    DepGraph dg(mach, ops);
    Placer pl(mach, ops, dg, /*phase_aware=*/false, /*chaining=*/false);
    CompactionResult res;

    // Step 1: levels by data dependence only (anti dependences do
    // not advance the level -- reads precede writes).
    std::vector<uint32_t> level(ops.size(), 1);
    for (uint32_t i = 0; i < ops.size(); ++i) {
        for (uint32_t d : dg.preds(i)) {
            const Dep &dep = dg.deps()[d];
            uint32_t need = level[dep.from] +
                            (dep.kind == DepKind::Anti ? 0 : 1);
            level[i] = std::max(level[i], need);
        }
    }
    uint32_t max_level = 0;
    for (uint32_t l : level)
        max_level = std::max(max_level, l);

    // Step 2: each level is split into words by resource conflicts,
    // first-fit in program order.
    for (uint32_t l = 1; l <= max_level; ++l) {
        size_t level_first_word = res.words.size();
        for (uint32_t i = 0; i < ops.size(); ++i) {
            if (level[i] != l)
                continue;
            bool done = false;
            for (size_t w = level_first_word;
                 w < res.words.size() && !done; ++w) {
                if (pl.canPlace(i, static_cast<uint32_t>(w),
                                res.words[w])) {
                    pl.place(i, static_cast<uint32_t>(w),
                             res.words[w]);
                    done = true;
                }
            }
            if (!done) {
                res.words.emplace_back();
                uint32_t w = static_cast<uint32_t>(res.words.size() - 1);
                if (!pl.canPlace(i, w, res.words[w]))
                    panic("dasgupta_tartar: op %u unplaceable", i);
                pl.place(i, w, res.words[w]);
            }
        }
    }
    return res;
}

namespace {

/** Exhaustive search state for the optimal compactor. */
class BnB
{
  public:
    BnB(const MachineDescription &mach, std::span<const BoundOp> ops,
        const DepGraph &dg, uint64_t max_nodes)
        : mach_(mach), ops_(ops), dg_(dg), maxNodes_(max_nodes),
          wordOf_(ops.size(), Placer::kUnplaced)
    {}

    CompactionResult
    search(CompactionResult upper_bound)
    {
        best_ = std::move(upper_bound);
        cur_.words.assign(1, {});   // one open, empty word
        unplaced_ = ops_.size();
        go(0);
        return best_;
    }

    bool exhausted() const { return nodes_ >= maxNodes_; }

  private:
    unsigned
    phaseOf(uint32_t i) const
    {
        return mach_.uop(ops_[i].spec).phase;
    }

    /** ceil(longest unplaced chain / phases): words still needed. */
    uint32_t
    lowerBound() const
    {
        uint32_t h = 0;
        for (uint32_t i = 0; i < ops_.size(); ++i) {
            if (wordOf_[i] == Placer::kUnplaced)
                h = std::max(h, dg_.heightOf(i));
        }
        unsigned per_word = mach_.vertical() ? 1 : mach_.numPhases();
        return (h + per_word - 1) / per_word;
    }

    bool
    canPlace(uint32_t i, const std::vector<uint32_t> &word,
             uint32_t w) const
    {
        for (uint32_t d : dg_.preds(i)) {
            const Dep &dep = dg_.deps()[d];
            if (wordOf_[dep.from] == Placer::kUnplaced)
                return false;
            if (!DepGraph::placementLegal(dep.kind, wordOf_[dep.from],
                                          phaseOf(dep.from), w,
                                          phaseOf(i), true)) {
                return false;
            }
        }
        for (uint32_t m : word) {
            if (mach_.conflict(ops_[m], ops_[i], true))
                return false;
        }
        if (mach_.vertical() && !word.empty())
            return false;
        return true;
    }

    /**
     * Depth-first search. The last word of cur_ is "open": ops may
     * still be added to it. Ops are added to the open word in
     * increasing index order (@p min_index) so each word subset is
     * enumerated exactly once.
     */
    void
    go(uint32_t min_index)
    {
        if (nodes_++ >= maxNodes_)
            return;
        if (unplaced_ == 0) {
            size_t size = cur_.words.size() -
                          (cur_.words.back().empty() ? 1 : 0);
            if (size < best_.words.size()) {
                best_ = cur_;
                if (best_.words.back().empty())
                    best_.words.pop_back();
            }
            return;
        }
        size_t closed = cur_.words.size() - 1;
        if (closed + lowerBound() >= best_.words.size())
            return;     // cannot beat the incumbent

        uint32_t w = static_cast<uint32_t>(cur_.words.size() - 1);
        for (uint32_t i = min_index; i < ops_.size(); ++i) {
            if (wordOf_[i] != Placer::kUnplaced)
                continue;
            if (!canPlace(i, cur_.words[w], w))
                continue;
            cur_.words[w].push_back(i);
            wordOf_[i] = w;
            --unplaced_;
            go(i + 1);
            ++unplaced_;
            wordOf_[i] = Placer::kUnplaced;
            cur_.words[w].pop_back();
        }

        if (!cur_.words.back().empty()) {
            cur_.words.emplace_back();
            go(0);
            cur_.words.pop_back();
        }
    }

    const MachineDescription &mach_;
    std::span<const BoundOp> ops_;
    const DepGraph &dg_;
    uint64_t maxNodes_;
    uint64_t nodes_ = 0;
    std::vector<uint32_t> wordOf_;
    size_t unplaced_ = 0;
    CompactionResult cur_;
    CompactionResult best_;
};

} // namespace

CompactionResult
OptimalCompactor::compact(const MachineDescription &mach,
                          std::span<const BoundOp> ops) const
{
    TokoroCompactor fallback;
    CompactionResult ub = fallback.compact(mach, ops);
    if (ops.size() > maxOps_) {
        warn("optimal compactor: block of %zu ops exceeds limit %zu; "
             "returning tokoro schedule", ops.size(), maxOps_);
        return ub;
    }
    if (ops.empty())
        return ub;

    DepGraph dg(mach, ops);
    // The bound compares against "one more than ub" so that a
    // schedule equal to the heuristic is still explored cheaply.
    BnB bnb(mach, ops, dg, maxNodes_);
    CompactionResult best = bnb.search(ub);
    return best;
}

bool
compactionLegal(const MachineDescription &mach,
                std::span<const BoundOp> ops,
                const CompactionResult &result, bool phase_chaining,
                std::string *why)
{
    std::vector<uint32_t> word_of(ops.size(), 0xffffffffu);
    size_t count = 0;
    for (uint32_t w = 0; w < result.words.size(); ++w) {
        for (uint32_t i : result.words[w]) {
            if (i >= ops.size() || word_of[i] != 0xffffffffu) {
                if (why)
                    *why = strfmt("op %u duplicated or out of range",
                                  i);
                return false;
            }
            word_of[i] = w;
            ++count;
        }
    }
    if (count != ops.size()) {
        if (why)
            *why = strfmt("%zu of %zu ops scheduled", count,
                          ops.size());
        return false;
    }

    DepGraph dg(mach, ops);
    for (const Dep &d : dg.deps()) {
        unsigned pf = mach.uop(ops[d.from].spec).phase;
        unsigned pt = mach.uop(ops[d.to].spec).phase;
        if (!DepGraph::placementLegal(d.kind, word_of[d.from], pf,
                                      word_of[d.to], pt,
                                      phase_chaining)) {
            if (why) {
                *why = strfmt(
                    "dependence %u->%u (%s) violated: words %u,%u",
                    d.from, d.to,
                    d.kind == DepKind::Flow
                        ? "flow"
                        : d.kind == DepKind::Anti ? "anti" : "output",
                    word_of[d.from], word_of[d.to]);
            }
            return false;
        }
    }

    for (const auto &word : result.words) {
        std::vector<BoundOp> members;
        for (uint32_t i : word)
            members.push_back(ops[i]);
        if (!mach.wordLegal(members, /*phase_aware=*/true, why))
            return false;
    }
    return true;
}

std::vector<std::unique_ptr<Compactor>>
allCompactors()
{
    std::vector<std::unique_ptr<Compactor>> out;
    out.push_back(std::make_unique<LinearCompactor>());
    out.push_back(std::make_unique<CriticalPathCompactor>());
    out.push_back(std::make_unique<DasguptaTartarCompactor>());
    out.push_back(std::make_unique<TokoroCompactor>());
    out.push_back(std::make_unique<OptimalCompactor>());
    return out;
}

} // namespace uhll
