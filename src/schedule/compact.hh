/**
 * @file
 * Microinstruction composition ("compaction"): turning a sequential
 * list of bound microoperations into as few control words as
 * possible -- the problem the survey identifies as the most-studied
 * implementation problem of high level microprogramming languages
 * (sec. 2.1.4, refs [18], [22], [3], [21]).
 *
 * Five algorithms are provided:
 *  - linear          first-come-first-served placement with the
 *                    coarse (word-level) resource model, after
 *                    Ramamoorthy & Tsuchiya's SIMPL compiler [18];
 *  - critical_path   list scheduling by dependence height with the
 *                    coarse model, after Tsuchiya & Gonzalez [22];
 *  - dasgupta_tartar two-step maximal-parallelism partition: levels
 *                    by data dependence, then splitting levels by
 *                    resource conflicts, after Dasgupta & Tartar [3];
 *  - tokoro          list scheduling under the phase-aware resource
 *                    model with intra-word (cocycle) chaining of
 *                    flow-dependent operations, after Tokoro et
 *                    al.'s format/occupancy model [21];
 *  - optimal         branch-and-bound minimal schedule under the
 *                    phase-aware model (small blocks only); the
 *                    reference the heuristics are judged against.
 */

#ifndef UHLL_SCHEDULE_COMPACT_HH
#define UHLL_SCHEDULE_COMPACT_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "machine/machine_desc.hh"
#include "schedule/depgraph.hh"

namespace uhll {

/** A compaction: op indices grouped into control words, in order. */
struct CompactionResult {
    std::vector<std::vector<uint32_t>> words;

    size_t numWords() const { return words.size(); }
};

/** Interface of a compaction algorithm. */
class Compactor
{
  public:
    virtual ~Compactor() = default;

    virtual const char *name() const = 0;

    /**
     * Compact @p ops (one straight-line block). The result always
     * satisfies the dependence rules of DepGraph::placementLegal and
     * the machine's conflict model.
     */
    virtual CompactionResult compact(const MachineDescription &mach,
                                     std::span<const BoundOp> ops)
        const = 0;
};

/** FCFS compaction with the coarse resource model [18]. */
class LinearCompactor : public Compactor
{
  public:
    const char *name() const override { return "linear"; }
    CompactionResult compact(const MachineDescription &mach,
                             std::span<const BoundOp> ops)
        const override;
};

/** Height-priority list scheduling, coarse resource model [22]. */
class CriticalPathCompactor : public Compactor
{
  public:
    const char *name() const override { return "critical_path"; }
    CompactionResult compact(const MachineDescription &mach,
                             std::span<const BoundOp> ops)
        const override;
};

/** Level partition by data dependence, then resource splitting [3]. */
class DasguptaTartarCompactor : public Compactor
{
  public:
    const char *name() const override { return "dasgupta_tartar"; }
    CompactionResult compact(const MachineDescription &mach,
                             std::span<const BoundOp> ops)
        const override;
};

/** Phase-aware list scheduling with cocycle chaining [21]. */
class TokoroCompactor : public Compactor
{
  public:
    const char *name() const override { return "tokoro"; }
    CompactionResult compact(const MachineDescription &mach,
                             std::span<const BoundOp> ops)
        const override;
};

/**
 * Branch-and-bound optimum under the phase-aware model. Exponential:
 * refuses blocks larger than maxOps (falls back to tokoro with a
 * warning).
 */
class OptimalCompactor : public Compactor
{
  public:
    explicit OptimalCompactor(size_t max_ops = 16,
                              uint64_t max_nodes = 2'000'000)
        : maxOps_(max_ops), maxNodes_(max_nodes)
    {}

    const char *name() const override { return "optimal"; }
    CompactionResult compact(const MachineDescription &mach,
                             std::span<const BoundOp> ops)
        const override;

  private:
    size_t maxOps_;
    uint64_t maxNodes_;
};

/**
 * @name Test-only sabotage hook
 * When armed, TokoroCompactor silently drops the last operation of
 * the first multi-op word it schedules -- the classic "compactor
 * loses an op" bug class (lower.cc emits exactly the indices the
 * compaction names, so the op vanishes without a diagnostic). It
 * exists solely so the fuzz farm's divergence hunt and minimizer can
 * be demonstrated against a known-planted bug (test_fuzz.cc,
 * EXPERIMENTS.md); nothing in the product ever arms it.
 */
/// @{
void setCompactorSabotage(bool on);
bool compactorSabotage();
/// @}

/**
 * Check that @p result is a legal compaction of @p ops: a
 * permutation-free partition respecting dependences and the
 * machine's conflict model. Returns false and fills @p why on
 * violation. Shared by tests and by the S* front end (whose user
 * composes words by hand and only gets them checked).
 */
bool compactionLegal(const MachineDescription &mach,
                     std::span<const BoundOp> ops,
                     const CompactionResult &result,
                     bool phase_chaining, std::string *why = nullptr);

/** All bundled compactors, for benchmark sweeps. */
std::vector<std::unique_ptr<Compactor>> allCompactors();

} // namespace uhll

#endif // UHLL_SCHEDULE_COMPACT_HH
