#include "schedule/depgraph.hh"

#include <algorithm>

#include "support/logging.hh"

namespace uhll {

namespace {

/** Locations read / written by one bound op, for dependence purposes. */
struct Access {
    std::vector<RegId> reads;
    std::vector<RegId> writes;
    bool readsMem = false;
    bool writesMem = false;
    bool writesFlags = false;
};

Access
accessOf(const MachineDescription &mach, const BoundOp &op)
{
    const MicroOpSpec &s = mach.uop(op.spec);
    Access a;
    if (uKindHasSrcA(s.kind) && op.srcA != kNoReg)
        a.reads.push_back(op.srcA);
    if (uKindHasSrcB(s.kind) && !op.useImm && op.srcB != kNoReg)
        a.reads.push_back(op.srcB);
    if (uKindHasDst(s.kind) && op.dst != kNoReg)
        a.writes.push_back(op.dst);
    if (uKindModifiesSrcA(s.kind) && op.srcA != kNoReg)
        a.writes.push_back(op.srcA);
    switch (s.kind) {
      case UKind::MemRead:
      case UKind::Pop:
        a.readsMem = true;
        break;
      case UKind::MemWrite:
      case UKind::Push:
        a.writesMem = true;
        break;
      default:
        break;
    }
    a.writesFlags = s.setsFlags;
    return a;
}

bool
intersects(const std::vector<RegId> &xs, const std::vector<RegId> &ys)
{
    for (RegId x : xs) {
        if (std::find(ys.begin(), ys.end(), x) != ys.end())
            return true;
    }
    return false;
}

} // namespace

DepGraph::DepGraph(const MachineDescription &mach,
                   std::span<const BoundOp> ops)
    : n_(ops.size()), succs_(ops.size()), preds_(ops.size()),
      height_(ops.size(), 1)
{
    std::vector<Access> acc;
    acc.reserve(n_);
    for (const BoundOp &op : ops)
        acc.push_back(accessOf(mach, op));

    auto addDep = [&](uint32_t i, uint32_t j, DepKind k) {
        uint32_t idx = static_cast<uint32_t>(deps_.size());
        deps_.push_back(Dep{i, j, k});
        succs_[i].push_back(idx);
        preds_[j].push_back(idx);
    };

    for (uint32_t j = 1; j < n_; ++j) {
        for (uint32_t i = 0; i < j; ++i) {
            // Register dependences. Flow dominates if both apply
            // (add the strongest applicable constraint; Flow and
            // Output are equally strict, Anti is weaker).
            if (intersects(acc[i].writes, acc[j].reads))
                addDep(i, j, DepKind::Flow);
            else if (intersects(acc[i].writes, acc[j].writes))
                addDep(i, j, DepKind::Output);
            else if (intersects(acc[i].reads, acc[j].writes))
                addDep(i, j, DepKind::Anti);

            // Memory: one location, conservatively ordered.
            if (acc[i].writesMem && acc[j].readsMem)
                addDep(i, j, DepKind::Flow);
            else if (acc[i].writesMem && acc[j].writesMem)
                addDep(i, j, DepKind::Output);
            else if (acc[i].readsMem && acc[j].writesMem)
                addDep(i, j, DepKind::Anti);

            // Flag latch: order flag writers so the terminator sees
            // the sequentially-final flags.
            if (acc[i].writesFlags && acc[j].writesFlags)
                addDep(i, j, DepKind::Output);
        }
    }

    // Heights (longest chain to a sink), in reverse order; edges
    // always point forward so one sweep suffices.
    for (uint32_t i = static_cast<uint32_t>(n_); i-- > 0;) {
        uint32_t h = 1;
        for (uint32_t d : succs_[i])
            h = std::max(h, 1 + height_[deps_[d].to]);
        height_[i] = h;
    }
}

uint32_t
DepGraph::criticalPathLength() const
{
    uint32_t best = 0;
    for (uint32_t h : height_)
        best = std::max(best, h);
    return best;
}

bool
DepGraph::placementLegal(DepKind kind, uint32_t from_word,
                         unsigned from_phase, uint32_t to_word,
                         unsigned to_phase, bool phase_chaining)
{
    if (from_word < to_word)
        return true;
    if (from_word > to_word)
        return false;
    switch (kind) {
      case DepKind::Flow:
        return phase_chaining && from_phase < to_phase;
      case DepKind::Anti:
        return from_phase <= to_phase;
      case DepKind::Output:
        return from_phase < to_phase;
    }
    return false;
}

} // namespace uhll
