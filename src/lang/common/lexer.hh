/**
 * @file
 * Shared lexer for the four language front ends.
 *
 * The surveyed languages differ in comment style (SIMPL's
 * "comment ...;" , EMPL's PL/I-style slash-star, S*'s hash-delimited
 * remarks, YALLL's semicolon-to-end-of-line) and in whether line
 * breaks matter (YALLL is line oriented); the lexer is configured per
 * front end.
 */

#ifndef UHLL_LANG_COMMON_LEXER_HH
#define UHLL_LANG_COMMON_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uhll {

/** One lexical token. */
struct Token {
    enum class Kind : uint8_t {
        End,        //!< end of input
        Ident,      //!< identifier (possibly case-folded)
        Int,        //!< integer literal; value holds it
        Punct,      //!< punctuation; text holds the spelling
        Newline,    //!< only when newlines are significant
    };
    Kind kind = Kind::End;
    std::string text;
    uint64_t value = 0;
    int line = 1;
    int col = 1;
};

/** Lexer configuration. */
struct LexOptions {
    std::string lineComment;        //!< e.g. ";" for YALLL
    std::string blockCommentOpen;   //!< e.g. "/*" for EMPL
    std::string blockCommentClose;  //!< e.g. "*/"
    bool hashComments = false;      //!< S*: # ... # remarks
    bool significantNewlines = false;
    bool foldCase = false;          //!< identifiers lower-cased
};

/**
 * Tokenise @p source completely (fatal() on malformed input).
 * Integer literals accept decimal, 0x/0b/0o prefixes.
 */
std::vector<Token> lex(const std::string &source,
                       const LexOptions &opts);

/** Cursor over a token stream with the usual parser helpers. */
class TokenStream
{
  public:
    TokenStream(std::vector<Token> tokens, std::string lang)
        : toks_(std::move(tokens)), lang_(std::move(lang))
    {}

    const Token &peek(size_t ahead = 0) const;
    Token next();
    bool atEnd() const { return peek().kind == Token::Kind::End; }

    /** Consume an identifier equal to @p kw (exact match). */
    bool acceptKeyword(const std::string &kw);
    /** Consume punctuation @p p if present. */
    bool acceptPunct(const std::string &p);
    bool acceptNewline();

    /** Require and consume; fatal() with location otherwise. */
    void expectKeyword(const std::string &kw);
    void expectPunct(const std::string &p);

    /** Require and consume an identifier; returns its text. */
    std::string expectIdent(const char *what);

    /** Require and consume an integer literal. */
    uint64_t expectInt(const char *what);

    /** Report a parse error at the current token. */
    [[noreturn]] void error(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

  private:
    std::vector<Token> toks_;
    std::string lang_;
    size_t pos_ = 0;
};

} // namespace uhll

#endif // UHLL_LANG_COMMON_LEXER_HH
