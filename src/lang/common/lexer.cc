#include "lang/common/lexer.hh"

#include <cctype>
#include <cstdarg>

#include "support/logging.hh"

namespace uhll {

namespace {

/** Multi-character punctuation, longest first. */
const char *kPuncts[] = {
    "->", ":=", "<=", ">=", "!=", "<>", "..", "^^", "==",
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return identStart(c) ||
           std::isdigit(static_cast<unsigned char>(c));
}

} // namespace

std::vector<Token>
lex(const std::string &src, const LexOptions &opts)
{
    std::vector<Token> out;
    size_t pos = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t n) {
        for (size_t i = 0; i < n && pos < src.size(); ++i, ++pos) {
            if (src[pos] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };
    auto startsWith = [&](const std::string &s) {
        return !s.empty() && src.compare(pos, s.size(), s) == 0;
    };

    while (pos < src.size()) {
        char c = src[pos];

        if (c == '\n') {
            if (opts.significantNewlines &&
                (out.empty() ||
                 out.back().kind != Token::Kind::Newline)) {
                Token t;
                t.kind = Token::Kind::Newline;
                t.line = line;
                t.col = col;
                out.push_back(t);
            }
            advance(1);
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        if (startsWith(opts.lineComment)) {
            while (pos < src.size() && src[pos] != '\n')
                advance(1);
            continue;
        }
        if (startsWith(opts.blockCommentOpen)) {
            int l = line, cl = col;
            advance(opts.blockCommentOpen.size());
            while (pos < src.size() &&
                   !startsWith(opts.blockCommentClose)) {
                advance(1);
            }
            if (pos >= src.size())
                fatal("lex: unterminated comment at line %d col %d",
                      l, cl);
            advance(opts.blockCommentClose.size());
            continue;
        }
        if (opts.hashComments && c == '#') {
            int l = line, cl = col;
            advance(1);
            while (pos < src.size() && src[pos] != '#')
                advance(1);
            if (pos >= src.size())
                fatal("lex: unterminated # remark at line %d col %d",
                      l, cl);
            advance(1);
            continue;
        }

        Token t;
        t.line = line;
        t.col = col;

        if (identStart(c)) {
            size_t start = pos;
            while (pos < src.size() && identCont(src[pos]))
                advance(1);
            t.kind = Token::Kind::Ident;
            t.text = src.substr(start, pos - start);
            if (opts.foldCase) {
                for (char &ch : t.text)
                    ch = static_cast<char>(
                        std::tolower(static_cast<unsigned char>(ch)));
            }
            out.push_back(std::move(t));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t tok_start = pos;
            int base = 10;
            if (c == '0' && pos + 1 < src.size()) {
                char n = src[pos + 1];
                if (n == 'x' || n == 'X') { base = 16; advance(2); }
                else if (n == 'b' || n == 'B') { base = 2; advance(2); }
                else if (n == 'o' || n == 'O') { base = 8; advance(2); }
            }
            uint64_t v = 0;
            bool any = false;
            while (pos < src.size()) {
                char d = src[pos];
                int dv;
                if (d >= '0' && d <= '9')
                    dv = d - '0';
                else if (d >= 'a' && d <= 'f')
                    dv = d - 'a' + 10;
                else if (d >= 'A' && d <= 'F')
                    dv = d - 'A' + 10;
                else
                    break;
                if (dv >= base)
                    break;
                v = v * base + dv;
                any = true;
                advance(1);
            }
            if (!any)
                fatal("lex: malformed number at line %d col %d",
                      t.line, t.col);
            t.kind = Token::Kind::Int;
            t.value = v;
            t.text = src.substr(tok_start, pos - tok_start);
            out.push_back(std::move(t));
            continue;
        }

        // Punctuation: longest known multi-char first.
        t.kind = Token::Kind::Punct;
        bool matched = false;
        for (const char *p : kPuncts) {
            if (startsWith(p)) {
                t.text = p;
                advance(t.text.size());
                matched = true;
                break;
            }
        }
        if (!matched) {
            t.text = std::string(1, c);
            advance(1);
        }
        out.push_back(std::move(t));
    }

    Token end;
    end.kind = Token::Kind::End;
    end.line = line;
    end.col = col;
    out.push_back(end);
    return out;
}

const Token &
TokenStream::peek(size_t ahead) const
{
    size_t i = pos_ + ahead;
    if (i >= toks_.size())
        i = toks_.size() - 1;
    return toks_[i];
}

Token
TokenStream::next()
{
    Token t = peek();
    if (pos_ + 1 < toks_.size())
        ++pos_;
    return t;
}

bool
TokenStream::acceptKeyword(const std::string &kw)
{
    if (peek().kind == Token::Kind::Ident && peek().text == kw) {
        next();
        return true;
    }
    return false;
}

bool
TokenStream::acceptPunct(const std::string &p)
{
    if (peek().kind == Token::Kind::Punct && peek().text == p) {
        next();
        return true;
    }
    return false;
}

bool
TokenStream::acceptNewline()
{
    if (peek().kind == Token::Kind::Newline) {
        next();
        return true;
    }
    return false;
}

void
TokenStream::expectKeyword(const std::string &kw)
{
    if (!acceptKeyword(kw))
        error("expected '%s'", kw.c_str());
}

void
TokenStream::expectPunct(const std::string &p)
{
    if (!acceptPunct(p))
        error("expected '%s'", p.c_str());
}

std::string
TokenStream::expectIdent(const char *what)
{
    if (peek().kind != Token::Kind::Ident)
        error("expected %s", what);
    return next().text;
}

uint64_t
TokenStream::expectInt(const char *what)
{
    if (peek().kind != Token::Kind::Int)
        error("expected %s", what);
    return next().value;
}

void
TokenStream::error(const char *fmt, ...) const
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    const Token &t = peek();
    std::string got;
    switch (t.kind) {
      case Token::Kind::End: got = "end of input"; break;
      case Token::Kind::Newline: got = "end of line"; break;
      case Token::Kind::Int: got = strfmt("number %llu",
                                          (unsigned long long)t.value);
        break;
      default: got = "'" + t.text + "'"; break;
    }
    fatal("%s: line %d col %d: %s (got %s)", lang_.c_str(), t.line,
          t.col, msg.c_str(), got.c_str());
}

} // namespace uhll
