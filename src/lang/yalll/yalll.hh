/**
 * @file
 * YALLL -- "Yet Another Low Level Language" (Patterson, Lew & Tuck,
 * 1979; survey sec. 2.2.4).
 *
 * An assembly-structured language over a fixed set of primitives
 * chosen to correspond to commonly available microoperations, with
 * symbolic registers optionally bound to physical ones, a
 * sophisticated mask-compare conditional branch, and a multiway
 * dispatch. One source compiles for any bundled machine -- the
 * property the YALLL authors demonstrated on the HP300 and VAX-11.
 *
 * Syntax (line oriented, ';' comments):
 *
 *     reg str = r8          ; bound to a physical register
 *     reg tmp               ; symbolic, allocated by the compiler
 *
 *     proc main
 *     loop:
 *         load char, str    ; char := mem[str]
 *         jump out if char = 0
 *         add t, char, tbl
 *         stor char, str    ; mem[str] := char
 *         add str, str, 1
 *         jump loop
 *     out:
 *         exit
 *
 * Instructions: load, stor, move, put, add, sub, and, or, xor, not,
 * neg, inc, dec, shl, shr, sar, rol, ror, push, pop, jump [if],
 * case, call, ret, exit, intack.
 *
 * Conditions: "x = k", "x != k", "x < y", "x >= y" (unsigned),
 * "x match 1x0x" (YALLL's ternary mask compare), "int" (interrupt
 * line pending).
 */

#ifndef UHLL_LANG_YALLL_YALLL_HH
#define UHLL_LANG_YALLL_YALLL_HH

#include <string>

#include "machine/machine_desc.hh"
#include "mir/mir.hh"

namespace uhll {

/**
 * Parse a YALLL program into MIR. Physical register names in reg
 * declarations are resolved against @p mach. fatal() on any error.
 */
MirProgram parseYalll(const std::string &source,
                      const MachineDescription &mach);

} // namespace uhll

#endif // UHLL_LANG_YALLL_YALLL_HH
