#include "lang/yalll/yalll.hh"

#include <set>
#include <tuple>
#include <unordered_map>

#include "driver/frontend.hh"
#include "lang/common/lexer.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** Parser/translator state for one YALLL compilation. */
class YalllParser
{
  public:
    YalllParser(const std::string &source,
                const MachineDescription &mach)
        : mach_(mach),
          ts_(lex(source,
                  [] {
                      LexOptions o;
                      o.lineComment = ";";
                      o.significantNewlines = true;
                      o.foldCase = true;
                      return o;
                  }()),
              "yalll")
    {}

    MirProgram
    run()
    {
        while (ts_.acceptNewline()) {}
        // Register declarations.
        while (ts_.acceptKeyword("reg")) {
            std::string name = ts_.expectIdent("register name");
            VReg v = prog_.newVReg(name);
            prog_.markObservable(v);
            if (ts_.acceptPunct("=")) {
                std::string phys = ts_.expectIdent("machine register");
                auto r = mach_.findRegister(phys);
                if (!r)
                    ts_.error("machine %s has no register '%s'",
                              mach_.name().c_str(), phys.c_str());
                prog_.bind(v, *r);
            }
            endLine();
        }
        // Procedures; the first is the entry point.
        bool any = false;
        while (ts_.acceptKeyword("proc")) {
            parseProc();
            any = true;
        }
        if (!any)
            ts_.error("expected 'proc'");
        if (!ts_.atEnd())
            ts_.error("unexpected trailing input");

        // Resolve forward procedure references.
        for (auto &[fn, blk, callee] : callFixups_) {
            auto f = prog_.findFunction(callee);
            if (!f)
                fatal("yalll: call to undefined proc '%s'",
                      callee.c_str());
            prog_.func(fn).blocks[blk].term.callee = *f;
        }
        prog_.validate();
        return std::move(prog_);
    }

  private:
    void
    endLine()
    {
        if (!ts_.acceptNewline() && !ts_.atEnd())
            ts_.error("expected end of line");
        while (ts_.acceptNewline()) {}
    }

    VReg
    regOperand()
    {
        std::string name = ts_.expectIdent("register operand");
        auto v = prog_.findVReg(name);
        if (!v)
            ts_.error("undeclared register '%s'", name.c_str());
        return *v;
    }

    /** b-operand: register or integer literal. */
    std::pair<VReg, std::optional<uint64_t>>
    regOrConst()
    {
        if (ts_.peek().kind == Token::Kind::Int)
            return {kNoVReg, ts_.next().value};
        return {regOperand(), std::nullopt};
    }

    VReg
    tempVReg()
    {
        return prog_.newVReg();
    }

    // --- current function state -----------------------------------
    uint32_t fn_ = 0;

    BasicBlock &
    cur()
    {
        return prog_.func(fn_).blocks[curBlock_];
    }

    uint32_t
    blockForLabel(const std::string &label)
    {
        auto it = labelBlocks_.find(label);
        if (it != labelBlocks_.end())
            return it->second;
        uint32_t b = prog_.func(fn_).newBlock();
        labelBlocks_.emplace(label, b);
        return b;
    }

    /** Seal the current block with @p t and open a fresh one. */
    void
    seal(Terminator t)
    {
        cur().term = std::move(t);
        curBlock_ = prog_.func(fn_).newBlock();
        terminated_ = true;
    }

    void
    parseProc()
    {
        std::string name = ts_.expectIdent("procedure name");
        if (prog_.findFunction(name))
            ts_.error("duplicate proc '%s'", name.c_str());
        fn_ = prog_.addFunction(name);
        labelBlocks_.clear();
        labelDefined_.clear();
        curBlock_ = prog_.func(fn_).newBlock();
        terminated_ = false;
        endLine();

        while (!ts_.atEnd()) {
            if (ts_.peek().kind == Token::Kind::Ident &&
                ts_.peek().text == "proc") {
                break;
            }
            // Label definition?
            if (ts_.peek().kind == Token::Kind::Ident &&
                ts_.peek(1).kind == Token::Kind::Punct &&
                ts_.peek(1).text == ":") {
                std::string label = ts_.next().text;
                ts_.next();     // ':'
                if (labelDefined_.count(label))
                    ts_.error("duplicate label '%s'", label.c_str());
                labelDefined_.insert(label);
                uint32_t b = blockForLabel(label);
                if (!terminated_) {
                    cur().term = jumpTerm(b);
                }
                curBlock_ = b;
                terminated_ = false;
                while (ts_.acceptNewline()) {}
                continue;
            }
            parseInstruction();
        }

        // Implicit end of procedure.
        if (!terminated_) {
            cur().term.kind = fn_ == 0 ? Terminator::Kind::Halt
                                       : Terminator::Kind::Ret;
        }
        // Every referenced label must be defined.
        for (auto &[label, blk] : labelBlocks_) {
            (void)blk;
            if (!labelDefined_.count(label))
                fatal("yalll: undefined label '%s' in proc '%s'",
                      label.c_str(),
                      prog_.func(fn_).name.c_str());
        }
    }

    /** Emit cmp-and-branch for a parsed condition. */
    void
    condBranch(uint32_t target)
    {
        if (ts_.acceptKeyword("int")) {
            Terminator t;
            t.kind = Terminator::Kind::Branch;
            t.cc = Cond::Int;
            t.target = target;
            uint32_t fresh = prog_.func(fn_).newBlock();
            t.fallthrough = fresh;
            cur().term = t;
            curBlock_ = fresh;
            terminated_ = false;
            return;
        }

        VReg x = regOperand();
        Cond cc;
        if (ts_.acceptKeyword("match")) {
            // Ternary mask: adjacent Int/Ident tokens of 0, 1, x.
            std::string mask_text;
            int end_col = -1;
            while (true) {
                const Token &t = ts_.peek();
                if (t.kind != Token::Kind::Int &&
                    t.kind != Token::Kind::Ident) {
                    break;
                }
                if (end_col >= 0 && t.col != end_col)
                    break;      // whitespace: mask ended
                mask_text += t.text;
                end_col = t.col + static_cast<int>(t.text.size());
                ts_.next();
            }
            if (mask_text.empty())
                ts_.error("expected mask after 'match'");
            uint64_t care = 0, want = 0;
            for (char c : mask_text) {
                care <<= 1;
                want <<= 1;
                if (c == '1') {
                    care |= 1;
                    want |= 1;
                } else if (c == '0') {
                    care |= 1;
                } else if (c != 'x') {
                    ts_.error("mask may contain only 0, 1, x");
                }
            }
            VReg t = tempVReg();
            cur().insts.push_back(
                mi::binopImm(UKind::And, t, x, care));
            cur().insts.push_back(mi::cmpImm(t, want));
            cc = Cond::Z;
        } else {
            std::string op;
            if (ts_.acceptPunct("="))
                op = "=";
            else if (ts_.acceptPunct("!="))
                op = "!=";
            else if (ts_.acceptPunct("<"))
                op = "<";
            else if (ts_.acceptPunct(">="))
                op = ">=";
            else
                ts_.error("expected =, !=, <, >= or 'match'");
            auto [y, imm] = regOrConst();
            MInst c;
            c.op = UKind::Cmp;
            c.a = x;
            if (imm) {
                c.useImm = true;
                c.imm = *imm;
            } else {
                c.b = y;
            }
            cur().insts.push_back(c);
            if (op == "=")
                cc = Cond::Z;
            else if (op == "!=")
                cc = Cond::NZ;
            else if (op == "<")
                cc = Cond::NC;      // unsigned borrow
            else
                cc = Cond::C;
        }

        Terminator t;
        t.kind = Terminator::Kind::Branch;
        t.cc = cc;
        t.target = target;
        uint32_t fresh = prog_.func(fn_).newBlock();
        t.fallthrough = fresh;
        cur().term = t;
        curBlock_ = fresh;
        terminated_ = false;
    }

    void
    parseInstruction()
    {
        std::string mn = ts_.expectIdent("instruction");
        terminated_ = false;

        auto threeOp = [&](UKind k) {
            VReg d = regOperand();
            ts_.expectPunct(",");
            VReg a = regOperand();
            ts_.expectPunct(",");
            auto [b, imm] = regOrConst();
            MInst i;
            i.op = k;
            i.dst = d;
            i.a = a;
            if (imm) {
                i.useImm = true;
                i.imm = *imm;
            } else {
                i.b = b;
            }
            cur().insts.push_back(i);
        };
        auto twoOp = [&](UKind k) {
            VReg d = regOperand();
            ts_.expectPunct(",");
            VReg a = regOperand();
            cur().insts.push_back(mi::unop(k, d, a));
        };

        if (mn == "add") threeOp(UKind::Add);
        else if (mn == "sub") threeOp(UKind::Sub);
        else if (mn == "and") threeOp(UKind::And);
        else if (mn == "or") threeOp(UKind::Or);
        else if (mn == "xor") threeOp(UKind::Xor);
        else if (mn == "shl") threeOp(UKind::Shl);
        else if (mn == "shr") threeOp(UKind::Shr);
        else if (mn == "sar") threeOp(UKind::Sar);
        else if (mn == "rol") threeOp(UKind::Rol);
        else if (mn == "ror") threeOp(UKind::Ror);
        else if (mn == "not") twoOp(UKind::Not);
        else if (mn == "neg") twoOp(UKind::Neg);
        else if (mn == "inc") twoOp(UKind::Inc);
        else if (mn == "dec") twoOp(UKind::Dec);
        else if (mn == "move") twoOp(UKind::Mov);
        else if (mn == "put") {
            VReg d = regOperand();
            ts_.expectPunct(",");
            uint64_t v = ts_.expectInt("constant");
            cur().insts.push_back(mi::ldi(d, v));
        } else if (mn == "load") {
            VReg d = regOperand();
            ts_.expectPunct(",");
            VReg a = regOperand();
            cur().insts.push_back(mi::load(d, a));
        } else if (mn == "stor") {
            VReg v = regOperand();
            ts_.expectPunct(",");
            VReg a = regOperand();
            cur().insts.push_back(mi::store(a, v));
        } else if (mn == "push") {
            VReg sp = regOperand();
            ts_.expectPunct(",");
            VReg v = regOperand();
            MInst i;
            i.op = UKind::Push;
            i.a = sp;
            i.b = v;
            cur().insts.push_back(i);
        } else if (mn == "pop") {
            VReg d = regOperand();
            ts_.expectPunct(",");
            VReg sp = regOperand();
            MInst i;
            i.op = UKind::Pop;
            i.dst = d;
            i.a = sp;
            cur().insts.push_back(i);
        } else if (mn == "intack") {
            MInst i;
            i.op = UKind::IntAck;
            cur().insts.push_back(i);
        } else if (mn == "jump") {
            std::string label = ts_.expectIdent("label");
            uint32_t target = blockForLabel(label);
            if (ts_.acceptKeyword("if")) {
                condBranch(target);
            } else {
                seal(jumpTerm(target));
            }
        } else if (mn == "case") {
            VReg x = regOperand();
            ts_.expectPunct(",");
            uint64_t nbits = ts_.expectInt("bit count");
            if (nbits == 0 || nbits > 8)
                ts_.error("case bit count out of range");
            ts_.expectPunct(":");
            Terminator t;
            t.kind = Terminator::Kind::Case;
            t.caseReg = x;
            t.caseMask = bitMask(static_cast<unsigned>(nbits));
            size_t arms = size_t(1) << nbits;
            for (size_t i = 0; i < arms; ++i) {
                if (i)
                    ts_.expectPunct(",");
                t.caseTargets.push_back(
                    blockForLabel(ts_.expectIdent("case label")));
            }
            cur().term = t;
            curBlock_ = prog_.func(fn_).newBlock();
            terminated_ = true;
        } else if (mn == "call") {
            std::string callee = ts_.expectIdent("procedure");
            uint32_t fresh = prog_.func(fn_).newBlock();
            Terminator t;
            t.kind = Terminator::Kind::Call;
            t.target = fresh;
            cur().term = t;
            callFixups_.push_back({fn_, curBlock_, callee});
            curBlock_ = fresh;
        } else if (mn == "ret") {
            seal([]{ Terminator t; t.kind = Terminator::Kind::Ret; return t; }());
        } else if (mn == "exit") {
            // Optional value register is already wherever it lives.
            if (ts_.peek().kind == Token::Kind::Ident)
                regOperand();
            seal([]{ Terminator t; t.kind = Terminator::Kind::Halt; return t; }());
        } else {
            ts_.error("unknown instruction '%s'", mn.c_str());
        }
        endLine();
    }

    const MachineDescription &mach_;
    TokenStream ts_;
    MirProgram prog_;
    uint32_t curBlock_ = 0;
    bool terminated_ = false;
    std::unordered_map<std::string, uint32_t> labelBlocks_;
    std::set<std::string> labelDefined_;
    std::vector<std::tuple<uint32_t, uint32_t, std::string>>
        callFixups_;
};

} // namespace

MirProgram
parseYalll(const std::string &source, const MachineDescription &mach)
{
    YalllParser p(source, mach);
    return p.run();
}

// ----------------------------------------------------------------
// Frontend registration (see driver/frontend.hh). The anchor symbol
// keeps this TU in static-library links that only name the language
// through the registry.
// ----------------------------------------------------------------

namespace frontend_anchor {
extern const char yalll = 0;
} // namespace frontend_anchor

namespace {

class YalllFrontend final : public Frontend
{
  public:
    const char *name() const override { return "yalll"; }
    const char *describe() const override
    {
        return "YALLL: retargetable register-transfer language "
               "(Patterson/Lew/Tuck 1979)";
    }
    bool producesMir() const override { return true; }
    Translation
    translate(const std::string &source,
              const MachineDescription &mach,
              const FrontendOptions &) const override
    {
        Translation t;
        t.mir = parseYalll(source, mach);
        return t;
    }
};

const YalllFrontend yalllFrontend;
const FrontendRegistry::Registrar reg(&yalllFrontend);

} // namespace

} // namespace uhll
