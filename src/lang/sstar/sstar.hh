/**
 * @file
 * S* -- Dasgupta's microprogramming language schema (1978; survey
 * sec. 2.2.3), instantiated for a machine M as S(M).
 *
 * The defining properties, realised here:
 *  - every variable is declared and bound to machine storage
 *    (registers, register ranges, memory) in its declaration;
 *  - elementary statements correspond to single microoperations of
 *    M; a statement with no matching microoperation is a compile
 *    error, not something the compiler papers over;
 *  - parallelism is explicit: cocycle composes one microinstruction
 *    across the phases of the microcycle, cobegin composes within
 *    one phase, dur overlaps a multicycle memory operation with a
 *    statement sequence; the compiler checks resource and
 *    dependence legality and never reorders anything;
 *  - assert statements carry the program's correctness argument;
 *    they are collected for the bounded verifier (see
 *    verify/verifier.hh).
 *
 * Syntax sketch (hash-delimited remarks, case-insensitive):
 *
 *     program mpy;
 *     var mpr : seq [15..0] bit bind r1;
 *     var locals : array [0..3] of seq [15..0] bit bind r8;
 *     var buf : array [0..15] of seq [15..0] bit bind mem 0x800;
 *     var ir : tuple
 *         opcode : seq [15..12] bit;
 *         operand : seq [11..0] bit;
 *     end bind r9;
 *     var stk : stack [16] of seq [15..0] bit bind mem 0x900 sp r5;
 *     const minus1 = 0xffff;
 *     syn product = locals[2];
 *
 *     proc clear (product);
 *     begin product := 0 end;
 *
 *     begin
 *         call clear;
 *         repeat
 *             cocycle
 *                 cobegin a := product; b := mpnd coend;
 *                 s := a + b;
 *                 product := s
 *             end
 *         until s = 0;
 *         assert product = 42;
 *     end
 *
 * Statements: elementary assignments (x := y op z, x := y, x := k,
 * x := mem[a], mem[a] := x, push s, x / pop x, s), tuple field
 * access (compound: expands to masked shifts, never inside
 * cocycle/cobegin -- the temporary-variable consequence sec. 2.1.7
 * predicts), cocycle/cobegin/dur/region groups, if/elif/else/fi,
 * while/do/od, repeat/until, call, assert.
 */

#ifndef UHLL_LANG_SSTAR_SSTAR_HH
#define UHLL_LANG_SSTAR_SSTAR_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "machine/control_store.hh"
#include "machine/machine_desc.hh"
#include "verify/expr.hh"

namespace uhll {

/** An assertion: @p expr must hold before the word at @p addr. */
struct SstarAssertion {
    uint32_t addr = 0;
    VExpr expr;
    int line = 0;
};

/** The result of compiling an S(M) program. */
struct SstarProgram {
    ControlStore store;
    std::vector<SstarAssertion> assertions;
    //! scalar variables (and synonyms) -> machine register
    std::unordered_map<std::string, RegId> vars;

    explicit SstarProgram(const MachineDescription &m) : store(m) {}
};

/**
 * Compile an S(M) program for @p mach. The entry point is named
 * "main"; procedures get their own entries. fatal() on any error,
 * including statements with no corresponding microoperation and
 * illegal parallel compositions.
 */
SstarProgram compileSstar(const std::string &source,
                          const MachineDescription &mach);

} // namespace uhll

#endif // UHLL_LANG_SSTAR_SSTAR_HH
