#include "lang/sstar/sstar.hh"

#include <optional>

#include "driver/frontend.hh"
#include "lang/common/lexer.hh"
#include "schedule/compact.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** Resolved storage behind a name. */
struct SVar {
    enum class Kind : uint8_t {
        Reg,        //!< one register
        RegArray,   //!< consecutive registers
        MemArray,   //!< memory block
        MemCell,    //!< one memory word (array synonym)
        Field,      //!< bit field of a register
        Stack,      //!< memory block + sp register
        Const,
    };
    Kind kind = Kind::Reg;
    RegId reg = kNoReg;         //!< Reg/Field base; Stack sp
    unsigned hi = 0, lo = 0;    //!< Field bit range
    uint32_t base = 0;          //!< Mem*/Stack base address
    int loIdx = 0, hiIdx = 0;   //!< array index range
    uint64_t value = 0;         //!< Const
};

/** An operand of an elementary statement. */
struct ORef {
    enum class Kind : uint8_t { Reg, Imm, MemCell, Field };
    Kind kind = Kind::Reg;
    RegId reg = kNoReg;
    uint64_t imm = 0;
    unsigned hi = 0, lo = 0;
    uint32_t addr = 0;
};

/** One elementary statement lowered to operands + candidate specs. */
struct Elem {
    UKind kind = UKind::Nop;
    RegId dst = kNoReg, a = kNoReg, b = kNoReg;
    uint64_t imm = 0;
    bool useImm = false;
    std::vector<uint16_t> specs;    //!< candidate microops
    int line = 0;
};

class SstarCompiler
{
  public:
    SstarCompiler(const std::string &source,
                  const MachineDescription &mach)
        : mach_(mach), out_(mach),
          ts_(lex(source,
                  [] {
                      LexOptions o;
                      o.hashComments = true;
                      o.foldCase = true;
                      return o;
                  }()),
              "s*")
    {}

    SstarProgram
    run()
    {
        ts_.expectKeyword("program");
        progName_ = ts_.expectIdent("program name");
        ts_.expectPunct(";");

        while (true) {
            if (ts_.acceptKeyword("var"))
                parseVar();
            else if (ts_.acceptKeyword("const"))
                parseConst();
            else if (ts_.acceptKeyword("syn"))
                parseSyn();
            else
                break;
        }
        while (ts_.acceptKeyword("proc"))
            parseProc();

        out_.store.defineEntry("main",
                               static_cast<uint32_t>(out_.store.size()));
        ts_.expectKeyword("begin");
        parseStatements({"end"});
        ts_.expectKeyword("end");
        emitSeqOnly(SeqKind::Halt);

        if (!ts_.atEnd())
            ts_.error("unexpected trailing input");

        for (auto &[addr, name] : callFixups_) {
            if (!out_.store.hasEntry(name))
                fatal("s*: call of undefined proc '%s'", name.c_str());
            out_.store.word(addr).target = out_.store.entry(name);
        }
        return std::move(out_);
    }

  private:
    // ---------- declarations ----------

    RegId
    expectMachineReg()
    {
        std::string name = ts_.expectIdent("machine register");
        auto r = mach_.findRegister(name);
        if (!r)
            ts_.error("S(%s) has no register '%s'",
                      mach_.name().c_str(), name.c_str());
        return *r;
    }

    void
    define(const std::string &name, SVar v)
    {
        if (names_.count(name))
            fatal("s*: duplicate name '%s'", name.c_str());
        if (v.kind == SVar::Kind::Reg)
            out_.vars[name] = v.reg;
        names_.emplace(name, std::move(v));
    }

    /** seq [h..l] bit */
    std::pair<unsigned, unsigned>
    parseSeqType()
    {
        ts_.expectKeyword("seq");
        ts_.expectPunct("[");
        unsigned hi = static_cast<unsigned>(ts_.expectInt("high bit"));
        ts_.expectPunct("..");
        unsigned lo = static_cast<unsigned>(ts_.expectInt("low bit"));
        ts_.expectPunct("]");
        ts_.expectKeyword("bit");
        if (hi < lo || hi >= mach_.dataWidth())
            ts_.error("bit range out of order or machine width");
        return {hi, lo};
    }

    void
    parseVar()
    {
        std::string name = ts_.expectIdent("variable name");
        ts_.expectPunct(":");

        if (ts_.peek().kind == Token::Kind::Ident &&
            ts_.peek().text == "seq") {
            parseSeqType();
            ts_.expectKeyword("bind");
            SVar v;
            v.kind = SVar::Kind::Reg;
            v.reg = expectMachineReg();
            ts_.expectPunct(";");
            define(name, v);
            return;
        }
        if (ts_.acceptKeyword("array")) {
            ts_.expectPunct("[");
            int lo = static_cast<int>(ts_.expectInt("low index"));
            ts_.expectPunct("..");
            int hi = static_cast<int>(ts_.expectInt("high index"));
            ts_.expectPunct("]");
            ts_.expectKeyword("of");
            parseSeqType();
            ts_.expectKeyword("bind");
            SVar v;
            v.loIdx = lo;
            v.hiIdx = hi;
            if (ts_.acceptKeyword("mem")) {
                v.kind = SVar::Kind::MemArray;
                v.base = static_cast<uint32_t>(
                    ts_.expectInt("base address"));
            } else {
                v.kind = SVar::Kind::RegArray;
                v.reg = expectMachineReg();
                if (v.reg + (hi - lo) >= mach_.numRegisters())
                    ts_.error("register array runs off the file");
            }
            ts_.expectPunct(";");
            define(name, v);
            return;
        }
        if (ts_.acceptKeyword("tuple")) {
            // fields over one register
            struct F { std::string name; unsigned hi, lo; };
            std::vector<F> fields;
            while (!ts_.acceptKeyword("end")) {
                std::string fname = ts_.expectIdent("field name");
                ts_.expectPunct(":");
                auto [hi, lo] = parseSeqType();
                ts_.expectPunct(";");
                fields.push_back({fname, hi, lo});
            }
            ts_.expectKeyword("bind");
            RegId reg = expectMachineReg();
            ts_.expectPunct(";");
            SVar whole;
            whole.kind = SVar::Kind::Reg;
            whole.reg = reg;
            define(name, whole);
            for (const F &f : fields) {
                SVar v;
                v.kind = SVar::Kind::Field;
                v.reg = reg;
                v.hi = f.hi;
                v.lo = f.lo;
                define(name + "." + f.name, v);
            }
            return;
        }
        if (ts_.acceptKeyword("stack")) {
            ts_.expectPunct("[");
            uint32_t depth =
                static_cast<uint32_t>(ts_.expectInt("depth"));
            ts_.expectPunct("]");
            ts_.expectKeyword("of");
            parseSeqType();
            ts_.expectKeyword("bind");
            ts_.expectKeyword("mem");
            SVar v;
            v.kind = SVar::Kind::Stack;
            v.base = static_cast<uint32_t>(
                ts_.expectInt("base address"));
            v.hiIdx = static_cast<int>(depth);
            ts_.expectKeyword("sp");
            v.reg = expectMachineReg();
            ts_.expectPunct(";");
            define(name, v);
            return;
        }
        ts_.error("expected seq, array, tuple or stack type");
    }

    void
    parseConst()
    {
        std::string name = ts_.expectIdent("constant name");
        ts_.expectPunct("=");
        bool neg = ts_.acceptPunct("-");
        uint64_t v = ts_.expectInt("value");
        if (neg)
            v = truncBits(~v + 1, mach_.dataWidth());
        ts_.expectPunct(";");
        SVar sv;
        sv.kind = SVar::Kind::Const;
        sv.value = v;
        define(name, sv);
    }

    void
    parseSyn()
    {
        std::string alias = ts_.expectIdent("synonym");
        ts_.expectPunct("=");
        std::string target = ts_.expectIdent("variable");
        auto it = names_.find(target);
        if (it == names_.end())
            ts_.error("unknown variable '%s'", target.c_str());
        SVar v = it->second;
        if (ts_.acceptPunct("[")) {
            int idx = static_cast<int>(ts_.expectInt("index"));
            ts_.expectPunct("]");
            v = arrayElement(it->second, idx);
        }
        ts_.expectPunct(";");
        define(alias, v);
    }

    SVar
    arrayElement(const SVar &arr, int idx)
    {
        if (idx < arr.loIdx || idx > arr.hiIdx)
            ts_.error("index %d outside [%d..%d]", idx, arr.loIdx,
                      arr.hiIdx);
        SVar v;
        if (arr.kind == SVar::Kind::RegArray) {
            v.kind = SVar::Kind::Reg;
            v.reg = static_cast<RegId>(arr.reg + (idx - arr.loIdx));
        } else if (arr.kind == SVar::Kind::MemArray) {
            v.kind = SVar::Kind::MemCell;
            v.base = arr.base + static_cast<uint32_t>(idx - arr.loIdx);
        } else {
            ts_.error("'[...]' applies to arrays only");
        }
        return v;
    }

    void
    parseProc()
    {
        std::string name = ts_.expectIdent("procedure name");
        if (ts_.acceptPunct("(")) {
            // the paper's used-variable list: validated, no semantics
            do {
                std::string used = ts_.expectIdent("variable");
                if (!names_.count(used))
                    ts_.error("unknown variable '%s' in proc header",
                              used.c_str());
            } while (ts_.acceptPunct(","));
            ts_.expectPunct(")");
        }
        ts_.expectPunct(";");
        out_.store.defineEntry(
            name, static_cast<uint32_t>(out_.store.size()));
        ts_.expectKeyword("begin");
        parseStatements({"end"});
        ts_.expectKeyword("end");
        ts_.acceptPunct(";");
        emitSeqOnly(SeqKind::Return);
    }

    // ---------- operand handling ----------

    const SVar &
    lookup(const std::string &name)
    {
        auto it = names_.find(name);
        if (it == names_.end())
            ts_.error("undeclared name '%s'", name.c_str());
        return it->second;
    }

    /** Parse one operand reference (no mem[] -- handled separately). */
    ORef
    parseORef()
    {
        if (ts_.peek().kind == Token::Kind::Int ||
            (ts_.peek().kind == Token::Kind::Punct &&
             ts_.peek().text == "-")) {
            bool neg = ts_.acceptPunct("-");
            uint64_t v = ts_.expectInt("integer");
            if (neg)
                v = truncBits(~v + 1, mach_.dataWidth());
            ORef o;
            o.kind = ORef::Kind::Imm;
            o.imm = v;
            return o;
        }
        std::string name = ts_.expectIdent("operand");
        SVar v = lookup(name);
        if (ts_.acceptPunct("[")) {
            int idx = static_cast<int>(ts_.expectInt("index"));
            ts_.expectPunct("]");
            v = arrayElement(v, idx);
        } else if (ts_.acceptPunct(".")) {
            std::string f = ts_.expectIdent("field");
            v = lookup(name + "." + f);
        }
        ORef o;
        switch (v.kind) {
          case SVar::Kind::Reg:
            o.kind = ORef::Kind::Reg;
            o.reg = v.reg;
            break;
          case SVar::Kind::Const:
            o.kind = ORef::Kind::Imm;
            o.imm = v.value;
            break;
          case SVar::Kind::MemCell:
            o.kind = ORef::Kind::MemCell;
            o.addr = v.base;
            break;
          case SVar::Kind::Field:
            o.kind = ORef::Kind::Field;
            o.reg = v.reg;
            o.hi = v.hi;
            o.lo = v.lo;
            break;
          default:
            ts_.error("'%s' cannot be used as an operand",
                      name.c_str());
        }
        return o;
    }

    /** Candidate specs for an op shape; empty if S(M) has none. */
    std::vector<uint16_t>
    candidates(UKind k, RegId dst, RegId a, RegId b, bool use_imm,
               uint64_t imm)
    {
        std::vector<uint16_t> out;
        for (uint16_t idx : mach_.uopsOfKind(k)) {
            BoundOp op;
            op.spec = idx;
            op.dst = dst;
            op.srcA = a;
            op.srcB = b;
            op.useImm = use_imm;
            op.imm = imm;
            if (mach_.checkOperands(op))
                out.push_back(idx);
        }
        return out;
    }

    Elem
    makeElem(UKind k, RegId dst, RegId a, RegId b, bool use_imm,
             uint64_t imm)
    {
        Elem e;
        e.kind = k;
        e.dst = dst;
        e.a = a;
        e.b = b;
        e.useImm = use_imm;
        e.imm = imm;
        e.line = ts_.peek().line;
        e.specs = candidates(k, dst, a, b, use_imm, imm);
        if (e.specs.empty())
            ts_.error("S(%s) has no microoperation for this %s "
                      "statement (operand classes or immediate "
                      "width)", mach_.name().c_str(), uKindName(k));
        return e;
    }

    BoundOp
    bind(const Elem &e, uint16_t spec)
    {
        BoundOp op;
        op.spec = spec;
        op.dst = e.dst;
        op.srcA = e.a;
        op.srcB = e.b;
        op.useImm = e.useImm;
        op.imm = e.imm;
        return op;
    }

    // ---------- word emission ----------

    uint32_t
    emitOps(std::vector<BoundOp> ops)
    {
        MicroInstruction mi;
        mi.ops = std::move(ops);
        uint32_t addr = out_.store.append(std::move(mi));
        lastAttachable_ = addr;
        return addr;
    }

    uint32_t
    emitSeqOnly(SeqKind seq, uint32_t target = 0)
    {
        MicroInstruction mi;
        mi.seq = seq;
        mi.target = target;
        uint32_t addr = out_.store.append(std::move(mi));
        lastAttachable_ = kNoAddr;
        return addr;
    }

    static constexpr uint32_t kNoAddr = 0xffffffffu;

    /** Attach a conditional jump, reusing the last plain word. */
    uint32_t
    emitCondJump(Cond cc, uint32_t target)
    {
        if (lastAttachable_ != kNoAddr &&
            out_.store.word(lastAttachable_).seq == SeqKind::Next) {
            MicroInstruction &w = out_.store.word(lastAttachable_);
            w.seq = SeqKind::CondJump;
            w.cond = cc;
            w.target = target;
            uint32_t a = lastAttachable_;
            lastAttachable_ = kNoAddr;
            return a;
        }
        MicroInstruction mi;
        mi.seq = SeqKind::CondJump;
        mi.cond = cc;
        mi.target = target;
        uint32_t addr = out_.store.append(std::move(mi));
        lastAttachable_ = kNoAddr;
        return addr;
    }

    void
    emitElemsSequential(const std::vector<Elem> &elems)
    {
        for (const Elem &e : elems)
            emitOps({bind(e, e.specs[0])});
    }

    // ---------- elementary statement parsing ----------

    RegId
    requireReg(const ORef &o, const char *what)
    {
        if (o.kind != ORef::Kind::Reg)
            ts_.error("%s must be a register-bound variable", what);
        return o.reg;
    }

    /**
     * Parse an assignment-shaped statement into elementary ops.
     * Compound shapes (fields, memory cells) expand to several; the
     * caller rejects those inside parallel groups.
     */
    std::vector<Elem>
    parseAssignLike()
    {
        std::vector<Elem> out;

        // mem[x] := y
        if (ts_.acceptKeyword("mem")) {
            ts_.expectPunct("[");
            ORef addr = parseORef();
            ts_.expectPunct("]");
            ts_.expectPunct(":=");
            ORef val = parseORef();
            RegId ra = requireReg(addr, "memory address");
            RegId rv = requireReg(val, "stored value");
            out.push_back(makeElem(UKind::MemWrite, kNoReg, ra, rv,
                                   false, 0));
            return out;
        }

        std::string name = ts_.expectIdent("destination");
        SVar v = lookup(name);
        if (ts_.acceptPunct("[")) {
            int idx = static_cast<int>(ts_.expectInt("index"));
            ts_.expectPunct("]");
            v = arrayElement(v, idx);
        } else if (ts_.acceptPunct(".")) {
            std::string f = ts_.expectIdent("field");
            v = lookup(name + "." + f);
        }
        ts_.expectPunct(":=");

        // rhs: mem[x] | operand | operand op operand
        if (ts_.acceptKeyword("mem")) {
            ts_.expectPunct("[");
            ORef addr = parseORef();
            ts_.expectPunct("]");
            RegId ra = requireReg(addr, "memory address");
            if (v.kind != SVar::Kind::Reg)
                ts_.error("memory reads target registers");
            out.push_back(makeElem(UKind::MemRead, v.reg, ra, kNoReg,
                                   false, 0));
            return out;
        }

        ORef a = parseORef();
        std::optional<UKind> op = parseBinOp();
        std::optional<ORef> b;
        if (op)
            b = parseORef();

        // Compound destinations.
        if (v.kind == SVar::Kind::MemCell) {
            if (op || a.kind != ORef::Kind::Reg)
                ts_.error("stores to memory cells take a single "
                          "register source");
            emitMemCellWrite(v.base, a.reg, out);
            return out;
        }
        if (v.kind == SVar::Kind::Field) {
            if (op || a.kind != ORef::Kind::Reg)
                ts_.error("field assignment takes a single register "
                          "source");
            emitFieldWrite(v, a.reg, out);
            return out;
        }
        if (v.kind != SVar::Kind::Reg)
            ts_.error("assignment destination must be storage");

        RegId dst = v.reg;
        if (!op) {
            switch (a.kind) {
              case ORef::Kind::Reg:
                out.push_back(makeElem(UKind::Mov, dst, a.reg, kNoReg,
                                       false, 0));
                break;
              case ORef::Kind::Imm:
                out.push_back(makeElem(UKind::Ldi, dst, kNoReg,
                                       kNoReg, false, a.imm));
                break;
              case ORef::Kind::MemCell:
                emitMemCellRead(dst, a.addr, out);
                break;
              case ORef::Kind::Field:
                emitFieldRead(dst, a, out);
                break;
            }
            return out;
        }

        // Binary elementary statement.
        if (a.kind == ORef::Kind::MemCell || a.kind == ORef::Kind::Field ||
            (b && (b->kind == ORef::Kind::MemCell ||
                   b->kind == ORef::Kind::Field))) {
            ts_.error("operands of a binary statement must be "
                      "registers or constants (load fields and "
                      "memory cells first)");
        }
        if (a.kind == ORef::Kind::Imm)
            ts_.error("the left operand must be a register");
        if (b->kind == ORef::Kind::Imm) {
            out.push_back(makeElem(*op, dst, a.reg, kNoReg, true,
                                   b->imm));
        } else {
            out.push_back(makeElem(*op, dst, a.reg, b->reg, false,
                                   0));
        }
        return out;
    }

    std::optional<UKind>
    parseBinOp()
    {
        if (ts_.acceptPunct("+")) return UKind::Add;
        if (ts_.acceptPunct("-")) return UKind::Sub;
        if (ts_.acceptPunct("&")) return UKind::And;
        if (ts_.acceptPunct("|")) return UKind::Or;
        if (ts_.acceptKeyword("xor")) return UKind::Xor;
        if (ts_.acceptKeyword("shl")) return UKind::Shl;
        if (ts_.acceptKeyword("shr")) return UKind::Shr;
        if (ts_.acceptKeyword("sar")) return UKind::Sar;
        if (ts_.acceptKeyword("rol")) return UKind::Rol;
        if (ts_.acceptKeyword("ror")) return UKind::Ror;
        return std::nullopt;
    }

    // Compound expansions (the temporaries sec. 2.1.7 predicts).

    RegId
    scratch(uint32_t classes, std::vector<RegId> avoid = {})
    {
        return mach_.scratchFor(classes ? classes : ~0u, avoid);
    }

    void
    emitMemCellRead(RegId dst, uint32_t addr, std::vector<Elem> &out)
    {
        const MicroOpSpec &rd =
            mach_.uop(mach_.uopsOfKind(UKind::MemRead).at(0));
        RegId a = (mach_.reg(dst).classes & rd.srcAClasses)
                      ? dst
                      : scratch(rd.srcAClasses);
        out.push_back(makeElem(UKind::Ldi, a, kNoReg, kNoReg, false,
                               addr));
        RegId d = (mach_.reg(dst).classes & rd.dstClasses)
                      ? dst
                      : scratch(rd.dstClasses, {a});
        out.push_back(makeElem(UKind::MemRead, d, a, kNoReg, false,
                               0));
        if (d != dst)
            out.push_back(makeElem(UKind::Mov, dst, d, kNoReg, false,
                                   0));
    }

    void
    emitMemCellWrite(uint32_t addr, RegId src, std::vector<Elem> &out)
    {
        const MicroOpSpec &wr =
            mach_.uop(mach_.uopsOfKind(UKind::MemWrite).at(0));
        RegId data = src;
        if (wr.srcBClasses &&
            !(mach_.reg(src).classes & wr.srcBClasses)) {
            data = scratch(wr.srcBClasses, {src});
            out.push_back(makeElem(UKind::Mov, data, src, kNoReg,
                                   false, 0));
        }
        RegId a = scratch(wr.srcAClasses, {data, src});
        out.push_back(makeElem(UKind::Ldi, a, kNoReg, kNoReg, false,
                               addr));
        out.push_back(makeElem(UKind::MemWrite, kNoReg, a, data,
                               false, 0));
    }

    void
    emitFieldRead(RegId dst, const ORef &f, std::vector<Elem> &out)
    {
        unsigned len = f.hi - f.lo + 1;
        if (f.lo) {
            out.push_back(makeElem(UKind::Shr, dst, f.reg, kNoReg,
                                   true, f.lo));
            out.push_back(makeElem(UKind::And, dst, dst, kNoReg, true,
                                   bitMask(len)));
        } else {
            out.push_back(makeElem(UKind::And, dst, f.reg, kNoReg,
                                   true, bitMask(len)));
        }
    }

    void
    emitFieldWrite(const SVar &f, RegId src, std::vector<Elem> &out)
    {
        unsigned len = f.hi - f.lo + 1;
        unsigned w = mach_.dataWidth();
        uint64_t clear = truncBits(~(bitMask(len) << f.lo), w);
        RegId t = scratch(0, {f.reg, src});
        out.push_back(makeElem(UKind::And, f.reg, f.reg, kNoReg, true,
                               clear));
        if (f.lo)
            out.push_back(makeElem(UKind::Shl, t, src, kNoReg, true,
                                   f.lo));
        else
            out.push_back(makeElem(UKind::Mov, t, src, kNoReg, false,
                                   0));
        out.push_back(makeElem(UKind::And, t, t, kNoReg, true,
                               truncBits(bitMask(len) << f.lo, w)));
        out.push_back(makeElem(UKind::Or, f.reg, f.reg, t, false, 0));
    }

    // ---------- parallel composition ----------

    /**
     * Choose specs for @p groups (one word). Each inner vector is a
     * cobegin group (single statements are singleton groups).
     * Requirements: within a group all phases equal; across groups
     * strictly increasing (when @p phased ); word legal; data
     * dependences respect intra-word placement rules.
     */
    std::vector<BoundOp>
    composeWord(const std::vector<std::vector<Elem>> &groups,
                bool phased, int line)
    {
        std::vector<const Elem *> elems;
        for (const auto &g : groups) {
            for (const Elem &e : g)
                elems.push_back(&e);
        }
        size_t n = elems.size();
        std::vector<size_t> choice(n, 0);
        std::string last_err = "no candidate assignment";

        auto phaseOk = [&](const std::vector<BoundOp> &ops) {
            size_t k = 0;
            int prev_phase = 0;
            for (const auto &g : groups) {
                int ph = -1;
                for (size_t i = 0; i < g.size(); ++i, ++k) {
                    int p = mach_.uop(ops[k].spec).phase;
                    if (ph < 0)
                        ph = p;
                    else if (p != ph)
                        return false;   // cobegin: same phase
                }
                if (phased && ph <= prev_phase)
                    return false;       // cocycle: increasing
                if (!phased && prev_phase && ph != prev_phase)
                    return false;       // plain cobegin: one phase
                prev_phase = ph;
            }
            return true;
        };

        while (true) {
            std::vector<BoundOp> ops;
            for (size_t i = 0; i < n; ++i)
                ops.push_back(bind(*elems[i], elems[i]->specs[choice[i]]));

            // No sequential dependence check here: cobegin means
            // parallel execution (reads precede writes within the
            // phase) and cocycle ordering is enforced by the
            // strictly increasing phase pattern. The word-legality
            // check still rejects double writes and resource
            // conflicts.
            std::string why;
            if (phaseOk(ops) && mach_.wordLegal(ops, true, &why))
                return ops;
            if (!why.empty())
                last_err = why;

            // next combination
            size_t i = 0;
            while (i < n && ++choice[i] >= elems[i]->specs.size()) {
                choice[i] = 0;
                ++i;
            }
            if (i >= n)
                break;
        }
        fatal("s*: line %d: statements cannot share one "
              "microinstruction on %s: %s", line,
              mach_.name().c_str(), last_err.c_str());
    }

    /** cobegin ... coend (stand-alone or inside cocycle) */
    std::vector<Elem>
    parseCobeginGroup()
    {
        std::vector<Elem> group;
        while (true) {
            auto elems = parseAssignLike();
            if (elems.size() != 1)
                ts_.error("compound statements are not allowed in "
                          "cobegin");
            group.push_back(elems[0]);
            if (!ts_.acceptPunct(";"))
                break;
            if (ts_.peek().kind == Token::Kind::Ident &&
                ts_.peek().text == "coend")
                break;
        }
        ts_.expectKeyword("coend");
        return group;
    }

    void
    parseCocycle()
    {
        int line = ts_.peek().line;
        std::vector<std::vector<Elem>> groups;
        while (true) {
            if (ts_.acceptKeyword("cobegin")) {
                groups.push_back(parseCobeginGroup());
            } else {
                auto elems = parseAssignLike();
                if (elems.size() != 1)
                    ts_.error("compound statements are not allowed "
                              "in cocycle");
                groups.push_back({elems[0]});
            }
            if (!ts_.acceptPunct(";"))
                break;
            if (ts_.peek().kind == Token::Kind::Ident &&
                ts_.peek().text == "end")
                break;
        }
        ts_.expectKeyword("end");
        ts_.acceptPunct(";");
        emitOps(composeWord(groups, /*phased=*/true, line));
    }

    void
    parseDur()
    {
        int line = ts_.peek().line;
        auto s0 = parseAssignLike();
        if (s0.size() != 1 || (s0[0].kind != UKind::MemRead &&
                               s0[0].kind != UKind::MemWrite)) {
            ts_.error("dur takes a memory operation");
        }
        ts_.expectKeyword("do");

        // Overlapped memory op in its own word.
        BoundOp op = bind(s0[0], s0[0].specs[0]);
        op.overlap = true;
        emitOps({op});
        uint32_t issued = static_cast<uint32_t>(out_.store.size());

        parseStatements({"end"});
        ts_.expectKeyword("end");
        ts_.acceptPunct(";");

        uint32_t span = static_cast<uint32_t>(out_.store.size()) -
                        issued;
        if (span + 1 < mach_.memLatency())
            fatal("s*: line %d: dur body is %u words but the memory "
                  "operation needs %u cycles", line, span,
                  mach_.memLatency());
        // Static hazard check: the overlapped destination must not
        // be referenced before the operation completes.
        if (s0[0].kind == UKind::MemRead) {
            RegId d = s0[0].dst;
            uint32_t unsafe_end = issued + mach_.memLatency() - 1;
            for (uint32_t a = issued;
                 a < unsafe_end && a < out_.store.size(); ++a) {
                for (const BoundOp &o : out_.store.word(a).ops) {
                    if (o.dst == d || o.srcA == d || o.srcB == d)
                        fatal("s*: line %d: '%s' is referenced "
                              "before the overlapped read completes",
                              line, mach_.reg(d).name.c_str());
                }
            }
        }
    }

    // ---------- conditions ----------

    /** Parse a test; returns the condition that is TRUE when taken. */
    Cond
    parseTest()
    {
        static const std::pair<const char *, Cond> flags[] = {
            {"uf", Cond::UF}, {"nouf", Cond::NoUF},
            {"carry", Cond::C}, {"nocarry", Cond::NC},
            {"negative", Cond::Neg}, {"nonneg", Cond::NonNeg},
            {"overflow", Cond::Ovf}, {"zero", Cond::Z},
            {"nonzero", Cond::NZ}, {"intp", Cond::Int},
            {"nointp", Cond::NoInt},
        };
        for (auto &[kw, cc] : flags) {
            if (ts_.acceptKeyword(kw))
                return cc;
        }

        ORef a = parseORef();
        std::string rel;
        if (ts_.acceptPunct("=")) rel = "=";
        else if (ts_.acceptPunct("!=")) rel = "!=";
        else if (ts_.acceptPunct("<")) rel = "<";
        else if (ts_.acceptPunct(">=")) rel = ">=";
        else ts_.error("expected =, !=, <, >=");
        ORef b = parseORef();

        RegId ra = requireReg(a, "compared value");
        Elem cmp = b.kind == ORef::Kind::Imm
                       ? makeElem(UKind::Cmp, kNoReg, ra, kNoReg,
                                  true, b.imm)
                       : makeElem(UKind::Cmp, kNoReg, ra,
                                  requireReg(b, "comparand"), false,
                                  0);
        emitOps({bind(cmp, cmp.specs[0])});
        if (rel == "=")
            return Cond::Z;
        if (rel == "!=")
            return Cond::NZ;
        if (rel == "<")
            return Cond::NC;
        return Cond::C;
    }

    static Cond
    negate(Cond c)
    {
        switch (c) {
          case Cond::Z: return Cond::NZ;
          case Cond::NZ: return Cond::Z;
          case Cond::Neg: return Cond::NonNeg;
          case Cond::NonNeg: return Cond::Neg;
          case Cond::C: return Cond::NC;
          case Cond::NC: return Cond::C;
          case Cond::UF: return Cond::NoUF;
          case Cond::NoUF: return Cond::UF;
          case Cond::Int: return Cond::NoInt;
          case Cond::NoInt: return Cond::Int;
          default:
            fatal("s*: condition cannot be negated");
        }
    }

    // ---------- assertions ----------

    VExpr
    parseVOr()
    {
        VExpr e = parseVAnd();
        while (ts_.acceptKeyword("or"))
            e = VExpr::bin(VExpr::Op::LOr, std::move(e), parseVAnd());
        return e;
    }

    VExpr
    parseVAnd()
    {
        VExpr e = parseVRel();
        while (ts_.acceptKeyword("and"))
            e = VExpr::bin(VExpr::Op::LAnd, std::move(e),
                           parseVRel());
        return e;
    }

    VExpr
    parseVRel()
    {
        VExpr e = parseVSum();
        struct R { const char *p; VExpr::Op op; };
        static const R rels[] = {
            {"=", VExpr::Op::Eq}, {"!=", VExpr::Op::Ne},
            {"<=", VExpr::Op::Le}, {">=", VExpr::Op::Ge},
            {"<", VExpr::Op::Lt}, {">", VExpr::Op::Gt},
        };
        for (const R &r : rels) {
            if (ts_.acceptPunct(r.p))
                return VExpr::bin(r.op, std::move(e), parseVSum());
        }
        return e;
    }

    VExpr
    parseVSum()
    {
        VExpr e = parseVPrimary();
        while (true) {
            VExpr::Op op;
            if (ts_.acceptPunct("+")) op = VExpr::Op::Add;
            else if (ts_.acceptPunct("-")) op = VExpr::Op::Sub;
            else if (ts_.acceptPunct("&")) op = VExpr::Op::And;
            else if (ts_.acceptPunct("|")) op = VExpr::Op::Or;
            else if (ts_.acceptKeyword("xor")) op = VExpr::Op::Xor;
            else if (ts_.acceptKeyword("shl")) op = VExpr::Op::Shl;
            else if (ts_.acceptKeyword("shr")) op = VExpr::Op::Shr;
            else break;
            e = VExpr::bin(op, std::move(e), parseVPrimary());
        }
        return e;
    }

    VExpr
    parseVPrimary()
    {
        if (ts_.acceptKeyword("not"))
            return VExpr::negation(parseVPrimary());
        if (ts_.acceptPunct("(")) {
            VExpr e = parseVOr();
            ts_.expectPunct(")");
            return e;
        }
        if (ts_.peek().kind == Token::Kind::Int)
            return VExpr::constant(ts_.next().value);
        std::string name = ts_.expectIdent("variable or number");
        const SVar &v = lookup(name);
        if (v.kind == SVar::Kind::Const)
            return VExpr::constant(v.value);
        if (v.kind != SVar::Kind::Reg)
            ts_.error("assertions range over register variables and "
                      "constants");
        return VExpr::variable(name);
    }

    // ---------- statements ----------

    bool
    peekIsOneOf(const std::vector<std::string> &kws)
    {
        if (ts_.peek().kind != Token::Kind::Ident)
            return false;
        for (const std::string &k : kws) {
            if (ts_.peek().text == k)
                return true;
        }
        return false;
    }

    void
    parseStatements(const std::vector<std::string> &stop)
    {
        while (!peekIsOneOf(stop))
            parseStatement();
    }

    void
    parseStatement()
    {
        if (ts_.acceptKeyword("cocycle")) {
            parseCocycle();
            return;
        }
        if (ts_.acceptKeyword("cobegin")) {
            int line = ts_.peek().line;
            std::vector<Elem> g = parseCobeginGroup();
            ts_.acceptPunct(";");
            emitOps(composeWord({g}, /*phased=*/false, line));
            return;
        }
        if (ts_.acceptKeyword("dur")) {
            parseDur();
            return;
        }
        if (ts_.acceptKeyword("region")) {
            // S(M) never reorders, so region is already the default;
            // the construct is accepted for schema fidelity.
            parseStatements({"end"});
            ts_.expectKeyword("end");
            ts_.acceptPunct(";");
            return;
        }
        if (ts_.acceptKeyword("if")) {
            std::vector<uint32_t> to_end;
            while (true) {
                Cond cc = parseTest();
                ts_.expectKeyword("then");
                uint32_t skip = emitCondJump(negate(cc), 0);
                parseStatements({"elif", "else", "fi"});
                if (ts_.acceptKeyword("fi")) {
                    out_.store.word(skip).target =
                        static_cast<uint32_t>(out_.store.size());
                    break;
                }
                to_end.push_back(emitSeqOnly(SeqKind::Jump));
                out_.store.word(skip).target =
                    static_cast<uint32_t>(out_.store.size());
                if (ts_.acceptKeyword("elif"))
                    continue;
                ts_.expectKeyword("else");
                parseStatements({"fi"});
                ts_.expectKeyword("fi");
                break;
            }
            ts_.acceptPunct(";");
            uint32_t end = static_cast<uint32_t>(out_.store.size());
            for (uint32_t a : to_end)
                out_.store.word(a).target = end;
            lastAttachable_ = kNoAddr;
            return;
        }
        if (ts_.acceptKeyword("while")) {
            uint32_t hdr = static_cast<uint32_t>(out_.store.size());
            lastAttachable_ = kNoAddr;
            Cond cc = parseTest();
            ts_.expectKeyword("do");
            uint32_t exit_jump = emitCondJump(negate(cc), 0);
            parseStatements({"od"});
            ts_.expectKeyword("od");
            ts_.acceptPunct(";");
            emitSeqOnly(SeqKind::Jump, hdr);
            out_.store.word(exit_jump).target =
                static_cast<uint32_t>(out_.store.size());
            lastAttachable_ = kNoAddr;
            return;
        }
        if (ts_.acceptKeyword("repeat")) {
            uint32_t start = static_cast<uint32_t>(out_.store.size());
            lastAttachable_ = kNoAddr;
            parseStatements({"until"});
            ts_.expectKeyword("until");
            Cond cc = parseTest();
            ts_.expectPunct(";");
            emitCondJump(negate(cc), start);
            return;
        }
        if (ts_.acceptKeyword("call")) {
            std::string name = ts_.expectIdent("procedure");
            endStmt();
            uint32_t addr = emitSeqOnly(SeqKind::Call);
            callFixups_.emplace_back(addr, name);
            return;
        }
        if (ts_.acceptKeyword("assert")) {
            SstarAssertion a;
            a.line = ts_.peek().line;
            a.expr = parseVOr();
            a.addr = static_cast<uint32_t>(out_.store.size());
            endStmt();
            out_.assertions.push_back(std::move(a));
            return;
        }
        if (ts_.acceptKeyword("push")) {
            std::string sname = ts_.expectIdent("stack");
            const SVar &s = lookup(sname);
            if (s.kind != SVar::Kind::Stack)
                ts_.error("'%s' is not a stack", sname.c_str());
            ts_.expectPunct(",");
            ORef v = parseORef();
            Elem e = makeElem(UKind::Push, kNoReg, s.reg,
                              requireReg(v, "pushed value"), false,
                              0);
            endStmt();
            emitOps({bind(e, e.specs[0])});
            return;
        }
        if (ts_.acceptKeyword("pop")) {
            ORef d = parseORef();
            ts_.expectPunct(",");
            std::string sname = ts_.expectIdent("stack");
            const SVar &s = lookup(sname);
            if (s.kind != SVar::Kind::Stack)
                ts_.error("'%s' is not a stack", sname.c_str());
            Elem e = makeElem(UKind::Pop,
                              requireReg(d, "pop destination"),
                              s.reg, kNoReg, false, 0);
            endStmt();
            emitOps({bind(e, e.specs[0])});
            return;
        }

        auto elems = parseAssignLike();
        endStmt();
        emitElemsSequential(elems);
    }

    /** ';' separator, elidable directly before a closing keyword. */
    void
    endStmt()
    {
        if (ts_.acceptPunct(";"))
            return;
        if (peekIsOneOf({"end", "od", "until", "elif", "else", "fi",
                         "coend"}))
            return;
        ts_.error("expected ';'");
    }

    const MachineDescription &mach_;
    SstarProgram out_;
    TokenStream ts_;
    std::string progName_;
    std::unordered_map<std::string, SVar> names_;
    std::vector<std::pair<uint32_t, std::string>> callFixups_;
    uint32_t lastAttachable_ = kNoAddr;
};

} // namespace

SstarProgram
compileSstar(const std::string &source, const MachineDescription &mach)
{
    SstarCompiler c(source, mach);
    return c.run();
}

// ----------------------------------------------------------------
// Frontend registration (see driver/frontend.hh).
// ----------------------------------------------------------------

namespace frontend_anchor {
extern const char sstar = 0;
} // namespace frontend_anchor

namespace {

class SstarFrontend final : public Frontend
{
  public:
    const char *name() const override { return "sstar"; }
    const char *describe() const override
    {
        return "S*: machine-bound schema with explicit parallelism "
               "and assertions (Dasgupta 1978)";
    }
    bool producesMir() const override { return false; }
    Translation
    translate(const std::string &source,
              const MachineDescription &mach,
              const FrontendOptions &) const override
    {
        Translation t;
        t.direct = compileSstar(source, mach);
        return t;
    }
};

const SstarFrontend sstarFrontend;
const FrontendRegistry::Registrar reg(&sstarFrontend);

} // namespace

} // namespace uhll
