/**
 * @file
 * SIMPL -- "Single Identity Micro Programming Language"
 * (Ramamoorthy & Tsuchiya, 1974; survey sec. 2.2.1).
 *
 * Sequential, procedural microprogramming with variables identified
 * with machine registers, one-operator expressions, if/while/case
 * control structure and no goto. The single-identity principle --
 * source order distinguishes the values a register carries, data
 * dependence alone orders execution -- is realised by the shared
 * dependence analysis: compaction extracts exactly the parallelism
 * single identity licenses.
 *
 * Syntax (after the paper's worked example):
 *
 *     program fpmul;
 *     equiv acc = r4;            # alias for a machine register
 *     const m3 = 0x7FFE;         # named constant
 *     begin
 *         r1 & m3 -> acc;
 *         comment any text up to the semicolon;
 *         while r2 != 0 do
 *         begin
 *             acc ^ -1 -> acc;   # linear shift, negative = right
 *             r2 ^ -1 -> r2;
 *             if uf = 1 then r1 + acc -> acc;
 *         end;
 *         case r5 of
 *           0: r1 -> r6;
 *           1: r2 -> r6;
 *         esac;
 *         read r7, r6;           # r7 := mem[r6]
 *         write r6, r7;          # mem[r6] := r7
 *     end
 *
 * Operators: + - & | xor, ^ (linear shift), ^^ (circular shift).
 * Conditions: operand relop operand (= != < >=), uf = 0|1.
 */

#ifndef UHLL_LANG_SIMPL_SIMPL_HH
#define UHLL_LANG_SIMPL_SIMPL_HH

#include <string>

#include "machine/machine_desc.hh"
#include "mir/mir.hh"

namespace uhll {

/**
 * Parse a SIMPL program into MIR. All variables are pre-bound to
 * registers of @p mach (the SIMPL variable model). The function is
 * named after the program. fatal() on any error.
 */
MirProgram parseSimpl(const std::string &source,
                      const MachineDescription &mach);

} // namespace uhll

#endif // UHLL_LANG_SIMPL_SIMPL_HH
