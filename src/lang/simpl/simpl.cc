#include "lang/simpl/simpl.hh"

#include <unordered_map>

#include "driver/frontend.hh"
#include "lang/common/lexer.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** An operand: a register-bound vreg or a constant. */
struct Operand {
    VReg reg = kNoVReg;
    uint64_t imm = 0;
    bool isImm = false;
};

class SimplParser
{
  public:
    SimplParser(const std::string &source,
                const MachineDescription &mach)
        : mach_(mach),
          ts_(lex(source,
                  [] {
                      LexOptions o;
                      o.hashComments = true;
                      o.foldCase = true;
                      return o;
                  }()),
              "simpl")
    {}

    MirProgram
    run()
    {
        ts_.expectKeyword("program");
        std::string name = ts_.expectIdent("program name");
        ts_.expectPunct(";");
        fn_ = prog_.addFunction(name);

        while (true) {
            if (ts_.acceptKeyword("equiv")) {
                std::string alias = ts_.expectIdent("alias");
                ts_.expectPunct("=");
                std::string phys =
                    ts_.expectIdent("machine register");
                auto r = mach_.findRegister(phys);
                if (!r)
                    ts_.error("machine %s has no register '%s'",
                              mach_.name().c_str(), phys.c_str());
                if (aliases_.count(alias) || consts_.count(alias))
                    ts_.error("duplicate name '%s'", alias.c_str());
                aliases_.emplace(alias, *r);
                ts_.expectPunct(";");
            } else if (ts_.acceptKeyword("const")) {
                std::string cname = ts_.expectIdent("constant name");
                ts_.expectPunct("=");
                uint64_t v = parseSignedInt();
                if (aliases_.count(cname) || consts_.count(cname))
                    ts_.error("duplicate name '%s'", cname.c_str());
                consts_.emplace(cname, v);
                ts_.expectPunct(";");
            } else {
                break;
            }
        }

        curBlock_ = prog_.func(fn_).newBlock();
        parseBlock();
        if (!ts_.atEnd())
            ts_.error("unexpected trailing input");
        cur().term.kind = Terminator::Kind::Halt;
        prog_.validate();
        return std::move(prog_);
    }

  private:
    BasicBlock &
    cur()
    {
        return prog_.func(fn_).blocks[curBlock_];
    }

    uint32_t
    newBlock()
    {
        return prog_.func(fn_).newBlock();
    }

    /**
     * Statement separator: a semicolon, optionally elided directly
     * before 'else', 'end' or 'esac' (ALGOL style).
     */
    void
    endStmt()
    {
        if (ts_.acceptPunct(";"))
            return;
        const Token &t = ts_.peek();
        if (t.kind == Token::Kind::Ident &&
            (t.text == "else" || t.text == "end" || t.text == "esac"))
            return;
        ts_.error("expected ';'");
    }

    uint64_t
    parseSignedInt()
    {
        bool neg = ts_.acceptPunct("-");
        uint64_t v = ts_.expectInt("integer");
        if (neg)
            v = truncBits(~v + 1, mach_.dataWidth());
        return v;
    }

    /** The (lazily created) vreg bound to machine register @p r. */
    VReg
    vregForReg(RegId r)
    {
        auto it = regVRegs_.find(r);
        if (it != regVRegs_.end())
            return it->second;
        VReg v = prog_.newVReg(mach_.reg(r).name);
        prog_.bind(v, r);
        prog_.markObservable(v);
        regVRegs_.emplace(r, v);
        return v;
    }

    Operand
    parseOperand()
    {
        if (ts_.peek().kind == Token::Kind::Int ||
            (ts_.peek().kind == Token::Kind::Punct &&
             ts_.peek().text == "-")) {
            Operand o;
            o.isImm = true;
            o.imm = parseSignedInt();
            return o;
        }
        std::string name = ts_.expectIdent("operand");
        if (auto it = consts_.find(name); it != consts_.end()) {
            Operand o;
            o.isImm = true;
            o.imm = it->second;
            return o;
        }
        Operand o;
        o.reg = vregForName(name);
        return o;
    }

    VReg
    vregForName(const std::string &name)
    {
        if (auto it = aliases_.find(name); it != aliases_.end())
            return vregForReg(it->second);
        auto r = mach_.findRegister(name);
        if (!r)
            ts_.error("'%s' is neither a register, an alias nor a "
                      "constant of %s", name.c_str(),
                      mach_.name().c_str());
        return vregForReg(*r);
    }

    /** Materialise an operand into a vreg (temp for constants). */
    VReg
    asVReg(const Operand &o)
    {
        if (!o.isImm)
            return o.reg;
        VReg t = prog_.newVReg();
        cur().insts.push_back(mi::ldi(t, o.imm));
        return t;
    }

    /** Parse "expr -> dest ;" with expr of at most one operator. */
    void
    parseAssignment()
    {
        Operand a = parseOperand();

        UKind op = UKind::Nop;
        bool have_op = false;
        bool shift = false;
        bool circular = false;
        if (ts_.acceptPunct("+")) { op = UKind::Add; have_op = true; }
        else if (ts_.acceptPunct("-")) { op = UKind::Sub; have_op = true; }
        else if (ts_.acceptPunct("&")) { op = UKind::And; have_op = true; }
        else if (ts_.acceptPunct("|")) { op = UKind::Or; have_op = true; }
        else if (ts_.acceptKeyword("xor")) { op = UKind::Xor; have_op = true; }
        else if (ts_.acceptPunct("^^")) { shift = circular = have_op = true; }
        else if (ts_.acceptPunct("^")) { shift = have_op = true; }

        Operand b;
        if (have_op)
            b = parseOperand();
        ts_.expectPunct("->");
        VReg dst = vregForName(ts_.expectIdent("destination"));
        endStmt();

        if (!have_op) {
            if (a.isImm)
                cur().insts.push_back(mi::ldi(dst, a.imm));
            else
                cur().insts.push_back(mi::mov(dst, a.reg));
            return;
        }

        if (shift) {
            // ^ n shifts left for positive n, right for negative;
            // ^^ is the circular variant.
            if (!b.isImm)
                ts_.error("shift amounts must be constants in SIMPL");
            unsigned w = mach_.dataWidth();
            int64_t sn = signExtend(b.imm, w);
            bool right = sn < 0;
            uint64_t n = static_cast<uint64_t>(right ? -sn : sn);
            UKind k = circular
                          ? (right ? UKind::Ror : UKind::Rol)
                          : (right ? UKind::Shr : UKind::Shl);
            cur().insts.push_back(
                mi::binopImm(k, dst, asVReg(a), n));
            return;
        }

        VReg va = asVReg(a);
        if (b.isImm)
            cur().insts.push_back(mi::binopImm(op, dst, va, b.imm));
        else
            cur().insts.push_back(mi::binop(op, dst, va, b.reg));
    }

    /**
     * Parse a condition; emits a compare when needed.
     * @return the branch condition for the true path.
     */
    Cond
    parseCond()
    {
        // Flag condition: uf = 0|1.
        if (ts_.peek().kind == Token::Kind::Ident &&
            ts_.peek().text == "uf") {
            ts_.next();
            ts_.expectPunct("=");
            uint64_t v = ts_.expectInt("0 or 1");
            if (v > 1)
                ts_.error("uf compares against 0 or 1");
            return v ? Cond::UF : Cond::NoUF;
        }

        Operand a = parseOperand();
        std::string rel;
        if (ts_.acceptPunct("=")) rel = "=";
        else if (ts_.acceptPunct("!=") || ts_.acceptPunct("<>"))
            rel = "!=";
        else if (ts_.acceptPunct("<")) rel = "<";
        else if (ts_.acceptPunct(">=")) rel = ">=";
        else ts_.error("expected relational operator");
        Operand b = parseOperand();

        MInst c;
        c.op = UKind::Cmp;
        c.a = asVReg(a);
        if (b.isImm) {
            c.useImm = true;
            c.imm = b.imm;
        } else {
            c.b = b.reg;
        }
        cur().insts.push_back(c);
        if (rel == "=")
            return Cond::Z;
        if (rel == "!=")
            return Cond::NZ;
        if (rel == "<")
            return Cond::NC;
        return Cond::C;
    }

    void
    parseStatement()
    {
        if (ts_.acceptKeyword("comment")) {
            while (!ts_.acceptPunct(";")) {
                if (ts_.atEnd())
                    ts_.error("unterminated comment");
                ts_.next();
            }
            return;
        }
        if (ts_.peek().kind == Token::Kind::Ident &&
            ts_.peek().text == "begin") {
            parseBlock();
            ts_.acceptPunct(";");
            return;
        }
        if (ts_.acceptKeyword("while")) {
            uint32_t hdr = newBlock();
            uint32_t body = newBlock();
            uint32_t exit = newBlock();
            cur().term = jumpTerm(hdr);
            curBlock_ = hdr;
            Cond cc = parseCond();
            ts_.expectKeyword("do");
            cur().term.kind = Terminator::Kind::Branch;
            cur().term.cc = cc;
            cur().term.target = body;
            cur().term.fallthrough = exit;
            curBlock_ = body;
            parseStatement();
            cur().term = jumpTerm(hdr);
            curBlock_ = exit;
            ts_.acceptPunct(";");
            return;
        }
        if (ts_.acceptKeyword("if")) {
            Cond cc = parseCond();
            ts_.expectKeyword("then");
            uint32_t then_b = newBlock();
            uint32_t join = newBlock();
            uint32_t cond_b = curBlock_;
            curBlock_ = then_b;
            parseStatement();
            uint32_t then_end = curBlock_;
            uint32_t else_target = join;
            if (ts_.acceptKeyword("else")) {
                uint32_t else_b = newBlock();
                else_target = else_b;
                curBlock_ = else_b;
                parseStatement();
                cur().term = jumpTerm(join);
            }
            prog_.func(fn_).blocks[cond_b].term.kind =
                Terminator::Kind::Branch;
            prog_.func(fn_).blocks[cond_b].term.cc = cc;
            prog_.func(fn_).blocks[cond_b].term.target = then_b;
            prog_.func(fn_).blocks[cond_b].term.fallthrough =
                else_target;
            prog_.func(fn_).blocks[then_end].term =
                jumpTerm(join);
            curBlock_ = join;
            ts_.acceptPunct(";");
            return;
        }
        if (ts_.acceptKeyword("for")) {
            // for v = e1 to e2 do S  ==  v := e1; while v != e2+1 ...
            // (the paper lists for-statements as "probably" present;
            // upward-counting inclusive range)
            VReg v = vregForName(ts_.expectIdent("loop variable"));
            ts_.expectPunct("=");
            Operand from = parseOperand();
            ts_.expectKeyword("to");
            Operand to = parseOperand();
            ts_.expectKeyword("do");

            if (from.isImm)
                cur().insts.push_back(mi::ldi(v, from.imm));
            else
                cur().insts.push_back(mi::mov(v, from.reg));
            VReg limit;
            if (to.isImm) {
                limit = prog_.newVReg();
                cur().insts.push_back(mi::ldi(limit, to.imm));
            } else {
                limit = to.reg;
            }

            uint32_t hdr = newBlock();
            uint32_t body = newBlock();
            uint32_t exit = newBlock();
            cur().term = jumpTerm(hdr);
            curBlock_ = hdr;
            // exit once v > limit (inclusive upper bound)
            cur().insts.push_back(mi::cmp(limit, v));
            cur().term.kind = Terminator::Kind::Branch;
            cur().term.cc = Cond::NC;   // limit < v
            cur().term.target = exit;
            cur().term.fallthrough = body;
            curBlock_ = body;
            parseStatement();
            cur().insts.push_back(mi::binopImm(UKind::Add, v, v, 1));
            cur().term = jumpTerm(hdr);
            curBlock_ = exit;
            ts_.acceptPunct(";");
            return;
        }
        if (ts_.acceptKeyword("case")) {
            Operand sel = parseOperand();
            if (sel.isImm)
                ts_.error("case selector must be a register");
            ts_.expectKeyword("of");
            std::vector<uint32_t> arm_blocks;
            uint32_t join = newBlock();
            uint32_t case_b = curBlock_;
            uint64_t expected = 0;
            while (!ts_.acceptKeyword("esac")) {
                uint64_t idx = ts_.expectInt("arm index");
                if (idx != expected)
                    ts_.error("case arms must be 0,1,2,... in order");
                ++expected;
                ts_.expectPunct(":");
                uint32_t b = newBlock();
                arm_blocks.push_back(b);
                curBlock_ = b;
                parseStatement();
                cur().term = jumpTerm(join);
            }
            if (arm_blocks.empty())
                ts_.error("case needs at least one arm");
            unsigned bits = 1;
            while ((1u << bits) < arm_blocks.size())
                ++bits;
            Terminator t;
            t.kind = Terminator::Kind::Case;
            t.caseReg = sel.reg;
            t.caseMask = bitMask(bits);
            for (size_t i = 0; i < (size_t(1) << bits); ++i) {
                t.caseTargets.push_back(i < arm_blocks.size()
                                            ? arm_blocks[i]
                                            : join);
            }
            prog_.func(fn_).blocks[case_b].term = std::move(t);
            curBlock_ = join;
            ts_.acceptPunct(";");
            return;
        }
        if (ts_.acceptKeyword("read")) {
            VReg d = vregForName(ts_.expectIdent("destination"));
            ts_.expectPunct(",");
            Operand addr = parseOperand();
            endStmt();
            cur().insts.push_back(mi::load(d, asVReg(addr)));
            return;
        }
        if (ts_.acceptKeyword("write")) {
            Operand addr = parseOperand();
            ts_.expectPunct(",");
            Operand val = parseOperand();
            endStmt();
            cur().insts.push_back(
                mi::store(asVReg(addr), asVReg(val)));
            return;
        }
        parseAssignment();
    }

    void
    parseBlock()
    {
        ts_.expectKeyword("begin");
        while (!ts_.acceptKeyword("end"))
            parseStatement();
    }

    const MachineDescription &mach_;
    TokenStream ts_;
    MirProgram prog_;
    uint32_t fn_ = 0;
    uint32_t curBlock_ = 0;
    std::unordered_map<std::string, RegId> aliases_;
    std::unordered_map<std::string, uint64_t> consts_;
    std::unordered_map<RegId, VReg> regVRegs_;
};

} // namespace

MirProgram
parseSimpl(const std::string &source, const MachineDescription &mach)
{
    SimplParser p(source, mach);
    return p.run();
}

// ----------------------------------------------------------------
// Frontend registration (see driver/frontend.hh). The anchor symbol
// keeps this TU in static-library links that only name the language
// through the registry.
// ----------------------------------------------------------------

namespace frontend_anchor {
extern const char simpl = 0;
} // namespace frontend_anchor

namespace {

class SimplFrontend final : public Frontend
{
  public:
    const char *name() const override { return "simpl"; }
    const char *describe() const override
    {
        return "SIMPL: single-identity procedural language "
               "(Ramamoorthy/Tsuchiya 1974)";
    }
    bool producesMir() const override { return true; }
    Translation
    translate(const std::string &source,
              const MachineDescription &mach,
              const FrontendOptions &) const override
    {
        Translation t;
        t.mir = parseSimpl(source, mach);
        return t;
    }
};

const SimplFrontend simplFrontend;
const FrontendRegistry::Registrar reg(&simplFrontend);

} // namespace

} // namespace uhll
