/**
 * @file
 * EMPL -- the "Extensible MicroProgramming Language" (DeWitt, 1976;
 * survey sec. 2.2.2).
 *
 * Machine-independent, symbolic global variables (no registers in
 * the language), a small operator set extended by user OPERATION
 * declarations with optional MICROOP hardware bindings, SIMULA-class
 * style TYPE extension statements, parameterless procedures, and
 * one-operator expressions. Operator invocations are textually
 * inlined, as in DeWitt's proposed implementation -- the code-growth
 * consequence the survey points out is measured by benchmark E7.
 *
 * Syntax (PL/I flavoured, case-insensitive):
 *
 *     DECLARE X FIXED;
 *     DECLARE BUF(16) FIXED;            /" array, memory allocated "/
 *     DECLARE RAW(8) FIXED AT 0x3000;   /" uhll extension: fixed base "/
 *
 *     TYPE STACK;
 *         DECLARE SP FIXED;
 *         INITIALLY DO; SP = 0x3FF; END;
 *         PUSH: OPERATION ACCEPTS (VALUE);
 *             MICROOP: PUSH(SP, VALUE);
 *             SP = SP + 1;
 *             MEM(SP) = VALUE;
 *         END;
 *         POP: OPERATION RETURNS (VALUE);
 *             MICROOP: POP(VALUE, SP);
 *             VALUE = MEM(SP);
 *             SP = SP - 1;
 *         END;
 *     ENDTYPE;
 *     DECLARE S STACK;
 *
 *     DOUBLE: OPERATION ACCEPTS (A) RETURNS (R);
 *         R = A + A;
 *     END;
 *
 *     MAIN: PROCEDURE;
 *         X = DOUBLE(X);
 *         S.PUSH(X);
 *         X = S.POP();
 *         IF X < 10 THEN GOTO L;
 *         WHILE X != 0 DO; X = X - 1; END;
 *     L:  RETURN;
 *     END;
 *
 * Notes and documented deviations:
 *  - MEM(expr) is a uhll extension exposing main memory (the paper
 *    itself criticises EMPL for having no memory access at all);
 *  - MICROOP takes an explicit operand list (fields/formals) mapped
 *    positionally onto the microoperation's dst/srcA/srcB slots;
 *    whether body and microoperation agree is, as in DeWitt's
 *    design, the programmer's claim;
 *  - GOTO is not allowed inside OPERATION bodies;
 *  - actual arguments must be simple variables or constants (as in
 *    the paper);
 *  - ERROR halts the micro engine.
 */

#ifndef UHLL_LANG_EMPL_EMPL_HH
#define UHLL_LANG_EMPL_EMPL_HH

#include <string>

#include "machine/machine_desc.hh"
#include "mir/mir.hh"

namespace uhll {

/** EMPL compilation options. */
struct EmplOptions {
    //! honour MICROOP bindings (false forces body expansion even
    //! when hardware exists -- used by the E7 benchmark)
    bool useMicroOps = true;
    //! base address for memory-allocated arrays
    uint32_t dataBase = 0x2000;
};

/**
 * Parse an EMPL program into MIR. The entry procedure must be named
 * MAIN. fatal() on any error.
 */
MirProgram parseEmpl(const std::string &source,
                     const MachineDescription &mach,
                     const EmplOptions &opts = {});

} // namespace uhll

#endif // UHLL_LANG_EMPL_EMPL_HH
