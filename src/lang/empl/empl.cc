#include "lang/empl/empl.hh"

#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>

#include "driver/frontend.hh"
#include "lang/common/lexer.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** A restricted actual: a simple variable name or a constant. */
struct Arg {
    bool isConst = false;
    uint64_t value = 0;
    std::string name;
};

/** Right-hand sides (one operator at most, as in the paper). */
struct Expr {
    enum class Kind : uint8_t {
        Simple,     //!< Arg
        Bin,        //!< a op b
        Un,         //!< op a  (NOT, unary -)
        Apply,      //!< name(args): operator call or array read
        Method,     //!< obj.name(args)
        MemRead,    //!< MEM(a)
    };
    Kind kind = Kind::Simple;
    Arg a, b;
    UKind op = UKind::Nop;
    std::string callee, obj;
    std::vector<Arg> args;
};

struct Stmt;
using StmtList = std::vector<Stmt>;

struct Stmt {
    enum class Kind : uint8_t {
        Assign,         //!< name = expr
        AssignIndex,    //!< array(a) = expr
        MemWrite,       //!< MEM(a) = expr
        If, While, Goto, Label, CallProc, Return, Error,
        OpCall,         //!< name(args);  or  obj.name(args);
        Block,          //!< DO; ... END
    };
    Kind kind;
    std::string name;       //!< lhs / target / callee / label
    std::string obj;        //!< method receiver
    Arg index;              //!< AssignIndex / MemWrite address
    Expr rhs;
    Arg ca, cb;             //!< condition operands
    std::string rel;        //!< condition relation
    StmtList body, elseBody;
    std::vector<Arg> args;
};

struct Operation {
    std::string name;
    std::vector<std::string> accepts;
    std::string returns;            //!< empty: none
    std::vector<std::string> locals;
    std::string microop;            //!< mnemonic; empty: none
    std::vector<std::string> microArgs;
    StmtList body;
};

struct TypeDecl {
    std::string name;
    std::vector<std::string> scalarFields;
    std::vector<std::pair<std::string, uint32_t>> arrayFields;
    StmtList initially;
    std::vector<Operation> ops;
};

struct ProcDecl {
    std::string name;
    StmtList body;
};

/** Built-in operations, written in EMPL itself. */
const char *kPrelude = R"(
mul: operation accepts (mul_a, mul_b) returns (mul_p);
    declare mul_t fixed;
    declare mul_c fixed;
    declare mul_low fixed;
    mul_p = 0;
    mul_t = mul_a;
    mul_c = mul_b;
    while mul_c != 0 do;
        mul_low = mul_c & 1;
        if mul_low = 1 then mul_p = mul_p + mul_t;
        mul_t = mul_t shl 1;
        mul_c = mul_c shr 1;
    end;
end;
div: operation accepts (div_n, div_d) returns (div_q);
    declare div_r fixed;
    if div_d = 0 then error;
    div_q = 0;
    div_r = div_n;
    while div_r >= div_d do;
        div_r = div_r - div_d;
        div_q = div_q + 1;
    end;
end;
)";

/** What a name resolves to during emission. */
struct Resolved {
    enum class Kind : uint8_t { VRegVal, Const, Array };
    Kind kind = Kind::VRegVal;
    VReg v = kNoVReg;
    uint64_t value = 0;
    uint32_t base = 0;      //!< array base address
    uint32_t size = 0;
};

class EmplParser
{
  public:
    EmplParser(const std::string &source,
               const MachineDescription &mach, const EmplOptions &opts)
        : mach_(mach), opts_(opts),
          ts_(lex(std::string(kPrelude) + source,
                  [] {
                      LexOptions o;
                      o.blockCommentOpen = "/*";
                      o.blockCommentClose = "*/";
                      o.foldCase = true;
                      return o;
                  }()),
              "empl")
    {
        nextData_ = opts_.dataBase;
    }

    MirProgram
    run()
    {
        parseTopLevel();
        emitProgram();
        prog_.validate();
        return std::move(prog_);
    }

  private:
    // ================= Parsing =================

    void
    parseTopLevel()
    {
        while (!ts_.atEnd()) {
            if (ts_.acceptKeyword("declare")) {
                parseDeclare(nullptr);
                continue;
            }
            if (ts_.acceptKeyword("type")) {
                parseType();
                continue;
            }
            // name ':' (operation | procedure)
            std::string name = ts_.expectIdent("declaration");
            ts_.expectPunct(":");
            if (ts_.acceptKeyword("operation")) {
                freeOps_.push_back(parseOperation(name));
            } else if (ts_.acceptKeyword("procedure")) {
                ts_.expectPunct(";");
                ProcDecl p;
                p.name = name;
                p.body = parseStmtsUntilEnd();
                procs_.push_back(std::move(p));
            } else {
                ts_.error("expected OPERATION or PROCEDURE");
            }
        }
    }

    /** DECLARE name [(size)] (FIXED | typename) [AT addr] ; */
    void
    parseDeclare(TypeDecl *ty)
    {
        std::string name = ts_.expectIdent("name");
        std::optional<uint32_t> size;
        if (ts_.acceptPunct("(")) {
            size = static_cast<uint32_t>(ts_.expectInt("array size"));
            ts_.expectPunct(")");
        }
        std::string kind = ts_.expectIdent("FIXED or a type name");
        std::optional<uint32_t> at;
        if (ts_.acceptKeyword("at"))
            at = static_cast<uint32_t>(ts_.expectInt("address"));
        ts_.expectPunct(";");

        if (ty) {
            if (kind != "fixed")
                ts_.error("type fields must be FIXED");
            if (at)
                ts_.error("AT is not allowed inside TYPE");
            if (size)
                ty->arrayFields.emplace_back(name, *size);
            else
                ty->scalarFields.push_back(name);
            return;
        }

        if (kind == "fixed") {
            if (size)
                declareArray(name, *size, at);
            else
                declareScalar(name);
            return;
        }
        // Instance of a TYPE.
        if (size || at)
            ts_.error("type instances cannot be arrays or placed");
        auto it = types_.find(kind);
        if (it == types_.end())
            ts_.error("unknown type '%s'", kind.c_str());
        instantiate(name, it->second);
    }

    void
    parseType()
    {
        TypeDecl ty;
        ty.name = ts_.expectIdent("type name");
        ts_.expectPunct(";");
        while (!ts_.acceptKeyword("endtype")) {
            if (ts_.acceptKeyword("declare")) {
                parseDeclare(&ty);
            } else if (ts_.acceptKeyword("initially")) {
                ty.initially.push_back(parseStatement(false));
            } else {
                std::string oname = ts_.expectIdent("operation name");
                ts_.expectPunct(":");
                ts_.expectKeyword("operation");
                ty.ops.push_back(parseOperation(oname));
            }
        }
        acceptEndMark();
        if (types_.count(ty.name))
            fatal("empl: duplicate type '%s'", ty.name.c_str());
        types_.emplace(ty.name, std::move(ty));
    }

    Operation
    parseOperation(const std::string &name)
    {
        Operation op;
        op.name = name;
        if (ts_.acceptKeyword("accepts")) {
            ts_.expectPunct("(");
            do {
                op.accepts.push_back(ts_.expectIdent("formal"));
            } while (ts_.acceptPunct(","));
            ts_.expectPunct(")");
        }
        if (ts_.acceptKeyword("returns")) {
            ts_.expectPunct("(");
            op.returns = ts_.expectIdent("result formal");
            ts_.expectPunct(")");
        }
        ts_.expectPunct(";");
        if (ts_.acceptKeyword("microop")) {
            ts_.expectPunct(":");
            op.microop = ts_.expectIdent("microop mnemonic");
            if (ts_.acceptPunct("(")) {
                do {
                    op.microArgs.push_back(
                        ts_.expectIdent("microop operand"));
                } while (ts_.acceptPunct(","));
                ts_.expectPunct(")");
            }
            ts_.expectPunct(";");
        }
        while (ts_.acceptKeyword("declare")) {
            std::string lname = ts_.expectIdent("local");
            ts_.expectKeyword("fixed");
            ts_.expectPunct(";");
            op.locals.push_back(lname);
        }
        op.body = parseStmtsUntilEndNoConsumeFirst();
        return op;
    }

    StmtList
    parseStmtsUntilEndNoConsumeFirst()
    {
        StmtList out;
        while (!ts_.acceptKeyword("end"))
            out.push_back(parseStatement(false));
        acceptEndMark();
        return out;
    }

    StmtList
    parseStmtsUntilEnd()
    {
        StmtList out;
        while (!ts_.acceptKeyword("end"))
            out.push_back(parseStatement(true));
        acceptEndMark();
        return out;
    }

    void
    acceptEndMark()
    {
        if (!ts_.acceptPunct(";"))
            ts_.acceptPunct(".");
    }

    Arg
    parseArg()
    {
        Arg a;
        if (ts_.peek().kind == Token::Kind::Int) {
            a.isConst = true;
            a.value = ts_.next().value;
            return a;
        }
        if (ts_.acceptPunct("-")) {
            a.isConst = true;
            a.value = truncBits(~ts_.expectInt("integer") + 1,
                                mach_.dataWidth());
            return a;
        }
        a.name = ts_.expectIdent("variable or constant");
        return a;
    }

    /** relational condition: arg rel arg */
    void
    parseCondInto(Stmt &s)
    {
        s.ca = parseArg();
        if (ts_.acceptPunct("="))
            s.rel = "=";
        else if (ts_.acceptPunct("!=") || ts_.acceptPunct("<>"))
            s.rel = "!=";
        else if (ts_.acceptPunct("<="))
            s.rel = "<=";
        else if (ts_.acceptPunct(">="))
            s.rel = ">=";
        else if (ts_.acceptPunct("<"))
            s.rel = "<";
        else if (ts_.acceptPunct(">"))
            s.rel = ">";
        else
            ts_.error("expected relational operator");
        s.cb = parseArg();
    }

    /** One operator's worth of RHS. */
    Expr
    parseExpr()
    {
        Expr e;
        // Unary forms.
        if (ts_.acceptKeyword("not")) {
            e.kind = Expr::Kind::Un;
            e.op = UKind::Not;
            e.a = parseArg();
            return e;
        }
        if (ts_.peek().kind == Token::Kind::Punct &&
            ts_.peek().text == "-" &&
            ts_.peek(1).kind == Token::Kind::Ident) {
            ts_.next();
            e.kind = Expr::Kind::Un;
            e.op = UKind::Neg;
            e.a = parseArg();
            return e;
        }

        // name(...) forms.
        if (ts_.peek().kind == Token::Kind::Ident &&
            ts_.peek(1).kind == Token::Kind::Punct &&
            (ts_.peek(1).text == "(" || ts_.peek(1).text == ".")) {
            std::string name = ts_.next().text;
            if (ts_.acceptPunct(".")) {
                e.kind = Expr::Kind::Method;
                e.obj = name;
                e.callee = ts_.expectIdent("operation");
                ts_.expectPunct("(");
                if (!ts_.acceptPunct(")")) {
                    do {
                        e.args.push_back(parseArg());
                    } while (ts_.acceptPunct(","));
                    ts_.expectPunct(")");
                }
                return e;
            }
            ts_.expectPunct("(");
            if (name == "mem") {
                e.kind = Expr::Kind::MemRead;
                e.a = parseArg();
                ts_.expectPunct(")");
                return e;
            }
            e.kind = Expr::Kind::Apply;
            e.callee = name;
            if (!ts_.acceptPunct(")")) {
                do {
                    e.args.push_back(parseArg());
                } while (ts_.acceptPunct(","));
                ts_.expectPunct(")");
            }
            return e;
        }

        e.a = parseArg();
        struct BinTok { const char *p; UKind k; bool kw; };
        static const BinTok bins[] = {
            {"+", UKind::Add, false}, {"-", UKind::Sub, false},
            {"&", UKind::And, false}, {"|", UKind::Or, false},
            {"xor", UKind::Xor, true}, {"shl", UKind::Shl, true},
            {"shr", UKind::Shr, true}, {"sar", UKind::Sar, true},
            {"rol", UKind::Rol, true}, {"ror", UKind::Ror, true},
        };
        for (const BinTok &b : bins) {
            bool hit = b.kw ? ts_.acceptKeyword(b.p)
                            : ts_.acceptPunct(b.p);
            if (hit) {
                e.kind = Expr::Kind::Bin;
                e.op = b.k;
                e.b = parseArg();
                return e;
            }
        }
        // multiplication/division via the prelude operations
        if (ts_.acceptPunct("*") || ts_.acceptPunct("/")) {
            // the last consumed punct isn't retrievable; reparse:
            ts_.error("write multiplication as MUL(a, b) and "
                      "division as DIV(a, b)");
        }
        e.kind = Expr::Kind::Simple;
        return e;
    }

    Stmt
    parseStatement(bool allow_labels)
    {
        Stmt s;
        if (ts_.acceptKeyword("do")) {
            ts_.expectPunct(";");
            s.kind = Stmt::Kind::Block;
            while (!ts_.acceptKeyword("end"))
                s.body.push_back(parseStatement(allow_labels));
            acceptEndMark();
            return s;
        }
        if (ts_.acceptKeyword("if")) {
            s.kind = Stmt::Kind::If;
            parseCondInto(s);
            ts_.expectKeyword("then");
            s.body.push_back(parseStatement(false));
            if (ts_.acceptKeyword("else"))
                s.elseBody.push_back(parseStatement(false));
            return s;
        }
        if (ts_.acceptKeyword("while")) {
            s.kind = Stmt::Kind::While;
            parseCondInto(s);
            ts_.expectKeyword("do");
            ts_.expectPunct(";");
            while (!ts_.acceptKeyword("end"))
                s.body.push_back(parseStatement(false));
            acceptEndMark();
            return s;
        }
        if (ts_.acceptKeyword("goto")) {
            s.kind = Stmt::Kind::Goto;
            s.name = ts_.expectIdent("label");
            ts_.expectPunct(";");
            return s;
        }
        if (ts_.acceptKeyword("call")) {
            s.kind = Stmt::Kind::CallProc;
            s.name = ts_.expectIdent("procedure");
            ts_.expectPunct(";");
            return s;
        }
        if (ts_.acceptKeyword("return")) {
            s.kind = Stmt::Kind::Return;
            ts_.expectPunct(";");
            return s;
        }
        if (ts_.acceptKeyword("error")) {
            s.kind = Stmt::Kind::Error;
            ts_.expectPunct(";");
            return s;
        }

        std::string name = ts_.expectIdent("statement");
        // Label?
        if (ts_.peek().kind == Token::Kind::Punct &&
            ts_.peek().text == ":") {
            if (!allow_labels)
                ts_.error("labels are only allowed in procedures");
            ts_.next();
            s.kind = Stmt::Kind::Label;
            s.name = name;
            return s;
        }
        // obj.op(args);  or  obj.op(args) as statement
        if (ts_.acceptPunct(".")) {
            s.kind = Stmt::Kind::OpCall;
            s.obj = name;
            s.name = ts_.expectIdent("operation");
            ts_.expectPunct("(");
            if (!ts_.acceptPunct(")")) {
                do {
                    s.args.push_back(parseArg());
                } while (ts_.acceptPunct(","));
                ts_.expectPunct(")");
            }
            ts_.expectPunct(";");
            return s;
        }
        // name(...) = expr  |  name(args);  |  name = expr
        if (ts_.acceptPunct("(")) {
            std::vector<Arg> args;
            if (!ts_.acceptPunct(")")) {
                do {
                    args.push_back(parseArg());
                } while (ts_.acceptPunct(","));
                ts_.expectPunct(")");
            }
            if (ts_.acceptPunct("=")) {
                if (args.size() != 1)
                    ts_.error("indexed assignment takes one index");
                s.kind = name == "mem" ? Stmt::Kind::MemWrite
                                       : Stmt::Kind::AssignIndex;
                s.name = name;
                s.index = args[0];
                s.rhs = parseExpr();
                ts_.expectPunct(";");
                return s;
            }
            s.kind = Stmt::Kind::OpCall;
            s.name = name;
            s.args = std::move(args);
            ts_.expectPunct(";");
            return s;
        }
        ts_.expectPunct("=");
        s.kind = Stmt::Kind::Assign;
        s.name = name;
        s.rhs = parseExpr();
        ts_.expectPunct(";");
        return s;
    }

    // ================= Declarations / storage =================

    void
    declareScalar(const std::string &name)
    {
        if (globals_.count(name))
            fatal("empl: duplicate declaration '%s'", name.c_str());
        Resolved r;
        r.kind = Resolved::Kind::VRegVal;
        r.v = prog_.newVReg(name);
        prog_.markObservable(r.v);
        globals_.emplace(name, r);
    }

    void
    declareArray(const std::string &name, uint32_t size,
                 std::optional<uint32_t> at)
    {
        if (globals_.count(name))
            fatal("empl: duplicate declaration '%s'", name.c_str());
        Resolved r;
        r.kind = Resolved::Kind::Array;
        r.base = at ? *at : nextData_;
        r.size = size;
        if (!at)
            nextData_ += size;
        globals_.emplace(name, r);
    }

    void
    instantiate(const std::string &obj, const TypeDecl &ty)
    {
        for (const std::string &f : ty.scalarFields)
            declareScalar(obj + "." + f);
        for (auto &[f, size] : ty.arrayFields)
            declareArray(obj + "." + f, size, std::nullopt);
        instances_.emplace(obj, ty.name);
        if (!ty.initially.empty())
            initQueue_.emplace_back(obj, &ty);
    }

    // ================= Emission =================

    BasicBlock &
    cur()
    {
        return prog_.func(fn_).blocks[curBlock_];
    }

    uint32_t
    newBlock()
    {
        return prog_.func(fn_).newBlock();
    }

    Resolved
    resolve(const Arg &a)
    {
        if (a.isConst) {
            Resolved r;
            r.kind = Resolved::Kind::Const;
            r.value = a.value;
            return r;
        }
        for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
            auto f = it->find(a.name);
            if (f != it->end())
                return f->second;
        }
        auto g = globals_.find(a.name);
        if (g == globals_.end())
            fatal("empl: undeclared variable '%s'", a.name.c_str());
        return g->second;
    }

    VReg
    valueOf(const Arg &a)
    {
        Resolved r = resolve(a);
        switch (r.kind) {
          case Resolved::Kind::VRegVal:
            return r.v;
          case Resolved::Kind::Const: {
            VReg t = prog_.newVReg();
            cur().insts.push_back(mi::ldi(t, r.value));
            return t;
          }
          case Resolved::Kind::Array:
            fatal("empl: array '%s' used as a value", a.name.c_str());
        }
        return kNoVReg;
    }

    /** Destination vreg for an assignment target name. */
    VReg
    lvalue(const std::string &name)
    {
        Arg a;
        a.name = name;
        Resolved r = resolve(a);
        if (r.kind == Resolved::Kind::Const)
            fatal("empl: cannot assign to constant-bound formal '%s'",
                  name.c_str());
        if (r.kind == Resolved::Kind::Array)
            fatal("empl: array '%s' needs an index", name.c_str());
        return r.v;
    }

    /** Address vreg for array element @p arr ( @p idx ). */
    VReg
    elementAddr(const Resolved &arr, const Arg &idx)
    {
        Resolved ri = resolve(idx);
        VReg t = prog_.newVReg();
        if (ri.kind == Resolved::Kind::Const) {
            cur().insts.push_back(mi::ldi(t, arr.base + ri.value));
        } else if (ri.kind == Resolved::Kind::VRegVal) {
            cur().insts.push_back(
                mi::binopImm(UKind::Add, t, ri.v, arr.base));
        } else {
            fatal("empl: array index must be scalar");
        }
        return t;
    }

    void
    emitExprInto(VReg dst, const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Simple: {
            Resolved r = resolve(e.a);
            if (r.kind == Resolved::Kind::Const)
                cur().insts.push_back(mi::ldi(dst, r.value));
            else if (r.kind == Resolved::Kind::VRegVal)
                cur().insts.push_back(mi::mov(dst, r.v));
            else
                fatal("empl: array used as value");
            break;
          }
          case Expr::Kind::Un:
            cur().insts.push_back(mi::unop(e.op, dst, valueOf(e.a)));
            break;
          case Expr::Kind::Bin: {
            VReg va = valueOf(e.a);
            Resolved rb = resolve(e.b);
            if (rb.kind == Resolved::Kind::Const)
                cur().insts.push_back(
                    mi::binopImm(e.op, dst, va, rb.value));
            else
                cur().insts.push_back(mi::binop(e.op, dst, va, rb.v));
            break;
          }
          case Expr::Kind::MemRead:
            cur().insts.push_back(mi::load(dst, valueOf(e.a)));
            break;
          case Expr::Kind::Apply: {
            if (globals_.count(e.callee) &&
                globals_[e.callee].kind == Resolved::Kind::Array) {
                if (e.args.size() != 1)
                    fatal("empl: array '%s' takes one index",
                          e.callee.c_str());
                VReg addr = elementAddr(globals_[e.callee],
                                        e.args[0]);
                cur().insts.push_back(mi::load(dst, addr));
                break;
            }
            expandOperation(findFreeOp(e.callee), e.args, dst,
                            nullptr, "");
            break;
          }
          case Expr::Kind::Method: {
            auto [op, obj] = findMethod(e.obj, e.callee);
            expandOperation(*op, e.args, dst, obj.second, obj.first);
            break;
          }
        }
    }

    const Operation &
    findFreeOp(const std::string &name)
    {
        for (const Operation &op : freeOps_) {
            if (op.name == name)
                return op;
        }
        fatal("empl: unknown operation '%s'", name.c_str());
    }

    std::pair<const Operation *,
              std::pair<std::string, const TypeDecl *>>
    findMethod(const std::string &obj, const std::string &opname)
    {
        auto it = instances_.find(obj);
        if (it == instances_.end())
            fatal("empl: '%s' is not a type instance", obj.c_str());
        const TypeDecl &ty = types_.at(it->second);
        for (const Operation &op : ty.ops) {
            if (op.name == opname)
                return {&op, {obj, &ty}};
        }
        fatal("empl: type '%s' has no operation '%s'",
              ty.name.c_str(), opname.c_str());
    }

    /**
     * Inline-expand @p op with @p actuals. @p ret (if valid) takes
     * the RETURNS value. @p ty / @p obj qualify field references for
     * typed operations.
     */
    void
    expandOperation(const Operation &op, const std::vector<Arg> &actuals,
                    VReg ret, const TypeDecl *ty,
                    const std::string &obj)
    {
        if (++inlineDepth_ > 32)
            fatal("empl: operation expansion too deep (recursion?)");
        if (actuals.size() != op.accepts.size())
            fatal("empl: operation '%s' takes %zu arguments, got %zu",
                  op.name.c_str(), op.accepts.size(), actuals.size());
        if (ret != kNoVReg && op.returns.empty())
            fatal("empl: operation '%s' returns nothing",
                  op.name.c_str());

        std::unordered_map<std::string, Resolved> frame;
        // Fields first (formals may shadow them).
        if (ty) {
            for (const std::string &f : ty->scalarFields)
                frame.emplace(f, globals_.at(obj + "." + f));
            for (auto &[f, size] : ty->arrayFields) {
                (void)size;
                frame.emplace(f, globals_.at(obj + "." + f));
            }
        }
        for (size_t i = 0; i < actuals.size(); ++i)
            frame[op.accepts[i]] = resolve(actuals[i]);
        if (!op.returns.empty()) {
            Resolved r;
            r.kind = Resolved::Kind::VRegVal;
            r.v = ret != kNoVReg ? ret : prog_.newVReg();
            frame[op.returns] = r;
        }
        for (const std::string &l : op.locals) {
            Resolved r;
            r.kind = Resolved::Kind::VRegVal;
            r.v = prog_.newVReg();
            frame[l] = r;
        }

        // MICROOP path: a single hardware microoperation.
        if (opts_.useMicroOps && !op.microop.empty()) {
            auto uidx = mach_.findUop(op.microop);
            if (uidx) {
                env_.push_back(frame);
                emitMicroOpCall(op, *uidx);
                env_.pop_back();
                --inlineDepth_;
                return;
            }
            // machine lacks it: fall through to the body
        }

        env_.push_back(std::move(frame));
        for (const Stmt &s : op.body)
            emitStmt(s);
        env_.pop_back();
        --inlineDepth_;
    }

    void
    emitMicroOpCall(const Operation &op, uint16_t uidx)
    {
        const MicroOpSpec &spec = mach_.uop(uidx);
        UKind k = spec.kind;
        // Positional mapping: dst, then srcA, then srcB.
        std::vector<VReg> slots;
        for (const std::string &a : op.microArgs) {
            Arg arg;
            arg.name = a;
            Resolved r = resolve(arg);
            if (r.kind != Resolved::Kind::VRegVal)
                fatal("empl: MICROOP operand '%s' must be scalar",
                      a.c_str());
            slots.push_back(r.v);
        }
        size_t need = (uKindHasDst(k) ? 1 : 0) +
                      (uKindHasSrcA(k) ? 1 : 0) +
                      (uKindHasSrcB(k) ? 1 : 0);
        if (slots.size() != need)
            fatal("empl: MICROOP %s needs %zu operands, got %zu",
                  op.microop.c_str(), need, slots.size());
        MInst ins;
        ins.op = k;
        size_t i = 0;
        if (uKindHasDst(k))
            ins.dst = slots[i++];
        if (uKindHasSrcA(k))
            ins.a = slots[i++];
        if (uKindHasSrcB(k))
            ins.b = slots[i++];
        cur().insts.push_back(ins);
    }

    Cond
    emitCond(const Stmt &s)
    {
        bool swap = s.rel == ">" || s.rel == "<=";
        const Arg &first = swap ? s.cb : s.ca;
        const Arg &second = swap ? s.ca : s.cb;
        VReg va = valueOf(first);
        Resolved rb = resolve(second);
        MInst c;
        c.op = UKind::Cmp;
        c.a = va;
        if (rb.kind == Resolved::Kind::Const) {
            c.useImm = true;
            c.imm = rb.value;
        } else {
            c.b = rb.v;
        }
        cur().insts.push_back(c);
        if (s.rel == "=")
            return Cond::Z;
        if (s.rel == "!=")
            return Cond::NZ;
        if (s.rel == "<" || s.rel == ">")
            return Cond::NC;
        return Cond::C;     // >= and <=
    }

    void
    emitStmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Block:
            for (const Stmt &inner : s.body)
                emitStmt(inner);
            break;
          case Stmt::Kind::Assign: {
            // Expansion targets the lvalue directly unless the rhs
            // also reads it through an operation (safe either way:
            // one-operator rule means no aliasing hazards here).
            VReg dst = lvalue(s.name);
            emitExprInto(dst, s.rhs);
            break;
          }
          case Stmt::Kind::AssignIndex: {
            Arg n;
            n.name = s.name;
            Resolved arr = resolve(n);
            if (arr.kind != Resolved::Kind::Array)
                fatal("empl: '%s' is not an array", s.name.c_str());
            VReg t = prog_.newVReg();
            emitExprInto(t, s.rhs);
            VReg addr = elementAddr(arr, s.index);
            cur().insts.push_back(mi::store(addr, t));
            break;
          }
          case Stmt::Kind::MemWrite: {
            VReg t = prog_.newVReg();
            emitExprInto(t, s.rhs);
            cur().insts.push_back(mi::store(valueOf(s.index), t));
            break;
          }
          case Stmt::Kind::If: {
            Cond cc = emitCond(s);
            uint32_t then_b = newBlock();
            uint32_t join = newBlock();
            uint32_t else_target = join;
            uint32_t cond_b = curBlock_;
            curBlock_ = then_b;
            for (const Stmt &inner : s.body)
                emitStmt(inner);
            cur().term = jumpTerm(join);
            if (!s.elseBody.empty()) {
                uint32_t else_b = newBlock();
                else_target = else_b;
                curBlock_ = else_b;
                for (const Stmt &inner : s.elseBody)
                    emitStmt(inner);
                cur().term = jumpTerm(join);
            }
            auto &t = prog_.func(fn_).blocks[cond_b].term;
            t.kind = Terminator::Kind::Branch;
            t.cc = cc;
            t.target = then_b;
            t.fallthrough = else_target;
            curBlock_ = join;
            break;
          }
          case Stmt::Kind::While: {
            uint32_t hdr = newBlock();
            uint32_t body = newBlock();
            uint32_t exit = newBlock();
            cur().term = jumpTerm(hdr);
            curBlock_ = hdr;
            Cond cc = emitCond(s);
            cur().term.kind = Terminator::Kind::Branch;
            cur().term.cc = cc;
            cur().term.target = body;
            cur().term.fallthrough = exit;
            curBlock_ = body;
            for (const Stmt &inner : s.body)
                emitStmt(inner);
            cur().term = jumpTerm(hdr);
            curBlock_ = exit;
            break;
          }
          case Stmt::Kind::Goto: {
            uint32_t target = labelBlock(s.name);
            cur().term = jumpTerm(target);
            curBlock_ = newBlock();
            break;
          }
          case Stmt::Kind::Label: {
            uint32_t b = labelBlock(s.name);
            if (definedLabels_.count(s.name))
                fatal("empl: duplicate label '%s'", s.name.c_str());
            definedLabels_.insert(s.name);
            cur().term = jumpTerm(b);
            curBlock_ = b;
            break;
          }
          case Stmt::Kind::CallProc: {
            uint32_t cont = newBlock();
            cur().term.kind = Terminator::Kind::Call;
            cur().term.target = cont;
            callFixups_.emplace_back(fn_, curBlock_, s.name);
            curBlock_ = cont;
            break;
          }
          case Stmt::Kind::Return:
            cur().term.kind = fn_ == 0 ? Terminator::Kind::Halt
                                       : Terminator::Kind::Ret;
            curBlock_ = newBlock();
            break;
          case Stmt::Kind::Error:
            // A runtime error stops the micro engine.
            cur().term.kind = Terminator::Kind::Halt;
            curBlock_ = newBlock();
            break;
          case Stmt::Kind::OpCall: {
            if (!s.obj.empty()) {
                auto [op, obj] = findMethod(s.obj, s.name);
                VReg ret = kNoVReg;
                expandOperation(*op, s.args, ret, obj.second,
                                obj.first);
            } else {
                expandOperation(findFreeOp(s.name), s.args, kNoVReg,
                                nullptr, "");
            }
            break;
          }
        }
    }

    uint32_t
    labelBlock(const std::string &label)
    {
        auto it = labelBlocks_.find(label);
        if (it != labelBlocks_.end())
            return it->second;
        uint32_t b = newBlock();
        labelBlocks_.emplace(label, b);
        return b;
    }

    void
    emitProgram()
    {
        // MAIN must exist and becomes function 0.
        int main_idx = -1;
        for (size_t i = 0; i < procs_.size(); ++i) {
            if (procs_[i].name == "main")
                main_idx = static_cast<int>(i);
        }
        if (main_idx < 0)
            fatal("empl: no MAIN procedure");
        std::swap(procs_[0], procs_[main_idx]);

        for (const ProcDecl &p : procs_)
            prog_.addFunction(p.name);

        for (size_t i = 0; i < procs_.size(); ++i) {
            fn_ = static_cast<uint32_t>(i);
            curBlock_ = prog_.func(fn_).newBlock();
            labelBlocks_.clear();
            definedLabels_.clear();

            if (i == 0) {
                // INITIALLY bodies of all instances run first.
                for (auto &[obj, ty] : initQueue_) {
                    std::unordered_map<std::string, Resolved> frame;
                    for (const std::string &f : ty->scalarFields)
                        frame.emplace(f, globals_.at(obj + "." + f));
                    for (auto &[f, size] : ty->arrayFields) {
                        (void)size;
                        frame.emplace(f, globals_.at(obj + "." + f));
                    }
                    env_.push_back(std::move(frame));
                    for (const Stmt &s : ty->initially)
                        emitStmt(s);
                    env_.pop_back();
                }
            }

            for (const Stmt &s : procs_[i].body)
                emitStmt(s);
            cur().term.kind = i == 0 ? Terminator::Kind::Halt
                                     : Terminator::Kind::Ret;

            for (auto &[label, blk] : labelBlocks_) {
                (void)blk;
                if (!definedLabels_.count(label))
                    fatal("empl: undefined label '%s' in '%s'",
                          label.c_str(), procs_[i].name.c_str());
            }
        }

        for (auto &[fn, blk, callee] : callFixups_) {
            auto f = prog_.findFunction(callee);
            if (!f)
                fatal("empl: CALL of undefined procedure '%s'",
                      callee.c_str());
            prog_.func(fn).blocks[blk].term.callee = *f;
        }
    }

    const MachineDescription &mach_;
    EmplOptions opts_;
    TokenStream ts_;
    MirProgram prog_;

    std::unordered_map<std::string, Resolved> globals_;
    std::unordered_map<std::string, TypeDecl> types_;
    std::unordered_map<std::string, std::string> instances_;
    std::vector<std::pair<std::string, const TypeDecl *>> initQueue_;
    std::vector<Operation> freeOps_;
    std::vector<ProcDecl> procs_;
    uint32_t nextData_ = 0;

    uint32_t fn_ = 0;
    uint32_t curBlock_ = 0;
    int inlineDepth_ = 0;
    std::vector<std::unordered_map<std::string, Resolved>> env_;
    std::unordered_map<std::string, uint32_t> labelBlocks_;
    std::set<std::string> definedLabels_;
    std::vector<std::tuple<uint32_t, uint32_t, std::string>>
        callFixups_;
};

} // namespace

MirProgram
parseEmpl(const std::string &source, const MachineDescription &mach,
          const EmplOptions &opts)
{
    EmplParser p(source, mach, opts);
    return p.run();
}

// ----------------------------------------------------------------
// Frontend registration (see driver/frontend.hh).
// ----------------------------------------------------------------

namespace frontend_anchor {
extern const char empl = 0;
} // namespace frontend_anchor

namespace {

class EmplFrontend final : public Frontend
{
  public:
    const char *name() const override { return "empl"; }
    const char *describe() const override
    {
        return "EMPL: extensible machine-independent language "
               "(DeWitt 1976)";
    }
    bool producesMir() const override { return true; }
    Translation
    translate(const std::string &source,
              const MachineDescription &mach,
              const FrontendOptions &opts) const override
    {
        EmplOptions eo;
        eo.useMicroOps = opts.emplUseMicroOps;
        eo.dataBase = opts.emplDataBase;
        Translation t;
        t.mir = parseEmpl(source, mach, eo);
        return t;
    }
};

const EmplFrontend emplFrontend;
const FrontendRegistry::Registrar reg(&emplFrontend);

} // namespace

} // namespace uhll
