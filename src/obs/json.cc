#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace uhll {

namespace {

/**
 * Length of the valid UTF-8 sequence starting at s[i], or 0 if the
 * bytes there are not well-formed UTF-8 (overlong forms, surrogates
 * and out-of-range code points included).
 */
size_t
utf8SequenceLength(const std::string &s, size_t i)
{
    const unsigned char c0 = s[i];
    if (c0 < 0x80)
        return 1;
    size_t len;
    uint32_t cp, min;
    if ((c0 & 0xe0) == 0xc0) {
        len = 2, cp = c0 & 0x1f, min = 0x80;
    } else if ((c0 & 0xf0) == 0xe0) {
        len = 3, cp = c0 & 0x0f, min = 0x800;
    } else if ((c0 & 0xf8) == 0xf0) {
        len = 4, cp = c0 & 0x07, min = 0x10000;
    } else {
        return 0;
    }
    if (i + len > s.size())
        return 0;
    for (size_t k = 1; k < len; ++k) {
        const unsigned char c = s[i + k];
        if ((c & 0xc0) != 0x80)
            return 0;
        cp = (cp << 6) | (c & 0x3f);
    }
    if (cp < min || cp > 0x10ffff ||
        (cp >= 0xd800 && cp <= 0xdfff)) {
        return 0;
    }
    return len;
}

} // namespace

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (size_t i = 0; i < s.size();) {
        const unsigned char c = s[i];
        switch (c) {
          case '"': out += "\\\""; ++i; continue;
          case '\\': out += "\\\\"; ++i; continue;
          case '\n': out += "\\n"; ++i; continue;
          case '\r': out += "\\r"; ++i; continue;
          case '\t': out += "\\t"; ++i; continue;
        }
        if (c >= 0x20 && c < 0x7f) {
            out += static_cast<char>(c);
            ++i;
            continue;
        }
        // Control bytes, DEL and malformed UTF-8 (machine-derived
        // labels can carry arbitrary bytes) are \u-escaped per byte
        // so the document always satisfies strict RFC 8259 parsers;
        // well-formed multi-byte sequences pass through untouched.
        const size_t len = c >= 0x80 ? utf8SequenceLength(s, i) : 0;
        if (len) {
            out.append(s, i, len);
            i += len;
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            ++i;
        }
    }
    out += '"';
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    out_ += '\n';
    out_.append(2 * needComma_.size(), ' ');
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
        indent();
    }
    if (!key.empty()) {
        out_ += quote(key);
        out_ += pretty_ ? ": " : ":";
    }
}

JsonWriter &
JsonWriter::beginObject(const std::string &key)
{
    prefix(key);
    out_ += '{';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    UHLL_ASSERT(!needComma_.empty());
    bool any = needComma_.back();
    needComma_.pop_back();
    if (any)
        indent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &key)
{
    prefix(key);
    out_ += '[';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    UHLL_ASSERT(!needComma_.empty());
    bool any = needComma_.back();
    needComma_.pop_back();
    if (any)
        indent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const std::string &v)
{
    prefix(key);
    out_ += quote(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const char *v)
{
    return value(key, std::string(v));
}

JsonWriter &
JsonWriter::value(const std::string &key, uint64_t v)
{
    prefix(key);
    out_ += strfmt("%llu", (unsigned long long)v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, int64_t v)
{
    prefix(key);
    out_ += strfmt("%lld", (long long)v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, double v)
{
    prefix(key);
    // JSON has no NaN/Inf; emit null as browsers' JSON.parse expects.
    if (!std::isfinite(v))
        out_ += "null";
    else
        out_ += strfmt("%.6g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, bool v)
{
    prefix(key);
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &key, const std::string &raw)
{
    prefix(key);
    out_ += raw;
    return *this;
}

std::string
JsonWriter::str() const
{
    UHLL_ASSERT(needComma_.empty());
    return out_;
}

// ----------------------------------------------------------------
// Validation: a small recursive-descent parser that accepts exactly
// the documents the writer can produce (plus arbitrary valid JSON).
// ----------------------------------------------------------------

namespace {

struct JsonParser {
    const std::string &s;
    size_t pos = 0;
    std::string err;
    int depth = 0;

    explicit JsonParser(const std::string &text) : s(text) {}

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = strfmt("%s at offset %zu", what.c_str(), pos);
        return false;
    }

    void skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool literal(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                char e = s[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= s.size() ||
                            !std::isxdigit((unsigned char)s[pos + i]))
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape");
                }
                ++pos;
            } else if (c < 0x20) {
                return fail("control char in string");
            } else {
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool number()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        size_t digits = pos;
        while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
            ++pos;
        if (pos == start || (s[start] == '-' && pos == start + 1))
            return fail("expected number");
        if (s[digits] == '0' && pos > digits + 1)
            return fail("leading zero");
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() || !std::isdigit((unsigned char)s[pos]))
                return fail("bad fraction");
            while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() || !std::isdigit((unsigned char)s[pos]))
                return fail("bad exponent");
            while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        return true;
    }

    bool value()
    {
        if (++depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("expected value");
        bool ok;
        switch (s[pos]) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool object()
    {
        ++pos;  // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array()
    {
        ++pos;  // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
jsonValid(const std::string &text, std::string *err)
{
    JsonParser p(text);
    bool ok = p.value();
    if (ok) {
        p.skipWs();
        if (p.pos != text.size()) {
            ok = false;
            p.fail("trailing garbage");
        }
    }
    if (!ok && err)
        *err = p.err;
    return ok;
}

// ----------------------------------------------------------------
// Reader: the same grammar as the validator, building a JsonValue
// tree. Kept separate so the hot validator stays allocation-free.
// ----------------------------------------------------------------

namespace {

struct JsonReader {
    const std::string &s;
    size_t pos = 0;
    int depth = 0;

    explicit JsonReader(const std::string &text) : s(text) {}

    [[noreturn]] void fail(const char *what)
    {
        fatal("json: %s at offset %zu", what, pos);
    }

    void skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    void literal(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0)
            fail("bad literal");
        pos += n;
    }

    std::string string()
    {
        if (pos >= s.size() || s[pos] != '"')
            fail("expected string");
        ++pos;
        std::string out;
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    fail("truncated escape");
                char e = s[pos];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned v = 0;
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= s.size() ||
                            !std::isxdigit((unsigned char)s[pos + i]))
                            fail("bad \\u escape");
                        char h = s[pos + i];
                        v = v * 16 +
                            (std::isdigit((unsigned char)h)
                                 ? unsigned(h - '0')
                                 : unsigned(std::tolower(h) - 'a') +
                                       10);
                    }
                    pos += 4;
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are passed through as two units; the
                    // manifests this reader serves are ASCII).
                    if (v < 0x80) {
                        out += char(v);
                    } else if (v < 0x800) {
                        out += char(0xC0 | (v >> 6));
                        out += char(0x80 | (v & 0x3F));
                    } else {
                        out += char(0xE0 | (v >> 12));
                        out += char(0x80 | ((v >> 6) & 0x3F));
                        out += char(0x80 | (v & 0x3F));
                    }
                    break;
                  }
                  default: fail("bad escape");
                }
                ++pos;
            } else if (c < 0x20) {
                fail("control char in string");
            } else {
                out += char(c);
                ++pos;
            }
        }
        fail("unterminated string");
    }

    double number()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit((unsigned char)s[pos]) || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
                s[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            fail("expected number");
        std::string tok = s.substr(start, pos - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (!end || *end)
            fail("bad number");
        return v;
    }

    JsonValue value()
    {
        if (++depth > 256)
            fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            fail("expected value");
        JsonValue v;
        switch (s[pos]) {
          case '{': v = object(); break;
          case '[': v = array(); break;
          case '"':
            v.kind = JsonValue::Kind::String;
            v.str = string();
            break;
          case 't':
            literal("true");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            break;
          case 'f':
            literal("false");
            v.kind = JsonValue::Kind::Bool;
            break;
          case 'n':
            literal("null");
            break;
          default:
            v.kind = JsonValue::Kind::Number;
            v.number = number();
            break;
        }
        --depth;
        return v;
    }

    JsonValue object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        ++pos;  // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                fail("expected ':'");
            ++pos;
            v.fields.emplace_back(std::move(key), value());
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return v;
            }
            fail("expected ',' or '}'");
        }
    }

    JsonValue array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        ++pos;  // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return v;
            }
            fail("expected ',' or ']'");
        }
    }
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    JsonReader r(text);
    JsonValue v = r.value();
    r.skipWs();
    if (r.pos != text.size())
        r.fail("trailing garbage");
    return v;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : fields) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::require(const std::string &key) const
{
    const JsonValue *v = get(key);
    if (!v)
        fatal("json: missing required key '%s'", key.c_str());
    return *v;
}

std::string
JsonValue::asString(const std::string &dflt) const
{
    return kind == Kind::String ? str : dflt;
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind == Kind::Bool ? boolean : dflt;
}

double
JsonValue::asNumber(double dflt) const
{
    return kind == Kind::Number ? number : dflt;
}

uint64_t
JsonValue::asU64(uint64_t dflt) const
{
    if (kind == Kind::Number)
        return static_cast<uint64_t>(number);
    // Large 64-bit counters round-trip through strings exactly; the
    // writer emits them as numbers, but accept both.
    if (kind == Kind::String)
        return std::strtoull(str.c_str(), nullptr, 0);
    return dflt;
}

} // namespace uhll
