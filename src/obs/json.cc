#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/logging.hh"

namespace uhll {

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    out_ += '\n';
    out_.append(2 * needComma_.size(), ' ');
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
        indent();
    }
    if (!key.empty()) {
        out_ += quote(key);
        out_ += pretty_ ? ": " : ":";
    }
}

JsonWriter &
JsonWriter::beginObject(const std::string &key)
{
    prefix(key);
    out_ += '{';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    UHLL_ASSERT(!needComma_.empty());
    bool any = needComma_.back();
    needComma_.pop_back();
    if (any)
        indent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &key)
{
    prefix(key);
    out_ += '[';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    UHLL_ASSERT(!needComma_.empty());
    bool any = needComma_.back();
    needComma_.pop_back();
    if (any)
        indent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const std::string &v)
{
    prefix(key);
    out_ += quote(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const char *v)
{
    return value(key, std::string(v));
}

JsonWriter &
JsonWriter::value(const std::string &key, uint64_t v)
{
    prefix(key);
    out_ += strfmt("%llu", (unsigned long long)v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, int64_t v)
{
    prefix(key);
    out_ += strfmt("%lld", (long long)v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, double v)
{
    prefix(key);
    // JSON has no NaN/Inf; emit null as browsers' JSON.parse expects.
    if (!std::isfinite(v))
        out_ += "null";
    else
        out_ += strfmt("%.6g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, bool v)
{
    prefix(key);
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &key, const std::string &raw)
{
    prefix(key);
    out_ += raw;
    return *this;
}

std::string
JsonWriter::str() const
{
    UHLL_ASSERT(needComma_.empty());
    return out_;
}

// ----------------------------------------------------------------
// Validation: a small recursive-descent parser that accepts exactly
// the documents the writer can produce (plus arbitrary valid JSON).
// ----------------------------------------------------------------

namespace {

struct JsonParser {
    const std::string &s;
    size_t pos = 0;
    std::string err;
    int depth = 0;

    explicit JsonParser(const std::string &text) : s(text) {}

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = strfmt("%s at offset %zu", what.c_str(), pos);
        return false;
    }

    void skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool literal(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                char e = s[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= s.size() ||
                            !std::isxdigit((unsigned char)s[pos + i]))
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape");
                }
                ++pos;
            } else if (c < 0x20) {
                return fail("control char in string");
            } else {
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool number()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        size_t digits = pos;
        while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
            ++pos;
        if (pos == start || (s[start] == '-' && pos == start + 1))
            return fail("expected number");
        if (s[digits] == '0' && pos > digits + 1)
            return fail("leading zero");
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() || !std::isdigit((unsigned char)s[pos]))
                return fail("bad fraction");
            while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() || !std::isdigit((unsigned char)s[pos]))
                return fail("bad exponent");
            while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        return true;
    }

    bool value()
    {
        if (++depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("expected value");
        bool ok;
        switch (s[pos]) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool object()
    {
        ++pos;  // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array()
    {
        ++pos;  // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
jsonValid(const std::string &text, std::string *err)
{
    JsonParser p(text);
    bool ok = p.value();
    if (ok) {
        p.skipWs();
        if (p.pos != text.size()) {
            ok = false;
            p.fail("trailing garbage");
        }
    }
    if (!ok && err)
        *err = p.err;
    return ok;
}

} // namespace uhll
