/**
 * @file
 * Minimal JSON emission and validation for the observability layer.
 *
 * Every machine-readable artefact the toolkit writes (stats dumps,
 * Chrome traces, BENCH_sim.json, SimResult::toJson) goes through
 * JsonWriter instead of hand-rolled string concatenation, so the
 * escaping and comma discipline live in exactly one place. The
 * matching jsonValid() checker is what the tests (and any external
 * harness) use to assert that emitted files actually parse.
 */

#ifndef UHLL_OBS_JSON_HH
#define UHLL_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uhll {

/**
 * A forward-only JSON builder. Objects and arrays are opened and
 * closed explicitly; the writer inserts commas and (in pretty mode)
 * indentation. Keys and string values are escaped per RFC 8259.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

    /** @name Structure */
    /// @{
    JsonWriter &beginObject(const std::string &key = "");
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();
    /// @}

    /** @name Values (with @p key inside objects, "" inside arrays) */
    /// @{
    JsonWriter &value(const std::string &key, const std::string &v);
    JsonWriter &value(const std::string &key, const char *v);
    JsonWriter &value(const std::string &key, uint64_t v);
    JsonWriter &value(const std::string &key, int64_t v);
    JsonWriter &value(const std::string &key, double v);
    JsonWriter &value(const std::string &key, bool v);
    /** Splice @p raw (already-valid JSON) in as a value. */
    JsonWriter &raw(const std::string &key, const std::string &raw);
    /// @}

    /** The finished document. Panics if containers are still open. */
    std::string str() const;

    /** Escape @p s as a quoted JSON string literal. */
    static std::string quote(const std::string &s);

  private:
    void prefix(const std::string &key);
    void indent();

    std::string out_;
    std::vector<bool> needComma_;   //!< per open container
    bool pretty_;
};

/**
 * Validate that @p text is one complete JSON value (RFC 8259 subset:
 * objects, arrays, strings, numbers, true/false/null). On failure
 * returns false and, when @p err is non-null, stores a diagnostic
 * with the byte offset of the problem.
 */
bool jsonValid(const std::string &text, std::string *err = nullptr);

/**
 * A parsed JSON document (the reader half of this module, used by
 * the batch-manifest loader in src/driver/). The tree is a plain
 * value type; object fields keep their source order. Accessors are
 * forgiving -- a missing key or a kind mismatch yields the caller's
 * default -- so manifest code reads as a sequence of lookups, with
 * require() for the fields that must exist.
 */
struct JsonValue {
    enum class Kind : uint8_t {
        Null, Bool, Number, String, Array, Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;                           //!< Array
    std::vector<std::pair<std::string, JsonValue>> fields;  //!< Object

    /**
     * Parse one complete JSON value. Throws FatalError with an
     * offset diagnostic on malformed input (same grammar as
     * jsonValid()).
     */
    static JsonValue parse(const std::string &text);

    /** @name Object / array access */
    /// @{
    /** Field @p key of an object, or null when absent / not an
     * object. */
    const JsonValue *get(const std::string &key) const;

    /** Field @p key; fatal() naming @p key when absent. */
    const JsonValue &require(const std::string &key) const;

    bool has(const std::string &key) const { return get(key); }
    /// @}

    /** @name Typed reads (return @p dflt on kind mismatch) */
    /// @{
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    std::string asString(const std::string &dflt = "") const;
    bool asBool(bool dflt = false) const;
    double asNumber(double dflt = 0) const;
    uint64_t asU64(uint64_t dflt = 0) const;
    /// @}
};

} // namespace uhll

#endif // UHLL_OBS_JSON_HH
