/**
 * @file
 * Minimal JSON emission and validation for the observability layer.
 *
 * Every machine-readable artefact the toolkit writes (stats dumps,
 * Chrome traces, BENCH_sim.json, SimResult::toJson) goes through
 * JsonWriter instead of hand-rolled string concatenation, so the
 * escaping and comma discipline live in exactly one place. The
 * matching jsonValid() checker is what the tests (and any external
 * harness) use to assert that emitted files actually parse.
 */

#ifndef UHLL_OBS_JSON_HH
#define UHLL_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uhll {

/**
 * A forward-only JSON builder. Objects and arrays are opened and
 * closed explicitly; the writer inserts commas and (in pretty mode)
 * indentation. Keys and string values are escaped per RFC 8259.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

    /** @name Structure */
    /// @{
    JsonWriter &beginObject(const std::string &key = "");
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();
    /// @}

    /** @name Values (with @p key inside objects, "" inside arrays) */
    /// @{
    JsonWriter &value(const std::string &key, const std::string &v);
    JsonWriter &value(const std::string &key, const char *v);
    JsonWriter &value(const std::string &key, uint64_t v);
    JsonWriter &value(const std::string &key, int64_t v);
    JsonWriter &value(const std::string &key, double v);
    JsonWriter &value(const std::string &key, bool v);
    /** Splice @p raw (already-valid JSON) in as a value. */
    JsonWriter &raw(const std::string &key, const std::string &raw);
    /// @}

    /** The finished document. Panics if containers are still open. */
    std::string str() const;

    /** Escape @p s as a quoted JSON string literal. */
    static std::string quote(const std::string &s);

  private:
    void prefix(const std::string &key);
    void indent();

    std::string out_;
    std::vector<bool> needComma_;   //!< per open container
    bool pretty_;
};

/**
 * Validate that @p text is one complete JSON value (RFC 8259 subset:
 * objects, arrays, strings, numbers, true/false/null). On failure
 * returns false and, when @p err is non-null, stores a diagnostic
 * with the byte offset of the problem.
 */
bool jsonValid(const std::string &text, std::string *err = nullptr);

} // namespace uhll

#endif // UHLL_OBS_JSON_HH
