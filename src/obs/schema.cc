#include "obs/schema.hh"

#include <cctype>

#include "obs/json.hh"
#include "support/logging.hh"

namespace uhll {

unsigned
schemaMajor(const std::string &tag)
{
    // "uhll/v<major>[.<minor>]"
    static const char kPrefix[] = "uhll/v";
    if (tag.rfind(kPrefix, 0) != 0)
        return 0;
    size_t i = sizeof(kPrefix) - 1;
    if (i >= tag.size()
        || !std::isdigit(static_cast<unsigned char>(tag[i])))
        return 0;
    unsigned major = 0;
    while (i < tag.size()
           && std::isdigit(static_cast<unsigned char>(tag[i]))) {
        major = major * 10 + static_cast<unsigned>(tag[i] - '0');
        ++i;
    }
    if (i == tag.size())
        return major;
    // Only a ".<digits>" minor suffix is allowed past the major.
    if (tag[i] != '.' || i + 1 == tag.size())
        return 0;
    for (++i; i < tag.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tag[i])))
            return 0;
    }
    return major;
}

std::string
checkSchemaTag(const std::string &tag)
{
    const unsigned major = schemaMajor(tag);
    if (major == 0) {
        return strfmt("not an uhll schema tag: '%s' (expected "
                      "\"uhll/v<major>\", e.g. \"%s\")",
                      tag.c_str(), kSchemaTag);
    }
    if (major != kSchemaMajor) {
        return strfmt("unsupported schema '%s' (this build speaks "
                      "%s)",
                      tag.c_str(), kSchemaTag);
    }
    return "";
}

void
writeSchemaField(JsonWriter &w)
{
    w.value("schema", kSchemaTag);
}

std::string
checkDocumentSchema(const JsonValue &root)
{
    if (!root.isObject())
        return "";
    const JsonValue *tag = root.get("schema");
    if (!tag)
        return "";
    if (!tag->isString())
        return "'schema' field is not a string";
    return checkSchemaTag(tag->str);
}

} // namespace uhll
