/**
 * @file
 * Cycle-attribution profiler for the micro simulator.
 *
 * Accumulates per-control-store-address execution, cycle, stall and
 * fault-overhead counts. The recording side is two vector indexings
 * per retired word, so profiled runs stay close to full speed and --
 * because nothing architectural is touched -- are bit-identical to
 * unprofiled ones on both the fast and the forced-slow path.
 *
 * Reports aggregate either per microword ("hot microword" table) or,
 * through the ControlStore's source-note line table attached by masm
 * and the codegen emitter, per source line / MIR location ("hot
 * line" table). The address->annotation mapping is supplied as
 * callbacks so this layer stays free of machine dependencies.
 */

#ifndef UHLL_OBS_PROFILE_HH
#define UHLL_OBS_PROFILE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace uhll {

/** Accumulated counts for one control-store address. */
struct ProfileSite {
    uint32_t addr = 0;
    uint64_t execs = 0;         //!< words retired at this address
    uint64_t fastExecs = 0;     //!< of which via the fast path
    uint64_t cycles = 0;        //!< cycles attributed (incl. stalls)
    uint64_t stallCycles = 0;
    uint64_t faults = 0;        //!< page faults raised here
    uint64_t faultCycles = 0;   //!< trap service overhead attributed
};

class CycleProfiler
{
  public:
    /** Record one retired word at @p addr. */
    void
    record(uint32_t addr, uint64_t cycles, uint64_t stalls, bool fast)
    {
        Counts &c = at(addr);
        ++c.execs;
        c.fastExecs += fast;
        c.cycles += cycles;
        c.stallCycles += stalls;
    }

    /** Record a page fault at @p addr costing @p cycles overall. */
    void
    recordFault(uint32_t addr, uint64_t cycles)
    {
        Counts &c = at(addr);
        ++c.faults;
        c.faultCycles += cycles;
    }

    /** Total cycles attributed (word + fault overhead). */
    uint64_t totalCycles() const;
    uint64_t totalWords() const;

    /** Every address with activity, hottest (most cycles) first. */
    std::vector<ProfileSite> sites() const;

    void clear() { counts_.clear(); }

    /** Renders a control-store address for report rows. */
    using DescribeFn = std::function<std::string(uint32_t)>;
    /** Source line of an address, or -1 when unannotated. */
    using LineOfFn = std::function<int32_t(uint32_t)>;

    /**
     * The "hot microword" table: top @p top_n addresses by attributed
     * cycles with exec/stall/fault breakdown and cumulative share.
     */
    std::string report(size_t top_n,
                       const DescribeFn &describe = {}) const;

    /**
     * The "hot source line" table: sites aggregated by
     * @p line_of (addresses with no line fold into one "unmapped"
     * row), top @p top_n lines by cycles. @p describe renders a
     * representative address of each line.
     */
    std::string lineReport(size_t top_n, const LineOfFn &line_of,
                           const DescribeFn &describe = {}) const;

    /** Both tables' data as JSON (top @p top_n sites). */
    std::string toJson(size_t top_n, const LineOfFn &line_of = {},
                       const DescribeFn &describe = {}) const;

  private:
    struct Counts {
        uint64_t execs = 0;
        uint64_t fastExecs = 0;
        uint64_t cycles = 0;
        uint64_t stallCycles = 0;
        uint64_t faults = 0;
        uint64_t faultCycles = 0;
    };

    Counts &
    at(uint32_t addr)
    {
        if (addr >= counts_.size())
            counts_.resize(addr + 1);
        return counts_[addr];
    }

    std::vector<Counts> counts_;    //!< indexed by address
};

} // namespace uhll

#endif // UHLL_OBS_PROFILE_HH
