/**
 * @file
 * Microtrace: a fixed-capacity ring buffer of structured simulator
 * events.
 *
 * The simulator records one compact POD record per interesting event
 * (word executed, stall, page fault, interrupt arrival/service,
 * overlapped commit, control transfer of interest); the ring keeps
 * the most recent `capacity` records, counting what it dropped, so
 * tracing a billion-cycle run is bounded memory. Each record carries
 * a category (filterable via a bitmask before recording, so filtered
 * categories cost one predictable branch) and a severity.
 *
 * Two exporters: a human-readable text dump, and the Chrome
 * trace_event JSON format (chrome://tracing, Perfetto, speedscope),
 * mapping one microcycle to one microsecond of trace time.
 */

#ifndef UHLL_OBS_TRACE_HH
#define UHLL_OBS_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace uhll {

class JsonWriter;

/** Event category; each has a bit in the filter mask. */
enum class TraceCat : uint8_t {
    Word,       //!< a microword executed (a = cycles taken, b = fast)
    Stall,      //!< a word stalled (a = stall cycles)
    Fault,      //!< page fault (a = faulting memory address)
    Interrupt,  //!< a = 0 arrival, 1 = acknowledged (b = latency),
                //!< 2 = spurious arrival (injected)
    Overlap,    //!< pending write enqueued (a = isMem, b = commit cycle)
    Control,    //!< halt / trap restart (a = 0 halt, 1 = restart)
    Inject,     //!< fault injected (a = FaultKind, b = addr/detail)
    Recover,    //!< recovery action (a = RecoverAction, b = detail)
    Supervise,  //!< supervision event (a = SuperviseAction, b = detail)
};
constexpr size_t kNumTraceCats = 9;

/** Payload `a` of a TraceCat::Recover record. */
enum class RecoverAction : uint8_t {
    ParityRefetch,  //!< control-store re-fetch (b = refetch number)
    MemRetry,       //!< uncorrectable-read retry (b = address)
    EccTrap,        //!< retries exhausted, microtrap (b = address)
    WatchdogTrip,   //!< no-retire watchdog fired (b = idle cycles)
    Livelock,       //!< consecutive faulting restarts (b = count)
};

/** Payload `a` of a TraceCat::Supervise record. */
enum class SuperviseAction : uint8_t {
    Checkpoint,     //!< state captured (b = checkpoint ordinal)
    Restore,        //!< resumed from a checkpoint (b = ordinal)
    Retry,          //!< recoverable error, re-executing (b = attempt)
    Backoff,        //!< retry delayed (b = delay in milliseconds)
    Divergence,     //!< DMR lanes disagreed (b = retired words)
    Rollback,       //!< lanes rolled back to the last agreeing
                    //!< checkpoint (b = retired words there)
    Cancel,         //!< cancellation token observed
    Deadline,       //!< wall-clock deadline passed
};

/** Bit for @p c in a category filter mask. */
constexpr uint32_t
traceBit(TraceCat c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Mask accepting every category. */
constexpr uint32_t kTraceAll = (1u << kNumTraceCats) - 1;

enum class TraceSev : uint8_t { Info, Warning };

const char *traceCatName(TraceCat c);

/** One trace record. POD, 24 bytes: recording is a ring store. */
struct TraceRecord {
    uint64_t cycle = 0;
    uint32_t upc = 0;
    uint32_t a = 0;         //!< category-specific payload
    uint32_t b = 0;         //!< category-specific payload
    TraceCat cat = TraceCat::Word;
    TraceSev sev = TraceSev::Info;
};

/** One record's category-specific payload as human-readable text
 *  ("3 cycles (fast)", "checkpoint #2"); the flight recorder's view. */
std::string traceRecordText(const TraceRecord &r);

/** The fixed-capacity event ring. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(size_t capacity = 4096,
                         uint32_t cat_mask = kTraceAll);

    /** Restrict recording to the categories in @p mask. */
    void setFilter(uint32_t mask) { mask_ = mask & kTraceAll; }
    uint32_t filter() const { return mask_; }

    /** One predictable test the simulator makes before recording. */
    bool wants(TraceCat c) const { return mask_ & traceBit(c); }

    /** Record an event (dropped silently if filtered out). */
    void
    record(TraceCat cat, TraceSev sev, uint64_t cycle, uint32_t upc,
           uint32_t a = 0, uint32_t b = 0)
    {
        if (!wants(cat))
            return;
        TraceRecord &r = ring_[head_];
        r.cycle = cycle;
        r.upc = upc;
        r.a = a;
        r.b = b;
        r.cat = cat;
        r.sev = sev;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++recorded_;
    }

    size_t capacity() const { return ring_.size(); }
    /** Records currently retained (== capacity once wrapped). */
    size_t size() const;
    /** Total records accepted, including those the ring dropped. */
    uint64_t recorded() const { return recorded_; }
    uint64_t dropped() const { return recorded_ - size(); }

    /** Retained record @p i, oldest first. */
    const TraceRecord &at(size_t i) const;

    void clear();

    /**
     * Human-readable dump, oldest first. @p describe, when given,
     * renders a control-store address (label/source annotation).
     */
    std::string dumpText(
        const std::function<std::string(uint32_t)> &describe = {}) const;

    /**
     * Chrome trace_event JSON: Word records become complete ("X")
     * slices with their cycle duration, everything else instant
     * ("i") events; 1 microcycle = 1 us of trace time.
     */
    std::string toChromeJson(
        const std::function<std::string(uint32_t)> &describe = {}) const;

    /**
     * Emit this ring's records as Chrome trace_event objects into an
     * already-open "traceEvents" array of @p w, on process @p pid.
     * Shared by toChromeJson() and the merged span/microtrace export
     * (SpanTracer::chromeJson) so both render identically.
     */
    void chromeEvents(
        JsonWriter &w, uint64_t pid,
        const std::function<std::string(uint32_t)> &describe = {}) const;

  private:
    std::vector<TraceRecord> ring_;
    size_t head_ = 0;           //!< next slot to write
    uint64_t recorded_ = 0;
    uint32_t mask_;
};

} // namespace uhll

#endif // UHLL_OBS_TRACE_HH
