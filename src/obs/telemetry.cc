#include "obs/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include <sys/stat.h>

#include "obs/json.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "support/fsio.hh"
#include "support/logging.hh"

namespace uhll {

const char *
spanCatName(SpanCat c)
{
    switch (c) {
      case SpanCat::Batch: return "batch";
      case SpanCat::Job: return "job";
      case SpanCat::Translate: return "translate";
      case SpanCat::Compile: return "compile";
      case SpanCat::Allocate: return "allocate";
      case SpanCat::Compact: return "compact";
      case SpanCat::Decode: return "decode";
      case SpanCat::Sim: return "sim";
      case SpanCat::Supervise: return "supervise";
      case SpanCat::Jit: return "jit";
      case SpanCat::Service: return "service";
    }
    return "?";
}

// ----------------------------------------------------------------
// SpanTracer
// ----------------------------------------------------------------

SpanTracer &
SpanTracer::instance()
{
    static SpanTracer tracer;
    return tracer;
}

void
SpanTracer::enable(size_t per_lane_capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    lanes_.clear();
    laneCapacity_ = per_lane_capacity ? per_lane_capacity : 1;
    epoch_ = std::chrono::steady_clock::now();
    // Bumping the generation invalidates every thread's cached lane
    // pointer, so stale lanes from a previous enable() are never
    // written again.
    generation_.fetch_add(1, std::memory_order_release);
    enabled_.store(true, std::memory_order_release);
}

void
SpanTracer::disable()
{
    enabled_.store(false, std::memory_order_release);
}

uint64_t
SpanTracer::nowUs() const
{
    if (!enabled())
        return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SpanTracer::Lane *
SpanTracer::laneForThisThread() const
{
    // One registry lock per (thread, enable() call); every record
    // after that is a plain vector append on thread-private storage.
    thread_local uint64_t cached_gen = ~0ULL;
    thread_local Lane *cached = nullptr;
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    if (cached_gen != gen) {
        std::lock_guard<std::mutex> lock(mu_);
        auto lane = std::make_unique<Lane>();
        lane->capacity = laneCapacity_;
        lane->name = strfmt("lane-%zu", lanes_.size());
        cached = lane.get();
        lanes_.push_back(std::move(lane));
        cached_gen = gen;
    }
    return cached;
}

void
SpanTracer::setLaneName(const std::string &name)
{
    if (!enabled())
        return;
    Lane *lane = laneForThisThread();
    std::lock_guard<std::mutex> lock(mu_);
    lane->name = name;
}

void
SpanTracer::complete(SpanCat cat, std::string name, uint64_t ts_us,
                     uint64_t dur_us)
{
    if (!enabled())
        return;
    Lane *lane = laneForThisThread();
    if (lane->events.size() >= lane->capacity) {
        ++lane->dropped;
        return;
    }
    SpanEvent e;
    e.tsUs = ts_us;
    e.durUs = dur_us;
    e.cat = cat;
    e.name = std::move(name);
    lane->events.push_back(std::move(e));
}

void
SpanTracer::instant(SpanCat cat, std::string name)
{
    if (!enabled())
        return;
    Lane *lane = laneForThisThread();
    if (lane->events.size() >= lane->capacity) {
        ++lane->dropped;
        return;
    }
    SpanEvent e;
    e.tsUs = nowUs();
    e.cat = cat;
    e.instant = true;
    e.name = std::move(name);
    lane->events.push_back(std::move(e));
}

SpanTracer::Collected
SpanTracer::collect() const
{
    Collected out;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < lanes_.size(); ++i) {
        out.laneNames.push_back(lanes_[i]->name);
        out.dropped += lanes_[i]->dropped;
        for (const SpanEvent &e : lanes_[i]->events) {
            SpanEvent copy = e;
            copy.lane = static_cast<uint32_t>(i);
            out.events.push_back(std::move(copy));
        }
    }
    // A total order, so two collects over the same buffers are
    // byte-identical: time, then lane, then longest-first (parents
    // sort before the children they contain), then name.
    std::sort(out.events.begin(), out.events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  if (a.lane != b.lane)
                      return a.lane < b.lane;
                  if (a.durUs != b.durUs)
                      return a.durUs > b.durUs;
                  return a.name < b.name;
              });
    return out;
}

std::vector<SpanEvent>
SpanTracer::recentOnThread(size_t n) const
{
    std::vector<SpanEvent> out;
    if (!enabled())
        return out;
    const Lane *lane = laneForThisThread();
    std::lock_guard<std::mutex> lock(mu_);
    const size_t total = lane->events.size();
    const size_t start = total > n ? total - n : 0;
    out.assign(lane->events.begin() + start, lane->events.end());
    return out;
}

namespace {

void
writeSpanEvent(JsonWriter &w, const SpanEvent &e)
{
    w.beginObject();
    w.value("name", e.name);
    if (e.instant) {
        w.value("ph", "i");
        w.value("s", "t");
    } else {
        w.value("ph", "X");
        w.value("dur", e.durUs);
    }
    w.value("cat", spanCatName(e.cat));
    w.value("ts", e.tsUs);
    w.value("pid", uint64_t(0));
    w.value("tid", uint64_t(e.lane));
    w.endObject();
}

void
writeThreadName(JsonWriter &w, uint64_t pid, uint64_t tid,
                const std::string &name)
{
    w.beginObject();
    w.value("name", "thread_name");
    w.value("ph", "M");
    w.value("pid", pid);
    w.value("tid", tid);
    w.beginObject("args").value("name", name).endObject();
    w.endObject();
}

void
writeProcessName(JsonWriter &w, uint64_t pid, const std::string &name)
{
    w.beginObject();
    w.value("name", "process_name");
    w.value("ph", "M");
    w.value("pid", pid);
    w.value("tid", uint64_t(0));
    w.beginObject("args").value("name", name).endObject();
    w.endObject();
}

} // namespace

std::string
SpanTracer::chromeJson(
    const TraceBuffer *micro,
    const std::function<std::string(uint32_t)> &describe) const
{
    const Collected c = collect();

    JsonWriter w(false);
    w.beginObject();
    w.value("displayTimeUnit", "ms");
    w.beginArray("traceEvents");
    writeProcessName(w, 0, "uhll driver");
    for (size_t i = 0; i < c.laneNames.size(); ++i)
        writeThreadName(w, 0, i, c.laneNames[i]);
    for (const SpanEvent &e : c.events)
        writeSpanEvent(w, e);
    if (micro) {
        writeProcessName(w, 1, "uhll microsimulator");
        micro->chromeEvents(w, 1, describe);
    }
    w.endArray();
    if (c.dropped)
        w.value("uhll_dropped_spans", c.dropped);
    if (micro && micro->dropped())
        w.value("uhll_dropped_records", micro->dropped());

    // Per-category span-duration histograms: the Histogram percentile
    // readout over wall-clock microseconds (diagnostic only -- never
    // part of a deterministic dump).
    std::map<std::string, Histogram> durs;
    for (const SpanEvent &e : c.events) {
        if (e.instant)
            continue;
        auto it = durs.find(spanCatName(e.cat));
        if (it == durs.end()) {
            it = durs.emplace(spanCatName(e.cat), Histogram(100, 64))
                     .first;
        }
        it->second.sample(e.durUs);
    }
    if (!durs.empty()) {
        w.beginObject("uhll_span_stats");
        for (const auto &[cat, h] : durs) {
            w.beginObject(cat);
            w.value("samples", h.samples());
            w.value("sum_us", h.sum());
            w.value("min_us", h.min());
            w.value("max_us", h.max());
            w.value("mean_us", h.mean());
            w.value("p50_us", h.percentile(50));
            w.value("p95_us", h.percentile(95));
            w.value("p99_us", h.percentile(99));
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

// ----------------------------------------------------------------
// Metrics exporters
// ----------------------------------------------------------------

std::string
metricsToJsonl(const std::vector<MetricsSample> &samples,
               bool include_volatile)
{
    std::string out;
    for (const MetricsSample &s : samples) {
        JsonWriter w(false);
        w.beginObject();
        w.value("job", s.label);
        w.value("seq", s.seq);
        w.value("cycles", s.cycles);
        w.raw("stats",
              include_volatile ? s.statsFull : s.statsClean);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    return out;
}

namespace {

std::string
promName(const std::string &dotted)
{
    std::string out = "uhll_";
    for (char c : dotted) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
promLabel(const std::string &v)
{
    std::string out;
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
promNumber(double v)
{
    if (!std::isfinite(v))
        return "NaN";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strfmt("%.0f", v);
    return strfmt("%.6g", v);
}

struct PromFamily {
    std::string type;                //!< "gauge" or "histogram"
    std::vector<std::string> lines;  //!< full exposition lines
};

bool
looksLikeHistogram(const JsonValue &v)
{
    return v.isObject() && v.get("buckets") && v.get("bucket_width") &&
           v.get("samples") && v.get("sum");
}

void
flattenStats(const JsonValue &v, const std::string &prefix,
             const std::string &label,
             std::map<std::string, PromFamily> &fams)
{
    if (looksLikeHistogram(v)) {
        PromFamily &f = fams[promName(prefix)];
        f.type = "histogram";
        const std::string name = promName(prefix);
        const JsonValue &buckets = *v.get("buckets");
        const uint64_t width = v.get("bucket_width")->asU64(1);
        uint64_t cum = 0;
        for (size_t i = 0; i < buckets.items.size(); ++i) {
            cum += buckets.items[i].asU64();
            const std::string le =
                i + 1 == buckets.items.size()
                    ? std::string("+Inf")
                    : strfmt("%llu",
                             (unsigned long long)((i + 1) * width));
            f.lines.push_back(strfmt(
                "%s_bucket{job=\"%s\",le=\"%s\"} %llu", name.c_str(),
                label.c_str(), le.c_str(), (unsigned long long)cum));
        }
        f.lines.push_back(strfmt(
            "%s_sum{job=\"%s\"} %llu", name.c_str(), label.c_str(),
            (unsigned long long)v.get("sum")->asU64()));
        f.lines.push_back(strfmt(
            "%s_count{job=\"%s\"} %llu", name.c_str(), label.c_str(),
            (unsigned long long)v.get("samples")->asU64()));
        return;
    }
    if (v.isObject()) {
        for (const auto &[k, child] : v.fields) {
            const std::string next =
                prefix.empty() ? k : prefix + "_" + k;
            flattenStats(child, next, label, fams);
        }
        return;
    }
    double num;
    if (v.kind == JsonValue::Kind::Number)
        num = v.number;
    else if (v.kind == JsonValue::Kind::Bool)
        num = v.boolean ? 1 : 0;
    else
        return;  // strings/null have no exposition
    PromFamily &f = fams[promName(prefix)];
    f.type = "gauge";
    f.lines.push_back(strfmt("%s{job=\"%s\"} %s",
                             promName(prefix).c_str(), label.c_str(),
                             promNumber(num).c_str()));
}

} // namespace

std::string
metricsToPrometheus(const std::vector<MetricsSample> &samples,
                    bool include_volatile)
{
    // Last sample per label, preserving first-appearance order so
    // jobs expose in batch order.
    std::vector<const MetricsSample *> finals;
    for (const MetricsSample &s : samples) {
        bool found = false;
        for (auto &f : finals) {
            if (f->label == s.label) {
                f = &s;
                found = true;
            }
        }
        if (!found)
            finals.push_back(&s);
    }

    std::map<std::string, PromFamily> fams;
    for (const MetricsSample *s : finals) {
        const std::string &raw =
            include_volatile ? s->statsFull : s->statsClean;
        if (raw.empty())
            continue;
        flattenStats(JsonValue::parse(raw), "",
                     promLabel(s->label), fams);
    }

    std::string out;
    for (const auto &[name, fam] : fams) {
        out += strfmt("# TYPE %s %s\n", name.c_str(),
                      fam.type.c_str());
        for (const std::string &line : fam.lines) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

// ----------------------------------------------------------------
// Flight recorder
// ----------------------------------------------------------------

std::string
renderPostmortem(const PostmortemReport &p)
{
    JsonWriter w(true);
    w.beginObject();
    w.value("kind", "uhll_postmortem");
    w.value("version", uint64_t(1));
    w.value("reason", p.reason);
    if (!p.jobJson.empty())
        w.raw("job", p.jobJson);
    if (!p.diagnostics.empty()) {
        w.beginArray("diagnostics");
        for (const std::string &d : p.diagnostics)
            w.value("", d);
        w.endArray();
    }
    if (!p.errorJson.empty())
        w.raw("error", p.errorJson);
    if (!p.divergenceJson.empty())
        w.raw("divergence", p.divergenceJson);
    if (!p.registersJson.empty())
        w.raw("registers", p.registersJson);
    if (!p.statsJson.empty())
        w.raw("stats", p.statsJson);
    if (!p.microtraceJson.empty())
        w.raw("microtrace", p.microtraceJson);
    if (!p.spansJson.empty())
        w.raw("spans", p.spansJson);
    w.endObject();
    return w.str();
}

std::string
microtraceJson(const TraceBuffer &t, size_t last_n,
               const std::function<std::string(uint32_t)> &describe)
{
    JsonWriter w(false);
    w.beginArray();
    const size_t total = t.size();
    const size_t start = total > last_n ? total - last_n : 0;
    for (size_t i = start; i < total; ++i) {
        const TraceRecord &r = t.at(i);
        w.beginObject();
        w.value("cycle", r.cycle);
        w.value("upc", uint64_t(r.upc));
        w.value("cat", traceCatName(r.cat));
        w.value("severity",
                r.sev == TraceSev::Warning ? "warning" : "info");
        w.value("text", traceRecordText(r));
        if (describe) {
            const std::string d = describe(r.upc);
            if (!d.empty())
                w.value("at", d);
        }
        w.endObject();
    }
    w.endArray();
    return w.str();
}

std::string
spanEventsJson(const std::vector<SpanEvent> &events)
{
    JsonWriter w(false);
    w.beginArray();
    for (const SpanEvent &e : events) {
        w.beginObject();
        w.value("ts_us", e.tsUs);
        if (!e.instant)
            w.value("dur_us", e.durUs);
        w.value("cat", spanCatName(e.cat));
        w.value("name", e.name);
        w.endObject();
    }
    w.endArray();
    return w.str();
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::string err;
    if (!atomicWriteDurable(path, content, &err)) {
        warn("telemetry: %s", err.c_str());
        return false;
    }
    return true;
}

std::string
postmortemPath(const std::string &dir, const std::string &job_name)
{
    std::string base;
    for (char c : job_name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '-' || c == '_';
        base += ok ? c : '_';
    }
    if (base.empty())
        base = "job";
    return dir + "/" + base + ".postmortem.json";
}

std::string
writePostmortem(const std::string &dir, const std::string &job_name,
                const PostmortemReport &p)
{
    ::mkdir(dir.c_str(), 0777);  // EEXIST is the common case
    const std::string path = postmortemPath(dir, job_name);
    if (!writeFileAtomic(path, renderPostmortem(p) + "\n"))
        return "";
    return path;
}

} // namespace uhll
