#include "obs/stats.hh"

#include <algorithm>
#include <cmath>

#include "obs/json.hh"
#include "support/logging.hh"

namespace uhll {

uint64_t &
StatsRegistry::scalar(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = scalars_.try_emplace(name);
    if (inserted) {
        it->second.desc = desc;
    } else if (it->second.bound) {
        fatal("stats: scalar '%s' is bound, cannot return owned "
              "storage", name.c_str());
    }
    return it->second.own;
}

void
StatsRegistry::bindScalar(const std::string &name,
                          const uint64_t *storage,
                          const std::string &desc)
{
    UHLL_ASSERT(storage != nullptr);
    ScalarStat &s = scalars_[name];
    s.desc = desc;
    s.ptr = storage;
    s.bound = true;
}

Histogram &
StatsRegistry::histogram(const std::string &name,
                         uint64_t bucket_width, size_t num_buckets,
                         const std::string &desc)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name,
                                 Histogram(bucket_width, num_buckets))
                 .first;
    }
    (void)desc;
    return it->second;
}

void
StatsRegistry::formula(const std::string &name,
                       std::function<double()> fn,
                       const std::string &desc)
{
    formulas_[name] = FormulaStat{desc, std::move(fn)};
}

uint64_t
StatsRegistry::value(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        fatal("stats: no scalar '%s'", name.c_str());
    return it->second.get();
}

bool
StatsRegistry::has(const std::string &name) const
{
    return scalars_.count(name) || histograms_.count(name) ||
           formulas_.count(name);
}

void
StatsRegistry::markVolatile(const std::string &name)
{
    volatileNames_.insert(name);
}

bool
StatsRegistry::isVolatile(const std::string &name) const
{
    return volatileNames_.count(name) != 0;
}

void
StatsRegistry::reset()
{
    for (auto &[n, s] : scalars_) {
        if (!s.bound)
            s.own = 0;
    }
    for (auto &[n, h] : histograms_)
        h.reset();
}

std::string
StatsRegistry::dumpText() const
{
    std::string out;
    auto line = [&](const std::string &name, const std::string &val,
                    const std::string &desc) {
        out += strfmt("%-40s %20s", name.c_str(), val.c_str());
        if (!desc.empty())
            out += strfmt("  # %s", desc.c_str());
        out += '\n';
    };
    for (const auto &[name, s] : scalars_)
        line(name, strfmt("%llu", (unsigned long long)s.get()),
             s.desc);
    for (const auto &[name, h] : histograms_) {
        line(name,
             strfmt("n=%llu avg=%.2f", (unsigned long long)h.samples(),
                    h.mean()),
             strfmt("min=%llu max=%llu p50=%.1f p95=%.1f p99=%.1f",
                    (unsigned long long)h.min(),
                    (unsigned long long)h.max(), h.percentile(50),
                    h.percentile(95), h.percentile(99)));
        const auto &b = h.buckets();
        for (size_t i = 0; i < b.size(); ++i) {
            if (!b[i])
                continue;
            std::string bname =
                i + 1 == b.size()
                    ? strfmt("%s.bucket[%llu+]", name.c_str(),
                             (unsigned long long)(i * h.bucketWidth()))
                    : strfmt("%s.bucket[%llu-%llu]", name.c_str(),
                             (unsigned long long)(i * h.bucketWidth()),
                             (unsigned long long)((i + 1) * h.bucketWidth() - 1));
            line(bname, strfmt("%llu", (unsigned long long)b[i]), "");
        }
    }
    for (const auto &[name, f] : formulas_)
        line(name, strfmt("%.4f", f.fn ? f.fn() : 0.0), f.desc);
    return out;
}

std::string
StatsRegistry::toJson(bool pretty, bool include_volatile) const
{
    // Merge the three sorted maps into one sorted (name, raw-json)
    // list, then nest on the '.' separators.
    auto keep = [&](const std::string &name) {
        return include_volatile || !volatileNames_.count(name);
    };
    std::vector<std::pair<std::string, std::string>> leaves;
    for (const auto &[name, s] : scalars_) {
        if (!keep(name))
            continue;
        leaves.emplace_back(
            name, strfmt("%llu", (unsigned long long)s.get()));
    }
    for (const auto &[name, h] : histograms_) {
        if (!keep(name))
            continue;
        JsonWriter w(false);
        w.beginObject();
        w.value("samples", h.samples());
        w.value("sum", h.sum());
        w.value("min", h.min());
        w.value("max", h.max());
        w.value("mean", h.mean());
        w.value("p50", h.percentile(50));
        w.value("p95", h.percentile(95));
        w.value("p99", h.percentile(99));
        w.value("bucket_width", h.bucketWidth());
        w.beginArray("buckets");
        for (uint64_t b : h.buckets())
            w.value("", b);
        w.endArray();
        w.endObject();
        leaves.emplace_back(name, w.str());
    }
    for (const auto &[name, f] : formulas_) {
        if (!keep(name))
            continue;
        double v = f.fn ? f.fn() : 0.0;
        leaves.emplace_back(name, std::isfinite(v)
                                      ? strfmt("%.6g", v)
                                      : std::string("null"));
    }
    std::sort(leaves.begin(), leaves.end());

    JsonWriter w(pretty);
    w.beginObject();
    std::vector<std::string> open;  // current group path
    auto split = [](const std::string &name) {
        std::vector<std::string> parts;
        size_t start = 0;
        for (size_t dot; (dot = name.find('.', start)) !=
                         std::string::npos;
             start = dot + 1) {
            parts.push_back(name.substr(start, dot - start));
        }
        parts.push_back(name.substr(start));
        return parts;
    };
    for (const auto &[name, raw] : leaves) {
        std::vector<std::string> parts = split(name);
        // Close groups that no longer match, open the new ones.
        size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        for (size_t i = common; i + 1 < parts.size(); ++i) {
            w.beginObject(parts[i]);
            open.push_back(parts[i]);
        }
        w.raw(parts.back(), raw);
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
    return w.str();
}

} // namespace uhll
