/**
 * @file
 * The versioned report/wire schema tag.
 *
 * Every top-level JSON document the toolkit emits -- a JobResult, a
 * BatchReport, a fuzz campaign report, and every uhlld protocol
 * envelope -- carries `"schema": "uhll/v1"` as its first field, so
 * the wire protocol and the on-disk artifacts share one version
 * marker. Consumers accept any minor revision of a major they know
 * ("uhll/v1.1" parses as major 1) and must reject unknown majors:
 * that is the compatibility contract, and `uhllc --validate-json`
 * enforces it as the referee.
 */

#ifndef UHLL_OBS_SCHEMA_HH
#define UHLL_OBS_SCHEMA_HH

#include <string>

namespace uhll {

class JsonWriter;
struct JsonValue;

/** The schema tag current builds emit. */
inline constexpr const char *kSchemaTag = "uhll/v1";

/** The major version current builds understand. */
inline constexpr unsigned kSchemaMajor = 1;

/**
 * The major version of @p tag ("uhll/v1" and "uhll/v1.3" both give
 * 1), or 0 when @p tag is not an uhll schema tag at all.
 */
unsigned schemaMajor(const std::string &tag);

/**
 * "" when @p tag names a major this build accepts, else a
 * diagnostic ("unsupported schema 'uhll/v9' (this build speaks
 * uhll/v1)").
 */
std::string checkSchemaTag(const std::string &tag);

/** Emit the leading `"schema": "uhll/v1"` field into an open
 *  object. Call first so the tag is the document's first field. */
void writeSchemaField(JsonWriter &w);

/**
 * Validate the envelope of a parsed document: a top-level object
 * with a "schema" field must carry an accepted major. Returns "" for
 * acceptance -- including documents with no "schema" field at all
 * (plain JSON predating the envelope) -- and a diagnostic otherwise.
 */
std::string checkDocumentSchema(const JsonValue &root);

} // namespace uhll

#endif // UHLL_OBS_SCHEMA_HH
