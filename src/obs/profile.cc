#include "obs/profile.hh"

#include <algorithm>
#include <map>

#include "obs/json.hh"
#include "support/logging.hh"

namespace uhll {

uint64_t
CycleProfiler::totalCycles() const
{
    uint64_t t = 0;
    for (const Counts &c : counts_)
        t += c.cycles + c.faultCycles;
    return t;
}

uint64_t
CycleProfiler::totalWords() const
{
    uint64_t t = 0;
    for (const Counts &c : counts_)
        t += c.execs;
    return t;
}

std::vector<ProfileSite>
CycleProfiler::sites() const
{
    std::vector<ProfileSite> out;
    for (uint32_t a = 0; a < counts_.size(); ++a) {
        const Counts &c = counts_[a];
        if (!c.execs && !c.faults)
            continue;
        ProfileSite s;
        s.addr = a;
        s.execs = c.execs;
        s.fastExecs = c.fastExecs;
        s.cycles = c.cycles;
        s.stallCycles = c.stallCycles;
        s.faults = c.faults;
        s.faultCycles = c.faultCycles;
        out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const ProfileSite &x, const ProfileSite &y) {
                  uint64_t cx = x.cycles + x.faultCycles;
                  uint64_t cy = y.cycles + y.faultCycles;
                  if (cx != cy)
                      return cx > cy;
                  return x.addr < y.addr;
              });
    return out;
}

std::string
CycleProfiler::report(size_t top_n, const DescribeFn &describe) const
{
    std::vector<ProfileSite> ss = sites();
    const uint64_t total = totalCycles();
    std::string out;
    out += strfmt("hot microwords (%zu of %zu sites, %llu cycles "
                  "total)\n",
                  std::min(top_n, ss.size()), ss.size(),
                  (unsigned long long)total);
    out += strfmt("%6s %12s %12s %8s %8s %7s %7s\n", "addr", "cycles",
                  "execs", "stalls", "faults", "%cyc", "cum%");
    uint64_t cum = 0;
    for (size_t i = 0; i < ss.size() && i < top_n; ++i) {
        const ProfileSite &s = ss[i];
        uint64_t cyc = s.cycles + s.faultCycles;
        cum += cyc;
        out += strfmt("%6u %12llu %12llu %8llu %8llu %6.2f%% %6.2f%%",
                      s.addr, (unsigned long long)cyc,
                      (unsigned long long)s.execs,
                      (unsigned long long)s.stallCycles,
                      (unsigned long long)s.faults,
                      total ? 100.0 * cyc / total : 0.0,
                      total ? 100.0 * cum / total : 0.0);
        if (describe) {
            std::string d = describe(s.addr);
            if (!d.empty())
                out += strfmt("  %s", d.c_str());
        }
        out += '\n';
    }
    return out;
}

std::string
CycleProfiler::lineReport(size_t top_n, const LineOfFn &line_of,
                          const DescribeFn &describe) const
{
    struct LineAgg {
        uint64_t cycles = 0;
        uint64_t execs = 0;
        uint64_t stalls = 0;
        uint32_t anAddr = 0;    //!< representative address
    };
    std::map<int32_t, LineAgg> byLine;
    for (const ProfileSite &s : sites()) {
        int32_t line = line_of ? line_of(s.addr) : -1;
        LineAgg &a = byLine[line];
        if (!a.execs && !a.cycles)
            a.anAddr = s.addr;
        a.cycles += s.cycles + s.faultCycles;
        a.execs += s.execs;
        a.stalls += s.stallCycles;
    }
    std::vector<std::pair<int32_t, LineAgg>> rows(byLine.begin(),
                                                  byLine.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &x, const auto &y) {
                  return x.second.cycles > y.second.cycles;
              });
    const uint64_t total = totalCycles();
    std::string out;
    out += strfmt("hot source lines (%zu of %zu lines)\n",
                  std::min(top_n, rows.size()), rows.size());
    out += strfmt("%8s %12s %12s %8s %7s\n", "line", "cycles",
                  "execs", "stalls", "%cyc");
    for (size_t i = 0; i < rows.size() && i < top_n; ++i) {
        const auto &[line, a] = rows[i];
        out += strfmt("%8s %12llu %12llu %8llu %6.2f%%",
                      line < 0 ? "?" : strfmt("%d", line).c_str(),
                      (unsigned long long)a.cycles,
                      (unsigned long long)a.execs,
                      (unsigned long long)a.stalls,
                      total ? 100.0 * a.cycles / total : 0.0);
        if (describe) {
            std::string d = describe(a.anAddr);
            if (!d.empty())
                out += strfmt("  %s", d.c_str());
        }
        out += '\n';
    }
    return out;
}

std::string
CycleProfiler::toJson(size_t top_n, const LineOfFn &line_of,
                      const DescribeFn &describe) const
{
    std::vector<ProfileSite> ss = sites();
    JsonWriter w;
    w.beginObject();
    w.value("total_cycles", totalCycles());
    w.value("total_words", totalWords());
    w.value("sites", uint64_t(ss.size()));
    w.beginArray("hot_words");
    for (size_t i = 0; i < ss.size() && i < top_n; ++i) {
        const ProfileSite &s = ss[i];
        w.beginObject();
        w.value("addr", uint64_t(s.addr));
        w.value("cycles", s.cycles + s.faultCycles);
        w.value("execs", s.execs);
        w.value("fast_execs", s.fastExecs);
        w.value("stall_cycles", s.stallCycles);
        w.value("faults", s.faults);
        if (line_of) {
            int32_t line = line_of(s.addr);
            if (line >= 0)
                w.value("line", int64_t(line));
        }
        if (describe) {
            std::string d = describe(s.addr);
            if (!d.empty())
                w.value("where", d);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace uhll
