#include "obs/trace.hh"

#include "fault/fault.hh"
#include "obs/json.hh"
#include "support/logging.hh"

namespace uhll {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Word: return "word";
      case TraceCat::Stall: return "stall";
      case TraceCat::Fault: return "fault";
      case TraceCat::Interrupt: return "interrupt";
      case TraceCat::Overlap: return "overlap";
      case TraceCat::Control: return "control";
      case TraceCat::Inject: return "inject";
      case TraceCat::Recover: return "recover";
      case TraceCat::Supervise: return "supervise";
    }
    return "?";
}

TraceBuffer::TraceBuffer(size_t capacity, uint32_t cat_mask)
    : ring_(capacity ? capacity : 1), mask_(cat_mask & kTraceAll)
{}

size_t
TraceBuffer::size() const
{
    return recorded_ < ring_.size() ? static_cast<size_t>(recorded_)
                                    : ring_.size();
}

const TraceRecord &
TraceBuffer::at(size_t i) const
{
    UHLL_ASSERT(i < size());
    if (recorded_ <= ring_.size())
        return ring_[i];
    return ring_[(head_ + i) % ring_.size()];
}

void
TraceBuffer::clear()
{
    head_ = 0;
    recorded_ = 0;
}

namespace {

std::string
payload(const TraceRecord &r)
{
    switch (r.cat) {
      case TraceCat::Word:
        return strfmt("%u cycle%s%s", r.a, r.a == 1 ? "" : "s",
                      r.b ? " (fast)" : "");
      case TraceCat::Stall:
        return strfmt("%u stall cycle%s", r.a, r.a == 1 ? "" : "s");
      case TraceCat::Fault:
        return strfmt("mem addr 0x%x", r.a);
      case TraceCat::Interrupt:
        return r.a == 0   ? std::string("arrival")
               : r.a == 1 ? strfmt("acknowledged, latency %u", r.b)
                          : std::string("spurious arrival");
      case TraceCat::Overlap:
        return strfmt("%s commit at cycle %u",
                      r.a ? "memory" : "register", r.b);
      case TraceCat::Control:
        return r.a == 0 ? std::string("halt")
                        : std::string("trap restart");
      case TraceCat::Inject:
        return strfmt("%s at 0x%x",
                      faultKindName(static_cast<FaultKind>(r.a)),
                      r.b);
      case TraceCat::Recover:
        switch (static_cast<RecoverAction>(r.a)) {
          case RecoverAction::ParityRefetch:
            return strfmt("parity re-fetch #%u", r.b);
          case RecoverAction::MemRetry:
            return strfmt("read retry at 0x%x", r.b);
          case RecoverAction::EccTrap:
            return strfmt("ecc microtrap at 0x%x", r.b);
          case RecoverAction::WatchdogTrip:
            return strfmt("watchdog trip after %u idle cycles", r.b);
          case RecoverAction::Livelock:
            return strfmt("restart livelock after %u faults", r.b);
        }
        return "";
      case TraceCat::Supervise:
        switch (static_cast<SuperviseAction>(r.a)) {
          case SuperviseAction::Checkpoint:
            return strfmt("checkpoint #%u", r.b);
          case SuperviseAction::Restore:
            return strfmt("restored checkpoint #%u", r.b);
          case SuperviseAction::Retry:
            return strfmt("retry attempt %u", r.b);
          case SuperviseAction::Backoff:
            return strfmt("backoff %u ms", r.b);
          case SuperviseAction::Divergence:
            return strfmt("dmr divergence at word %u", r.b);
          case SuperviseAction::Rollback:
            return strfmt("dmr rollback to word %u", r.b);
          case SuperviseAction::Cancel:
            return "cancellation observed";
          case SuperviseAction::Deadline:
            return "deadline exceeded";
        }
        return "";
    }
    return "";
}

} // namespace

std::string
traceRecordText(const TraceRecord &r)
{
    return payload(r);
}

std::string
TraceBuffer::dumpText(
    const std::function<std::string(uint32_t)> &describe) const
{
    std::string out;
    out += strfmt("microtrace: %zu/%zu records retained",
                  size(), capacity());
    if (dropped())
        out += strfmt(" (%llu older records dropped)",
                      (unsigned long long)dropped());
    out += '\n';
    for (size_t i = 0; i < size(); ++i) {
        const TraceRecord &r = at(i);
        out += strfmt("%12llu  %-9s %-7s upc=%04x  %s",
                      (unsigned long long)r.cycle, traceCatName(r.cat),
                      r.sev == TraceSev::Warning ? "warning" : "info",
                      r.upc, payload(r).c_str());
        if (describe) {
            std::string d = describe(r.upc);
            if (!d.empty())
                out += strfmt("  ; %s", d.c_str());
        }
        out += '\n';
    }
    return out;
}

void
TraceBuffer::chromeEvents(
    JsonWriter &w, uint64_t pid,
    const std::function<std::string(uint32_t)> &describe) const
{
    for (size_t i = 0; i < size(); ++i) {
        const TraceRecord &r = at(i);
        std::string name = strfmt("upc 0x%04x", r.upc);
        if (describe) {
            std::string d = describe(r.upc);
            if (!d.empty())
                name = d;
        }
        w.beginObject();
        if (r.cat == TraceCat::Word) {
            w.value("name", name);
            w.value("ph", "X");
            w.value("dur", uint64_t(r.a ? r.a : 1));
        } else {
            w.value("name",
                    strfmt("%s: %s", traceCatName(r.cat),
                           payload(r).c_str()));
            w.value("ph", "i");
            w.value("s", "t");
        }
        w.value("cat", traceCatName(r.cat));
        w.value("ts", r.cycle);
        w.value("pid", pid);
        w.value("tid", uint64_t(0));
        w.beginObject("args");
        w.value("upc", uint64_t(r.upc));
        w.value("cycle", r.cycle);
        w.value("severity",
                r.sev == TraceSev::Warning ? "warning" : "info");
        w.endObject();
        w.endObject();
    }
}

std::string
TraceBuffer::toChromeJson(
    const std::function<std::string(uint32_t)> &describe) const
{
    JsonWriter w(false);
    w.beginObject();
    w.value("displayTimeUnit", "ms");
    w.beginArray("traceEvents");
    // Process metadata so the track has a readable name.
    w.beginObject();
    w.value("name", "process_name");
    w.value("ph", "M");
    w.value("pid", uint64_t(0));
    w.value("tid", uint64_t(0));
    w.beginObject("args").value("name", "uhll microsimulator")
        .endObject();
    w.endObject();
    chromeEvents(w, 0, describe);
    w.endArray();
    if (dropped())
        w.value("uhll_dropped_records", dropped());
    w.endObject();
    return w.str();
}

} // namespace uhll
