/**
 * @file
 * A gem5-style statistics registry.
 *
 * Components register named statistics once, up front; the hot paths
 * then update raw storage with no lookup, lock or branch on the
 * recording side:
 *
 *  - a *scalar* is a named uint64_t counter. It can own its storage
 *    (scalar()) or be bound to a counter the component already
 *    maintains (bindScalar()), which is how MicroSimulator exposes
 *    the SimResult fields without adding any cost to its interpreter
 *    loop -- the registry reads the component's own variable at dump
 *    time;
 *  - a *histogram* buckets uint64_t samples with a fixed bucket
 *    width plus an overflow bucket, tracking count/sum/min/max;
 *  - a *formula* is a named function evaluated at dump time
 *    (rates, fractions, averages over other stats).
 *
 * Names are hierarchical with '.' separators ("sim.fastPathWords");
 * dumps sort by name so groups read contiguously, and toJson() nests
 * the groups into JSON objects.
 */

#ifndef UHLL_OBS_STATS_HH
#define UHLL_OBS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace uhll {

/** Fixed-width bucketed histogram of uint64_t samples. */
class Histogram
{
  public:
    Histogram(uint64_t bucket_width, size_t num_buckets)
        : bucketWidth_(bucket_width ? bucket_width : 1),
          buckets_(num_buckets + 1, 0)   // +1: overflow bucket
    {}

    void
    sample(uint64_t v)
    {
        size_t b = v / bucketWidth_;
        if (b >= buckets_.size())
            b = buckets_.size() - 1;
        ++buckets_[b];
        ++samples_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    uint64_t samples() const { return samples_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return samples_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const { return samples_ ? double(sum_) / double(samples_) : 0.0; }
    uint64_t bucketWidth() const { return bucketWidth_; }
    /** Bucket counts; the last entry is the overflow bucket. */
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    /**
     * The @p p-th percentile (0..100) by linear interpolation within
     * the containing bucket, clamped to the observed [min, max] (the
     * overflow bucket interpolates toward max). 0 with no samples.
     */
    double
    percentile(double p) const
    {
        if (!samples_)
            return 0.0;
        if (p < 0)
            p = 0;
        if (p > 100)
            p = 100;
        const double target = p / 100.0 * double(samples_);
        uint64_t cum = 0;
        for (size_t i = 0; i < buckets_.size(); ++i) {
            const uint64_t n = buckets_[i];
            if (!n)
                continue;
            if (double(cum + n) >= target) {
                const double lo = double(i) * double(bucketWidth_);
                const bool overflow = i + 1 == buckets_.size();
                const double hi =
                    overflow ? std::max(lo + double(bucketWidth_),
                                        double(max_))
                             : lo + double(bucketWidth_);
                const double frac =
                    target <= double(cum)
                        ? 0.0
                        : (target - double(cum)) / double(n);
                double v = lo + frac * (hi - lo);
                if (v < double(min()))
                    v = double(min());
                if (v > double(max_))
                    v = double(max_);
                return v;
            }
            cum += n;
        }
        return double(max_);
    }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        samples_ = sum_ = max_ = 0;
        min_ = ~0ULL;
    }

    /** Raw contents, for checkpoint/restore (machine/checkpoint.hh). */
    struct State {
        std::vector<uint64_t> buckets;
        uint64_t samples = 0;
        uint64_t sum = 0;
        uint64_t min = ~0ULL;
        uint64_t max = 0;
    };

    State
    state() const
    {
        return State{buckets_, samples_, sum_, min_, max_};
    }

    void
    restore(const State &s)
    {
        if (s.buckets.size() == buckets_.size())
            buckets_ = s.buckets;
        samples_ = s.samples;
        sum_ = s.sum;
        min_ = s.min;
        max_ = s.max;
    }

  private:
    uint64_t bucketWidth_;
    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ULL;
    uint64_t max_ = 0;
};

/** The registry: a named, grouped collection of statistics. */
class StatsRegistry
{
  public:
    /**
     * Register (or re-fetch) an owned scalar. The returned reference
     * is stable for the registry's lifetime; hot code caches it and
     * increments directly.
     */
    uint64_t &scalar(const std::string &name,
                     const std::string &desc = "");

    /**
     * Register a scalar whose storage lives in the component
     * (@p storage must outlive the registry's dumps). Re-binding an
     * existing name repoints it.
     */
    void bindScalar(const std::string &name, const uint64_t *storage,
                    const std::string &desc = "");

    /** Register (or re-fetch) a histogram. */
    Histogram &histogram(const std::string &name,
                         uint64_t bucket_width, size_t num_buckets,
                         const std::string &desc = "");

    /** Register a formula evaluated at dump time. */
    void formula(const std::string &name,
                 std::function<double()> fn,
                 const std::string &desc = "");

    /** Current value of scalar @p name; fatal() if absent. */
    uint64_t value(const std::string &name) const;

    bool has(const std::string &name) const;

    /** Zero every owned scalar and histogram (bound scalars are the
     *  component's to reset). */
    void reset();

    /** gem5-style text dump: "name  value  # desc", sorted. */
    std::string dumpText() const;

    /**
     * Mark @p name as volatile: a host-side measurement (wall-clock
     * durations, backoff sums, JIT compile times and tier counters)
     * rather than a deterministic function of the simulated
     * execution. Deterministic dumps drop marked stats so batch
     * byte-identity and checkpoint-resume comparisons cannot regress
     * on them; the name need not be registered yet.
     */
    void markVolatile(const std::string &name);

    /** Whether @p name was marked volatile. */
    bool isVolatile(const std::string &name) const;

    /**
     * JSON dump. Dotted names nest ("sim.cycles" becomes
     * {"sim": {"cycles": ...}}); histograms become objects with
     * samples/sum/min/max/mean/buckets. With @p include_volatile
     * false, stats marked via markVolatile() are omitted entirely.
     */
    std::string toJson(bool pretty = true,
                       bool include_volatile = true) const;

  private:
    struct ScalarStat {
        std::string desc;
        const uint64_t *ptr = nullptr;  //!< bound storage, if any
        uint64_t own = 0;               //!< owned storage otherwise
        bool bound = false;
        uint64_t get() const { return bound ? *ptr : own; }
    };
    struct FormulaStat {
        std::string desc;
        std::function<double()> fn;
    };

    // std::map keeps dumps sorted and references stable.
    std::map<std::string, ScalarStat> scalars_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, FormulaStat> formulas_;
    std::set<std::string> volatileNames_;
};

} // namespace uhll

#endif // UHLL_OBS_STATS_HH
