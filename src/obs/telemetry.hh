/**
 * @file
 * End-to-end telemetry: span tracing, metrics time series and the
 * post-mortem flight recorder.
 *
 * Three facilities, all driver-stack-wide (the microtrace ring in
 * obs/trace.hh stays the per-simulator view):
 *
 *  - *span tracer* (SpanTracer / SpanScope): begin/end spans with
 *    nesting over the pipeline stages (translate -> compile ->
 *    allocate -> compact -> decode), batch jobs, supervised
 *    simulations and JIT region compiles. Recording is lock-free:
 *    each thread appends to its own lane buffer, and the lane
 *    registry is only locked on first use per thread. A disabled
 *    tracer costs one relaxed atomic load per call site, so the
 *    hot simulator loop is never touched (spans are coarse-grained
 *    by design). chromeJson() merges every lane -- plus, optionally,
 *    a microtrace ring -- into one Chrome trace_event document:
 *    spans render as nested slices on per-worker tracks (pid 0),
 *    the microtrace as its own process (pid 1, 1 microcycle = 1 us).
 *
 *  - *metrics sampler* (MetricsSample + exporters): periodic
 *    StatsRegistry snapshots keyed to *simulated* cycles, captured
 *    by the supervisor between execution slices. Both the full and
 *    the volatile-scrubbed dump are rendered at capture time, so
 *    exports honour the markVolatile() discipline: the timings-off
 *    JSONL/Prometheus output is a pure function of the job and
 *    byte-identical between -j1 and -j8 batch runs.
 *
 *  - *flight recorder* (renderPostmortem/writePostmortem): on a
 *    structured SimError, failed job or DMR divergence, the last-N
 *    microtrace records, the recording thread's recent spans, the
 *    final stats dump, the register snapshot and the job spec are
 *    bundled into one post-mortem JSON artifact, written atomically
 *    (tmp + rename) next to the batch journal.
 */

#ifndef UHLL_OBS_TELEMETRY_HH
#define UHLL_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace uhll {

class TraceBuffer;

/** Span categories: one per instrumented layer. */
enum class SpanCat : uint8_t {
    Batch,      //!< a whole BatchRunner::run
    Job,        //!< one Toolchain::run (compile + simulate)
    Translate,  //!< frontend parse + translate
    Compile,    //!< Compiler::compile (MIR programs)
    Allocate,   //!< register allocation
    Compact,    //!< lowering + microcode compaction
    Decode,     //!< DecodedStore::decodeAll
    Sim,        //!< the supervised simulation
    Supervise,  //!< supervisor actions (instants)
    Jit,        //!< native region compiles
    Service,    //!< one uhlld request (accept to response)
};
constexpr size_t kNumSpanCats = 11;

const char *spanCatName(SpanCat c);

/** One completed span or instant on a lane. */
struct SpanEvent {
    uint64_t tsUs = 0;    //!< start, microseconds since enable()
    uint64_t durUs = 0;   //!< 0 for instants
    uint32_t lane = 0;    //!< per-thread lane ordinal
    SpanCat cat = SpanCat::Job;
    bool instant = false;
    std::string name;
};

/**
 * The process-wide span tracer. All methods are thread-safe;
 * recording is wait-free after a lane's first event. Off by
 * default -- every record site is gated on enabled(), so programs
 * that never call enable() pay one relaxed load per site.
 */
class SpanTracer
{
  public:
    static SpanTracer &instance();

    /**
     * Reset and start recording. @p per_lane_capacity bounds each
     * lane's buffer; further events bump dropped() instead of
     * growing without limit.
     */
    void enable(size_t per_lane_capacity = 1 << 16);
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Name the calling thread's lane ("worker-3"); shows up as the
     *  Chrome thread_name. No-op while disabled. */
    void setLaneName(const std::string &name);

    /** Record a completed span on the calling thread's lane. */
    void complete(SpanCat cat, std::string name, uint64_t ts_us,
                  uint64_t dur_us);

    /** Record an instant event on the calling thread's lane. */
    void instant(SpanCat cat, std::string name);

    /** Microseconds since enable() (0 while disabled). */
    uint64_t nowUs() const;

    /** Everything collect() returns. */
    struct Collected {
        //!< merged events, sorted by (tsUs, lane, -durUs, name)
        std::vector<SpanEvent> events;
        std::vector<std::string> laneNames;  //!< by lane ordinal
        uint64_t dropped = 0;                //!< summed over lanes
    };

    /**
     * Merge every lane's buffer. Only call at quiescence (after
     * worker threads joined, or from the sole recording thread);
     * recording into a lane while it is being collected is a race
     * by contract.
     */
    Collected collect() const;

    /** The last @p n events recorded on the *calling* thread's
     *  lane, oldest first (the flight recorder's span context). */
    std::vector<SpanEvent> recentOnThread(size_t n) const;

    /**
     * The merged Chrome trace_event document: spans as nested "X"
     * slices on per-lane tracks under pid 0, plus @p micro's
     * records (when given) under pid 1 with 1 microcycle = 1 us,
     * plus per-category span-duration histograms (p50/p95/p99)
     * under "uhll_span_stats".
     */
    std::string chromeJson(
        const TraceBuffer *micro = nullptr,
        const std::function<std::string(uint32_t)> &describe =
            nullptr) const;

  private:
    SpanTracer() = default;

    struct Lane {
        std::vector<SpanEvent> events;  //!< appended by owner thread
        std::string name;
        uint64_t dropped = 0;
        size_t capacity = 0;
    };

    Lane *laneForThisThread() const;

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> generation_{0};
    std::chrono::steady_clock::time_point epoch_{};
    size_t laneCapacity_ = 1 << 16;
    mutable std::mutex mu_;  //!< guards lanes_ registration + names
    mutable std::vector<std::unique_ptr<Lane>> lanes_;
};

/** RAII span: captures the start on construction, records on
 *  destruction. Zero cost (no clock read) while the tracer is off. */
class SpanScope
{
  public:
    SpanScope(SpanCat cat, std::string name)
        : cat_(cat)
    {
        SpanTracer &t = SpanTracer::instance();
        if (t.enabled()) {
            armed_ = true;
            name_ = std::move(name);
            t0_ = t.nowUs();
        }
    }

    ~SpanScope()
    {
        if (!armed_)
            return;
        SpanTracer &t = SpanTracer::instance();
        const uint64_t t1 = t.nowUs();
        t.complete(cat_, std::move(name_), t0_,
                   t1 > t0_ ? t1 - t0_ : 0);
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    SpanCat cat_;
    bool armed_ = false;
    uint64_t t0_ = 0;
    std::string name_;
};

// ----------------------------------------------------------------
// Metrics time series
// ----------------------------------------------------------------

/**
 * One StatsRegistry snapshot. Both dump forms are rendered at
 * capture time so exporters can pick the volatile-scrubbed one
 * without re-dumping a registry that has moved on.
 */
struct MetricsSample {
    uint64_t seq = 0;        //!< per-job sample ordinal
    uint64_t cycles = 0;     //!< simulated cycles at capture
    std::string label;       //!< job/report name
    std::string statsFull;   //!< compact toJson(false, true)
    std::string statsClean;  //!< compact toJson(false, false)
};

/**
 * JSONL export: one {"job","seq","cycles","stats"} object per line,
 * in the order given (callers order by job index, then seq). With
 * @p include_volatile false the scrubbed dumps are embedded -- the
 * deterministic form.
 */
std::string metricsToJsonl(const std::vector<MetricsSample> &samples,
                           bool include_volatile);

/**
 * Prometheus text exposition of the *last* sample per label: dotted
 * stat names flatten to uhll_-prefixed underscore names with a
 * {job="..."} label, histogram-shaped stats become the cumulative
 * _bucket{le=...}/_sum/_count form, everything else a gauge.
 */
std::string
metricsToPrometheus(const std::vector<MetricsSample> &samples,
                    bool include_volatile);

// ----------------------------------------------------------------
// Flight recorder
// ----------------------------------------------------------------

/** Pre-rendered pieces of one post-mortem artifact. Raw fields are
 *  JSON fragments ("" = omitted); the renderer only assembles. */
struct PostmortemReport {
    //! "sim_error" | "job_failed" | "dmr_divergence" |
    //! "compile_failed"
    std::string reason;
    std::string jobJson;         //!< job spec object
    std::string errorJson;       //!< structured SimError object
    std::string divergenceJson;  //!< DMR divergence object
    std::string statsJson;       //!< final stats dump object
    std::string registersJson;   //!< register snapshot object
    std::string microtraceJson;  //!< last-N trace records (array)
    std::string spansJson;       //!< recent span events (array)
    std::vector<std::string> diagnostics;
};

/** The artifact document (always a valid, self-contained object). */
std::string renderPostmortem(const PostmortemReport &p);

/** The last @p last_n retained records of @p t as a JSON array. */
std::string
microtraceJson(const TraceBuffer &t, size_t last_n,
               const std::function<std::string(uint32_t)> &describe =
                   nullptr);

/** @p events as a JSON array (the "spans" fragment). */
std::string spanEventsJson(const std::vector<SpanEvent> &events);

/**
 * Write @p content to @p path atomically: a sibling tmp file,
 * flushed, then rename()d over the target, so readers never see a
 * torn artifact. Returns false (and warns) on I/O failure.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

/**
 * `<dir>/<sanitized job name>.postmortem.json`; any character that
 * does not belong in a filename becomes '_'.
 */
std::string postmortemPath(const std::string &dir,
                           const std::string &job_name);

/** renderPostmortem + mkdir(dir) + writeFileAtomic, returning the
 *  path written ("" on failure). */
std::string writePostmortem(const std::string &dir,
                            const std::string &job_name,
                            const PostmortemReport &p);

} // namespace uhll

#endif // UHLL_OBS_TELEMETRY_HH
