#include "workloads/workloads.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

constexpr uint32_t kArr = 0x400;
constexpr uint32_t kTbl = 0x500;
constexpr uint32_t kRes = 0x5F0;
constexpr uint32_t kN = 24;

void
fillArray(MainMemory &mem)
{
    for (uint32_t i = 0; i < kN; ++i)
        mem.poke(kArr + i, (i * 2654u + 977u) & 0xFFFF);
}

// ----------------------------------------------------------------
// transliterate: replace each nonzero word (4-bit values) through a
// table; terminator 0.
// ----------------------------------------------------------------

Workload
makeTransliterate()
{
    Workload w;
    w.name = "transliterate";
    w.inputs = {{"r1", kArr}, {"r4", kTbl}};

    w.yalll = R"(
reg r1
reg r4
reg char
reg t
proc main
loop:
    load char, r1
    jump out if char = 0
    add t, char, r4
    load char, t
    stor char, r1
    add r1, r1, 1
    jump loop
out:
    exit
)";

    w.masmHm1 = R"(
.entry main
loop:
    [ memrd r3, r1 ]
    [ cmpi r3, #0 ] if z jump out
    [ add r2, r3, r4 | memrd r3, r2 ]
    [ memwr r1, r3 ]
    [ addi r1, r1, #1 ] jump loop
out:
    [ ] halt
)";

    w.masmVm2 = R"(
.entry main
loop:
    [ mov mar, r1 | memrd mbr, mar ]
    [ mov r0, mbr ]
    [ cmpi r0, #0 ] if z jump out
    [ add r2, r0, r4 ]
    [ mov mar, r2 | memrd mbr, mar ]
    [ mov mar, r1 | memwr mar, mbr ]
    [ addi r1, r1, #1 ] jump loop
out:
    [ ] halt
)";

    w.setup = [](MainMemory &mem) {
        for (uint32_t i = 0; i < 15; ++i)
            mem.poke(kArr + i, 1 + (i * 5) % 15);
        mem.poke(kArr + 15, 0);
        for (uint32_t v = 0; v < 16; ++v)
            mem.poke(kTbl + v, 0x20 + v);
    };
    w.check = [](const MainMemory &mem, std::string *why) {
        for (uint32_t i = 0; i < 15; ++i) {
            uint64_t orig = 1 + (i * 5) % 15;
            if (mem.peek(kArr + i) != 0x20 + orig) {
                if (why)
                    *why = strfmt("element %u wrong", i);
                return false;
            }
        }
        return true;
    };
    return w;
}

// ----------------------------------------------------------------
// memcpy: copy kN words from 0x400 to 0x480.
// ----------------------------------------------------------------

Workload
makeMemcpy()
{
    Workload w;
    w.name = "memcpy";
    w.inputs = {{"r1", kArr}, {"r4", kArr + 0x80}, {"r5", kN}};

    w.yalll = R"(
reg r1
reg r4
reg r5
reg t
proc main
loop:
    jump out if r5 = 0
    load t, r1
    stor t, r4
    add r1, r1, 1
    add r4, r4, 1
    sub r5, r5, 1
    jump loop
out:
    exit
)";

    // The expert trick: keep dst-src in r4 and chain address adds
    // into the store word.
    w.masmHm1 = R"(
.entry main
    [ mova r0, r1 ]
    [ sub r4, r4, r0 ]
    [ cmpi r5, #0 ] if z jump out
loop:
    [ memrd r3, r1 ]
    [ add r2, r1, r4 | memwr r2, r3 ]
    [ addi r1, r1, #1 ]
    [ subi r5, r5, #1 ] if nz jump loop
out:
    [ ] halt
)";

    // VM-2 cannot compare the AluB-bank count directly (cmp wants
    // its left operand in the AluA bank): the expert recasts the
    // loop around an end pointer instead.
    w.masmVm2 = R"(
.entry main
    [ mov r0, r4 ]
    [ mov r7, r1 ]
    [ sub r4, r0, r7 ]
    [ add r6, r1, r5 ]
loop:
    [ cmp r1, r6 ] if z jump out
    [ mov mar, r1 | memrd mbr, mar ]
    [ mov r0, r1 ]
    [ add r2, r0, r4 ]
    [ mov mar, r2 | memwr mar, mbr ]
    [ addi r1, r1, #1 ] jump loop
out:
    [ ] halt
)";

    w.setup = fillArray;
    w.check = [](const MainMemory &mem, std::string *why) {
        for (uint32_t i = 0; i < kN; ++i) {
            if (mem.peek(kArr + 0x80 + i) != mem.peek(kArr + i)) {
                if (why)
                    *why = strfmt("word %u not copied", i);
                return false;
            }
        }
        return true;
    };
    return w;
}

// ----------------------------------------------------------------
// checksum: sum = rol(sum,1) xor a[i]; result -> 0x5F0.
// ----------------------------------------------------------------

uint64_t
checksumExpected(const MainMemory &mem)
{
    uint64_t sum = 0;
    for (uint32_t i = 0; i < kN; ++i)
        sum = rotateLeft(sum, 1, 16) ^ mem.peek(kArr + i);
    return sum;
}

Workload
makeChecksum()
{
    Workload w;
    w.name = "checksum";
    w.inputs = {{"r1", kArr}, {"r5", kN}};

    w.yalll = R"(
reg r1
reg r5
reg sum
reg t
reg p
proc main
    put sum, 0
loop:
    jump out if r5 = 0
    load t, r1
    rol sum, sum, 1
    xor sum, sum, t
    add r1, r1, 1
    sub r5, r5, 1
    jump loop
out:
    put p, 0x5F0
    stor sum, p
    exit
)";

    // Expert tricks: overlapped read (no stall), do-while with the
    // exit folded into the decrement's flags.
    w.masmHm1 = R"(
.entry main
    [ ldi r2, #0 ]
    [ cmpi r5, #0 ] if z jump out
loop:
    [ rol r2, r2, #1 | memrd.ov r3, r1 ]
    [ addi r1, r1, #1 ]
    [ xor r2, r2, r3 ]
    [ subi r5, r5, #1 ] if nz jump loop
out:
    [ ldi r4, #0x5F0 ]
    [ memwr r4, r2 ]
    [ ] halt
)";

    w.masmVm2 = R"(
.entry main
    [ ldi r0, #0 ]
    [ add r6, r1, r5 ]
loop:
    [ cmp r1, r6 ] if z jump out
    [ mov mar, r1 | memrd mbr, mar ]
    [ shl r2, r0, #1 ]
    [ shr r3, r0, #15 ]
    [ mov r7, r3 ]
    [ or r0, r2, r7 ]
    [ mov r7, mbr ]
    [ xor r0, r0, r7 ]
    [ addi r1, r1, #1 ] jump loop
out:
    [ mov mbr, r0 ]
    [ ldi r2, #0xBE ]
    [ shl r2, r2, #3 ]
    [ mov mar, r2 | memwr mar, mbr ]
    [ ] halt
)";

    w.setup = fillArray;
    w.check = [](const MainMemory &mem, std::string *why) {
        if (mem.peek(kRes) != checksumExpected(mem)) {
            if (why)
                *why = "checksum mismatch";
            return false;
        }
        return true;
    };
    return w;
}

// ----------------------------------------------------------------
// find: first index with a[i] == key (else 0xFFFF) -> 0x5F1.
// ----------------------------------------------------------------

Workload
makeFind()
{
    Workload w;
    w.name = "find";
    w.inputs = {{"r1", kArr}, {"r4", /*key*/ 0}, {"r5", kN}};

    w.yalll = R"(
reg r1
reg r4
reg r5
reg idx
reg t
reg p
proc main
    put idx, 0
loop:
    jump miss if idx = r5
    load t, r1
    jump hit if t = r4
    add r1, r1, 1
    add idx, idx, 1
    jump loop
miss:
    put idx, 0xFFFF
hit:
    put p, 0x5F1
    stor idx, p
    exit
)";

    // Expert trick: no index counter in the loop -- recover the
    // index from the pointer afterwards.
    w.masmHm1 = R"(
.entry main
    [ mova r0, r1 ]
    [ cmpi r5, #0 ] if z jump miss
loop:
    [ memrd r3, r1 ]
    [ cmp r3, r4 ] if z jump hit
    [ addi r1, r1, #1 ]
    [ subi r5, r5, #1 ] if nz jump loop
miss:
    [ ldi r2, #0xFFFF ] jump store
hit:
    [ sub r2, r1, r0 ]
store:
    [ ldi r3, #0x5F1 ]
    [ memwr r3, r2 ]
    [ ] halt
)";

    w.masmVm2 = R"(
.entry main
    [ ldi r2, #0 ]
loop:
    [ cmp r2, r5 ] if z jump miss
    [ mov mar, r1 | memrd mbr, mar ]
    [ mov r0, mbr ]
    [ cmp r0, r4 ] if z jump hit
    [ addi r1, r1, #1 ]
    [ addi r2, r2, #1 ] jump loop
miss:
    [ ldi r2, #0xFF ]
    [ shl r2, r2, #8 ]
    [ addi r2, r2, #0xFF ]
hit:
    [ mov mbr, r2 ]
    [ ldi r3, #0xBE ]
    [ shl r3, r3, #3 ]
    [ addi r3, r3, #1 ]
    [ mov mar, r3 | memwr mar, mbr ]
    [ ] halt
)";

    w.setup = [](MainMemory &mem) {
        fillArray(mem);
        mem.poke(kArr + 17, 0xBEEF);
    };
    // key: search for 0xBEEF
    w.inputs = {{"r1", kArr}, {"r4", 0xBEEF}, {"r5", kN}};
    w.check = [](const MainMemory &mem, std::string *why) {
        if (mem.peek(kRes + 1) != 17) {
            if (why)
                *why = strfmt("found %llu, expected 17",
                              (unsigned long long)mem.peek(kRes + 1));
            return false;
        }
        return true;
    };
    return w;
}

// ----------------------------------------------------------------
// popcount: total set bits of the array -> 0x5F2. Uses the UF flag.
// ----------------------------------------------------------------

Workload
makePopcount()
{
    Workload w;
    w.name = "popcount";
    w.inputs = {{"r1", kArr}, {"r5", kN}};

    w.yalll = R"(
reg r1
reg r5
reg total
reg t
reg low
reg p
proc main
    put total, 0
words:
    jump out if r5 = 0
    load t, r1
bits:
    jump nextw if t = 0
    and low, t, 1
    add total, total, low
    shr t, t, 1
    jump bits
nextw:
    add r1, r1, 1
    sub r5, r5, 1
    jump words
out:
    put p, 0x5F2
    stor total, p
    exit
)";

    // The hand versions exploit the UF flag the hardware provides.
    w.masmHm1 = R"(
.entry main
    [ ldi r2, #0 ]
words:
    [ cmpi r5, #0 ] if z jump out
    [ memrd r3, r1 ]
bits:
    [ cmpi r3, #0 ] if z jump nextw
    [ shr r3, r3, #1 ] if nouf jump bits
    [ addi r2, r2, #1 ] jump bits
nextw:
    [ addi r1, r1, #1 ]
    [ subi r5, r5, #1 ] jump words
out:
    [ ldi r4, #0x5F2 ]
    [ memwr r4, r2 ]
    [ ] halt
)";

    w.masmVm2 = R"(
.entry main
    [ ldi r2, #0 ]
    [ add r6, r1, r5 ]
words:
    [ cmp r1, r6 ] if z jump out
    [ mov mar, r1 | memrd mbr, mar ]
    [ mov r0, mbr ]
bits:
    [ cmpi r0, #0 ] if z jump nextw
    [ shr r0, r0, #1 ] if nouf jump bits
    [ addi r2, r2, #1 ] jump bits
nextw:
    [ addi r1, r1, #1 ] jump words
out:
    [ mov mbr, r2 ]
    [ ldi r3, #0xBE ]
    [ shl r3, r3, #3 ]
    [ addi r3, r3, #2 ]
    [ mov mar, r3 | memwr mar, mbr ]
    [ ] halt
)";

    w.setup = fillArray;
    w.check = [](const MainMemory &mem, std::string *why) {
        uint64_t expect = 0;
        for (uint32_t i = 0; i < kN; ++i)
            expect += popCount(mem.peek(kArr + i));
        if (mem.peek(kRes + 2) != expect) {
            if (why)
                *why = strfmt("popcount %llu, expected %llu",
                              (unsigned long long)mem.peek(kRes + 2),
                              (unsigned long long)expect);
            return false;
        }
        return true;
    };
    return w;
}

} // namespace

const std::vector<Workload> &
workloadSuite()
{
    static const std::vector<Workload> suite = {
        makeTransliterate(), makeMemcpy(), makeChecksum(), makeFind(),
        makePopcount(),
    };
    return suite;
}

// ----------------------------------------------------------------
// E6 speedup kernel: sum = (sum shl 1) xor a[i] over 64 words.
// ----------------------------------------------------------------

std::string
speedupMacroSource()
{
    // Variables live in low memory (absolute macro addressing).
    //   0x80 sum, 0x81 n, 0x82 one
    return R"(
      ldi 0
      sta 0x80
      ldi 0
      tax
loop: lda 0x81
      jz done
      sub 0x82
      sta 0x81
      lda 0x80
      shl 1
      sta 0x80
      ldax 0x400
      xor 0x80
      sta 0x80
      inx
      jmp loop
done: lda 0x80
      sta 0x5F0
      halt
)";
}

std::string
speedupEmplSource()
{
    return R"(
DECLARE SUM FIXED;
DECLARE I FIXED;
DECLARE N FIXED;
DECLARE T FIXED;
DECLARE P FIXED;
MAIN: PROCEDURE;
    SUM = 0;
    I = 0;
    WHILE I != N DO;
        P = 0x400 + I;
        T = MEM(P);
        SUM = SUM SHL 1;
        SUM = SUM XOR T;
        I = I + 1;
    END;
    MEM(0x5F0) = SUM;
END;
)";
}

std::string
speedupMasmHm1()
{
    // Expert tricks: the read is overlapped with the next two words
    // (no memory stall), and the loop is do-while with the compare
    // folded into the decrement's flags. Four cycles per element.
    return R"(
.entry main
    [ ldi r2, #0 ]
loop:
    [ shl r2, r2, #1 | memrd.ov r3, r1 ]
    [ addi r1, r1, #1 ]
    [ xor r2, r2, r3 ]
    [ subi r5, r5, #1 ] if nz jump loop
    [ ldi r4, #0x5F0 ]
    [ memwr r4, r2 ]
    [ ] halt
)";
}

std::string
livelockMasmHm1()
{
    // The restart point is the reading word itself: when the read
    // keeps failing (persistent mem2), every microtrap restarts
    // straight back into the fault with no word ever retiring. The
    // pointer and counter live in architectural registers (r8, r9)
    // so trap scrambling does not move the fault site.
    return R"(
.entry main
.restart
main:
    [ memrd r3, r8 ]
    [ addi r9, r9, #1 ]
    [ cmpi r9, #16 ] if nz jump main
    [ ] halt
)";
}

uint64_t
speedupSetup(MainMemory &mem)
{
    uint64_t sum = 0;
    for (uint32_t i = 0; i < 64; ++i) {
        uint64_t v = (i * 1103u + 331u) & 0xFFFF;
        mem.poke(0x400 + i, v);
        sum = truncBits(sum << 1, 16) ^ v;
    }
    mem.poke(0x81, 64);     // n for the macro version
    mem.poke(0x82, 1);      // one
    return sum;
}

} // namespace uhll
