/**
 * @file
 * The workload suite shared by the benchmarks, examples and
 * integration tests: five kernels in YALLL with hand-written
 * microassembly baselines for HM-1 and VM-2 (the "expert
 * microprogrammer" of the survey's sec. 3), plus the E6 speedup
 * kernel in macro assembly, EMPL and hand microcode.
 *
 * Memory conventions: input arrays at 0x400, auxiliary table at
 * 0x500, results at 0x5F0..0x5F7. Register conventions (same names
 * on every machine): r1 = pointer, r2 = secondary pointer/work,
 * r4 = value/table (right ALU bank on VM-2), r5 = count.
 */

#ifndef UHLL_WORKLOADS_WORKLOADS_HH
#define UHLL_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "machine/memory.hh"

namespace uhll {

/** One kernel of the suite. */
struct Workload {
    std::string name;
    std::string yalll;          //!< YALLL source (retargetable)
    std::string masmHm1;        //!< hand microassembly for HM-1
    std::string masmVm2;        //!< hand microassembly for VM-2
    //! initial register values (by name; same on every machine)
    std::vector<std::pair<std::string, uint64_t>> inputs;
    //! prepare input memory
    std::function<void(MainMemory &)> setup;
    //! verify output memory; fills @p why on mismatch
    std::function<bool(const MainMemory &, std::string *why)> check;
};

/** The five-kernel suite (transliterate, memcpy, checksum, find,
 * popcount). */
const std::vector<Workload> &workloadSuite();

/** @name Fault-recovery fixtures (chaos tests, EXPERIMENTS.md) */
/// @{
/**
 * HM-1 microassembly that loops a blocking read of the address in r8
 * from a restart point. Under a persistent uncorrectable-fault plan
 * (mem2 at rate 1 on that address) every read exhausts its retries
 * and microtraps back to the same restart point -- the scenario the
 * restart-livelock and no-retire watchdogs exist to convert into a
 * structured SimError.
 */
std::string livelockMasmHm1();
/// @}

/** @name E6 speedup kernel: checksum of 64 words */
/// @{
/** Macro-assembly version (interpreted by the HM-1 firmware). */
std::string speedupMacroSource();
/** EMPL version (compiled to microcode). */
std::string speedupEmplSource();
/** Hand microassembly for HM-1. */
std::string speedupMasmHm1();
/** Prepare the input array; returns the expected checksum. */
uint64_t speedupSetup(MainMemory &mem);
/// @}

} // namespace uhll

#endif // UHLL_WORKLOADS_WORKLOADS_HH
