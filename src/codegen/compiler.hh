/**
 * @file
 * The microcode compiler: MIR in, control store out.
 *
 * Pipeline (each optional pass maps to a survey design issue):
 *
 *   recognize   high-level microoperation recognition (sec. 2.1.2's
 *               push/new-block discussion): adjacent MIR patterns
 *               are folded into hardware stack operations when the
 *               machine has them;
 *   legalize    rewrite every instruction the machine lacks into
 *               ones it has (missing inc/dec/neg/rotate/stack ops,
 *               over-wide immediates, shift-by-register on machines
 *               with immediate-only shift counts, case dispatch
 *               without multiway hardware);
 *   polls       insert interrupt poll points on loop back edges
 *               (sec. 2.1.5: "the compiler must be able to determine
 *               suitable program points at which to test for
 *               interrupts");
 *   trap safety transform writes of macro-architectural registers so
 *               a page-fault restart cannot double-apply them (the
 *               incread problem of sec. 2.1.5);
 *   regalloc    bind symbolic variables to microregisters
 *               (sec. 2.1.3), spilling to scratch memory;
 *   lower       select microoperation specs, insert operand-class
 *               fixup moves and spill reloads;
 *   compact     compose microinstructions per basic block
 *               (sec. 2.1.4);
 *   emit        lay out blocks, attach sequencing, patch targets.
 */

#ifndef UHLL_CODEGEN_COMPILER_HH
#define UHLL_CODEGEN_COMPILER_HH

#include <memory>
#include <string>

#include "machine/control_store.hh"
#include "machine/machine_desc.hh"
#include "machine/memory.hh"
#include "machine/simulator.hh"
#include "mir/mir.hh"
#include "regalloc/allocator.hh"
#include "schedule/compact.hh"

namespace uhll {

/** Compiler configuration. */
struct CompileOptions {
    //! microinstruction composition algorithm (null = tokoro)
    const Compactor *compactor = nullptr;
    //! register allocator (null = graph colouring)
    const RegisterAllocator *allocator = nullptr;
    AllocOptions allocOpts;
    //! compose words at all? false emits one op per word (the
    //! "no compaction" baseline of the E9 benchmark)
    bool compact = true;
    //! insert interrupt polls on loop back edges
    bool insertInterruptPolls = false;
    //! apply the microtrap-safety transformation
    bool trapSafety = false;
    //! recognize hardware stack-op patterns
    bool recognizeStackOps = false;
    //! run copy propagation and dead-move elimination
    bool optimize = true;
};

/** Aggregate code-generation statistics. */
struct CompileStats {
    uint32_t words = 0;         //!< control words emitted
    uint32_t opsLowered = 0;    //!< bound microoperations produced
    uint32_t fixupMovs = 0;     //!< operand-class fixup moves
    uint32_t spillLoads = 0;
    uint32_t spillStores = 0;
    uint32_t spilledVRegs = 0;
    uint32_t pollPoints = 0;
    uint32_t optimized = 0;     //!< copies propagated + moves removed
};

/** The compiled artefact. */
struct CompiledProgram {
    ControlStore store;
    Assignment assignment;
    CompileStats stats;

    explicit CompiledProgram(const MachineDescription &mach)
        : store(mach)
    {}
};

/** Compiles MirPrograms for one machine. */
class Compiler
{
  public:
    explicit Compiler(const MachineDescription &mach) : mach_(&mach) {}

    /**
     * Compile @p prog. The program is copied internally; passes may
     * add vregs, so the assignment in the result may cover more
     * vregs than @p prog has -- ids of existing vregs are stable.
     */
    CompiledProgram compile(const MirProgram &prog,
                            const CompileOptions &opts = {}) const;

  private:
    const MachineDescription *mach_;
};

/** @name Individual passes (exposed for tests and benchmarks) */
/// @{

/** Rewrite unsupported operations; may add blocks and vregs. */
void legalize(MirProgram &prog, const MachineDescription &mach);

/** Fold add/store and load/sub pairs into Push/Pop. Returns folds. */
uint32_t recognizeStackOps(MirProgram &prog,
                           const MachineDescription &mach);

/** Insert interrupt polls on back edges. Returns poll count. */
uint32_t insertInterruptPolls(MirProgram &prog);

/**
 * Shadow writes of vregs bound to architectural registers and commit
 * them only at program exits. Returns the number of shadowed vregs.
 */
uint32_t applyTrapSafety(MirProgram &prog,
                         const MachineDescription &mach);

/**
 * Local copy propagation and dead-move elimination (flag-safe).
 * Returns the number of changes made.
 */
uint32_t optimizeMir(MirProgram &prog);
/// @}

/** @name Variable access helpers for compiled programs */
/// @{

/**
 * Set MIR variable @p name to @p value in the compiled program's
 * state (register or spill slot).
 */
void setVar(const MirProgram &prog, const CompiledProgram &cp,
            MicroSimulator &sim, MainMemory &mem,
            const std::string &name, uint64_t value);

/** Read MIR variable @p name from the compiled program's state. */
uint64_t getVar(const MirProgram &prog, const CompiledProgram &cp,
                const MicroSimulator &sim, const MainMemory &mem,
                const std::string &name);
/// @}

} // namespace uhll

#endif // UHLL_CODEGEN_COMPILER_HH
