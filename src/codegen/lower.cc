/**
 * @file
 * Instruction selection, operand fix-ups, spill code, block layout
 * and sequencing: the back half of the compiler, plus the
 * Compiler::compile driver.
 */

#include "codegen/compiler.hh"

#include <algorithm>

#include "obs/telemetry.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** Lowers the instructions of one program for one machine. */
class Lowerer
{
  public:
    Lowerer(const MachineDescription &mach, const MirProgram &prog,
            const Assignment &asgn, CompileStats &stats)
        : mach_(mach), prog_(prog), asgn_(asgn), stats_(stats)
    {
        movSpecs_ = mach.uopsOfKind(UKind::Mov);
        UHLL_ASSERT(!movSpecs_.empty());
        ldiSpecs_ = mach.uopsOfKind(UKind::Ldi);
        UHLL_ASSERT(!ldiSpecs_.empty());
    }

    /** Lower one basic block to bound ops (appends to @p out). */
    void
    lowerBlock(const BasicBlock &bb, std::vector<BoundOp> &out)
    {
        for (const MInst &ins : bb.insts)
            lowerInst(ins, out);
        // A Case dispatch register must be physical at block end.
        if (bb.term.kind == Terminator::Kind::Case)
            caseReg_ = useReg(bb.term.caseReg, 0, out, {});
    }

    /** Physical register holding the last block's case dispatch. */
    RegId caseReg() const { return caseReg_; }

  private:
    /** Emit a register-to-register move (round-robin over ports). */
    void
    emitMov(RegId dst, RegId src, std::vector<BoundOp> &out)
    {
        for (size_t k = 0; k < movSpecs_.size(); ++k) {
            uint16_t idx =
                movSpecs_[(movRR_ + k) % movSpecs_.size()];
            const MicroOpSpec &s = mach_.uop(idx);
            if ((s.dstClasses == 0 ||
                 (mach_.reg(dst).classes & s.dstClasses)) &&
                (s.srcAClasses == 0 ||
                 (mach_.reg(src).classes & s.srcAClasses))) {
                BoundOp op;
                op.spec = idx;
                op.dst = dst;
                op.srcA = src;
                out.push_back(op);
                movRR_ = (movRR_ + k + 1) % movSpecs_.size();
                return;
            }
        }
        panic("lower: no mov path %s <- %s on %s",
              mach_.reg(dst).name.c_str(), mach_.reg(src).name.c_str(),
              mach_.name().c_str());
    }

    /** Emit ldi dst, #imm (imm must fit: legalisation guarantees). */
    void
    emitLdi(RegId dst, uint64_t imm, std::vector<BoundOp> &out)
    {
        for (uint16_t idx : ldiSpecs_) {
            const MicroOpSpec &s = mach_.uop(idx);
            if (s.immWidth < 64 && imm > bitMask(s.immWidth))
                continue;
            if (s.dstClasses &&
                !(mach_.reg(dst).classes & s.dstClasses))
                continue;
            BoundOp op;
            op.spec = idx;
            op.dst = dst;
            op.imm = imm;
            out.push_back(op);
            return;
        }
        panic("lower: cannot materialise %#llx into %s",
              (unsigned long long)imm, mach_.reg(dst).name.c_str());
    }

    uint32_t
    slotAddr(VReg v) const
    {
        return mach_.scratchBase() + asgn_.slotOf.at(v);
    }

    /** Reload spilled @p v into a register satisfying @p classes. */
    RegId
    emitReload(VReg v, uint32_t classes, std::vector<BoundOp> &out,
               std::vector<RegId> avoid)
    {
        uint16_t rd_idx = mach_.uopsOfKind(UKind::MemRead).at(0);
        const MicroOpSpec &rd = mach_.uop(rd_idx);

        // The reload target is always a listed scratch register --
        // never mar/mbr, which the reload sequence itself (and any
        // sibling reload) uses transiently.
        RegId into;
        {
            uint32_t want = classes ? classes : ~0u;
            bool have = false;
            for (RegId r : mach_.scratchRegs()) {
                if ((mach_.reg(r).classes & want) &&
                    std::find(avoid.begin(), avoid.end(), r) ==
                        avoid.end()) {
                    have = true;
                    break;
                }
            }
            into = mach_.scratchFor(have ? want : ~0u, avoid,
                                    /*allow_dedicated=*/false);
        }
        avoid.push_back(into);

        RegId addr =
            (mach_.reg(into).classes & rd.srcAClasses)
                ? into
                : mach_.scratchFor(rd.srcAClasses, avoid);
        emitLdi(addr, slotAddr(v), out);

        RegId dest = (mach_.reg(into).classes & rd.dstClasses)
                         ? into
                         : mach_.scratchFor(rd.dstClasses, avoid);
        BoundOp op;
        op.spec = rd_idx;
        op.dst = dest;
        op.srcA = addr;
        out.push_back(op);
        if (dest != into)
            emitMov(into, dest, out);
        ++stats_.spillLoads;
        return into;
    }

    /** Store register @p from into spilled @p v 's slot. */
    void
    emitSpillStore(VReg v, RegId from, std::vector<BoundOp> &out,
                   std::vector<RegId> avoid)
    {
        uint16_t wr_idx = mach_.uopsOfKind(UKind::MemWrite).at(0);
        const MicroOpSpec &wr = mach_.uop(wr_idx);
        avoid.push_back(from);

        RegId data = from;
        if (wr.srcBClasses &&
            !(mach_.reg(from).classes & wr.srcBClasses)) {
            data = mach_.scratchFor(wr.srcBClasses, avoid);
            emitMov(data, from, out);
            avoid.push_back(data);
        }
        RegId addr = mach_.scratchFor(wr.srcAClasses, avoid);
        emitLdi(addr, slotAddr(v), out);
        BoundOp op;
        op.spec = wr_idx;
        op.srcA = addr;
        op.srcB = data;
        out.push_back(op);
        ++stats_.spillStores;
    }

    /**
     * A physical register holding @p v 's value satisfying
     * @p classes, emitting reloads/fixup moves as needed.
     *
     * Reloads come before class fixups when both operands need
     * attention (see lowerInst): a reload transiently uses the
     * dedicated memory registers, which a fixup may already have
     * claimed.
     */
    RegId
    useReg(VReg v, uint32_t classes, std::vector<BoundOp> &out,
           std::vector<RegId> avoid)
    {
        if (asgn_.slotOf.at(v) != kNoSlot)
            return emitReload(v, classes, out, std::move(avoid));
        RegId r = asgn_.regOf.at(v);
        UHLL_ASSERT(r != kNoReg);
        if (classes && !(mach_.reg(r).classes & classes)) {
            RegId fx = mach_.scratchFor(classes, avoid);
            emitMov(fx, r, out);
            ++stats_.fixupMovs;
            return fx;
        }
        return r;
    }

    /** Pick the spec of @p ins minimising fixups. */
    uint16_t
    chooseSpec(const MInst &ins)
    {
        auto cands = mach_.uopsOfKind(ins.op);
        UHLL_ASSERT(!cands.empty());

        auto regClassesOf = [&](VReg v) -> uint32_t {
            if (v == kNoVReg || asgn_.slotOf.at(v) != kNoSlot)
                return ~0u;     // reloads can target any class
            return mach_.reg(asgn_.regOf.at(v)).classes;
        };

        uint16_t best = 0xffff;
        int best_score = 1 << 20;
        for (uint16_t idx : cands) {
            const MicroOpSpec &s = mach_.uop(idx);
            if (ins.useImm) {
                if (!s.allowImm)
                    continue;
                if (s.immWidth < 64 && ins.imm > bitMask(s.immWidth))
                    continue;
            } else if (uKindHasSrcB(ins.op) && s.srcBClasses == 0) {
                continue;   // immediate-only spec, register operand
            }
            int score = (idx == movSpecs_[movRR_ % movSpecs_.size()])
                            ? -1
                            : 0;
            auto miss = [&](VReg v, uint32_t cls) {
                if (v != kNoVReg && cls &&
                    !(regClassesOf(v) & cls))
                    ++score;
            };
            if (uKindHasDst(ins.op))
                miss(ins.dst, s.dstClasses);
            if (uKindHasSrcA(ins.op))
                miss(ins.a, s.srcAClasses);
            if (uKindHasSrcB(ins.op) && !ins.useImm)
                miss(ins.b, s.srcBClasses);
            if (score < best_score) {
                best_score = score;
                best = idx;
            }
        }
        if (best == 0xffff)
            panic("lower: no spec for %s (imm=%d) on %s -- "
                  "legalisation hole", uKindName(ins.op),
                  int(ins.useImm), mach_.name().c_str());
        return best;
    }

    void
    lowerInst(const MInst &ins, std::vector<BoundOp> &out)
    {
        if (ins.op == UKind::Nop)
            return;
        if (ins.op == UKind::Ldi) {
            // Direct path with spill handling.
            if (asgn_.slotOf.at(ins.dst) != kNoSlot) {
                RegId sc = mach_.scratchFor(~0u, {});
                emitLdi(sc, ins.imm, out);
                emitSpillStore(ins.dst, sc, out, {});
            } else {
                emitLdi(asgn_.regOf.at(ins.dst), ins.imm, out);
            }
            ++stats_.opsLowered;
            return;
        }

        uint16_t spec_idx = chooseSpec(ins);
        const MicroOpSpec &s = mach_.uop(spec_idx);

        BoundOp op;
        op.spec = spec_idx;
        std::vector<RegId> avoid;
        bool writes_srcA = uKindModifiesSrcA(ins.op);

        // Pass 1: reload spilled operands into listed scratch
        // registers. Reloads transiently use the dedicated memory
        // registers, so they must all finish before any class fixup
        // claims one of those.
        bool a_spilled = uKindHasSrcA(ins.op) &&
                         asgn_.slotOf.at(ins.a) != kNoSlot;
        bool b_spilled = uKindHasSrcB(ins.op) && !ins.useImm &&
                         asgn_.slotOf.at(ins.b) != kNoSlot;
        if (a_spilled) {
            op.srcA = emitReload(ins.a, s.srcAClasses, out, avoid);
            avoid.push_back(op.srcA);
        }
        if (b_spilled) {
            op.srcB = emitReload(ins.b, s.srcBClasses, out, avoid);
            avoid.push_back(op.srcB);
        }

        // Pass 2: pure register-to-register class fixups.
        auto fixup = [&](VReg v, RegId cur, uint32_t classes) {
            if (classes && !(mach_.reg(cur).classes & classes)) {
                RegId fx = mach_.scratchFor(classes, avoid);
                emitMov(fx, cur, out);
                ++stats_.fixupMovs;
                avoid.push_back(fx);
                return fx;
            }
            (void)v;
            return cur;
        };
        if (uKindHasSrcA(ins.op)) {
            if (!a_spilled) {
                op.srcA = fixup(ins.a, asgn_.regOf.at(ins.a),
                                s.srcAClasses);
                avoid.push_back(op.srcA);
            } else {
                op.srcA = fixup(ins.a, op.srcA, s.srcAClasses);
            }
        }
        if (uKindHasSrcB(ins.op)) {
            if (ins.useImm) {
                op.useImm = true;
                op.imm = truncBits(ins.imm, mach_.dataWidth());
            } else if (!b_spilled) {
                op.srcB = fixup(ins.b, asgn_.regOf.at(ins.b),
                                s.srcBClasses);
                avoid.push_back(op.srcB);
            } else {
                op.srcB = fixup(ins.b, op.srcB, s.srcBClasses);
            }
        }

        RegId final_dst = kNoReg;
        bool dst_spilled = false, dst_fixup = false;
        if (uKindHasDst(ins.op)) {
            // The destination may reuse a source fixup scratch: the
            // operation reads its operands before writing. Only a
            // modified srcA (push/pop stack pointer) must stay
            // distinct.
            std::vector<RegId> dst_avoid;
            if (writes_srcA && op.srcA != kNoReg)
                dst_avoid.push_back(op.srcA);
            dst_spilled = asgn_.slotOf.at(ins.dst) != kNoSlot;
            if (dst_spilled) {
                op.dst = mach_.scratchFor(
                    s.dstClasses ? s.dstClasses : ~0u, dst_avoid);
            } else {
                RegId rd = asgn_.regOf.at(ins.dst);
                if (s.dstClasses &&
                    !(mach_.reg(rd).classes & s.dstClasses)) {
                    op.dst = mach_.scratchFor(s.dstClasses,
                                              dst_avoid);
                    final_dst = rd;
                    dst_fixup = true;
                } else {
                    op.dst = rd;
                }
            }
        }

        out.push_back(op);
        ++stats_.opsLowered;
        if (ins.op == UKind::Mov)
            ++movRR_;   // rotate move ports across MIR moves

        // Operand registers are dead once the op has executed; the
        // spill store only needs to protect the data register, plus
        // a modified stack pointer awaiting write-back.
        if (dst_spilled) {
            std::vector<RegId> keep;
            if (writes_srcA && op.srcA != kNoReg)
                keep.push_back(op.srcA);
            emitSpillStore(ins.dst, op.dst, out, keep);
        }
        if (dst_fixup) {
            emitMov(final_dst, op.dst, out);
            ++stats_.fixupMovs;
        }

        if (writes_srcA) {
            // push/pop updated the stack pointer in op.srcA; write
            // it back if that register was a reload or fixup copy.
            if (asgn_.slotOf.at(ins.a) != kNoSlot) {
                emitSpillStore(ins.a, op.srcA, out, {});
            } else if (op.srcA != asgn_.regOf.at(ins.a)) {
                emitMov(asgn_.regOf.at(ins.a), op.srcA, out);
            }
        }
    }

    const MachineDescription &mach_;
    const MirProgram &prog_;
    const Assignment &asgn_;
    CompileStats &stats_;
    std::vector<uint16_t> movSpecs_;
    std::vector<uint16_t> ldiSpecs_;
    size_t movRR_ = 0;
    RegId caseReg_ = kNoReg;
};

} // namespace

namespace {

/**
 * Block layout: greedy fallthrough chaining. Starting from the
 * entry, each block is followed by its preferred successor (branch
 * fallthrough, jump target, call continuation) when that block is
 * still unplaced, eliminating the jump words a naive in-order layout
 * needs. Remaining blocks are appended in id order.
 */
std::vector<uint32_t>
layoutBlocks(const MirFunction &f)
{
    size_t nb = f.blocks.size();
    std::vector<bool> placed(nb, false);
    std::vector<uint32_t> order;
    order.reserve(nb);

    auto preferred = [&](uint32_t b) -> uint32_t {
        const Terminator &t = f.blocks[b].term;
        switch (t.kind) {
          case Terminator::Kind::Jump:
            return t.target;
          case Terminator::Kind::Branch:
            return t.fallthrough;
          case Terminator::Kind::Call:
            return t.target;    // the continuation
          default:
            return 0xffffffffu;
        }
    };

    for (uint32_t seed = 0; seed < nb; ++seed) {
        uint32_t b = seed == 0 ? 0 : seed;
        while (b < nb && !placed[b]) {
            placed[b] = true;
            order.push_back(b);
            uint32_t nxt = preferred(b);
            if (nxt >= nb || placed[nxt])
                break;
            b = nxt;
        }
    }
    return order;
}

} // namespace

CompiledProgram
Compiler::compile(const MirProgram &orig,
                  const CompileOptions &opts) const
{
    const MachineDescription &mach = *mach_;
    MirProgram prog = orig;     // passes mutate a copy
    prog.validate();

    // A variable bound to one of the compiler's scratch registers
    // would be clobbered by fixup and spill code.
    for (VReg v = 0; v < prog.numVRegs(); ++v) {
        if (auto b = prog.binding(v)) {
            for (RegId s : mach.scratchRegs()) {
                if (*b == s)
                    fatal("variable '%s' is bound to %s, a compiler "
                          "scratch register of %s",
                          prog.vregName(v).c_str(),
                          mach.reg(s).name.c_str(),
                          mach.name().c_str());
            }
        }
    }

    CompiledProgram cp(mach);

    if (opts.recognizeStackOps)
        recognizeStackOps(prog, mach);
    legalize(prog, mach);
    if (opts.optimize)
        cp.stats.optimized = optimizeMir(prog);
    if (opts.insertInterruptPolls)
        cp.stats.pollPoints = insertInterruptPolls(prog);
    if (opts.trapSafety)
        applyTrapSafety(prog, mach);

    static const GraphColoringAllocator default_alloc;
    static const TokoroCompactor default_compactor;
    const RegisterAllocator &alloc =
        opts.allocator ? *opts.allocator : default_alloc;
    const Compactor &compactor =
        opts.compactor ? *opts.compactor : default_compactor;

    {
        SpanScope span(SpanCat::Allocate,
                       "allocate " + std::string(alloc.name()));
        cp.assignment = alloc.allocate(prog, mach, opts.allocOpts);
    }
    cp.stats.spilledVRegs = cp.assignment.numSpilled();

    Lowerer lw(mach, prog, cp.assignment, cp.stats);
    SpanScope lowerSpan(SpanCat::Compact,
                        "lower+compact " +
                            std::string(compactor.name()));

    struct BlockPatch { uint32_t word; uint32_t block; };
    struct FuncPatch { uint32_t word; uint32_t func; };
    std::vector<FuncPatch> func_patches;
    std::vector<uint32_t> func_entry(prog.numFunctions(), 0);

    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        const MirFunction &f = prog.func(fi);
        func_entry[fi] = static_cast<uint32_t>(cp.store.size());

        std::vector<uint32_t> block_addr(f.blocks.size(), 0);
        std::vector<BlockPatch> patches;
        std::vector<uint32_t> order = layoutBlocks(f);

        for (size_t oi = 0; oi < order.size(); ++oi) {
            uint32_t b = order[oi];
            uint32_t next_block =
                oi + 1 < order.size() ? order[oi + 1] : 0xffffffffu;
            block_addr[b] = static_cast<uint32_t>(cp.store.size());
            const BasicBlock &bb = f.blocks[b];

            std::vector<BoundOp> ops;
            lw.lowerBlock(bb, ops);

            std::vector<MicroInstruction> words;
            if (opts.compact && !ops.empty()) {
                CompactionResult cr = compactor.compact(mach, ops);
                for (const auto &widx : cr.words) {
                    MicroInstruction mi;
                    for (uint32_t i : widx)
                        mi.ops.push_back(ops[i]);
                    words.push_back(std::move(mi));
                }
            } else {
                for (const BoundOp &op : ops) {
                    MicroInstruction mi;
                    mi.ops.push_back(op);
                    words.push_back(std::move(mi));
                }
            }
            if (words.empty())
                words.emplace_back();   // carrier for the sequencing

            // Attach the terminator to the last word.
            const Terminator &t = bb.term;
            MicroInstruction &last = words.back();
            bool extra_jump = false;
            uint32_t extra_target = 0;
            switch (t.kind) {
              case Terminator::Kind::Jump:
                if (t.target != next_block) {
                    last.seq = SeqKind::Jump;
                    last.target = t.target;     // patched below
                }
                break;
              case Terminator::Kind::Branch:
                last.seq = SeqKind::CondJump;
                last.cond = t.cc;
                last.target = t.target;
                if (t.fallthrough != next_block) {
                    extra_jump = true;
                    extra_target = t.fallthrough;
                }
                break;
              case Terminator::Kind::Case:
                last.seq = SeqKind::Multiway;
                last.mwReg = lw.caseReg();
                last.mwMask = t.caseMask;
                break;
              case Terminator::Kind::Call:
                // Return resumes at the word after the call: no jump
                // needed when the continuation block follows.
                last.seq = SeqKind::Call;
                if (t.target != next_block) {
                    extra_jump = true;
                    extra_target = t.target;
                }
                break;
              case Terminator::Kind::Ret:
                last.seq = SeqKind::Return;
                break;
              case Terminator::Kind::Halt:
                last.seq = SeqKind::Halt;
                break;
            }

            // Each emitted word is annotated with its MIR origin
            // (function, block, bound-op mnemonics) so the profiler
            // can attribute cycles back to compiled source.
            for (auto &w : words) {
                std::string origin =
                    strfmt("%s#b%u:", f.name.c_str(), b);
                for (size_t k = 0; k < w.ops.size(); ++k) {
                    origin += k ? "|" : " ";
                    origin += mach.uop(w.ops[k].spec).mnemonic;
                }
                if (w.ops.empty())
                    origin += " (seq)";
                uint32_t addr = cp.store.append(std::move(w));
                cp.store.annotate(addr, -1, std::move(origin));
            }
            uint32_t last_addr =
                static_cast<uint32_t>(cp.store.size()) - 1;

            switch (t.kind) {
              case Terminator::Kind::Jump:
                if (cp.store.word(last_addr).seq == SeqKind::Jump)
                    patches.push_back({last_addr, t.target});
                break;
              case Terminator::Kind::Branch:
                patches.push_back({last_addr, t.target});
                break;
              case Terminator::Kind::Case: {
                // Jump table immediately after the dispatch word.
                cp.store.word(last_addr).target = last_addr + 1;
                for (uint32_t arm : t.caseTargets) {
                    MicroInstruction jw;
                    jw.seq = SeqKind::Jump;
                    uint32_t a = cp.store.append(std::move(jw));
                    cp.store.annotate(
                        a, -1,
                        strfmt("%s#b%u: (case arm)", f.name.c_str(),
                               b));
                    patches.push_back({a, arm});
                }
                break;
              }
              case Terminator::Kind::Call:
                func_patches.push_back({last_addr, t.callee});
                break;
              default:
                break;
            }
            if (extra_jump) {
                MicroInstruction jw;
                jw.seq = SeqKind::Jump;
                uint32_t a = cp.store.append(std::move(jw));
                cp.store.annotate(
                    a, -1,
                    strfmt("%s#b%u: (goto)", f.name.c_str(), b));
                patches.push_back({a, extra_target});
            }
        }

        for (const BlockPatch &p : patches)
            cp.store.word(p.word).target = block_addr[p.block];

        cp.store.defineEntry(f.name, func_entry[fi]);
    }

    for (const FuncPatch &p : func_patches)
        cp.store.word(p.word).target = func_entry[p.func];

    cp.stats.words = static_cast<uint32_t>(cp.store.size());
    return cp;
}

void
setVar(const MirProgram &prog, const CompiledProgram &cp,
       MicroSimulator &sim, MainMemory &mem, const std::string &name,
       uint64_t value)
{
    auto v = prog.findVReg(name);
    if (!v)
        fatal("setVar: no variable '%s'", name.c_str());
    if (cp.assignment.slotOf.at(*v) != kNoSlot) {
        mem.poke(cp.store.machine().scratchBase() +
                     cp.assignment.slotOf[*v],
                 value);
    } else if (cp.assignment.regOf.at(*v) != kNoReg) {
        sim.setReg(cp.assignment.regOf[*v], value);
    } else {
        fatal("setVar: variable '%s' was not allocated (unused?)",
              name.c_str());
    }
}

uint64_t
getVar(const MirProgram &prog, const CompiledProgram &cp,
       const MicroSimulator &sim, const MainMemory &mem,
       const std::string &name)
{
    auto v = prog.findVReg(name);
    if (!v)
        fatal("getVar: no variable '%s'", name.c_str());
    if (cp.assignment.slotOf.at(*v) != kNoSlot) {
        return mem.peek(cp.store.machine().scratchBase() +
                        cp.assignment.slotOf[*v]);
    }
    if (cp.assignment.regOf.at(*v) != kNoReg)
        return sim.getReg(cp.assignment.regOf[*v]);
    fatal("getVar: variable '%s' was not allocated (unused?)",
          name.c_str());
}

} // namespace uhll
