/**
 * @file
 * Optional compiler passes: high-level microoperation recognition,
 * interrupt poll insertion, and the microtrap-safety transformation.
 */

#include "codegen/compiler.hh"

#include <vector>

#include "support/logging.hh"

namespace uhll {

uint32_t
recognizeStackOps(MirProgram &prog, const MachineDescription &mach)
{
    bool has_push = !mach.uopsOfKind(UKind::Push).empty();
    bool has_pop = !mach.uopsOfKind(UKind::Pop).empty();
    if (!has_push && !has_pop)
        return 0;

    uint32_t folds = 0;
    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        for (auto &bb : prog.func(fi).blocks) {
            auto &v = bb.insts;
            for (size_t i = 0; i + 1 < v.size(); ++i) {
                const MInst &x = v[i];
                const MInst &y = v[i + 1];
                // sp := sp + 1 ; mem[sp] := val   =>   push sp, val
                if (has_push && x.op == UKind::Add && x.useImm &&
                    x.imm == 1 && x.dst == x.a &&
                    y.op == UKind::MemWrite && y.a == x.dst &&
                    !y.useImm && y.b != x.dst) {
                    MInst p;
                    p.op = UKind::Push;
                    p.a = x.dst;
                    p.b = y.b;
                    v[i] = p;
                    v.erase(v.begin() + i + 1);
                    ++folds;
                    continue;
                }
                // val := mem[sp] ; sp := sp - 1   =>   pop val, sp
                if (has_pop && x.op == UKind::MemRead &&
                    y.op == UKind::Sub && y.useImm && y.imm == 1 &&
                    y.dst == y.a && y.dst == x.a && x.dst != x.a) {
                    MInst p;
                    p.op = UKind::Pop;
                    p.dst = x.dst;
                    p.a = x.a;
                    v[i] = p;
                    v.erase(v.begin() + i + 1);
                    ++folds;
                    continue;
                }
            }
        }
    }
    return folds;
}

uint32_t
insertInterruptPolls(MirProgram &prog)
{
    uint32_t polls = 0;
    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        MirFunction &f = prog.func(fi);
        size_t nb = f.blocks.size();

        // Find back edges with an iterative DFS.
        enum class Color { White, Grey, Black };
        std::vector<Color> color(nb, Color::White);
        std::vector<std::pair<uint32_t, uint32_t>> back_edges;

        auto targetsOf = [&](uint32_t b) {
            std::vector<uint32_t> out;
            const Terminator &t = f.blocks[b].term;
            switch (t.kind) {
              case Terminator::Kind::Jump:
                out.push_back(t.target);
                break;
              case Terminator::Kind::Branch:
                out.push_back(t.target);
                out.push_back(t.fallthrough);
                break;
              case Terminator::Kind::Case:
                out = t.caseTargets;
                break;
              case Terminator::Kind::Call:
                out.push_back(t.target);
                break;
              default:
                break;
            }
            return out;
        };

        struct Frame { uint32_t block; size_t next; };
        std::vector<Frame> stack{{0, 0}};
        color[0] = Color::Grey;
        while (!stack.empty()) {
            Frame &fr = stack.back();
            auto succ = targetsOf(fr.block);
            if (fr.next >= succ.size()) {
                color[fr.block] = Color::Black;
                stack.pop_back();
                continue;
            }
            uint32_t s = succ[fr.next++];
            if (color[s] == Color::Grey)
                back_edges.emplace_back(fr.block, s);
            else if (color[s] == Color::White) {
                color[s] = Color::Grey;
                stack.push_back(Frame{s, 0});
            }
        }

        // One poll block + handler per back edge.
        for (auto [from, to] : back_edges) {
            uint32_t poll = f.newBlock();
            uint32_t handler = f.newBlock();

            f.blocks[poll].term.kind = Terminator::Kind::Branch;
            f.blocks[poll].term.cc = Cond::Int;
            f.blocks[poll].term.target = handler;
            f.blocks[poll].term.fallthrough = to;

            MInst ack;
            ack.op = UKind::IntAck;
            f.blocks[handler].insts.push_back(ack);
            f.blocks[handler].term =
                jumpTerm(to);

            Terminator &t = f.blocks[from].term;
            auto redirect = [&](uint32_t &tgt) {
                if (tgt == to)
                    tgt = poll;
            };
            switch (t.kind) {
              case Terminator::Kind::Jump:
              case Terminator::Kind::Call:
                redirect(t.target);
                break;
              case Terminator::Kind::Branch:
                redirect(t.target);
                redirect(t.fallthrough);
                break;
              case Terminator::Kind::Case:
                for (uint32_t &ct : t.caseTargets)
                    redirect(ct);
                break;
              default:
                break;
            }
            ++polls;
        }
    }
    prog.validate();
    return polls;
}

uint32_t
applyTrapSafety(MirProgram &prog, const MachineDescription &mach)
{
    // Find vregs bound to architectural registers that are written
    // anywhere.
    std::vector<VReg> targets;
    for (VReg v = 0; v < prog.numVRegs(); ++v) {
        auto b = prog.binding(v);
        if (!b || !mach.reg(*b).architectural)
            continue;
        bool written = false;
        for (uint32_t fi = 0; fi < prog.numFunctions() && !written;
             ++fi) {
            for (const auto &bb : prog.func(fi).blocks) {
                for (const auto &ins : bb.insts) {
                    if ((uKindHasDst(ins.op) && ins.dst == v) ||
                        (uKindModifiesSrcA(ins.op) && ins.a == v)) {
                        written = true;
                        break;
                    }
                }
                if (written)
                    break;
            }
        }
        if (written)
            targets.push_back(v);
    }
    if (targets.empty())
        return 0;

    // One shadow per target; rewrite every reference.
    std::vector<std::pair<VReg, VReg>> shadow;  // (orig, shadow)
    for (VReg v : targets) {
        VReg sh = prog.newVReg(prog.vregName(v) + ".shadow");
        shadow.emplace_back(v, sh);
    }
    auto shadowOf = [&](VReg v) -> VReg {
        for (auto &[orig, sh] : shadow) {
            if (orig == v)
                return sh;
        }
        return v;
    };

    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        for (auto &bb : prog.func(fi).blocks) {
            for (auto &ins : bb.insts) {
                if (ins.dst != kNoVReg)
                    ins.dst = shadowOf(ins.dst);
                if (ins.a != kNoVReg)
                    ins.a = shadowOf(ins.a);
                if (!ins.useImm && ins.b != kNoVReg)
                    ins.b = shadowOf(ins.b);
            }
            if (bb.term.kind == Terminator::Kind::Case)
                bb.term.caseReg = shadowOf(bb.term.caseReg);
        }
    }

    // Load shadows at the program entry...
    MirFunction &entry = prog.func(0);
    std::vector<MInst> prologue;
    for (auto &[orig, sh] : shadow)
        prologue.push_back(mi::mov(sh, orig));
    entry.blocks[0].insts.insert(entry.blocks[0].insts.begin(),
                                 prologue.begin(), prologue.end());

    // ...and commit them at every Halt (the program's exits, after
    // which no memory access can fault).
    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        for (auto &bb : prog.func(fi).blocks) {
            if (bb.term.kind != Terminator::Kind::Halt)
                continue;
            for (auto &[orig, sh] : shadow)
                bb.insts.push_back(mi::mov(orig, sh));
        }
    }
    prog.validate();
    return static_cast<uint32_t>(targets.size());
}

} // namespace uhll
