/**
 * @file
 * Legalisation: rewrite MIR so every instruction has at least one
 * microoperation spec on the target machine and every immediate fits
 * its field.
 */

#include "codegen/compiler.hh"

#include <algorithm>

#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** Capability queries against a machine's repertoire. */
class Caps
{
  public:
    explicit Caps(const MachineDescription &mach) : mach_(&mach) {}

    bool
    hasKind(UKind k) const
    {
        return !mach_->uopsOfKind(k).empty();
    }

    /** A register-operand spec for @p k exists. */
    bool
    hasRegForm(UKind k) const
    {
        for (uint16_t i : mach_->uopsOfKind(k)) {
            if (!uKindHasSrcB(k) || mach_->uop(i).srcBClasses != 0)
                return true;
        }
        return false;
    }

    /** An immediate spec for @p k exists that fits @p imm. */
    bool
    fitsImm(UKind k, uint64_t imm) const
    {
        for (uint16_t i : mach_->uopsOfKind(k)) {
            const MicroOpSpec &s = mach_->uop(i);
            if (!s.allowImm && k != UKind::Ldi)
                continue;
            if (s.immWidth >= 64 || imm <= bitMask(s.immWidth))
                return true;
        }
        return false;
    }

    /** Widest immediate field over specs of @p k. */
    unsigned
    maxImmWidth(UKind k) const
    {
        unsigned w = 0;
        for (uint16_t i : mach_->uopsOfKind(k)) {
            const MicroOpSpec &s = mach_->uop(i);
            if (s.allowImm || k == UKind::Ldi)
                w = std::max(w, unsigned(s.immWidth));
        }
        return w;
    }

  private:
    const MachineDescription *mach_;
};

/** Rewrites one function; appends helper blocks as needed. */
class Legalizer
{
  public:
    Legalizer(MirProgram &prog, MirFunction &func,
              const MachineDescription &mach)
        : prog_(prog), func_(func), mach_(mach), caps_(mach)
    {}

    /**
     * Emit instructions materialising @p imm into @p dst using
     * ldi/shl/add chunks sized to the machine's fields.
     */
    void
    emitConst(std::vector<MInst> &out, VReg dst, uint64_t imm)
    {
        unsigned lw = caps_.maxImmWidth(UKind::Ldi);
        UHLL_ASSERT(lw > 0);
        if (imm <= bitMask(lw)) {
            out.push_back(mi::ldi(dst, imm));
            return;
        }
        // Chunked build, high chunk first.
        unsigned aw = caps_.maxImmWidth(UKind::Add);
        unsigned chunk = std::min(lw, aw);
        UHLL_ASSERT(chunk >= 4);
        unsigned width = mach_.dataWidth();
        unsigned nchunks = (width + chunk - 1) / chunk;
        bool first = true;
        for (unsigned c = nchunks; c-- > 0;) {
            uint64_t part = extractBits(imm, c * chunk, chunk);
            if (first) {
                out.push_back(mi::ldi(dst, part));
                first = false;
            } else {
                out.push_back(
                    mi::binopImm(UKind::Shl, dst, dst, chunk));
                if (part)
                    out.push_back(
                        mi::binopImm(UKind::Add, dst, dst, part));
            }
        }
    }

    /** One legalised step of a shift/rotate by a single position. */
    void
    emitSingleStep(std::vector<MInst> &out, UKind k, VReg dst, VReg a)
    {
        if (caps_.hasKind(k)) {
            out.push_back(mi::binopImm(k, dst, a, 1));
            return;
        }
        UHLL_ASSERT(k == UKind::Rol || k == UKind::Ror);
        // rol x,1 = (x shl 1) | (x shr w-1); likewise ror.
        unsigned w = mach_.dataWidth();
        VReg t1 = prog_.newVReg();
        VReg t2 = prog_.newVReg();
        unsigned left = k == UKind::Rol ? 1 : w - 1;
        out.push_back(mi::binopImm(UKind::Shl, t1, a, left));
        out.push_back(mi::binopImm(UKind::Shr, t2, a, w - left));
        out.push_back(mi::binop(UKind::Or, dst, t1, t2));
    }

    /**
     * Replace instruction @p idx of block @p b (a shift/rotate by a
     * register amount on a machine with immediate-only counts) by a
     * single-step loop. Splits the block.
     */
    void
    lowerShiftLoop(uint32_t b, size_t idx)
    {
        MInst ins = func_.blocks[b].insts[idx];

        // Tail block: everything after idx plus the old terminator.
        uint32_t tail = func_.newBlock();
        BasicBlock &bb = func_.blocks[b];    // revalidate reference
        func_.blocks[tail].insts.assign(bb.insts.begin() + idx + 1,
                                        bb.insts.end());
        func_.blocks[tail].term = bb.term;
        bb.insts.erase(bb.insts.begin() + idx, bb.insts.end());

        VReg val = prog_.newVReg();
        VReg cnt = prog_.newVReg();
        bb.insts.push_back(mi::mov(val, ins.a));
        bb.insts.push_back(mi::mov(cnt, ins.b));

        uint32_t hdr = func_.newBlock();
        uint32_t body = func_.newBlock();
        uint32_t done = func_.newBlock();
        func_.blocks[b].term =
            jumpTerm(hdr);

        func_.blocks[hdr].insts.push_back(mi::cmpImm(cnt, 0));
        func_.blocks[hdr].term.kind = Terminator::Kind::Branch;
        func_.blocks[hdr].term.cc = Cond::Z;
        func_.blocks[hdr].term.target = done;
        func_.blocks[hdr].term.fallthrough = body;

        emitSingleStep(func_.blocks[body].insts, ins.op, val, val);
        func_.blocks[body].insts.push_back(
            mi::binopImm(UKind::Sub, cnt, cnt, 1));
        func_.blocks[body].term =
            jumpTerm(hdr);

        func_.blocks[done].insts.push_back(mi::mov(ins.dst, val));
        func_.blocks[done].term =
            jumpTerm(tail);
    }

    /** Lower a Case terminator to a compare-and-branch chain. */
    void
    lowerCase(uint32_t b)
    {
        Terminator t = func_.blocks[b].term;
        UHLL_ASSERT(!t.caseTargets.empty());

        // Extract the dispatch index. Only contiguous masks occur in
        // practice (front ends build them); reject others loudly.
        unsigned lo = 0;
        while (lo < 64 && !(t.caseMask & (1ULL << lo)))
            ++lo;
        uint64_t shifted = t.caseMask >> lo;
        if ((shifted & (shifted + 1)) != 0)
            fatal("legalize: non-contiguous case mask %#llx "
                  "unsupported without multiway hardware",
                  (unsigned long long)t.caseMask);

        VReg idx = prog_.newVReg();
        auto &insts = func_.blocks[b].insts;
        insts.push_back(
            mi::binopImm(UKind::And, idx, t.caseReg, t.caseMask));
        if (lo)
            insts.push_back(mi::binopImm(UKind::Shr, idx, idx, lo));

        // Chain blocks: arm i tested in chain block i; the final
        // test falls through to the last arm.
        std::vector<uint32_t> chain;
        for (size_t i = 0; i + 1 < t.caseTargets.size(); ++i)
            chain.push_back(func_.newBlock());
        for (size_t i = 0; i + 1 < t.caseTargets.size(); ++i) {
            uint32_t cb = chain[i];
            func_.blocks[cb].insts.push_back(
                mi::cmpImm(idx, static_cast<uint64_t>(i)));
            func_.blocks[cb].term.kind = Terminator::Kind::Branch;
            func_.blocks[cb].term.cc = Cond::Z;
            func_.blocks[cb].term.target = t.caseTargets[i];
            func_.blocks[cb].term.fallthrough =
                i + 1 < chain.size() ? chain[i + 1]
                                     : t.caseTargets.back();
        }
        uint32_t first = chain.empty() ? t.caseTargets.back()
                                       : chain[0];
        func_.blocks[b].term =
            jumpTerm(first);
    }

    /**
     * Legalise one instruction into @p out. Returns false if the
     * instruction needs a control-flow expansion (handled by the
     * caller).
     */
    bool
    legalizeInst(std::vector<MInst> &out, MInst ins)
    {
        switch (ins.op) {
          case UKind::Nop:
          case UKind::IntAck:
          case UKind::Mov:
          case UKind::MemRead:
          case UKind::MemWrite:
            out.push_back(ins);
            return true;

          case UKind::Ldi:
            if (caps_.fitsImm(UKind::Ldi, ins.imm))
                out.push_back(ins);
            else
                emitConst(out, ins.dst, ins.imm);
            return true;

          case UKind::Inc:
          case UKind::Dec:
            if (caps_.hasKind(ins.op)) {
                out.push_back(ins);
            } else {
                out.push_back(mi::binopImm(
                    ins.op == UKind::Inc ? UKind::Add : UKind::Sub,
                    ins.dst, ins.a, 1));
            }
            return true;

          case UKind::Neg:
            if (caps_.hasKind(UKind::Neg)) {
                out.push_back(ins);
            } else {
                out.push_back(mi::unop(UKind::Not, ins.dst, ins.a));
                out.push_back(
                    mi::binopImm(UKind::Add, ins.dst, ins.dst, 1));
            }
            return true;

          case UKind::Not:
            out.push_back(ins);
            return true;

          case UKind::Push:
            if (caps_.hasKind(UKind::Push) && !ins.useImm) {
                out.push_back(ins);
            } else {
                VReg value = ins.b;
                if (ins.useImm) {
                    value = prog_.newVReg();
                    emitConst(out, value, ins.imm);
                }
                out.push_back(
                    mi::binopImm(UKind::Add, ins.a, ins.a, 1));
                out.push_back(mi::store(ins.a, value));
            }
            return true;

          case UKind::Pop:
            if (caps_.hasKind(UKind::Pop)) {
                out.push_back(ins);
            } else {
                out.push_back(mi::load(ins.dst, ins.a));
                out.push_back(
                    mi::binopImm(UKind::Sub, ins.a, ins.a, 1));
            }
            return true;

          case UKind::Add:
          case UKind::Sub:
          case UKind::And:
          case UKind::Or:
          case UKind::Xor:
          case UKind::Cmp:
            if (ins.useImm) {
                if (caps_.fitsImm(ins.op, ins.imm)) {
                    out.push_back(ins);
                } else {
                    VReg t = prog_.newVReg();
                    emitConst(out, t, ins.imm);
                    ins.useImm = false;
                    ins.b = t;
                    out.push_back(ins);
                }
            } else {
                UHLL_ASSERT(caps_.hasRegForm(ins.op));
                out.push_back(ins);
            }
            return true;

          case UKind::Shl:
          case UKind::Shr:
          case UKind::Sar:
          case UKind::Rol:
          case UKind::Ror:
            return legalizeShift(out, ins);

          default:
            panic("legalize: unexpected op %s", uKindName(ins.op));
        }
    }

  private:
    bool
    legalizeShift(std::vector<MInst> &out, MInst ins)
    {
        unsigned w = mach_.dataWidth();
        if (ins.useImm) {
            uint64_t n = ins.imm % (w + 1);
            ins.imm = n;
            if (n == 0) {
                out.push_back(mi::mov(ins.dst, ins.a));
                return true;
            }
            if (caps_.hasKind(ins.op) &&
                caps_.fitsImm(ins.op, ins.imm)) {
                out.push_back(ins);
                return true;
            }
            if (ins.op == UKind::Rol || ins.op == UKind::Ror) {
                // rol x,n = (x shl n) | (x shr w-n)
                VReg t1 = prog_.newVReg();
                VReg t2 = prog_.newVReg();
                unsigned left = ins.op == UKind::Rol
                                    ? static_cast<unsigned>(n)
                                    : w - static_cast<unsigned>(n);
                if (left == 0 || left >= w) {
                    out.push_back(mi::mov(ins.dst, ins.a));
                    return true;
                }
                out.push_back(
                    mi::binopImm(UKind::Shl, t1, ins.a, left));
                out.push_back(
                    mi::binopImm(UKind::Shr, t2, ins.a, w - left));
                out.push_back(mi::binop(UKind::Or, ins.dst, t1, t2));
                return true;
            }
            fatal("legalize: %s by %llu unsupported on %s",
                  uKindName(ins.op), (unsigned long long)ins.imm,
                  mach_.name().c_str());
        }
        // Register-count shifts.
        if (caps_.hasRegForm(ins.op)) {
            out.push_back(ins);
            return true;
        }
        return false;   // caller splits the block into a loop
    }

    MirProgram &prog_;
    MirFunction &func_;
    const MachineDescription &mach_;
    Caps caps_;
};

} // namespace

void
legalize(MirProgram &prog, const MachineDescription &mach)
{
    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        MirFunction &f = prog.func(fi);
        Legalizer lg(prog, f, mach);

        // Case lowering first (adds plain blocks whose instructions
        // then go through the normal path below).
        if (!mach.hasMultiway()) {
            size_t nb = f.blocks.size();
            for (size_t b = 0; b < nb; ++b) {
                if (f.blocks[b].term.kind == Terminator::Kind::Case)
                    lg.lowerCase(static_cast<uint32_t>(b));
            }
        }

        // Instruction legalisation with block splitting for
        // register-count shifts on immediate-only machines.
        for (size_t b = 0; b < f.blocks.size(); ++b) {
            bool restart = true;
            while (restart) {
                restart = false;
                std::vector<MInst> out;
                auto &insts = f.blocks[b].insts;
                for (size_t i = 0; i < insts.size(); ++i) {
                    if (!lg.legalizeInst(out, insts[i])) {
                        // Control-flow expansion: splice the already
                        // legalised prefix back, then split at the
                        // problem instruction.
                        std::vector<MInst> tail(insts.begin() + i,
                                                insts.end());
                        size_t idx = out.size();
                        insts = std::move(out);
                        insts.insert(insts.end(), tail.begin(),
                                     tail.end());
                        lg.lowerShiftLoop(static_cast<uint32_t>(b),
                                          idx);
                        restart = true;
                        break;
                    }
                }
                if (!restart)
                    f.blocks[b].insts = std::move(out);
            }
        }
    }
    prog.validate();
}

} // namespace uhll
