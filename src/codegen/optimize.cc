/**
 * @file
 * MIR optimisation: local copy propagation and dead-move
 * elimination.
 *
 * The surveyed projects never finished an optimising compiler; this
 * pass implements the safest useful core. It is deliberately
 * conservative about the flag latch: only operations that cannot
 * set flags (Mov, Ldi, MemRead) are ever deleted, so the condition
 * a Branch terminator tests is never disturbed.
 */

#include "codegen/compiler.hh"

#include "regalloc/liveness.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** Forward copy propagation within one block. */
uint32_t
propagateCopies(const MirProgram &prog, BasicBlock &bb)
{
    uint32_t changed = 0;
    // copies[dst] = src for live `mov dst, src` facts
    std::unordered_map<VReg, VReg> copies;

    auto invalidate = [&](VReg v) {
        copies.erase(v);
        for (auto it = copies.begin(); it != copies.end();) {
            if (it->second == v)
                it = copies.erase(it);
            else
                ++it;
        }
    };
    auto lookup = [&](VReg v) -> VReg {
        auto it = copies.find(v);
        return it == copies.end() ? v : it->second;
    };

    for (MInst &ins : bb.insts) {
        // Replace source operands (never the modified srcA of
        // push/pop: the write must land in the original register).
        if (uKindHasSrcA(ins.op) && !uKindModifiesSrcA(ins.op) &&
            ins.a != kNoVReg) {
            VReg r = lookup(ins.a);
            if (r != ins.a) {
                ins.a = r;
                ++changed;
            }
        }
        if (uKindHasSrcB(ins.op) && !ins.useImm && ins.b != kNoVReg) {
            VReg r = lookup(ins.b);
            if (r != ins.b) {
                ins.b = r;
                ++changed;
            }
        }

        UseDef ud = useDefOf(ins);
        for (VReg d : ud.defs) {
            if (d != kNoVReg)
                invalidate(d);
        }
        if (ins.op == UKind::Mov && ins.dst != ins.a)
            copies[ins.dst] = ins.a;
    }

    // The case dispatch register is read at block end.
    if (bb.term.kind == Terminator::Kind::Case) {
        VReg r = lookup(bb.term.caseReg);
        if (r != bb.term.caseReg) {
            bb.term.caseReg = r;
            ++changed;
        }
    }
    (void)prog;
    return changed;
}

/**
 * Remove flag-neutral instructions whose destination is dead.
 * Returns the number of removed instructions.
 */
uint32_t
removeDeadMoves(const MirProgram &prog, uint32_t fn)
{
    MirFunction &f = const_cast<MirProgram &>(prog).func(fn);
    LivenessInfo live = computeLiveness(prog, fn);
    uint32_t removed = 0;

    for (size_t b = 0; b < f.blocks.size(); ++b) {
        VRegSet cur = live.liveOut[b];
        if (f.blocks[b].term.kind == Terminator::Kind::Case)
            cur.set(f.blocks[b].term.caseReg);
        auto &insts = f.blocks[b].insts;
        for (size_t i = insts.size(); i-- > 0;) {
            const MInst &ins = insts[i];
            bool flag_neutral = ins.op == UKind::Mov ||
                                ins.op == UKind::Ldi ||
                                ins.op == UKind::MemRead;
            bool removable =
                flag_neutral && uKindHasDst(ins.op) &&
                ins.dst != kNoVReg && !cur.test(ins.dst) &&
                !uKindModifiesSrcA(ins.op);
            if (removable) {
                insts.erase(insts.begin() + i);
                ++removed;
                continue;
            }
            UseDef ud = useDefOf(ins);
            for (VReg d : ud.defs) {
                if (d != kNoVReg)
                    cur.clear(d);
            }
            for (VReg u : ud.uses) {
                if (u != kNoVReg)
                    cur.set(u);
            }
        }
    }
    return removed;
}

} // namespace

uint32_t
optimizeMir(MirProgram &prog)
{
    uint32_t total = 0;
    for (uint32_t fi = 0; fi < prog.numFunctions(); ++fi) {
        for (auto &bb : prog.func(fi).blocks)
            total += propagateCopies(prog, bb);
        total += removeDeadMoves(prog, fi);
    }
    prog.validate();
    return total;
}

} // namespace uhll
