/**
 * @file
 * ExecMemory: a W^X executable code page for the JIT tier.
 *
 * Pages are mmap'd read+write, filled with emitted machine code, then
 * flipped to read+execute with mprotect (finalize()). The mapping is
 * never writable and executable at the same time. Allocation failure
 * is not fatal: the JIT tier degrades to the interpreter, so hosts
 * with noexec-restricted mappings (or sanitizer runtimes that reserve
 * the address space) simply never execute native regions.
 *
 * Sanitizer awareness: under UHLL_SANITIZE_BUILD (set by CMake when
 * UHLL_SANITIZE is configured) the allocator behaves identically --
 * ASan/TSan/UBSan do not instrument anonymous executable mappings --
 * but the probe in JitTier::available() exercises a full
 * allocate/finalize/execute round trip first, so a sanitizer runtime
 * that forbids it turns the tier off instead of crashing mid-run.
 */

#ifndef UHLL_JIT_CODEBUF_HH
#define UHLL_JIT_CODEBUF_HH

#include <cstddef>
#include <cstdint>
#include <memory>

namespace uhll {

/** One read-only-executable code mapping (W^X discipline). */
class ExecMemory
{
  public:
    /** Map @p size bytes read+write; null on failure. */
    static std::unique_ptr<ExecMemory> allocate(size_t size);

    ~ExecMemory();
    ExecMemory(const ExecMemory &) = delete;
    ExecMemory &operator=(const ExecMemory &) = delete;

    uint8_t *base() { return base_; }
    const uint8_t *base() const { return base_; }
    size_t size() const { return size_; }

    /** Flip the mapping from RW to RX. False on failure (the caller
     *  must then discard the region, never execute it). */
    bool finalize();

  private:
    ExecMemory(uint8_t *base, size_t size)
        : base_(base), size_(size)
    {}

    uint8_t *base_ = nullptr;
    size_t size_ = 0;
};

} // namespace uhll

#endif // UHLL_JIT_CODEBUF_HH
