#include "jit/jit.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "jit/codebuf.hh"
#include "machine/decoded_store.hh"
#include "machine/machine_desc.hh"
#include "obs/telemetry.hh"
#include "support/logging.hh"

namespace uhll {

static_assert(offsetof(JitEnterState, regs) == 0);
static_assert(offsetof(JitEnterState, flags) == 8);
static_assert(offsetof(JitEnterState, budget) == 16);
static_assert(offsetof(JitEnterState, exitUpc) == 24);
static_assert(offsetof(JitEnterState, exitReason) == 28);
static_assert(offsetof(JitEnterState, restartUpc) == 32);

const CompiledRegion JitTier::failed_;
const CompiledRegion JitRegionCache::failed_;

namespace {

/**
 * Build + finalize the region at @p addr, charging compile time and
 * outcome to @p counters. Returns null on ineligible head or any
 * allocation/emission failure.
 */
std::unique_ptr<CompiledRegion>
compileRegion(uint32_t addr, const DecodedStore &ds,
              const MachineDescription &mach, JitCounters &counters,
              std::unique_ptr<ExecMemory> *mem_out)
{
    SpanScope span(SpanCat::Jit,
                   strfmt("jit compile 0x%04x", addr));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<uint8_t> code;
    uint32_t words = 0;
    bool ok = jitBuildRegion(ds, mach, addr, &code, &words);
    std::unique_ptr<ExecMemory> mem;
    if (ok) {
        mem = ExecMemory::allocate(code.size());
        if (mem) {
            std::memcpy(mem->base(), code.data(), code.size());
            ok = mem->finalize();
        } else {
            ok = false;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    counters.compileMicros += uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    if (!ok) {
        ++counters.compileFailed;
        return nullptr;
    }
    auto region = std::make_unique<CompiledRegion>();
    region->fn = reinterpret_cast<JitFn>(mem->base());
    region->head = addr;
    region->wordCount = words;
    ++counters.regionsCompiled;
    counters.codeBytes += mem->size();
    *mem_out = std::move(mem);
    return region;
}

} // namespace

// ----------------------------------------------------------------
// JitRegionCache
// ----------------------------------------------------------------

JitRegionCache::JitRegionCache(const MachineDescription &mach)
    : mach_(mach)
{}

JitRegionCache::~JitRegionCache() = default;

const CompiledRegion *
JitRegionCache::obtain(uint64_t version, uint32_t addr,
                       const DecodedStore &ds, JitCounters &counters)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (version != version_ || byAddr_.size() != ds.size()) {
        version_ = version;
        regions_.clear();
        code_.clear();
        byAddr_.assign(ds.size(), nullptr);
    }
    if (addr >= byAddr_.size())
        return nullptr;
    if (const CompiledRegion *r = byAddr_[addr])
        return r == &failed_ ? nullptr : r;
    std::unique_ptr<ExecMemory> mem;
    auto region = compileRegion(addr, ds, mach_, counters, &mem);
    if (!region) {
        byAddr_[addr] = &failed_;
        return nullptr;
    }
    byAddr_[addr] = region.get();
    code_.push_back(std::move(mem));
    regions_.push_back(std::move(region));
    return byAddr_[addr];
}

// ----------------------------------------------------------------
// JitTier
// ----------------------------------------------------------------

JitTier::JitTier(const MachineDescription &mach, uint32_t threshold,
                 JitRegionCache *shared)
    : mach_(mach), threshold_(threshold ? threshold : 1),
      shared_(shared)
{}

JitTier::~JitTier() = default;

bool
JitTier::available()
{
#if defined(__x86_64__) || defined(_M_X64)
    static const bool avail = [] {
        if (const char *e = std::getenv("UHLL_NO_JIT"))
            if (*e && std::strcmp(e, "0") != 0)
                return false;
        // Probe a full allocate / finalize / execute round trip so
        // noexec mounts or restrictive sanitizer runtimes turn the
        // tier off up front instead of faulting mid-run.
        auto mem = ExecMemory::allocate(16);
        if (!mem)
            return false;
        mem->base()[0] = 0xC3;  // ret
        if (!mem->finalize())
            return false;
        JitEnterState st{};
        jitInvoke(reinterpret_cast<JitFn>(mem->base()), &st);
        return true;
    }();
    return avail;
#else
    return false;
#endif
}

void
JitTier::sync(uint64_t storeVersion, size_t numWords)
{
    if (storeVersion == version_ && numWords == byAddr_.size())
        return;
    version_ = storeVersion;
    regions_.clear();
    code_.clear();
    byAddr_.assign(numWords, nullptr);
    counts_.assign(numWords, 0);
}

const CompiledRegion *
JitTier::request(uint32_t addr, const DecodedStore &ds)
{
    if (addr >= byAddr_.size())
        return nullptr;
    const CompiledRegion *r = byAddr_[addr];
    if (r)
        return r == &failed_ ? nullptr : r;
    if (++counts_[addr] < threshold_)
        return nullptr;
    return obtainAt(addr, ds);
}

const CompiledRegion *
JitTier::obtainAt(uint32_t addr, const DecodedStore &ds)
{
    if (shared_) {
        const CompiledRegion *r =
            shared_->obtain(version_, addr, ds, counters_);
        byAddr_[addr] = r ? r : &failed_;
        return r;
    }
    std::unique_ptr<ExecMemory> mem;
    auto region = compileRegion(addr, ds, mach_, counters_, &mem);
    if (!region) {
        byAddr_[addr] = &failed_;
        return nullptr;
    }
    byAddr_[addr] = region.get();
    code_.push_back(std::move(mem));
    regions_.push_back(std::move(region));
    return byAddr_[addr];
}

} // namespace uhll
