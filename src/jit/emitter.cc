#include "jit/emitter.hh"

namespace uhll {
namespace jit {

void
Emitter::imm32(uint32_t v)
{
    byte(uint8_t(v));
    byte(uint8_t(v >> 8));
    byte(uint8_t(v >> 16));
    byte(uint8_t(v >> 24));
}

void
Emitter::imm64(uint64_t v)
{
    imm32(uint32_t(v));
    imm32(uint32_t(v >> 32));
}

void
Emitter::rex(bool w, uint8_t reg, uint8_t rm, bool force)
{
    uint8_t r = 0x40;
    if (w)
        r |= 0x08;
    if (reg >= 8)
        r |= 0x04;
    if (rm >= 8)
        r |= 0x01;
    if (r != 0x40 || force)
        byte(r);
}

void
Emitter::modrmReg(uint8_t reg, uint8_t rm)
{
    byte(uint8_t(0xC0 | ((reg & 7) << 3) | (rm & 7)));
}

void
Emitter::modrmMem(uint8_t reg, Reg base, int32_t disp)
{
    byte(uint8_t(0x80 | ((reg & 7) << 3) | (base & 7)));
    if ((base & 7) == 4)
        byte(0x24);     // SIB: no index, base = rsp/r12
    imm32(uint32_t(disp));
}

void
Emitter::pushR(Reg r)
{
    if (r >= 8)
        byte(0x41);
    byte(uint8_t(0x50 | (r & 7)));
}

void
Emitter::popR(Reg r)
{
    if (r >= 8)
        byte(0x41);
    byte(uint8_t(0x58 | (r & 7)));
}

void
Emitter::ret()
{
    byte(0xC3);
}

void
Emitter::movRR(Reg dst, Reg src)
{
    rex(true, src, dst);
    byte(0x89);
    modrmReg(src, dst);
}

void
Emitter::movRI(Reg dst, uint64_t imm)
{
    if (imm <= 0xFFFFFFFFull) {
        movRI32(dst, uint32_t(imm));
        return;
    }
    rex(true, 0, dst);
    byte(uint8_t(0xB8 | (dst & 7)));
    imm64(imm);
}

void
Emitter::loadRM(Reg dst, Reg base, int32_t disp)
{
    rex(true, dst, base);
    byte(0x8B);
    modrmMem(dst, base, disp);
}

void
Emitter::storeMR(Reg base, int32_t disp, Reg src)
{
    rex(true, src, base);
    byte(0x89);
    modrmMem(src, base, disp);
}

void
Emitter::storeMI32(Reg base, int32_t disp, uint32_t imm)
{
    rex(false, 0, base);
    byte(0xC7);
    modrmMem(0, base, disp);
    imm32(imm);
}

void
Emitter::aluRR(AluExt op, Reg dst, Reg src)
{
    // 01/09/21/29/31/39: "alu r/m64, r64" opcode = ext*8 + 1.
    rex(true, src, dst);
    byte(uint8_t(op * 8 + 1));
    modrmReg(src, dst);
}

void
Emitter::aluRI(AluExt op, Reg dst, int32_t imm)
{
    rex(true, 0, dst);
    byte(0x81);
    modrmReg(op, dst);
    imm32(uint32_t(imm));
}

void
Emitter::aluRI8(AluExt op, Reg dst, int8_t imm)
{
    rex(true, 0, dst);
    byte(0x83);
    modrmReg(op, dst);
    byte(uint8_t(imm));
}

void
Emitter::aluRR16(AluExt op, Reg dst, Reg src)
{
    byte(0x66);     // operand-size override, before any REX
    rex(false, src, dst);
    byte(uint8_t(op * 8 + 1));
    modrmReg(src, dst);
}

void
Emitter::movzxR16(Reg dst, Reg src)
{
    rex(false, dst, src);
    byte(0x0F);
    byte(0xB7);
    modrmReg(dst, src);
}

void
Emitter::shiftRI(ShiftExt op, Reg r, uint8_t count)
{
    if (count == 0)
        return;
    rex(true, 0, r);
    byte(0xC1);
    modrmReg(op, r);
    byte(count);
}

void
Emitter::shiftRC(ShiftExt op, Reg r)
{
    rex(true, 0, r);
    byte(0xD3);
    modrmReg(op, r);
}

void
Emitter::testRR(Reg a, Reg b)
{
    rex(true, b, a);
    byte(0x85);
    modrmReg(b, a);
}

void
Emitter::testRI(Reg r, int32_t imm)
{
    rex(true, 0, r);
    byte(0xF7);
    modrmReg(0, r);
    imm32(uint32_t(imm));
}

void
Emitter::negR(Reg r)
{
    rex(true, 0, r);
    byte(0xF7);
    modrmReg(3, r);
}

void
Emitter::notR(Reg r)
{
    rex(true, 0, r);
    byte(0xF7);
    modrmReg(2, r);
}

void
Emitter::decR(Reg r)
{
    rex(true, 0, r);
    byte(0xFF);
    modrmReg(1, r);
}

void
Emitter::xorR32(Reg dst, Reg src)
{
    rex(false, src, dst);
    byte(0x31);
    modrmReg(src, dst);
}

void
Emitter::movRI32(Reg dst, uint32_t imm)
{
    rex(false, 0, dst);
    byte(uint8_t(0xB8 | (dst & 7)));
    imm32(imm);
}

void
Emitter::divR32(Reg src)
{
    rex(false, 0, src);
    byte(0xF7);
    modrmReg(6, src);
}

void
Emitter::cmovRR(CC cc, Reg dst, Reg src)
{
    rex(true, dst, src);
    byte(0x0F);
    byte(uint8_t(0x40 | uint8_t(cc)));
    modrmReg(dst, src);
}

void
Emitter::setccR(CC cc, Reg r)
{
    // RAX..RBX encode without REX; R8..R15 need REX.B. RSP..RDI would
    // alias ah..bh without a REX -- the lowering never uses them.
    if (r >= 8)
        byte(0x41);
    byte(0x0F);
    byte(uint8_t(0x90 | uint8_t(cc)));
    modrmReg(0, r);
}

int
Emitter::newLabel()
{
    labels_.push_back(-1);
    return int(labels_.size()) - 1;
}

void
Emitter::bind(int label)
{
    labels_[size_t(label)] = int64_t(buf_.size());
}

void
Emitter::jmp(int label)
{
    byte(0xE9);
    fixups_.emplace_back(buf_.size(), label);
    imm32(0);
}

void
Emitter::jcc(CC cc, int label)
{
    byte(0x0F);
    byte(uint8_t(0x80 | uint8_t(cc)));
    fixups_.emplace_back(buf_.size(), label);
    imm32(0);
}

bool
Emitter::link()
{
    for (auto &[pos, label] : fixups_) {
        int64_t target = labels_[size_t(label)];
        if (target < 0)
            return false;
        int64_t rel = target - int64_t(pos) - 4;
        uint32_t v = uint32_t(int32_t(rel));
        buf_[pos + 0] = uint8_t(v);
        buf_[pos + 1] = uint8_t(v >> 8);
        buf_[pos + 2] = uint8_t(v >> 16);
        buf_[pos + 3] = uint8_t(v >> 24);
    }
    fixups_.clear();
    return true;
}

} // namespace jit
} // namespace uhll
