/**
 * @file
 * A minimal x86-64 machine-code emitter for the JIT tier.
 *
 * Covers exactly the instruction subset the superblock lowering needs:
 * 64-bit mov/alu/shift/test/neg/not, 32-bit mov/xor/div/cmov, byte
 * setcc, push/pop/ret, and rel32 jumps with label fixups. Encodings
 * are deliberately boring -- memory operands always use mod=10
 * (disp32), immediates are imm32 -- so every instruction has one
 * shape and the emitter stays auditable against the SDM tables.
 */

#ifndef UHLL_JIT_EMITTER_HH
#define UHLL_JIT_EMITTER_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace uhll {
namespace jit {

/** Host register numbers (modrm encoding order). */
enum Reg : uint8_t {
    RAX = 0, RCX = 1, RDX = 2, RBX = 3,
    RSP = 4, RBP = 5, RSI = 6, RDI = 7,
    R8  = 8, R9  = 9, R10 = 10, R11 = 11,
    R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/** Condition codes (tttn field of jcc/setcc). */
enum class CC : uint8_t {
    O = 0, NO, B, AE, E, NE, BE, A,
    S, NS, P, NP, L, GE, LE, G,
};

/** /ext selectors for the 81 (alu imm) group. */
enum AluExt : uint8_t {
    ALU_ADD = 0, ALU_OR = 1, ALU_AND = 4,
    ALU_SUB = 5, ALU_XOR = 6, ALU_CMP = 7,
};

/** /ext selectors for the C1/D3 shift group. */
enum ShiftExt : uint8_t { SH_SHL = 4, SH_SHR = 5, SH_SAR = 7 };

class Emitter
{
  public:
    // ---- stack / control ----
    void pushR(Reg r);
    void popR(Reg r);
    void ret();

    // ---- 64-bit moves ----
    void movRR(Reg dst, Reg src);
    /** mov dst, imm -- zero-extending B8+rd for 32-bit values,
     *  movabs for wider ones. */
    void movRI(Reg dst, uint64_t imm);
    /** mov dst, qword [base + disp] */
    void loadRM(Reg dst, Reg base, int32_t disp);
    /** mov qword [base + disp], src */
    void storeMR(Reg base, int32_t disp, Reg src);
    /** mov dword [base + disp], imm32 */
    void storeMI32(Reg base, int32_t disp, uint32_t imm);

    // ---- 64-bit alu ----
    void aluRR(AluExt op, Reg dst, Reg src);
    void aluRI(AluExt op, Reg dst, int32_t imm);
    /** 83 /ext sign-extended imm8 form (short encodings for the
     *  budget debit/repay). */
    void aluRI8(AluExt op, Reg dst, int8_t imm);
    void shiftRI(ShiftExt op, Reg r, uint8_t count);
    void shiftRC(ShiftExt op, Reg r);       //!< count in CL
    void testRR(Reg a, Reg b);
    void testRI(Reg r, int32_t imm);
    void negR(Reg r);
    void notR(Reg r);
    void decR(Reg r);

    // ---- 16-bit helpers (native-width flag extraction) ----
    /** 66-prefixed "alu r/m16, r16": writes the low word of dst only
     *  and sets host flags per the 16-bit result. */
    void aluRR16(AluExt op, Reg dst, Reg src);
    /** movzx dst32, src16 -- zero-extends to 64. */
    void movzxR16(Reg dst, Reg src);

    // ---- 32-bit helpers ----
    void xorR32(Reg dst, Reg src);          //!< zero-extends to 64
    void movRI32(Reg dst, uint32_t imm);    //!< zero-extends to 64
    /** unsigned edx:eax / src32; quotient eax, remainder edx. */
    void divR32(Reg src);
    void cmovRR(CC cc, Reg dst, Reg src);   //!< 64-bit cmovcc

    // ---- flags ----
    /** setcc on the low byte of r (r must be RAX/RCX/RDX/RBX or
     *  R8..R15 -- no REX-less spl/bpl/sil/dil aliases needed). */
    void setccR(CC cc, Reg r);

    // ---- labels ----
    int newLabel();
    void bind(int label);
    void jmp(int label);
    void jcc(CC cc, int label);

    /** Resolve all fixups; false if a referenced label is unbound. */
    bool link();

    const std::vector<uint8_t> &bytes() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    void byte(uint8_t b) { buf_.push_back(b); }
    void imm32(uint32_t v);
    void imm64(uint64_t v);
    /** REX prefix; emitted only when a bit (or @p force) demands it. */
    void rex(bool w, uint8_t reg, uint8_t rm, bool force = false);
    void modrmReg(uint8_t reg, uint8_t rm);
    /** mod=10 disp32 memory operand (SIB when base is RSP/R12). */
    void modrmMem(uint8_t reg, Reg base, int32_t disp);

    std::vector<uint8_t> buf_;
    std::vector<int64_t> labels_;               // offset or -1
    std::vector<std::pair<size_t, int>> fixups_; // rel32 pos, label
};

} // namespace jit
} // namespace uhll

#endif // UHLL_JIT_EMITTER_HH
