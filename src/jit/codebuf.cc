#include "jit/codebuf.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define UHLL_JIT_HAVE_MMAP 1
#endif

namespace uhll {

std::unique_ptr<ExecMemory>
ExecMemory::allocate(size_t size)
{
#if UHLL_JIT_HAVE_MMAP
    if (size == 0)
        size = 1;
    // Round up to whole pages so the W^X flip covers exactly the
    // mapping.
    const size_t page =
        static_cast<size_t>(sysconf(_SC_PAGESIZE));
    size = (size + page - 1) / page * page;
    void *p = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED)
        return nullptr;
    return std::unique_ptr<ExecMemory>(
        new ExecMemory(static_cast<uint8_t *>(p), size));
#else
    (void)size;
    return nullptr;
#endif
}

ExecMemory::~ExecMemory()
{
#if UHLL_JIT_HAVE_MMAP
    if (base_)
        munmap(base_, size_);
#endif
}

bool
ExecMemory::finalize()
{
#if UHLL_JIT_HAVE_MMAP
    return mprotect(base_, size_, PROT_READ | PROT_EXEC) == 0;
#else
    return false;
#endif
}

} // namespace uhll
