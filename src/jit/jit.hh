/**
 * @file
 * JitTier: the simulator's native execution tier.
 *
 * A per-DecodedStore profile counts how often each microaddress is
 * reached through normal dispatch; once an address crosses the
 * hotness threshold, a superblock builder walks the already-decoded
 * control words reachable from it (straight-line flow plus both arms
 * of plain conditional branches) and lowers the region to x86-64 via
 * the in-process emitter. Native execution is bit-identical to the
 * interpreter's fast path by construction: regions admit only
 * fast-path-eligible pure-ALU words, every word retires in exactly
 * one cycle, and every exit -- budget exhausted (slice boundary or
 * supervision poll due), control leaving the region, or a halt word
 * -- spills the full architectural state (register file, flags,
 * restart point, next upc) back to the simulator before the
 * interpreter resumes.
 *
 * Hosts that are not x86-64, cannot map W^X pages, or set
 * UHLL_NO_JIT=1 report available() == false and the simulator never
 * constructs a tier.
 */

#ifndef UHLL_JIT_JIT_HH
#define UHLL_JIT_JIT_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "machine/types.hh"

namespace uhll {

class DecodedStore;
class ExecMemory;
class MachineDescription;

/** Why a native region handed control back to the interpreter. */
enum class JitExit : uint32_t {
    Budget = 0,     //!< word/cycle budget exhausted at a word boundary
    OffRegion = 1,  //!< control flowed to a word outside the region
    Halt = 2,       //!< a halt word executed
};

/**
 * The spill area shared between the simulator and native code. Field
 * offsets are fixed (the emitter hard-codes them); keep in sync with
 * the static_asserts in jit.cc.
 */
struct JitEnterState {
    uint64_t *regs;         //!< +0  register file base
    uint64_t flags;         //!< +8  packed z|n<<1|c<<2|uf<<3|ovf<<4
    uint64_t budget;        //!< +16 words left; counts down
    uint32_t exitUpc;       //!< +24 where the interpreter resumes
    uint32_t exitReason;    //!< +28 JitExit
    uint32_t restartUpc;    //!< +32 last restart-point word entered
    uint32_t pad_ = 0;
};

using JitFn = void (*)(JitEnterState *);

inline uint64_t
packJitFlags(const Flags &f)
{
    return uint64_t(f.z) | uint64_t(f.n) << 1 | uint64_t(f.c) << 2 |
           uint64_t(f.uf) << 3 | uint64_t(f.ovf) << 4;
}

inline Flags
unpackJitFlags(uint64_t v)
{
    Flags f;
    f.z = v & 1;
    f.n = (v >> 1) & 1;
    f.c = (v >> 2) & 1;
    f.uf = (v >> 3) & 1;
    f.ovf = (v >> 4) & 1;
    return f;
}

/** Tier counters, surfaced as jit.* stats on the simulator. */
struct JitCounters {
    uint64_t regionsCompiled = 0;
    uint64_t compileFailed = 0; //!< ineligible head or emit failure
    uint64_t entries = 0;       //!< native region entries
    uint64_t nativeWords = 0;   //!< words retired natively
    uint64_t deoptBudget = 0;
    uint64_t deoptOffRegion = 0;
    uint64_t deoptHalt = 0;
    uint64_t compileMicros = 0; //!< wall-clock spent compiling
    uint64_t codeBytes = 0;     //!< finalized native code bytes
};

/** One compiled superblock, entered at its head microaddress. */
struct CompiledRegion {
    JitFn fn = nullptr;
    uint32_t head = 0;
    uint32_t wordCount = 0;     //!< words included in the region
};

/**
 * A shared, thread-safe compiled-region cache -- the native-code
 * analogue of the shared DecodedStore. One instance hangs off each
 * Artefact (keyed, like the artefact itself, by machine + language +
 * options + source), so N concurrent simulators of one program
 * compile every hot region once instead of once per simulator.
 *
 * obtain() is called only on a profile-threshold crossing (rare), so
 * a plain mutex is fine; the returned region pointers are stable for
 * the cache's lifetime and the executable pages are immutable after
 * finalize(), making cross-thread execution safe.
 */
class JitRegionCache
{
  public:
    explicit JitRegionCache(const MachineDescription &mach);
    ~JitRegionCache();
    JitRegionCache(const JitRegionCache &) = delete;
    JitRegionCache &operator=(const JitRegionCache &) = delete;

    /**
     * The compiled region at @p addr, compiling on first request.
     * Returns nullptr when the head is ineligible or emission
     * failed. @p counters (the requesting simulator's) is bumped
     * only when this call did the actual compile.
     */
    const CompiledRegion *obtain(uint64_t version, uint32_t addr,
                                 const DecodedStore &ds,
                                 JitCounters &counters);

  private:
    const MachineDescription &mach_;
    std::mutex mu_;
    uint64_t version_ = ~0ULL;
    //! per-address: null (not yet requested), &failed_, or region
    std::vector<const CompiledRegion *> byAddr_;
    std::vector<std::unique_ptr<CompiledRegion>> regions_;
    std::vector<std::unique_ptr<ExecMemory>> code_;

    static const CompiledRegion failed_;
};

class JitTier
{
  public:
    /**
     * @param mach the machine the store decodes against
     * @param threshold region-entry count that triggers compilation
     *        (>= 1; 1 compiles on first execution)
     * @param shared optional shared region cache (SimConfig::jitCache
     *        -> Artefact::jitCache); null compiles privately
     */
    JitTier(const MachineDescription &mach, uint32_t threshold,
            JitRegionCache *shared = nullptr);
    ~JitTier();

    /**
     * Whether this host can run native regions at all: x86-64, W^X
     * pages mappable and executable (probed once with a real call),
     * and UHLL_NO_JIT not set in the environment.
     */
    static bool available();

    /**
     * Re-sync the profile and region cache against the store; called
     * at every run() start. A version change (patched words) drops
     * every compiled region and all counts.
     */
    void sync(uint64_t storeVersion, size_t numWords);

    /**
     * Hot-path query from the dispatch loop: bump the profile count
     * for @p addr and return its compiled region if one exists (or
     * just crossed the threshold and compiled successfully).
     */
    const CompiledRegion *request(uint32_t addr,
                                  const DecodedStore &ds);

    JitCounters &counters() { return counters_; }
    const JitCounters &counters() const { return counters_; }
    uint32_t threshold() const { return threshold_; }

  private:
    const CompiledRegion *obtainAt(uint32_t addr,
                                   const DecodedStore &ds);

    const MachineDescription &mach_;
    uint32_t threshold_;
    JitRegionCache *shared_;
    uint64_t version_ = ~0ULL;
    //! per-address memo: null (cold), &failed_ (do not retry), or
    //! the region -- consulted lock-free on the hot path
    std::vector<const CompiledRegion *> byAddr_;
    std::vector<uint32_t> counts_;
    //! privately compiled regions (no shared cache)
    std::vector<std::unique_ptr<CompiledRegion>> regions_;
    std::vector<std::unique_ptr<ExecMemory>> code_;
    JitCounters counters_;

    static const CompiledRegion failed_;
};

/**
 * Call into finalized region code. Isolated (and excluded from
 * clang's -fsanitize=function indirect-call check, which would
 * reject the signature-less JIT prologue) so sanitizer builds can
 * run the native tier.
 */
#if defined(__clang__)
__attribute__((no_sanitize("function")))
#endif
inline void
jitInvoke(JitFn fn, JitEnterState *st)
{
    fn(st);
}

/**
 * Superblock builder + x86-64 lowering (compile.cc). Appends the
 * finished machine code to @p code and reports the number of words
 * included; false when the head is ineligible.
 */
bool jitBuildRegion(const DecodedStore &ds,
                    const MachineDescription &mach, uint32_t head,
                    std::vector<uint8_t> *code, uint32_t *wordCount);

} // namespace uhll

#endif // UHLL_JIT_JIT_HH
