/**
 * @file
 * Superblock builder and x86-64 lowering for the JIT tier.
 *
 * A region is the set of fast-path-eligible words reachable from a
 * hot head through Next/Jump/CondJump flow; every other successor
 * becomes an exit stub that records the resume uPC and deopt reason
 * and returns to the interpreter. Lowering mirrors execWordFast /
 * aluEval bit for bit: operands are truncated to the data width
 * before evaluation, multi-op phases buffer their writes (cobegin
 * read-before-write), flag-setting ops replace the whole flag latch,
 * and every word costs exactly one budget unit (= one cycle).
 *
 * Host register plan (SysV, JitEnterState* arrives in rdi):
 *   rbx  JitEnterState pointer
 *   r12  register-file base
 *   r13  packed flag latch (z|n<<1|c<<2|uf<<3|ovf<<4)
 *   r15  remaining word budget
 *   rax  operand a     rsi  operand b     rdx  result / full sum
 *   rcx  shift counts, then the new packed flags
 *   r8   unmasked full result   r9-r11  temporaries
 */

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "jit/emitter.hh"
#include "jit/jit.hh"
#include "machine/alu.hh"
#include "machine/decoded_store.hh"
#include "machine/machine_desc.hh"
#include "support/bits.hh"

namespace uhll {
namespace {

using jit::AluExt;
using jit::CC;
using jit::Emitter;
using jit::Reg;
using jit::ShiftExt;

constexpr uint32_t kMaxRegionWords = 256;
constexpr size_t kMaxPhaseOps = 16;
constexpr int32_t kFrameBytes = 8 * kMaxPhaseOps;

// JitEnterState field offsets (asserted against offsetof in jit.cc).
constexpr int32_t kOffFlags = 8;
constexpr int32_t kOffBudget = 16;
constexpr int32_t kOffExitUpc = 24;
constexpr int32_t kOffExitReason = 28;
constexpr int32_t kOffRestart = 32;

/** Packed-flag bit index of a branch condition; false for Always /
 *  Int / NoInt. @p want_set receives the polarity. */
bool
condFlagBit(Cond c, unsigned *bit, bool *want_set)
{
    switch (c) {
      case Cond::Z:      *bit = 0; *want_set = true;  return true;
      case Cond::NZ:     *bit = 0; *want_set = false; return true;
      case Cond::Neg:    *bit = 1; *want_set = true;  return true;
      case Cond::NonNeg: *bit = 1; *want_set = false; return true;
      case Cond::C:      *bit = 2; *want_set = true;  return true;
      case Cond::NC:     *bit = 2; *want_set = false; return true;
      case Cond::UF:     *bit = 3; *want_set = true;  return true;
      case Cond::NoUF:   *bit = 3; *want_set = false; return true;
      case Cond::Ovf:    *bit = 4; *want_set = true;  return true;
      default:           return false;
    }
}

/**
 * Can this decoded word live inside a native region? Everything the
 * fast path admits except interrupt-line conditions (the line is
 * simulator state the region does not model) and micro-stack /
 * multiway sequencing (region-ending by design).
 */
bool
wordEligible(const DecodedWord *dw)
{
    if (!dw || !dw->fastEligible)
        return false;
    switch (dw->seq) {
      case SeqKind::Next:
      case SeqKind::Jump:
      case SeqKind::Halt:
        break;
      case SeqKind::CondJump: {
        unsigned bit;
        bool pol;
        if (dw->cond != Cond::Always &&
            !condFlagBit(dw->cond, &bit, &pol))
            return false;
        break;
      }
      default:
        return false;
    }
    size_t i = 0;
    const size_t n = dw->ops.size();
    while (i < n) {
        size_t j = i + 1;
        while (j < n && dw->ops[j].phase == dw->ops[i].phase)
            ++j;
        if (j - i > kMaxPhaseOps)
            return false;
        i = j;
    }
    for (const DecodedOp &op : dw->ops) {
        if (!aluHandles(op.kind))
            return false;
        // imm32-encodable operands only; pre-truncated immediates
        // always fit for dataWidth <= 31, this is belt and braces.
        if (op.imm > 0x7FFFFFFFull)
            return false;
        if (op.kind != UKind::Cmp &&
            (op.dst == kNoReg || op.dstMask == 0))
            return false;
    }
    return true;
}

/** Emit z|n (bits 0-1) of the masked value in rdx into rcx. */
void
emitZN(Emitter &e, unsigned w)
{
    e.xorR32(Reg::RCX, Reg::RCX);
    e.testRR(Reg::RDX, Reg::RDX);
    e.setccR(CC::E, Reg::RCX);
    e.movRR(Reg::R9, Reg::RDX);
    e.shiftRI(ShiftExt::SH_SHR, Reg::R9, uint8_t(w - 1));
    e.shiftRI(ShiftExt::SH_SHL, Reg::R9, 1);
    e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R9);
}

/**
 * Full adder flags: a in rax, b in rsi, unmasked sum in r8, masked
 * result in rdx. Builds z|n|c|ovf into rcx.
 */
void
emitArithFlags(Emitter &e, unsigned w, uint64_t maskW, bool sub)
{
    emitZN(e, w);
    // c = bit w of the unmasked sum (for sub: carry = not-borrow,
    // already encoded by the a + ~b + 1 formulation).
    e.movRR(Reg::R9, Reg::R8);
    e.shiftRI(ShiftExt::SH_SHR, Reg::R9, uint8_t(w));
    e.aluRI(AluExt::ALU_AND, Reg::R9, 1);
    e.shiftRI(ShiftExt::SH_SHL, Reg::R9, 2);
    e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R9);
    // ovf: add = (~(a^b) & (a^r)) >> (w-1), sub = ((a^b) & (a^r)).
    e.movRR(Reg::R9, Reg::RAX);
    e.aluRR(AluExt::ALU_XOR, Reg::R9, Reg::RSI);
    if (!sub)
        e.aluRI(AluExt::ALU_XOR, Reg::R9, int32_t(maskW));
    e.movRR(Reg::R10, Reg::RAX);
    e.aluRR(AluExt::ALU_XOR, Reg::R10, Reg::RDX);
    e.aluRR(AluExt::ALU_AND, Reg::R9, Reg::R10);
    e.shiftRI(ShiftExt::SH_SHR, Reg::R9, uint8_t(w - 1));
    e.aluRI(AluExt::ALU_AND, Reg::R9, 1);
    e.shiftRI(ShiftExt::SH_SHL, Reg::R9, 4);
    e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R9);
}

/**
 * Reduce the count in rsi modulo @p mod (w+1 for shifts, w for
 * rotates) into rcx, preserving a in rax. Uses the 32-bit divider:
 * both operands are < 2^31 here.
 */
void
emitCountMod(Emitter &e, uint32_t mod)
{
    e.movRR(Reg::R11, Reg::RAX);
    e.movRR(Reg::RAX, Reg::RSI);
    e.xorR32(Reg::RDX, Reg::RDX);
    e.movRI32(Reg::RCX, mod);
    e.divR32(Reg::RCX);
    e.movRR(Reg::RCX, Reg::RDX);
    e.movRR(Reg::RAX, Reg::R11);
}

/**
 * Lower one microoperation. Operand a is loaded into rax, b into
 * rsi, the masked result lands in rdx, and new packed flags replace
 * r13 when the op sets them. @p slot >= 0 stores the result into the
 * phase-buffer stack slot instead of the register file.
 *
 * @p fwd is the forwarding latch: the machine register whose
 * committed value is still live in rdx (-1 = none). Operand loads
 * that hit it become register moves instead of store-to-load round
 * trips through the register file; the op updates it on exit.
 */
void
emitOp(Emitter &e, const DecodedOp &op, const MachineDescription &mach,
       unsigned w, int slot, int *fwd)
{
    const uint64_t maskW = bitMask(w);
    const bool imm_count = op.useImm || !op.hasSrcB;
    const uint64_t count_src = op.useImm ? op.imm : 0;

    // a -> rax, truncated to the data width like aluEval does.
    // Committed results are <= maskW, so a forwarded rdx needs no
    // further truncation.
    if (op.hasSrcA) {
        if (*fwd == int(op.srcA)) {
            e.movRR(Reg::RAX, Reg::RDX);
        } else {
            e.loadRM(Reg::RAX, Reg::R12, int32_t(8 * op.srcA));
            if (mach.regMask(op.srcA) > maskW)
                e.aluRI(AluExt::ALU_AND, Reg::RAX, int32_t(maskW));
        }
    } else {
        e.xorR32(Reg::RAX, Reg::RAX);
    }
    // b -> rsi (Inc/Dec hardwire b = 1; Ldi consumes imm directly).
    const bool unary = op.kind == UKind::Inc || op.kind == UKind::Dec;
    if (unary) {
        e.movRI32(Reg::RSI, 1);
    } else if (op.useImm) {
        e.movRI(Reg::RSI, op.imm);
    } else if (op.hasSrcB) {
        if (*fwd == int(op.srcB)) {
            e.movRR(Reg::RSI, Reg::RDX);
        } else {
            e.loadRM(Reg::RSI, Reg::R12, int32_t(8 * op.srcB));
            if (mach.regMask(op.srcB) > maskW)
                e.aluRI(AluExt::ALU_AND, Reg::RSI, int32_t(maskW));
        }
    } else {
        e.xorR32(Reg::RSI, Reg::RSI);
    }

    bool wrote = op.kind != UKind::Cmp;
    bool rdx_intact = false;    // rdx untouched (16-bit Cmp only)
    switch (op.kind) {
      case UKind::Add:
      case UKind::Inc:
      case UKind::Sub:
      case UKind::Dec:
      case UKind::Cmp: {
        const bool sub = op.kind == UKind::Sub ||
                         op.kind == UKind::Dec ||
                         op.kind == UKind::Cmp;
        if (w == 16) {
            // Native-width arithmetic: the host's 16-bit add/sub/cmp
            // produces every flag aluEval derives by hand (for sub,
            // c = not-borrow = !CF). setcc replaces the shift-and-
            // mask cascade of emitArithFlags.
            if (op.setsFlags) {
                e.xorR32(Reg::RCX, Reg::RCX);
                e.xorR32(Reg::R9, Reg::R9);
                e.xorR32(Reg::R10, Reg::R10);
                e.xorR32(Reg::R11, Reg::R11);
            }
            if (op.kind == UKind::Cmp) {
                e.aluRR16(AluExt::ALU_CMP, Reg::RAX, Reg::RSI);
                rdx_intact = true;
            } else {
                e.movzxR16(Reg::RDX, Reg::RAX);
                e.aluRR16(sub ? AluExt::ALU_SUB : AluExt::ALU_ADD,
                          Reg::RDX, Reg::RSI);
            }
            if (op.setsFlags) {
                e.setccR(CC::E, Reg::RCX);                  // z
                e.setccR(CC::S, Reg::R9);                   // n
                e.setccR(sub ? CC::AE : CC::B, Reg::R10);   // c
                e.setccR(CC::O, Reg::R11);                  // ovf
                e.shiftRI(ShiftExt::SH_SHL, Reg::R9, 1);
                e.shiftRI(ShiftExt::SH_SHL, Reg::R10, 2);
                e.shiftRI(ShiftExt::SH_SHL, Reg::R11, 4);
                e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R9);
                e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R10);
                e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R11);
                e.movRR(Reg::R13, Reg::RCX);
            }
            break;
        }
        if (sub) {
            // full = a + (~b & maskW) + 1
            e.movRR(Reg::RDX, Reg::RSI);
            e.aluRI(AluExt::ALU_XOR, Reg::RDX, int32_t(maskW));
            e.aluRR(AluExt::ALU_ADD, Reg::RDX, Reg::RAX);
            e.aluRI(AluExt::ALU_ADD, Reg::RDX, 1);
        } else {
            e.movRR(Reg::RDX, Reg::RAX);
            e.aluRR(AluExt::ALU_ADD, Reg::RDX, Reg::RSI);
        }
        if (op.setsFlags)
            e.movRR(Reg::R8, Reg::RDX);     // unmasked, for c
        e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(maskW));
        if (op.setsFlags) {
            emitArithFlags(e, w, maskW, sub);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      }
      case UKind::And:
      case UKind::Or:
      case UKind::Xor: {
        const AluExt x = op.kind == UKind::And   ? AluExt::ALU_AND
                         : op.kind == UKind::Or  ? AluExt::ALU_OR
                                                 : AluExt::ALU_XOR;
        e.movRR(Reg::RDX, Reg::RAX);
        e.aluRR(x, Reg::RDX, Reg::RSI);
        if (op.setsFlags) {
            emitZN(e, w);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      }
      case UKind::Neg:
      case UKind::Not:
        e.movRR(Reg::RDX, Reg::RAX);
        if (op.kind == UKind::Neg)
            e.negR(Reg::RDX);
        else
            e.notR(Reg::RDX);
        e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(maskW));
        if (op.setsFlags) {
            emitZN(e, w);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      case UKind::Mov:
        e.movRR(Reg::RDX, Reg::RAX);
        if (op.setsFlags) {
            emitZN(e, w);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      case UKind::Ldi:
        e.movRI(Reg::RDX, op.imm);
        if (op.setsFlags) {
            // aluEval leaves every flag false for Ldi, and a
            // flag-setting op replaces the whole latch.
            e.xorR32(Reg::RCX, Reg::RCX);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      case UKind::Shl: {
        if (imm_count) {
            const uint8_t n = uint8_t(count_src % (w + 1));
            e.movRR(Reg::RDX, Reg::RAX);
            e.shiftRI(ShiftExt::SH_SHL, Reg::RDX, n);
        } else {
            emitCountMod(e, w + 1);
            e.movRR(Reg::RDX, Reg::RAX);
            e.shiftRC(ShiftExt::SH_SHL, Reg::RDX);
        }
        if (op.setsFlags)
            e.movRR(Reg::R8, Reg::RDX);     // unmasked, for uf
        e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(maskW));
        if (op.setsFlags) {
            // uf = bit w of the unmasked shift (0 when n == 0).
            e.movRR(Reg::R10, Reg::R8);
            e.shiftRI(ShiftExt::SH_SHR, Reg::R10, uint8_t(w));
            e.aluRI(AluExt::ALU_AND, Reg::R10, 1);
            e.shiftRI(ShiftExt::SH_SHL, Reg::R10, 3);
            emitZN(e, w);
            e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R10);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      }
      case UKind::Shr:
      case UKind::Sar: {
        // uf = ((a << 1) >> n) & 1 == (a >> (n-1)) & 1, and 0 for
        // n == 0. Computed while the count is still live in cl.
        const bool arith = op.kind == UKind::Sar;
        uint8_t n = 0;
        if (imm_count) {
            n = uint8_t(count_src % (w + 1));
        } else {
            emitCountMod(e, w + 1);
        }
        e.movRR(Reg::RDX, Reg::RAX);
        if (arith) {
            e.shiftRI(ShiftExt::SH_SHL, Reg::RDX, uint8_t(64 - w));
            e.shiftRI(ShiftExt::SH_SAR, Reg::RDX, uint8_t(64 - w));
        }
        if (imm_count)
            e.shiftRI(arith ? ShiftExt::SH_SAR : ShiftExt::SH_SHR,
                      Reg::RDX, n);
        else
            e.shiftRC(arith ? ShiftExt::SH_SAR : ShiftExt::SH_SHR,
                      Reg::RDX);
        if (arith)
            e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(maskW));
        if (op.setsFlags) {
            e.movRR(Reg::R10, Reg::RAX);
            e.shiftRI(ShiftExt::SH_SHL, Reg::R10, 1);
            if (imm_count)
                e.shiftRI(ShiftExt::SH_SHR, Reg::R10, n);
            else
                e.shiftRC(ShiftExt::SH_SHR, Reg::R10);
            e.aluRI(AluExt::ALU_AND, Reg::R10, 1);
            e.shiftRI(ShiftExt::SH_SHL, Reg::R10, 3);
            emitZN(e, w);
            e.aluRR(AluExt::ALU_OR, Reg::RCX, Reg::R10);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      }
      case UKind::Rol:
      case UKind::Ror: {
        if (imm_count) {
            unsigned m = unsigned(count_src) % w;
            if (op.kind == UKind::Ror)
                m = (w - m) % w;
            e.movRR(Reg::RDX, Reg::RAX);
            if (m) {
                e.shiftRI(ShiftExt::SH_SHL, Reg::RDX, uint8_t(m));
                e.movRR(Reg::R9, Reg::RAX);
                e.shiftRI(ShiftExt::SH_SHR, Reg::R9,
                          uint8_t(w - m));
                e.aluRR(AluExt::ALU_OR, Reg::RDX, Reg::R9);
                e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(maskW));
            }
        } else {
            emitCountMod(e, w);     // rcx = b % w
            if (op.kind == UKind::Ror) {
                // m = (w - n) % w, branchlessly.
                e.movRI32(Reg::R9, w);
                e.aluRR(AluExt::ALU_SUB, Reg::R9, Reg::RCX);
                e.xorR32(Reg::R10, Reg::R10);
                e.testRR(Reg::RCX, Reg::RCX);
                e.cmovRR(CC::E, Reg::R9, Reg::R10);
                e.movRR(Reg::RCX, Reg::R9);
            }
            // value = ((a << m) | (a >> (w - m))) & maskW; at m == 0
            // the right shift is by w, which clears its half on a
            // 64-bit host, leaving a unchanged.
            e.movRR(Reg::RDX, Reg::RAX);
            e.shiftRC(ShiftExt::SH_SHL, Reg::RDX);
            e.movRI32(Reg::R9, w);
            e.aluRR(AluExt::ALU_SUB, Reg::R9, Reg::RCX);
            e.movRR(Reg::R10, Reg::RAX);
            e.movRR(Reg::RCX, Reg::R9);
            e.shiftRC(ShiftExt::SH_SHR, Reg::R10);
            e.aluRR(AluExt::ALU_OR, Reg::RDX, Reg::R10);
            e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(maskW));
        }
        if (op.setsFlags) {
            emitZN(e, w);
            e.movRR(Reg::R13, Reg::RCX);
        }
        break;
      }
      default:
        wrote = false;  // unreachable: wordEligible() filtered kinds
        break;
    }

    if (!wrote) {
        if (!rdx_intact)
            *fwd = -1;
        return;
    }
    if (op.dstMask < bitMask(w))
        e.aluRI(AluExt::ALU_AND, Reg::RDX, int32_t(op.dstMask));
    if (slot >= 0) {
        e.storeMR(Reg::RSP, int32_t(8 * slot), Reg::RDX);
        *fwd = -1;      // not committed to the register file yet
    } else {
        e.storeMR(Reg::R12, int32_t(8 * op.dst), Reg::RDX);
        *fwd = int(op.dst);
    }
}

} // namespace

bool
jitBuildRegion(const DecodedStore &ds, const MachineDescription &mach,
               uint32_t head, std::vector<uint8_t> *code,
               uint32_t *wordCount)
{
    const unsigned w = mach.dataWidth();
    if (w < 1 || w > 31)
        return false;
    if (!wordEligible(ds.peek(head)))
        return false;

    // Region discovery: BFS over eligible successors, capped.
    std::set<uint32_t> in_region;
    std::vector<uint32_t> queue{head};
    while (!queue.empty() && in_region.size() < kMaxRegionWords) {
        uint32_t a = queue.back();
        queue.pop_back();
        if (in_region.count(a))
            continue;
        const DecodedWord *dw = ds.peek(a);
        if (!wordEligible(dw))
            continue;   // becomes an off-region exit
        in_region.insert(a);
        switch (dw->seq) {
          case SeqKind::Next:
            queue.push_back(a + 1);
            break;
          case SeqKind::Jump:
            queue.push_back(dw->target);
            break;
          case SeqKind::CondJump:
            queue.push_back(dw->target);
            if (dw->cond != Cond::Always)
                queue.push_back(a + 1);
            break;
          default:
            break;    // Halt: no successors
        }
    }

    // Emit words in address order so Next edges fall through.
    std::vector<uint32_t> order(in_region.begin(), in_region.end());
    std::sort(order.begin(), order.end());

    // Join points: every explicit jump target (plus the head, which
    // the prologue jumps to). The rdx forwarding latch must drop at
    // these labels -- a second predecessor may arrive with different
    // rdx contents. Next/CondJump fall-through edges always reach the
    // next emitted word directly, so they keep the latch.
    std::set<uint32_t> join{head};
    for (uint32_t a : order) {
        const DecodedWord *dw = ds.peek(a);
        if (dw->seq == SeqKind::Jump || dw->seq == SeqKind::CondJump)
            join.insert(dw->target);
    }

    Emitter e;
    std::map<uint32_t, int> word_label;
    for (uint32_t a : order)
        word_label[a] = e.newLabel();
    const int epilogue = e.newLabel();
    std::map<std::pair<uint32_t, uint32_t>, int> exit_label;
    auto exitTo = [&](uint32_t upc, JitExit reason) {
        auto key = std::make_pair(upc, uint32_t(reason));
        auto it = exit_label.find(key);
        if (it == exit_label.end())
            it = exit_label.emplace(key, e.newLabel()).first;
        return it->second;
    };

    // Prologue: save callee-saved registers, carve the phase-write
    // frame, load the enter state (rdi).
    e.pushR(Reg::RBX);
    e.pushR(Reg::R12);
    e.pushR(Reg::R13);
    e.pushR(Reg::R14);
    e.pushR(Reg::R15);
    e.aluRI(AluExt::ALU_SUB, Reg::RSP, kFrameBytes);
    e.movRR(Reg::RBX, Reg::RDI);
    e.loadRM(Reg::R12, Reg::RBX, 0);            // regs base
    e.loadRM(Reg::R13, Reg::RBX, kOffFlags);
    e.loadRM(Reg::R15, Reg::RBX, kOffBudget);
    e.jmp(word_label[head]);

    int fwd = -1;
    for (size_t wi = 0; wi < order.size(); ++wi) {
        const uint32_t addr = order[wi];
        const DecodedWord &dw = *ds.peek(addr);
        const uint32_t next_emitted =
            wi + 1 < order.size() ? order[wi + 1] : ~0u;
        e.bind(word_label[addr]);
        if (join.count(addr))
            fwd = -1;

        // Budget guard: debit the word up front and deopt on
        // underflow (the Budget stub repays the unit), so the
        // interpreter resumes exactly here with the budget intact.
        e.aluRI8(AluExt::ALU_SUB, Reg::R15, 1);
        e.jcc(CC::B, exitTo(addr, JitExit::Budget));
        if (dw.restart)
            e.storeMI32(Reg::RBX, kOffRestart, addr);

        // Ops, phase-grouped exactly like execWordFast.
        const size_t n = dw.ops.size();
        size_t i = 0;
        while (i < n) {
            size_t j = i + 1;
            while (j < n && dw.ops[j].phase == dw.ops[i].phase)
                ++j;
            if (j == i + 1) {
                emitOp(e, dw.ops[i], mach, w, -1, &fwd);
            } else {
                int slot = 0;
                std::vector<std::pair<int, RegId>> commits;
                for (size_t k = i; k < j; ++k) {
                    const DecodedOp &op = dw.ops[k];
                    if (op.kind == UKind::Cmp) {
                        emitOp(e, op, mach, w, -1, &fwd);
                    } else {
                        emitOp(e, op, mach, w, slot, &fwd);
                        commits.emplace_back(slot, op.dst);
                        ++slot;
                    }
                }
                for (const auto &[s, dst] : commits) {
                    e.loadRM(Reg::R9, Reg::RSP, int32_t(8 * s));
                    e.storeMR(Reg::R12, int32_t(8 * dst), Reg::R9);
                }
                fwd = -1;   // commits made any live rdx value stale
            }
            i = j;
        }

        // Sequencing. Conditions read the flags this word produced
        // (r13 is already updated).
        auto flowTo = [&](uint32_t t) {
            if (in_region.count(t)) {
                if (t != next_emitted)
                    e.jmp(word_label[t]);
            } else {
                e.jmp(exitTo(t, JitExit::OffRegion));
            }
        };
        switch (dw.seq) {
          case SeqKind::Next:
            flowTo(addr + 1);
            break;
          case SeqKind::Jump:
            flowTo(dw.target);
            break;
          case SeqKind::CondJump: {
            if (dw.cond == Cond::Always) {
                flowTo(dw.target);
                break;
            }
            unsigned bit = 0;
            bool want_set = false;
            condFlagBit(dw.cond, &bit, &want_set);
            e.testRI(Reg::R13, int32_t(1u << bit));
            const CC cc = want_set ? CC::NE : CC::E;
            if (in_region.count(dw.target))
                e.jcc(cc, word_label[dw.target]);
            else
                e.jcc(cc, exitTo(dw.target, JitExit::OffRegion));
            flowTo(addr + 1);
            break;
          }
          case SeqKind::Halt:
            // The halt word itself executed (and was budgeted);
            // the interpreter sees upc = addr, halted = true.
            e.jmp(exitTo(addr, JitExit::Halt));
            break;
          default:
            return false;   // unreachable: wordEligible() filtered
        }
    }

    // Exit stubs: record resume point + reason, fall to epilogue.
    // Budget stubs repay the unit their guard debited before the
    // underflow branch fired.
    for (const auto &[key, label] : exit_label) {
        e.bind(label);
        if (key.second == uint32_t(JitExit::Budget))
            e.aluRI8(AluExt::ALU_ADD, Reg::R15, 1);
        e.storeMI32(Reg::RBX, kOffExitUpc, key.first);
        e.storeMI32(Reg::RBX, kOffExitReason, key.second);
        e.jmp(epilogue);
    }

    e.bind(epilogue);
    e.storeMR(Reg::RBX, kOffFlags, Reg::R13);
    e.storeMR(Reg::RBX, kOffBudget, Reg::R15);
    e.aluRI(AluExt::ALU_ADD, Reg::RSP, kFrameBytes);
    e.popR(Reg::R15);
    e.popR(Reg::R14);
    e.popR(Reg::R13);
    e.popR(Reg::R12);
    e.popR(Reg::RBX);
    e.ret();

    if (!e.link())
        return false;
    *code = e.bytes();
    *wordCount = uint32_t(in_region.size());
    return true;
}

} // namespace uhll
