#include "proc/pool.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/json.hh"
#include "obs/stats.hh"
#include "obs/telemetry.hh"
#include "proc/wire.hh"
#include "service/protocol.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** Deterministic per-(job, attempt) jitter, mirroring the
 *  supervisor's backoff discipline (FNV-1a, 0..15 ms). */
uint32_t
respawnJitterMs(const std::string &name, uint32_t attempt)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= uint8_t(c);
        h *= 1099511628211ull;
    }
    h ^= attempt;
    h *= 1099511628211ull;
    return uint32_t(h & 15);
}

uint32_t
respawnBackoffMs(const WorkerPoolConfig &cfg, const std::string &name,
                 uint32_t attempt)
{
    const uint32_t shift = attempt > 0 ? attempt - 1 : 0;
    uint64_t base = uint64_t(cfg.respawnBackoffBaseMs)
                    << (shift < 20 ? shift : 20);
    if (base > cfg.respawnBackoffMaxMs)
        base = cfg.respawnBackoffMaxMs;
    return uint32_t(base) + respawnJitterMs(name, attempt);
}

std::string
describeWait(int status)
{
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        return strfmt("killed by signal %d (%s)", sig,
                      strsignal(sig));
    }
    if (WIFEXITED(status))
        return strfmt("exited with status %d", WEXITSTATUS(status));
    return strfmt("wait status 0x%x", status);
}

} // namespace

IsolationMode
parseIsolationMode(const std::string &s)
{
    if (s == "thread")
        return IsolationMode::Thread;
    if (s == "process")
        return IsolationMode::Process;
    fatal("unknown isolation mode '%s' (thread|process)", s.c_str());
}

std::string
WorkerPool::resolveExe() const
{
    if (!cfg_.exePath.empty())
        return cfg_.exePath;
    if (const char *env = std::getenv("UHLL_WORKER_EXE"))
        if (*env)
            return env;
    return "/proc/self/exe";
}

bool
WorkerPool::available(const WorkerPoolConfig &cfg)
{
    std::string exe = cfg.exePath;
    if (exe.empty()) {
        if (const char *env = std::getenv("UHLL_WORKER_EXE"))
            exe = env;
    }
    if (exe.empty())
        exe = "/proc/self/exe";
    return ::access(exe.c_str(), X_OK) == 0;
}

WorkerPool::WorkerPool(const WorkerPoolConfig &cfg) : cfg_(cfg)
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    // the pool writes to worker sockets; a worker dying mid-write
    // must surface as EPIPE, not kill the parent
    signal(SIGPIPE, SIG_IGN);
}

WorkerPool::~WorkerPool() { shutdown(); }

WorkerPool::Worker
WorkerPool::spawn()
{
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
        fatal("pool: socketpair: %s", strerror(errno));

    const std::string exe = resolveExe();
    // argv is fully built before fork(): only async-signal-safe
    // calls may happen between fork and exec
    std::vector<std::string> args = {
        exe,
        "--worker",
        "--worker-fd",
        std::to_string(sv[1]),
        "--worker-heartbeat-ms",
        std::to_string(cfg_.heartbeatMs),
    };
    if (cfg_.memLimitMb) {
        args.push_back("--worker-mem-mb");
        args.push_back(std::to_string(cfg_.memLimitMb));
    }
    if (cfg_.cpuLimitSeconds) {
        args.push_back("--worker-cpu-s");
        args.push_back(std::to_string(cfg_.cpuLimitSeconds));
    }
    if (!cfg_.chaosSpec.empty()) {
        args.push_back("--worker-chaos");
        args.push_back(cfg_.chaosSpec);
    }
    if (!cfg_.chaosDir.empty()) {
        args.push_back("--worker-chaos-dir");
        args.push_back(cfg_.chaosDir);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
        close(sv[0]);
        close(sv[1]);
        fatal("pool: fork: %s", strerror(errno));
    }
    if (pid == 0) {
        // child: keep its socketpair end across exec, drop ours
        fcntl(sv[1], F_SETFD, 0);
        close(sv[0]);
        execv(exe.c_str(), argv.data());
        _exit(127);
    }
    close(sv[1]);
    spawns_.fetch_add(1, std::memory_order_relaxed);
    if (SpanTracer::instance().enabled())
        SpanTracer::instance().instant(
            SpanCat::Supervise,
            strfmt("pool.spawn pid=%d", int(pid)));
    return Worker{pid, sv[0]};
}

WorkerPool::Worker
WorkerPool::lease()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (down_)
            fatal("pool: runJob after shutdown");
        if (!idle_.empty()) {
            Worker w = idle_.back();
            idle_.pop_back();
            return w;
        }
        if (alive_ < cfg_.workers) {
            ++alive_;
            lk.unlock();
            try {
                return spawn();
            } catch (...) {
                lk.lock();
                --alive_;
                cv_.notify_all();
                throw;
            }
        }
        cv_.wait(lk, [&] {
            return down_ || !idle_.empty() || alive_ < cfg_.workers;
        });
    }
}

void
WorkerPool::release(Worker w)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (down_) {
        close(w.fd);
        kill(w.pid, SIGKILL);
        waitpid(w.pid, nullptr, 0);
        --alive_;
        return;
    }
    idle_.push_back(w);
    cv_.notify_all();
}

void
WorkerPool::destroy(Worker w, bool kill_first, bool hang)
{
    if (kill_first)
        kill(w.pid, SIGKILL);
    close(w.fd);
    int status = 0;
    // bounded reap: a worker that ignores SIGKILL does not exist,
    // but never let a kernel hiccup wedge the pool
    for (int i = 0; i < 500; ++i) {
        const pid_t got = waitpid(w.pid, &status, WNOHANG);
        if (got == w.pid || (got < 0 && errno == ECHILD))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    crashes_.fetch_add(1, std::memory_order_relaxed);
    if (hang)
        hangs_.fetch_add(1, std::memory_order_relaxed);
    if (SpanTracer::instance().enabled())
        SpanTracer::instance().instant(
            SpanCat::Supervise,
            strfmt("pool.reap pid=%d %s", int(w.pid),
                   describeWait(status).c_str()));
    std::lock_guard<std::mutex> lk(mu_);
    --alive_;
    cv_.notify_all();
}

JobResult
WorkerPool::runJob(const Job &job, const SuperviseContext &ctx,
                   bool resume)
{
    SpanScope span(SpanCat::Service,
                   strfmt("pool.job:%s", job.name.c_str()));
    uint32_t crashAttempts = 0;
    uint32_t dispatchFailures = 0;
    std::string lastDeath = "never dispatched";

    for (;;) {
        if (ctx.cancel &&
            ctx.cancel->load(std::memory_order_relaxed)) {
            JobResult r;
            r.name = job.name;
            r.lang = job.lang;
            r.machine = job.machine;
            r.ran = true;
            r.sim.error.kind = SimErrorKind::Cancelled;
            r.sim.error.message = "cancelled before dispatch";
            r.diagnostics.push_back("cancelled");
            return r;
        }

        Worker w = lease();

        // crash retries resume from the dead worker's last
        // auto-checkpoint when the job has a checkpoint file
        bool resumeNow = resume;
        if (crashAttempts > 0 && !ctx.checkpointFile.empty() &&
            ::access(ctx.checkpointFile.c_str(), F_OK) == 0)
            resumeNow = true;

        WireJobRequest req;
        req.job = job;
        req.policy = ctx.policy;
        req.checkpointFile = ctx.checkpointFile;
        req.postmortemDir = ctx.postmortemDir;
        req.resume = resumeNow;
        const std::string id = strfmt(
            "pj-%llu", (unsigned long long)seq_.fetch_add(1) + 1);
        const std::string frame =
            requestEnvelope("job", "pool", id, wireRequestJson(req));

        std::string err;
        if (!writeFrame(w.fd, frame, &err)) {
            // an idle worker that died while parked: not this
            // job's fault, so it does not consume the crash
            // budget -- but bound it against a truly broken exe
            destroy(w, true, false);
            if (++dispatchFailures > cfg_.workers + 8) {
                lastDeath = strfmt("dispatch: %s", err.c_str());
                break;
            }
            continue;
        }
        dispatched_.fetch_add(1, std::memory_order_relaxed);

        // poll-loop read: heartbeats refresh the liveness clock,
        // silence past the hang timeout is a hung worker
        const auto hangBudget = std::chrono::duration<double>(
            cfg_.hangTimeoutSeconds > 0 ? cfg_.hangTimeoutSeconds
                                        : 1e9);
        auto lastBeat = std::chrono::steady_clock::now();
        bool dead = false, hung = false;

        for (;;) {
            pollfd pfd{w.fd, POLLIN, 0};
            const int pr = poll(&pfd, 1, 250);
            if (pr < 0 && errno != EINTR) {
                lastDeath = strfmt("poll: %s", strerror(errno));
                dead = true;
                break;
            }
            if (ctx.cancel &&
                ctx.cancel->load(std::memory_order_relaxed)) {
                destroy(w, true, false);
                JobResult r;
                r.name = job.name;
                r.lang = job.lang;
                r.machine = job.machine;
                r.ran = true;
                r.sim.error.kind = SimErrorKind::Cancelled;
                r.sim.error.message = "cancelled mid-dispatch";
                r.diagnostics.push_back("cancelled");
                return r;
            }
            if (pr <= 0 || !(pfd.revents & (POLLIN | POLLHUP))) {
                if (std::chrono::steady_clock::now() - lastBeat >
                    hangBudget) {
                    lastDeath = strfmt(
                        "no heartbeat for %.1fs (hung)",
                        cfg_.hangTimeoutSeconds);
                    dead = hung = true;
                    break;
                }
                continue;
            }

            std::string payload;
            const FrameRead fr = readFrame(w.fd, &payload, &err);
            if (fr != FrameRead::Ok) {
                lastDeath = fr == FrameRead::Eof
                                ? "connection closed mid-job"
                                : strfmt("read: %s", err.c_str());
                dead = true;
                break;
            }
            lastBeat = std::chrono::steady_clock::now();

            JsonValue env;
            try {
                env = JsonValue::parse(payload);
            } catch (const FatalError &e) {
                lastDeath = strfmt("bad frame: %s", e.what());
                dead = true;
                break;
            }
            const std::string op =
                env.get("op") ? env.get("op")->asString() : "";
            if (op == "hb")
                continue;
            if (op != "job") {
                lastDeath = strfmt("unexpected op '%s'", op.c_str());
                dead = true;
                break;
            }
            if (!env.get("ok") || !env.get("ok")->asBool()) {
                // the worker rejected the request (not a crash):
                // surface as a failed job, keep the worker
                const std::string msg =
                    env.get("error") ? env.get("error")->asString()
                                     : "worker rejected job";
                release(w);
                JobResult r;
                r.name = job.name;
                r.lang = job.lang;
                r.machine = job.machine;
                r.diagnostics.push_back(
                    strfmt("worker: %s", msg.c_str()));
                return r;
            }
            try {
                const JsonValue &body = env.require("body");
                JobResult r =
                    wireResultFromJson(body.require("result"));
                if (const JsonValue *h = body.get("cache_hits"))
                    cacheHits_.fetch_add(
                        h->asU64(), std::memory_order_relaxed);
                if (const JsonValue *m = body.get("cache_misses"))
                    cacheMisses_.fetch_add(
                        m->asU64(), std::memory_order_relaxed);
                completed_.fetch_add(1, std::memory_order_relaxed);
                release(w);
                return r;
            } catch (const FatalError &e) {
                lastDeath = strfmt("bad result: %s", e.what());
                dead = true;
                break;
            }
        }

        if (!dead)
            continue;  // unreachable; defensive
        destroy(w, true, hung);
        ++crashAttempts;
        if (crashAttempts > cfg_.maxCrashRetries)
            break;
        const uint32_t delay =
            respawnBackoffMs(cfg_, job.name, crashAttempts);
        respawns_.fetch_add(1, std::memory_order_relaxed);
        if (SpanTracer::instance().enabled())
            SpanTracer::instance().instant(
                SpanCat::Supervise,
                strfmt("pool.retry:%s attempt=%u backoff=%ums",
                       job.name.c_str(), crashAttempts, delay));
        warn("pool: worker died running '%s' (%s); retry %u/%u "
             "after %u ms",
             job.name.c_str(), lastDeath.c_str(), crashAttempts,
             cfg_.maxCrashRetries, delay);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }

    // crash budget exhausted: structured failure + post-mortem;
    // the pool itself stays healthy for sibling jobs
    crashFailures_.fetch_add(1, std::memory_order_relaxed);
    JobResult r;
    r.name = job.name;
    r.lang = job.lang;
    r.machine = job.machine;
    r.ran = true;
    r.retries = crashAttempts > 0 ? crashAttempts - 1 : 0;
    r.sim.error.kind = SimErrorKind::WorkerCrashed;
    r.sim.error.message =
        strfmt("worker process died %u time%s running this job; "
               "last death: %s",
               crashAttempts, crashAttempts == 1 ? "" : "s",
               lastDeath.c_str());
    r.diagnostics.push_back(
        strfmt("worker crashed: %s", lastDeath.c_str()));

    if (!ctx.postmortemDir.empty()) {
        PostmortemReport p;
        p.reason = "worker_crashed";
        p.jobJson = jobSpecJson(job);
        JsonWriter w(false);
        w.beginObject();
        w.value("kind", simErrorKindName(r.sim.error.kind));
        w.value("message", r.sim.error.message);
        w.value("attempts", (uint64_t)crashAttempts);
        w.endObject();
        p.errorJson = w.str();
        p.diagnostics = r.diagnostics;
        writePostmortem(ctx.postmortemDir, job.name, p);
    }
    return r;
}

void
WorkerPool::shutdown()
{
    std::vector<Worker> workers;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (down_)
            return;
        down_ = true;
        workers.swap(idle_);
        cv_.notify_all();
    }
    // close first: workers exit 0 on clean EOF
    for (Worker &w : workers)
        close(w.fd);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(2);
    for (Worker &w : workers) {
        for (;;) {
            int status = 0;
            const pid_t got = waitpid(w.pid, &status, WNOHANG);
            if (got == w.pid || (got < 0 && errno == ECHILD))
                break;
            if (std::chrono::steady_clock::now() > deadline) {
                kill(w.pid, SIGKILL);
                waitpid(w.pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        std::lock_guard<std::mutex> lk(mu_);
        --alive_;
    }
}

WorkerPoolStats
WorkerPool::stats() const
{
    WorkerPoolStats s;
    s.spawns = spawns_.load(std::memory_order_relaxed);
    s.respawns = respawns_.load(std::memory_order_relaxed);
    s.crashes = crashes_.load(std::memory_order_relaxed);
    s.hangs = hangs_.load(std::memory_order_relaxed);
    s.dispatched = dispatched_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.crashFailures =
        crashFailures_.load(std::memory_order_relaxed);
    s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    s.cacheMisses = cacheMisses_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    s.workersAlive = alive_;
    return s;
}

void
WorkerPool::bindStats(StatsRegistry &reg) const
{
    const WorkerPool *p = this;
    reg.formula(
        "proc.spawns",
        [p] { return double(p->stats().spawns); },
        "worker processes forked");
    reg.formula(
        "proc.respawns",
        [p] { return double(p->stats().respawns); },
        "respawns after a worker death");
    reg.formula(
        "proc.crashes",
        [p] { return double(p->stats().crashes); },
        "worker deaths observed (signals, EOF, hangs)");
    reg.formula(
        "proc.hangs",
        [p] { return double(p->stats().hangs); },
        "workers SIGKILLed for heartbeat silence");
    reg.formula(
        "proc.dispatched",
        [p] { return double(p->stats().dispatched); },
        "job dispatches to workers (incl. retries)");
    reg.formula(
        "proc.completed",
        [p] { return double(p->stats().completed); },
        "jobs that returned a worker result");
    reg.formula(
        "proc.crashFailures",
        [p] { return double(p->stats().crashFailures); },
        "jobs failed with WorkerCrashed (budget exhausted)");
    reg.formula(
        "proc.cacheHits",
        [p] { return double(p->stats().cacheHits); },
        "summed worker artefact-cache hits");
    reg.formula(
        "proc.cacheMisses",
        [p] { return double(p->stats().cacheMisses); },
        "summed worker artefact-cache misses");
    reg.formula(
        "proc.workersAlive",
        [p] { return double(p->stats().workersAlive); },
        "live worker processes");
}

} // namespace uhll
