/**
 * @file
 * WorkerPool: the parent half of the out-of-process execution tier.
 *
 * The in-thread batch path (driver/batch.hh) shares one address
 * space across jobs, so one runaway job -- a heap-corrupting
 * frontend bug, an OOM, a stuck native region -- takes the whole
 * batch (or the whole daemon) with it. The pool moves job execution
 * into disposable child processes: fork + exec of the host binary in
 * worker mode (proc/worker.hh), one socketpair per worker carrying
 * the same uhll-frame/1 + uhll/v1 envelopes the daemon already
 * speaks, per-worker setrlimit caps, and heartbeat-based hang
 * detection.
 *
 * The contract is that *every* way a worker can die becomes a
 * structured, bounded outcome:
 *
 *  - signal death (SIGSEGV, SIGKILL, rlimit SIGXCPU, OOM abort) is
 *    reaped via waitpid and retried against a respawned worker --
 *    with exponential backoff plus deterministic jitter, mirroring
 *    the supervisor's retry discipline -- up to maxCrashRetries
 *    times; jobs with a checkpoint file resume from the crashed
 *    worker's last auto-checkpoint instead of cycle 0;
 *  - a hung worker (no heartbeat for hangTimeoutSeconds) is
 *    SIGKILLed and treated as a crash;
 *  - a job whose crash budget is exhausted returns a JobResult
 *    carrying SimError{WorkerCrashed} plus a flight-recorder
 *    post-mortem (reason "worker_crashed"), and the *pool* stays up
 *    -- sibling workers and subsequent jobs are untouched.
 *
 * Results carry the worker-rendered report JSON verbatim
 * (JobResult::prerendered/prerenderedTimed), so a batch sharded
 * over the pool -- even one that lost workers mid-flight -- merges
 * into a report byte-identical to an in-thread run. That is the
 * chaos suite's headline invariant.
 *
 * WorkerCrashed is deliberately *not* simErrorRecoverable(): the
 * supervisor must not spend its own retry budget on it -- the pool
 * already did.
 */

#ifndef UHLL_PROC_POOL_HH
#define UHLL_PROC_POOL_HH

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "driver/supervisor.hh"
#include "driver/toolchain.hh"

namespace uhll {

class StatsRegistry;

/** Where batch jobs execute (uhllc/uhlld --isolation). */
enum class IsolationMode {
    Thread,   //!< in-process worker threads (the classic path)
    Process,  //!< sandboxed worker processes via WorkerPool
};

/** Pool knobs (uhlld --workers / --worker-mem-mb / --worker-cpu-s
 *  and the chaos test hooks). */
struct WorkerPoolConfig {
    uint32_t workers = 2;       //!< max live worker processes
    //! worker executable; "" resolves $UHLL_WORKER_EXE then
    //! /proc/self/exe (the self-exec default)
    std::string exePath;
    uint64_t memLimitMb = 0;    //!< per-worker RLIMIT_AS (0 = off)
    uint32_t cpuLimitSeconds = 0;   //!< per-worker RLIMIT_CPU
    double hangTimeoutSeconds = 30; //!< heartbeat silence -> SIGKILL
    uint32_t heartbeatMs = 250;
    //! respawn-and-retry budget per job for worker deaths
    uint32_t maxCrashRetries = 2;
    //! backoff before respawn attempt n: min(base << (n-1), max)
    //! plus deterministic jitter (supervisor discipline)
    uint32_t respawnBackoffBaseMs = 5;
    uint32_t respawnBackoffMaxMs = 250;
    std::string chaosSpec;      //!< forwarded --worker-chaos (tests)
    std::string chaosDir;       //!< forwarded --worker-chaos-dir
};

/** Monotonic pool counters (stats() snapshot / proc.* formulas). */
struct WorkerPoolStats {
    uint64_t spawns = 0;        //!< worker processes forked
    uint64_t respawns = 0;      //!< spawns replacing a dead worker
    uint64_t crashes = 0;       //!< signal/EOF deaths observed
    uint64_t hangs = 0;         //!< heartbeat timeouts -> SIGKILL
    uint64_t dispatched = 0;    //!< job dispatches (incl. retries)
    uint64_t completed = 0;     //!< jobs that returned a result
    //! jobs that exhausted the crash budget (WorkerCrashed results)
    uint64_t crashFailures = 0;
    uint64_t cacheHits = 0;     //!< summed worker artefact-cache hits
    uint64_t cacheMisses = 0;
    uint32_t workersAlive = 0;
};

/**
 * A fixed-size pool of worker processes, spawned on demand. All
 * methods are thread-safe; runJob() is the blocking, many-callers
 * entry the BatchRunner's worker threads and the daemon's
 * connection threads share.
 */
class WorkerPool
{
  public:
    explicit WorkerPool(const WorkerPoolConfig &cfg);
    ~WorkerPool();
    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** True when worker processes can be spawned here: fork is
     *  usable and the worker executable resolves. */
    static bool available(const WorkerPoolConfig &cfg = {});

    /**
     * Run @p job on a pooled worker (blocking; leases a worker,
     * waiting for one when all are busy). @p ctx supplies the
     * policy, checkpoint file and post-mortem dir; ctx.resumeFrom
     * is ignored -- pass @p resume instead and the *worker* reads
     * ctx.checkpointFile, which is how a crash retry picks up the
     * dead worker's last checkpoint. Worker death is retried per
     * the config; an exhausted budget yields a JobResult with
     * SimError{WorkerCrashed}, never a throw.
     */
    JobResult runJob(const Job &job, const SuperviseContext &ctx,
                     bool resume = false);

    /** Stop every worker: close their sockets (clean EOF exit),
     *  reap with a grace period, SIGKILL stragglers. Idempotent;
     *  the destructor calls it. */
    void shutdown();

    WorkerPoolStats stats() const;

    /** Register proc.* formulas reading this pool into @p reg (the
     *  daemon's metrics registry). */
    void bindStats(StatsRegistry &reg) const;

  private:
    struct Worker {
        pid_t pid = -1;
        int fd = -1;
    };

    /** Fork + exec one worker (throws FatalError on failure). */
    Worker spawn();

    /** Blocking lease; spawns when under the cap. */
    Worker lease();

    /** Return a healthy worker to the idle set. */
    void release(Worker w);

    /** Kill (optionally), reap and account a dead worker. */
    void destroy(Worker w, bool kill_first, bool hang);

    std::string resolveExe() const;

    WorkerPoolConfig cfg_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Worker> idle_;
    uint32_t alive_ = 0;        //!< leased + idle
    bool down_ = false;
    std::atomic<uint64_t> seq_{0};

    //! counters (atomics: read by formulas while jobs run)
    std::atomic<uint64_t> spawns_{0}, respawns_{0}, crashes_{0},
        hangs_{0}, dispatched_{0}, completed_{0}, crashFailures_{0},
        cacheHits_{0}, cacheMisses_{0};
};

/** Parse an --isolation value ("thread" | "process"); fatal() on
 *  anything else. */
IsolationMode parseIsolationMode(const std::string &s);

} // namespace uhll

#endif // UHLL_PROC_POOL_HH
