#include "proc/wire.hh"

#include <cstdlib>

#include "driver/batch.hh"
#include "driver/options.hh"
#include "obs/json.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace uhll {

namespace {

// u64s that may exceed 2^53 cross as hex strings; asU64 parses
// either form via strtoull(str, nullptr, 0).
void
hexU64(JsonWriter &w, const std::string &key, uint64_t v)
{
    w.value(key, strfmt("0x%llx", (unsigned long long)v));
}

void
namedU64Array(JsonWriter &w, const std::string &key,
              const std::vector<std::pair<std::string, uint64_t>> &xs)
{
    w.beginArray(key);
    for (const auto &[n, v] : xs) {
        w.beginObject();
        w.value("n", n);
        hexU64(w, "v", v);
        w.endObject();
    }
    w.endArray();
}

std::vector<std::pair<std::string, uint64_t>>
namedU64ArrayFrom(const JsonValue *a)
{
    std::vector<std::pair<std::string, uint64_t>> out;
    if (!a || !a->isArray())
        return out;
    for (const JsonValue &e : a->items) {
        out.emplace_back(e.require("n").asString(),
                         e.require("v").asU64());
    }
    return out;
}

} // namespace

SimErrorKind
simErrorKindFromName(const std::string &name)
{
    static const SimErrorKind kAll[] = {
        SimErrorKind::None,          SimErrorKind::WatchdogStall,
        SimErrorKind::RestartLivelock,
        SimErrorKind::ParityUnrecoverable,
        SimErrorKind::Cancelled,     SimErrorKind::DeadlineExceeded,
        SimErrorKind::WorkerCrashed,
    };
    for (SimErrorKind k : kAll) {
        if (name == simErrorKindName(k))
            return k;
    }
    return SimErrorKind::None;
}

bool
jobWireSerializable(const Job &job, std::string *why)
{
    if (job.trace || job.profiler) {
        if (why)
            *why = "caller-owned trace/profiler sink";
        return false;
    }
    if ((job.setupMemory || job.checkMemory || job.onFinish) &&
        job.workload.empty()) {
        if (why)
            *why = "programmatic hooks without a workload name";
        return false;
    }
    return true;
}

std::string
wireRequestJson(const WireJobRequest &req)
{
    const Job &j = req.job;
    JsonWriter w(false);
    w.beginObject();

    w.beginObject("job");
    w.value("name", j.name);
    if (j.workload.empty()) {
        w.value("lang", j.lang);
        w.value("source", j.source);
    } else {
        // the worker rebuilds source + hooks via workloadJob()
        w.value("workload", j.workload);
        w.value("hand", j.hand);
    }
    w.value("machine", j.machine);
    w.value("entry", j.entry);
    namedU64Array(w, "sets", j.sets);

    // manifest spellings: the worker reads this back through
    // parsePipelineOptions()
    w.beginObject("options");
    w.value("compactor", j.options.compactor);
    w.value("allocator", j.options.allocator);
    w.value("compact", j.options.compact);
    w.value("polls", j.options.insertInterruptPolls);
    w.value("trap_safe", j.options.trapSafety);
    w.value("stack_ops", j.options.recognizeStackOps);
    w.value("optimize", j.options.optimize);
    w.value("jit", j.options.jit);
    w.value("jit_threshold", (uint64_t)j.options.jitThreshold);
    w.value("empl_microops", j.options.frontend.emplUseMicroOps);
    w.value("empl_data_base",
            (uint64_t)j.options.frontend.emplDataBase);
    w.endObject();

    w.value("run", j.run);
    w.value("verify", j.verify);
    // the plan *text* (or "-"): manifest file references were
    // resolved by the parent
    w.value("fault_plan", j.faultPlan);
    hexU64(w, "fault_seed", j.faultSeed);
    w.value("max_restarts", (uint64_t)j.maxRestarts);
    w.value("deadline_seconds", j.deadlineSeconds);
    w.value("dmr", j.dmr);
    hexU64(w, "dmr_seed_b", j.dmrSeedB);
    w.value("ecc", j.ecc);
    hexU64(w, "max_cycles", j.maxCycles);
    w.value("force_slow", j.forceSlowPath);
    w.value("capture_stats", j.captureStats);
    w.value("capture_metrics", j.captureMetrics);
    hexU64(w, "metrics_every_cycles", j.metricsEveryCycles);
    w.endObject();

    // parseSupervisePolicy() spellings
    w.beginObject("policy");
    w.value("retries", (uint64_t)req.policy.maxRetries);
    w.value("backoff_base_ms", (uint64_t)req.policy.backoffBaseMs);
    w.value("backoff_max_ms", (uint64_t)req.policy.backoffMaxMs);
    w.value("deadline_seconds", req.policy.deadlineSeconds);
    hexU64(w, "checkpoint_every_cycles",
           req.policy.checkpointEveryCycles);
    w.value("dmr", req.policy.dmr);
    hexU64(w, "dmr_interval_words", req.policy.dmrIntervalWords);
    hexU64(w, "dmr_seed_b", req.policy.dmrSeedB);
    w.endObject();

    w.value("checkpoint_file", req.checkpointFile);
    w.value("postmortem_dir", req.postmortemDir);
    w.value("resume", req.resume);
    w.endObject();
    return w.str();
}

WireJobRequest
wireRequestFromJson(const JsonValue &v)
{
    WireJobRequest req;
    const JsonValue &jv = v.require("job");
    Job job;

    const std::string wname =
        jv.get("workload") ? jv.get("workload")->asString() : "";
    const PipelineOptions opts =
        parsePipelineOptions(jv.get("options"));
    if (!wname.empty()) {
        const Workload *w = nullptr;
        for (const Workload &cand : workloadSuite()) {
            if (cand.name == wname)
                w = &cand;
        }
        if (!w)
            fatal("worker: unknown workload '%s'", wname.c_str());
        const bool hand =
            jv.get("hand") && jv.get("hand")->asBool(false);
        job = workloadJob(*w, jv.require("machine").asString(), hand,
                          opts);
    } else {
        job.lang = jv.require("lang").asString();
        job.machine = jv.require("machine").asString();
        job.source = jv.require("source").asString();
        job.options = opts;
    }

    job.name = jv.require("name").asString();
    // for workload jobs the parent's entry came from workloadJob()
    // too, so a plain overwrite is exact either way
    job.entry = jv.require("entry").asString();
    // exactly what the parent's job carried (for workload jobs this
    // is workloadJob()'s inputs plus any manifest overrides)
    job.sets = namedU64ArrayFrom(jv.get("sets"));
    job.run = jv.require("run").asBool(true);
    job.verify = jv.require("verify").asBool();
    job.faultPlan = jv.require("fault_plan").asString();
    job.faultSeed = jv.require("fault_seed").asU64();
    job.maxRestarts =
        static_cast<uint32_t>(jv.require("max_restarts").asU64());
    job.deadlineSeconds = jv.require("deadline_seconds").asNumber();
    job.dmr = jv.require("dmr").asBool();
    job.dmrSeedB = jv.require("dmr_seed_b").asU64();
    job.ecc = jv.require("ecc").asBool(true);
    job.maxCycles = jv.require("max_cycles").asU64();
    job.forceSlowPath = jv.require("force_slow").asBool();
    job.captureStats = jv.require("capture_stats").asBool();
    job.captureMetrics = jv.require("capture_metrics").asBool();
    job.metricsEveryCycles =
        jv.require("metrics_every_cycles").asU64();

    req.job = std::move(job);
    req.policy = parseSupervisePolicy(v.get("policy"));
    req.checkpointFile = v.require("checkpoint_file").asString();
    req.postmortemDir = v.require("postmortem_dir").asString();
    req.resume = v.require("resume").asBool();
    return req;
}

std::string
wireResultJson(const JobResult &r)
{
    JsonWriter w(false);
    w.beginObject();
    w.value("name", r.name);
    w.value("lang", r.lang);
    w.value("machine", r.machine);
    w.value("ok", r.ok);
    w.value("ran", r.ran);
    w.beginArray("diagnostics");
    for (const std::string &d : r.diagnostics)
        w.value("", d);
    w.endArray();
    namedU64Array(w, "vars", r.vars);
    w.value("verified", r.verified);
    w.value("verify_ok", r.verifyOk);
    w.value("verify_report", r.verifyReport);
    w.value("stats_json", r.statsJson);
    w.value("stats_json_clean", r.statsJsonClean);
    w.value("divergence_json", r.divergenceJson);

    w.beginArray("metrics");
    for (const MetricsSample &m : r.metrics) {
        w.beginObject();
        hexU64(w, "seq", m.seq);
        hexU64(w, "cycles", m.cycles);
        w.value("label", m.label);
        w.value("stats_full", m.statsFull);
        w.value("stats_clean", m.statsClean);
        w.endObject();
    }
    w.endArray();

    w.value("retries", (uint64_t)r.retries);
    w.value("checkpoints", (uint64_t)r.checkpoints);
    w.value("rollbacks", (uint64_t)r.rollbacks);
    hexU64(w, "backoff_ms_total", r.backoffMsTotal);
    hexU64(w, "resumed_from_cycle", r.resumedFromCycle);
    w.value("compile_seconds", r.compileSeconds);
    w.value("run_seconds", r.runSeconds);

    const SimResult &s = r.sim;
    w.beginObject("sim");
    hexU64(w, "cycles", s.cycles);
    hexU64(w, "words_executed", s.wordsExecuted);
    hexU64(w, "page_faults", s.pageFaults);
    hexU64(w, "interrupts_serviced", s.interruptsServiced);
    hexU64(w, "interrupt_latency_total", s.interruptLatencyTotal);
    hexU64(w, "mem_reads", s.memReads);
    hexU64(w, "mem_writes", s.memWrites);
    w.value("halted", s.halted);
    hexU64(w, "fast_path_words", s.fastPathWords);
    hexU64(w, "slow_path_words", s.slowPathWords);
    hexU64(w, "pending_high_water", s.pendingHighWater);
    hexU64(w, "faults_injected", s.faultsInjected);
    hexU64(w, "ecc_corrected", s.eccCorrected);
    hexU64(w, "ecc_double_bit", s.eccDoubleBit);
    hexU64(w, "parity_refetches", s.parityRefetches);
    hexU64(w, "mem_retries", s.memRetries);
    hexU64(w, "spurious_interrupts", s.spuriousInterrupts);
    hexU64(w, "jitter_cycles", s.jitterCycles);
    hexU64(w, "watchdog_trips", s.watchdogTrips);
    hexU64(w, "fault_seed", s.faultSeed);
    w.beginObject("error");
    w.value("kind", simErrorKindName(s.error.kind));
    w.value("message", s.error.message);
    hexU64(w, "cycle", s.error.cycle);
    w.value("upc", (uint64_t)s.error.upc);
    w.value("restart_point", (uint64_t)s.error.restartPoint);
    namedU64Array(w, "regs", s.error.regs);
    w.endObject();
    w.endObject();

    // the verbatim renders the parent will hand back from toJson();
    // transported as escaped strings -- never re-rendered -- so the
    // merged report is byte-identical to an in-thread run
    w.value("json_timed", r.toJson(true, true));
    w.value("json_clean", r.toJson(true, false));
    w.endObject();
    return w.str();
}

JobResult
wireResultFromJson(const JsonValue &v)
{
    JobResult r;
    r.name = v.require("name").asString();
    r.lang = v.require("lang").asString();
    r.machine = v.require("machine").asString();
    r.ok = v.require("ok").asBool();
    r.ran = v.require("ran").asBool();
    if (const JsonValue *d = v.get("diagnostics")) {
        for (const JsonValue &e : d->items)
            r.diagnostics.push_back(e.asString());
    }
    r.vars = namedU64ArrayFrom(v.get("vars"));
    r.verified = v.require("verified").asBool();
    r.verifyOk = v.require("verify_ok").asBool();
    r.verifyReport = v.require("verify_report").asString();
    r.statsJson = v.require("stats_json").asString();
    r.statsJsonClean = v.require("stats_json_clean").asString();
    r.divergenceJson = v.require("divergence_json").asString();

    if (const JsonValue *ms = v.get("metrics")) {
        for (const JsonValue &e : ms->items) {
            MetricsSample m;
            m.seq = e.require("seq").asU64();
            m.cycles = e.require("cycles").asU64();
            m.label = e.require("label").asString();
            m.statsFull = e.require("stats_full").asString();
            m.statsClean = e.require("stats_clean").asString();
            r.metrics.push_back(std::move(m));
        }
    }

    r.retries = static_cast<uint32_t>(v.require("retries").asU64());
    r.checkpoints =
        static_cast<uint32_t>(v.require("checkpoints").asU64());
    r.rollbacks =
        static_cast<uint32_t>(v.require("rollbacks").asU64());
    r.backoffMsTotal = v.require("backoff_ms_total").asU64();
    r.resumedFromCycle = v.require("resumed_from_cycle").asU64();
    r.compileSeconds = v.require("compile_seconds").asNumber();
    r.runSeconds = v.require("run_seconds").asNumber();

    const JsonValue &sv = v.require("sim");
    SimResult &s = r.sim;
    s.cycles = sv.require("cycles").asU64();
    s.wordsExecuted = sv.require("words_executed").asU64();
    s.pageFaults = sv.require("page_faults").asU64();
    s.interruptsServiced = sv.require("interrupts_serviced").asU64();
    s.interruptLatencyTotal =
        sv.require("interrupt_latency_total").asU64();
    s.memReads = sv.require("mem_reads").asU64();
    s.memWrites = sv.require("mem_writes").asU64();
    s.halted = sv.require("halted").asBool();
    s.fastPathWords = sv.require("fast_path_words").asU64();
    s.slowPathWords = sv.require("slow_path_words").asU64();
    s.pendingHighWater = sv.require("pending_high_water").asU64();
    s.faultsInjected = sv.require("faults_injected").asU64();
    s.eccCorrected = sv.require("ecc_corrected").asU64();
    s.eccDoubleBit = sv.require("ecc_double_bit").asU64();
    s.parityRefetches = sv.require("parity_refetches").asU64();
    s.memRetries = sv.require("mem_retries").asU64();
    s.spuriousInterrupts = sv.require("spurious_interrupts").asU64();
    s.jitterCycles = sv.require("jitter_cycles").asU64();
    s.watchdogTrips = sv.require("watchdog_trips").asU64();
    s.faultSeed = sv.require("fault_seed").asU64();
    const JsonValue &ev = sv.require("error");
    s.error.kind = simErrorKindFromName(ev.require("kind").asString());
    s.error.message = ev.require("message").asString();
    s.error.cycle = ev.require("cycle").asU64();
    s.error.upc = static_cast<uint32_t>(ev.require("upc").asU64());
    s.error.restartPoint =
        static_cast<uint32_t>(ev.require("restart_point").asU64());
    s.error.regs = namedU64ArrayFrom(ev.get("regs"));

    r.prerenderedTimed = v.require("json_timed").asString();
    r.prerendered = v.require("json_clean").asString();
    return r;
}

} // namespace uhll
