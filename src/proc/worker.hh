/**
 * @file
 * The worker half of the out-of-process execution tier.
 *
 * A WorkerPool (proc/pool.hh) spawns sandboxed copies of the host
 * binary re-executed in *worker mode*: `uhllc --worker --worker-fd N
 * ...`. Both uhllc and uhlld check isWorkerInvocation() first thing
 * in main() and divert into runWorkerFromArgv(), so one binary is
 * both the driver and the sandbox -- no separate helper executable
 * to install or locate.
 *
 * A worker is a tiny job server over one inherited socketpair end:
 * it reads uhll-frame/1 frames carrying uhll/v1 "job" envelopes
 * (proc/wire.hh bodies), runs each through its own Toolchain --
 * persistent across jobs, so the artefact cache still amortizes
 * compilation within a worker -- and replies with the wire result.
 * A heartbeat thread emits "hb" envelopes every heartbeatMs so the
 * parent can distinguish "long simulation" from "hung process".
 * Clean EOF on the socket is the shutdown signal.
 *
 * Sandboxing is setrlimit-based and applies to the whole worker:
 * RLIMIT_CORE is always 0 (a crashing worker must not litter core
 * files), RLIMIT_AS / RLIMIT_CPU when configured. Resource-limit
 * death is just another signal exit the parent converts into a
 * structured SimError{WorkerCrashed}.
 *
 * Chaos hooks (tests only): --worker-chaos plants a deterministic
 * failure -- abort | kill | oom | hang, each with a "-once" variant
 * that fires on the first job then leaves a marker file in
 * --worker-chaos-dir so the respawned worker runs clean. That is
 * what makes the chaos suite's byte-identity invariant testable:
 * kill a worker mid-batch, let the pool retry, diff the report.
 */

#ifndef UHLL_PROC_WORKER_HH
#define UHLL_PROC_WORKER_HH

#include <cstdint>
#include <string>

namespace uhll {

/** Everything a worker process learns from its argv. */
struct WorkerProcessConfig {
    int fd = -1;                //!< the inherited socketpair end
    uint64_t memLimitMb = 0;    //!< RLIMIT_AS in MiB (0 = unlimited)
    uint32_t cpuLimitSeconds = 0;   //!< RLIMIT_CPU (0 = unlimited)
    uint32_t heartbeatMs = 250;
    std::string chaosSpec;      //!< "" | abort[-once] | kill[-once]
                                //!< | oom[-once] | hang[-once]
    std::string chaosDir;       //!< marker dir for the -once modes
};

/** True when @p argv is a worker-mode re-execution (argv[1] is
 *  "--worker"). Check before any normal flag parsing. */
bool isWorkerInvocation(int argc, char **argv);

/** Parse the --worker-* flags and run workerMain(). Only call when
 *  isWorkerInvocation(); exits the process on malformed argv. */
int runWorkerFromArgv(int argc, char **argv);

/** The worker job-server loop. Returns the process exit code:
 *  0 on clean EOF shutdown, nonzero on a transport error. */
int workerMain(const WorkerProcessConfig &cfg);

} // namespace uhll

#endif // UHLL_PROC_WORKER_HH
