/**
 * @file
 * Wire forms for out-of-process job execution (see proc/pool.hh).
 *
 * A WorkerPool ships one Job per request to a sandboxed worker
 * process and gets one JobResult back, both as uhll/v1 JSON bodies
 * inside the existing uhll-frame/1 framing. Everything a manifest
 * can express crosses the wire; the two things it cannot are
 * handled explicitly:
 *
 *  - *programmatic hooks* (Job::setupMemory/checkMemory/onFinish):
 *    jobs built by workloadJob() carry (Job::workload, Job::hand),
 *    so the worker rebuilds the exact hooks by calling
 *    workloadJob() itself. A job with hooks but no workload name is
 *    not wire-serializable (jobWireSerializable says so) and the
 *    BatchRunner degrades it to the in-thread path.
 *  - *result byte-identity*: the worker renders the JobResult
 *    JSON itself -- both the timings and the --no-timings form --
 *    and ships the exact bytes. The parent materializes them into
 *    JobResult::prerendered/prerenderedTimed, so a report assembled
 *    from worker results is byte-identical to an in-thread run and
 *    journal splicing keeps working across worker death + retry.
 *
 * u64 values that may exceed 2^53 (seeds, cycle counts, set values)
 * travel as "0x..." strings; JsonValue::asU64 accepts both.
 */

#ifndef UHLL_PROC_WIRE_HH
#define UHLL_PROC_WIRE_HH

#include <string>

#include "driver/supervisor.hh"
#include "driver/toolchain.hh"

namespace uhll {

struct JsonValue;

/** One job dispatch: the job plus the supervision plumbing the
 *  worker needs to run it exactly like the in-thread path would. */
struct WireJobRequest {
    Job job;
    SupervisePolicy policy;
    //! worker-side auto-checkpoint file ("" = none); a crashed
    //! worker leaves it behind and the retry resumes from it
    std::string checkpointFile;
    std::string postmortemDir;
    //! read checkpointFile before running (crash retry / --resume)
    bool resume = false;
};

/**
 * True when @p job can cross the process boundary: no caller-owned
 * trace/profiler sinks, and no programmatic hooks unless they came
 * from a named workload. *why (optional) gets the reason.
 */
bool jobWireSerializable(const Job &job, std::string *why = nullptr);

/** @name Request wire form */
/// @{
std::string wireRequestJson(const WireJobRequest &req);

/** Rebuild a request; fatal() on a structurally bad document. */
WireJobRequest wireRequestFromJson(const JsonValue &v);
/// @}

/** @name Result wire form */
/// @{
/**
 * Serialize @p r: the scalar fields the driver stack branches on
 * (ok/ran/sim error/supervision counters/vars/metrics) plus the two
 * verbatim JSON renders.
 */
std::string wireResultJson(const JobResult &r);

/** Materialize a worker's result. The renders land in
 *  prerendered/prerenderedTimed; artefact stays null. */
JobResult wireResultFromJson(const JsonValue &v);
/// @}

/** Parse a simErrorKindName() spelling back (None on no match). */
SimErrorKind simErrorKindFromName(const std::string &name);

} // namespace uhll

#endif // UHLL_PROC_WIRE_HH
