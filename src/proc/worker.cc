#include "proc/worker.hh"

#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "driver/supervisor.hh"
#include "driver/toolchain.hh"
#include "machine/checkpoint.hh"
#include "obs/json.hh"
#include "proc/wire.hh"
#include "service/protocol.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

void
applyRlimits(const WorkerProcessConfig &cfg)
{
    // never litter core files, whatever kills us
    rlimit core{0, 0};
    setrlimit(RLIMIT_CORE, &core);
    if (cfg.memLimitMb) {
        const rlim_t bytes = rlim_t(cfg.memLimitMb) << 20;
        rlimit as{bytes, bytes};
        if (setrlimit(RLIMIT_AS, &as) != 0)
            warn("worker: setrlimit(RLIMIT_AS): %s",
                 strerror(errno));
    }
    if (cfg.cpuLimitSeconds) {
        rlimit cpu{cfg.cpuLimitSeconds, cfg.cpuLimitSeconds};
        if (setrlimit(RLIMIT_CPU, &cpu) != 0)
            warn("worker: setrlimit(RLIMIT_CPU): %s",
                 strerror(errno));
    }
}

/** The -once chaos modes fire exactly once per marker directory:
 *  the respawned worker finds the marker and runs clean. */
bool
chaosArmed(const std::string &spec, const std::string &dir,
           std::string *mode)
{
    if (spec.empty())
        return false;
    const size_t dash = spec.rfind("-once");
    const bool once =
        dash != std::string::npos && dash + 5 == spec.size();
    *mode = once ? spec.substr(0, dash) : spec;
    if (!once)
        return true;
    if (dir.empty())
        return true;
    const std::string marker = dir + "/chaos." + *mode + ".fired";
    struct stat st;
    if (::stat(marker.c_str(), &st) == 0)
        return false;
    // create the marker *before* dying so the retry runs clean
    FILE *f = fopen(marker.c_str(), "w");
    if (f)
        fclose(f);
    return true;
}

[[noreturn]] void
chaosOom()
{
    // allocate-and-touch until the rlimit bites (bad_alloc) or a
    // 1 GiB cap (keeps sanitizer builds, where RLIMIT_AS cannot be
    // used, from actually exhausting the host) -- then abort, so
    // the parent sees a signal death either way
    std::vector<char *> chunks;
    try {
        for (size_t total = 0; total < (1ull << 30);
             total += (16u << 20)) {
            char *p = new char[16u << 20];
            for (size_t i = 0; i < (16u << 20); i += 4096)
                p[i] = char(i);
            chunks.push_back(p);
        }
    } catch (const std::bad_alloc &) {
    }
    std::abort();
}

void
maybeChaos(const WorkerProcessConfig &cfg)
{
    std::string mode;
    if (!chaosArmed(cfg.chaosSpec, cfg.chaosDir, &mode))
        return;
    if (mode == "abort")
        std::abort();
    if (mode == "kill")
        kill(getpid(), SIGKILL);
    if (mode == "oom")
        chaosOom();
    if (mode == "hang") {
        // stops the heartbeat thread too: the parent's hang
        // detector fires and SIGKILLs us
        raise(SIGSTOP);
        return;
    }
    warn("worker: unknown chaos mode '%s' ignored", mode.c_str());
}

/** Serializes frame writes: heartbeats and job replies share fd. */
struct FrameSender {
    int fd;
    std::mutex mu;

    bool
    send(const std::string &payload, std::string *err)
    {
        std::lock_guard<std::mutex> lk(mu);
        return writeFrame(fd, payload, err);
    }
};

} // namespace

bool
isWorkerInvocation(int argc, char **argv)
{
    return argc >= 2 && std::strcmp(argv[1], "--worker") == 0;
}

int
runWorkerFromArgv(int argc, char **argv)
{
    WorkerProcessConfig cfg;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("worker: %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--worker-fd")
            cfg.fd = std::atoi(val().c_str());
        else if (a == "--worker-mem-mb")
            cfg.memLimitMb = std::strtoull(val().c_str(), nullptr, 0);
        else if (a == "--worker-cpu-s")
            cfg.cpuLimitSeconds =
                uint32_t(std::strtoul(val().c_str(), nullptr, 0));
        else if (a == "--worker-heartbeat-ms")
            cfg.heartbeatMs =
                uint32_t(std::strtoul(val().c_str(), nullptr, 0));
        else if (a == "--worker-chaos")
            cfg.chaosSpec = val();
        else if (a == "--worker-chaos-dir")
            cfg.chaosDir = val();
        else
            fatal("worker: unknown flag %s", a.c_str());
    }
    if (cfg.fd < 0)
        fatal("worker: --worker-fd is required");
    return workerMain(cfg);
}

int
workerMain(const WorkerProcessConfig &cfg)
{
    applyRlimits(cfg);
    // a parent that dies mid-write must not kill us with SIGPIPE;
    // the write error is the diagnostic
    signal(SIGPIPE, SIG_IGN);

    FrameSender out{cfg.fd, {}};
    Toolchain tc;

    std::atomic<bool> stop{false};
    std::mutex hbMu;
    std::condition_variable hbCv;
    std::thread heartbeat([&] {
        const std::string hb = requestEnvelope("hb", "worker", "", "{}");
        std::unique_lock<std::mutex> lk(hbMu);
        while (!stop.load()) {
            if (hbCv.wait_for(
                    lk, std::chrono::milliseconds(cfg.heartbeatMs),
                    [&] { return stop.load(); }))
                break;
            std::string err;
            out.send(hb, &err);  // a dead parent surfaces on recv
        }
    });

    int rc = 0;
    for (;;) {
        std::string payload, err;
        const FrameRead fr = readFrame(cfg.fd, &payload, &err);
        if (fr == FrameRead::Eof)
            break;  // clean shutdown: parent closed its end
        if (fr != FrameRead::Ok) {
            warn("worker: read: %s", err.c_str());
            rc = 1;
            break;
        }

        JsonValue env;
        try {
            env = JsonValue::parse(payload);
        } catch (const FatalError &e) {
            warn("worker: bad envelope: %s", e.what());
            rc = 1;
            break;
        }
        const std::string op =
            env.get("op") ? env.get("op")->asString() : "";
        const std::string id =
            env.get("id") ? env.get("id")->asString() : "";
        if (op != "job") {
            std::string werr;
            out.send(responseEnvelope(op, id, false,
                                      "unsupported op in worker",
                                      "bad-request", "", false),
                     &werr);
            continue;
        }

        maybeChaos(cfg);

        std::string body;
        try {
            WireJobRequest req =
                wireRequestFromJson(env.require("body"));
            SuperviseContext ctx;
            ctx.policy = req.policy;
            ctx.checkpointFile = req.checkpointFile;
            ctx.postmortemDir = req.postmortemDir;
            std::optional<Checkpoint> ck;
            if (req.resume && !req.checkpointFile.empty()) {
                ck = Checkpoint::readFile(req.checkpointFile);
                if (ck)
                    ctx.resumeFrom = &*ck;
            }
            const Toolchain::CacheStats c0 = tc.cacheStats();
            JobResult r = tc.run(req.job, ctx);
            const Toolchain::CacheStats c1 = tc.cacheStats();
            JsonWriter w(false);
            w.beginObject();
            w.raw("result", wireResultJson(r));
            w.value("cache_hits", c1.hits - c0.hits);
            w.value("cache_misses", c1.misses - c0.misses);
            w.endObject();
            body = w.str();
        } catch (const FatalError &e) {
            std::string werr;
            out.send(responseEnvelope("job", id, false, e.what(),
                                      "bad-request", "", false),
                     &werr);
            continue;
        }
        std::string werr;
        if (!out.send(responseEnvelope("job", id, true, "", "", body,
                                       false),
                      &werr)) {
            warn("worker: reply: %s", werr.c_str());
            rc = 1;
            break;
        }
    }

    {
        std::lock_guard<std::mutex> lk(hbMu);
        stop.store(true);
    }
    hbCv.notify_all();
    heartbeat.join();
    return rc;
}

} // namespace uhll
