#include "support/fsio.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "support/logging.hh"

namespace uhll {

namespace {

std::string
parentDir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** write() all of @p content to @p fd, riding out EINTR. */
bool
writeAll(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

} // namespace

bool
fsyncParentDir(const std::string &path, std::string *err)
{
    const std::string dir = parentDir(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY |
                                            O_CLOEXEC);
    if (dfd < 0) {
        *err = strfmt("open dir '%s': %s", dir.c_str(),
                      std::strerror(errno));
        return false;
    }
    const int rc = ::fsync(dfd);
    const int saved = errno;
    ::close(dfd);
    if (rc != 0) {
        *err = strfmt("fsync dir '%s': %s", dir.c_str(),
                      std::strerror(saved));
        return false;
    }
    return true;
}

bool
atomicWriteDurable(const std::string &path,
                   const std::string &content, std::string *err)
{
    err->clear();
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        *err = strfmt("cannot write '%s': %s", tmp.c_str(),
                      std::strerror(errno));
        return false;
    }
    bool ok = writeAll(fd, content.data(), content.size());
    if (ok && ::fsync(fd) != 0)
        ok = false;
    const int saved = errno;
    if (::close(fd) != 0)
        ok = false;
    if (!ok) {
        *err = strfmt("short write to '%s': %s", tmp.c_str(),
                      std::strerror(saved));
        ::unlink(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        *err = strfmt("cannot rename '%s' to '%s': %s", tmp.c_str(),
                      path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    // The rename is only durable once the directory entry is on
    // disk; a failure here is worth knowing about but the file
    // itself is already complete and visible.
    std::string derr;
    if (!fsyncParentDir(path, &derr))
        warn("fsio: %s", derr.c_str());
    return true;
}

// ----------------------------------------------------------------
// DurableAppender
// ----------------------------------------------------------------

DurableAppender::~DurableAppender()
{
    close();
}

void
DurableAppender::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
DurableAppender::open(const std::string &path, bool append,
                      std::string *err)
{
    close();
    const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                      (append ? O_APPEND : O_TRUNC);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        *err = strfmt("cannot write '%s': %s", path.c_str(),
                      std::strerror(errno));
        return false;
    }
    std::string derr;
    if (!fsyncParentDir(path, &derr))
        warn("fsio: %s", derr.c_str());
    return true;
}

bool
DurableAppender::append(const std::string &text)
{
    if (fd_ < 0)
        return false;
    if (!writeAll(fd_, text.data(), text.size()))
        return false;
    return ::fsync(fd_) == 0;
}

bool
DurableAppender::appendLine(const std::string &line)
{
    return append(line + "\n");
}

} // namespace uhll
