#include "support/logging.hh"

#include <cstdio>
#include <vector>

namespace uhll {

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    throw PanicError(s);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(s);
}

namespace {

LogLevel
initialLogLevel()
{
    if (const char *env = std::getenv("UHLL_LOG")) {
        std::string v = env;
        if (v == "quiet")
            return LogLevel::Quiet;
        if (v == "verbose")
            return LogLevel::Verbose;
    }
    return LogLevel::Normal;
}

LogLevel &
levelSlot()
{
    static LogLevel lvl = initialLogLevel();
    return lvl;
}

} // namespace

void
setLogLevel(LogLevel lvl)
{
    levelSlot() = lvl;
}

LogLevel
logLevel()
{
    return levelSlot();
}

void
warn(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", s.c_str());
}

} // namespace uhll
