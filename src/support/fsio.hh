/**
 * @file
 * Durable file writes: the one atomic tmp+rename implementation
 * every artifact writer shares.
 *
 * Before this module, four call sites (telemetry's writeFileAtomic,
 * checkpoint files, fuzz corpus entries, batch journals) each did
 * tmp+rename -- none of them fsync'd. rename() alone guarantees the
 * *name* flips atomically, but after a power loss the new name can
 * point at a zero-length or partially-written inode unless the file
 * contents were flushed first, and the rename itself can vanish
 * unless the parent directory is flushed too. atomicWriteDurable
 * does the full sequence: write tmp, fsync(tmp), rename, fsync(dir).
 *
 * Append-style writers (the batch journal) cannot use tmp+rename;
 * DurableAppender gives them the same contract per line: write,
 * then fsync, so a journal line that loadJournal() can read is a
 * journal line that survives power loss. (A torn final line is
 * still possible -- the journal reader has always tolerated that.)
 */

#ifndef UHLL_SUPPORT_FSIO_HH
#define UHLL_SUPPORT_FSIO_HH

#include <string>

namespace uhll {

/**
 * Write @p content to @p path atomically *and* durably: tmp file,
 * fsync(file), rename into place, fsync(parent directory). False
 * with a one-line diagnostic in *err on any failure (the tmp file
 * is removed; @p path is never left half-written).
 */
bool atomicWriteDurable(const std::string &path,
                        const std::string &content, std::string *err);

/** fsync the directory containing @p path (durability of a rename
 *  or create within it). False with *err on failure. */
bool fsyncParentDir(const std::string &path, std::string *err);

/**
 * An append-only file writer with per-append durability (the batch
 * journal). open() creates or truncates/appends and fsyncs the
 * parent directory so the file's existence is durable; appendLine()
 * writes one newline-terminated record and fsyncs it down.
 */
class DurableAppender
{
  public:
    DurableAppender() = default;
    ~DurableAppender();
    DurableAppender(const DurableAppender &) = delete;
    DurableAppender &operator=(const DurableAppender &) = delete;

    /** Open @p path (append or truncate). False with *err set. */
    bool open(const std::string &path, bool append, std::string *err);

    bool isOpen() const { return fd_ >= 0; }

    /** Write @p line plus '\n', then fsync. False on a write error
     *  (the appender stays open; callers may retry or ignore). */
    bool appendLine(const std::string &line);

    /** Write @p text verbatim (no newline added), then fsync. */
    bool append(const std::string &text);

    void close();

  private:
    int fd_ = -1;
};

} // namespace uhll

#endif // UHLL_SUPPORT_FSIO_HH
