/**
 * @file
 * Bit-manipulation helpers shared by the simulator, the assembler and
 * the verifier. All register arithmetic in uhll is done in uint64_t
 * and masked down to the register width after every operation.
 */

#ifndef UHLL_SUPPORT_BITS_HH
#define UHLL_SUPPORT_BITS_HH

#include <cstdint>

namespace uhll {

/** All-ones mask of the low @p width bits (width in [0,64]). */
constexpr uint64_t
bitMask(unsigned width)
{
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/** Truncate @p v to @p width bits. */
constexpr uint64_t
truncBits(uint64_t v, unsigned width)
{
    return v & bitMask(width);
}

/** Sign-extend the low @p width bits of @p v to 64 bits. */
constexpr int64_t
signExtend(uint64_t v, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(v);
    uint64_t sign = 1ULL << (width - 1);
    v &= bitMask(width);
    return static_cast<int64_t>((v ^ sign) - sign);
}

/** Rotate @p v left by @p n within a @p width -bit word. */
constexpr uint64_t
rotateLeft(uint64_t v, unsigned n, unsigned width)
{
    if (width == 0)
        return 0;
    n %= width;
    v = truncBits(v, width);
    if (n == 0)
        return v;
    return truncBits((v << n) | (v >> (width - n)), width);
}

/** Rotate @p v right by @p n within a @p width -bit word. */
constexpr uint64_t
rotateRight(uint64_t v, unsigned n, unsigned width)
{
    if (width == 0)
        return 0;
    n %= width;
    return rotateLeft(v, width - n, width);
}

/** Extract the bit field [lo, lo+len) of @p v. */
constexpr uint64_t
extractBits(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & bitMask(len);
}

/** Insert @p field into bits [lo, lo+len) of @p v. */
constexpr uint64_t
insertBits(uint64_t v, unsigned lo, unsigned len, uint64_t field)
{
    uint64_t m = bitMask(len) << lo;
    return (v & ~m) | ((field << lo) & m);
}

/**
 * Compress the bits of @p v selected by @p mask into a dense low-order
 * value (the "extract under mask" used by multiway-branch hardware:
 * the selected bits, from low to high, become the dispatch index).
 */
constexpr uint64_t
compressBits(uint64_t v, uint64_t mask)
{
    uint64_t out = 0;
    unsigned pos = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if (mask & (1ULL << i)) {
            if (v & (1ULL << i))
                out |= 1ULL << pos;
            ++pos;
        }
    }
    return out;
}

/** Number of set bits. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
}

} // namespace uhll

#endif // UHLL_SUPPORT_BITS_HH
