/**
 * @file
 * Error reporting helpers in the gem5 idiom.
 *
 * panic()  -- an internal invariant of the toolkit was violated (a bug
 *             in uhll itself); aborts.
 * fatal()  -- the user's input (source program, machine description,
 *             configuration) cannot be processed; exits with an error.
 * warn()   -- something is suspicious but processing can continue.
 * inform() -- a status message.
 * verbose() -- a debug-level message, off by default.
 *
 * A global verbosity level gates the non-throwing reporters: Quiet
 * silences warn()/inform() (bench runs), Verbose additionally
 * enables verbose() (debug runs). The level defaults from the
 * UHLL_LOG environment variable ("quiet" or "verbose") and is
 * routed through uhllc's --quiet/--verbose flags.
 */

#ifndef UHLL_SUPPORT_LOGGING_HH
#define UHLL_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace uhll {

/** Exception carrying a fatal (user-error) diagnostic. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception carrying a panic (toolkit-bug) diagnostic. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a toolkit bug. Throws PanicError so tests can observe it;
 * non-test drivers let it propagate and terminate.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error. Throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Global verbosity for warn()/inform()/verbose(). */
enum class LogLevel : uint8_t {
    Quiet = 0,      //!< errors only
    Normal = 1,     //!< warn() + inform() (the default)
    Verbose = 2,    //!< additionally verbose()
};

/** Set the global log level (overrides UHLL_LOG). */
void setLogLevel(LogLevel lvl);

/** The current log level (initialised from UHLL_LOG on first use). */
LogLevel logLevel();

/** Report a suspicious-but-survivable condition on stderr.
 *  Suppressed at Quiet. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a status message on stderr. Suppressed at Quiet. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a debug-level message on stderr. Printed only at Verbose. */
void verbose(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Assert an internal invariant; panics with location info on failure. */
#define UHLL_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::uhll::panic("assertion '%s' failed at %s:%d",             \
                          #cond, __FILE__, __LINE__);                   \
        }                                                               \
    } while (0)

} // namespace uhll

#endif // UHLL_SUPPORT_LOGGING_HH
