#include "masm/masm.hh"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "driver/frontend.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/**
 * Internal per-line parse failure. Thrown by the scanner and the
 * word parser, caught at line granularity so assembly continues and
 * every malformed line in the program gets its own diagnostic.
 */
struct LineError {
    int line;
    int col;
    std::string msg;
};

/** A very small hand-rolled scanner over one source line. */
class LineScanner
{
  public:
    LineScanner(const std::string &text, int line)
        : text_(text), line_(line)
    {}

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size() || text_[pos_] == ';';
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            throw LineError{line_, col(),
                            strfmt("expected '%c'", c)};
    }

    /** Identifier: [A-Za-z_.][A-Za-z0-9_.]* */
    std::string
    ident()
    {
        skipSpace();
        size_t start = pos_;
        auto ok = [](char ch, bool first) {
            return std::isalpha(static_cast<unsigned char>(ch)) ||
                   ch == '_' || ch == '.' ||
                   (!first && std::isdigit(static_cast<unsigned char>(ch)));
        };
        while (pos_ < text_.size() && ok(text_[pos_], pos_ == start))
            ++pos_;
        if (pos_ == start)
            throw LineError{line_, col(), "expected identifier"};
        return text_.substr(start, pos_ - start);
    }

    /** Immediate literal after '#': dec, 0x, 0b, 0o. */
    uint64_t
    number()
    {
        skipSpace();
        size_t start = pos_;
        int base = 10;
        if (pos_ + 1 < text_.size() && text_[pos_] == '0') {
            char c = text_[pos_ + 1];
            if (c == 'x' || c == 'X') { base = 16; pos_ += 2; }
            else if (c == 'b' || c == 'B') { base = 2; pos_ += 2; }
            else if (c == 'o' || c == 'O') { base = 8; pos_ += 2; }
        }
        uint64_t v = 0;
        bool any = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                d = c - 'A' + 10;
            else
                break;
            if (d >= base)
                break;
            v = v * base + d;
            any = true;
            ++pos_;
        }
        if (!any)
            throw LineError{
                line_, col(),
                strfmt("expected number at '%s'",
                       text_.substr(start).c_str())};
        return v;
    }

    int line() const { return line_; }
    /** 1-based column of the next unconsumed character. */
    int col() const { return static_cast<int>(pos_) + 1; }

  private:
    const std::string &text_;
    size_t pos_ = 0;
    int line_;
};

/** One parsed word before label resolution. */
struct ParsedWord {
    MicroInstruction mi;
    std::string targetLabel;    // non-empty: fix up mi.target
    int line = 0;
    std::string text;           // trimmed source text (line table)
};

/** Trim whitespace and the trailing comment off a source line. */
std::string
trimLine(const std::string &line)
{
    size_t end = line.find(';');
    if (end == std::string::npos)
        end = line.size();
    size_t start = 0;
    while (start < end &&
           std::isspace(static_cast<unsigned char>(line[start])))
        ++start;
    while (end > start &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
        --end;
    return line.substr(start, end - start);
}

Cond
parseCond(const std::string &s, int line, int col)
{
    if (s == "z") return Cond::Z;
    if (s == "nz") return Cond::NZ;
    if (s == "neg") return Cond::Neg;
    if (s == "nonneg") return Cond::NonNeg;
    if (s == "c") return Cond::C;
    if (s == "nc") return Cond::NC;
    if (s == "uf") return Cond::UF;
    if (s == "nouf") return Cond::NoUF;
    if (s == "ovf") return Cond::Ovf;
    if (s == "int") return Cond::Int;
    if (s == "noint") return Cond::NoInt;
    throw LineError{line, col,
                    strfmt("unknown condition '%s'", s.c_str())};
}

} // namespace

std::optional<ControlStore>
MicroAssembler::assemble(const std::string &source,
                         std::vector<MasmDiagnostic> &diags) const
{
    std::vector<ParsedWord> words;
    std::unordered_map<std::string, uint32_t> labels;
    std::vector<std::pair<std::string, uint32_t>> entries;
    bool next_restart = false;

    auto parseReg = [&](LineScanner &sc) -> RegId {
        int col = sc.col();
        std::string name = sc.ident();
        auto r = mach_->findRegister(name);
        if (!r)
            throw LineError{sc.line(), col,
                            strfmt("unknown register '%s'",
                                   name.c_str())};
        return *r;
    };

    // Pass 1: parse lines, collect labels. A malformed line is
    // recorded and skipped so every error in the program surfaces in
    // one assembly run.
    size_t pos = 0;
    int lineno = 0;
    while (pos <= source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        std::string line = source.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;

        LineScanner sc(line, lineno);
        try {
        if (sc.atEnd())
            continue;

        if (sc.peek() == '.') {
            std::string dir = sc.ident();
            if (dir == ".entry") {
                entries.emplace_back(
                    sc.ident(), static_cast<uint32_t>(words.size()));
            } else if (dir == ".restart") {
                next_restart = true;
            } else {
                throw LineError{lineno, 1,
                                strfmt("unknown directive '%s'",
                                       dir.c_str())};
            }
            if (!sc.atEnd())
                throw LineError{lineno, sc.col(), "trailing text"};
            continue;
        }

        if (sc.peek() != '[') {
            // label definition
            int col = sc.col();
            std::string lbl = sc.ident();
            sc.expect(':');
            if (labels.count(lbl))
                throw LineError{lineno, col,
                                strfmt("duplicate label '%s'",
                                       lbl.c_str())};
            labels.emplace(lbl, static_cast<uint32_t>(words.size()));
            if (!sc.atEnd())
                throw LineError{lineno, sc.col(),
                                "trailing text after label"};
            continue;
        }

        // A control word.
        ParsedWord pw;
        pw.line = lineno;
        pw.text = trimLine(line);
        pw.mi.restart = next_restart;
        next_restart = false;

        sc.expect('[');
        while (!sc.consume(']')) {
            int mn_col = sc.col();
            std::string mn = sc.ident();
            bool overlap = false;
            if (mn.size() > 3 && mn.ends_with(".ov")) {
                overlap = true;
                mn = mn.substr(0, mn.size() - 3);
            }
            auto spec_idx = mach_->findUop(mn);
            if (!spec_idx)
                throw LineError{lineno, mn_col,
                                strfmt("machine %s has no microop "
                                       "'%s'",
                                       mach_->name().c_str(),
                                       mn.c_str())};
            const MicroOpSpec &spec = mach_->uop(*spec_idx);

            BoundOp op;
            op.spec = *spec_idx;
            op.overlap = overlap;

            std::vector<bool> slots; // order: dst, srcA, srcB
            bool first = true;
            auto sep = [&]() {
                if (!first)
                    sc.expect(',');
                first = false;
            };
            if (uKindHasDst(spec.kind)) {
                sep();
                op.dst = parseReg(sc);
            }
            if (uKindHasSrcA(spec.kind)) {
                sep();
                op.srcA = parseReg(sc);
            }
            if (uKindHasSrcB(spec.kind)) {
                sep();
                if (sc.consume('#')) {
                    op.useImm = true;
                    op.imm = sc.number();
                } else {
                    op.srcB = parseReg(sc);
                }
            }
            if (spec.kind == UKind::Ldi ||
                spec.kind == UKind::NewBlock) {
                sep();
                sc.expect('#');
                op.imm = sc.number();
            }
            (void)slots;
            pw.mi.ops.push_back(op);

            if (sc.peek() == '|')
                sc.consume('|');
            else if (sc.peek() != ']')
                throw LineError{lineno, sc.col(),
                                "expected '|' or ']'"};
        }

        // Optional sequencing part.
        if (!sc.atEnd()) {
            int kw_col = sc.col();
            std::string kw = sc.ident();
            if (kw == "jump") {
                pw.mi.seq = SeqKind::Jump;
                pw.targetLabel = sc.ident();
            } else if (kw == "if") {
                pw.mi.seq = SeqKind::CondJump;
                int c_col = sc.col();
                pw.mi.cond = parseCond(sc.ident(), lineno, c_col);
                int j_col = sc.col();
                std::string j = sc.ident();
                if (j != "jump")
                    throw LineError{lineno, j_col,
                                    "expected 'jump'"};
                pw.targetLabel = sc.ident();
            } else if (kw == "call") {
                pw.mi.seq = SeqKind::Call;
                pw.targetLabel = sc.ident();
            } else if (kw == "return") {
                pw.mi.seq = SeqKind::Return;
            } else if (kw == "halt") {
                pw.mi.seq = SeqKind::Halt;
            } else if (kw == "mbranch") {
                pw.mi.seq = SeqKind::Multiway;
                pw.mi.mwReg = parseReg(sc);
                sc.expect(',');
                sc.expect('#');
                pw.mi.mwMask = sc.number();
                sc.expect(',');
                pw.targetLabel = sc.ident();
            } else {
                throw LineError{lineno, kw_col,
                                strfmt("unknown sequencing '%s'",
                                       kw.c_str())};
            }
            if (!sc.atEnd())
                throw LineError{lineno, sc.col(), "trailing text"};
        }

        // Validate the word against the machine model.
        std::string why;
        if (!mach_->wordLegal(pw.mi.ops, /*phase_aware=*/true, &why))
            throw LineError{lineno, 1,
                            strfmt("illegal word: %s", why.c_str())};
        if (pw.mi.seq == SeqKind::Multiway && !mach_->hasMultiway())
            throw LineError{lineno, 1,
                            strfmt("machine %s has no multiway "
                                   "branch",
                                   mach_->name().c_str())};

        words.push_back(std::move(pw));
        } catch (const LineError &e) {
            diags.push_back(MasmDiagnostic{e.line, e.col, e.msg});
        }
    }

    // Pass 2: resolve labels, build the store. Undefined labels are
    // reported even when pass 1 already failed, so a single run
    // shows the whole picture.
    ControlStore store(*mach_);
    for (auto &pw : words) {
        if (!pw.targetLabel.empty()) {
            auto it = labels.find(pw.targetLabel);
            if (it == labels.end()) {
                diags.push_back(MasmDiagnostic{
                    pw.line, 0,
                    strfmt("undefined label '%s'",
                           pw.targetLabel.c_str())});
                continue;
            }
            pw.mi.target = it->second;
        }
        uint32_t addr = store.append(std::move(pw.mi));
        // Line table for the profiler's hot-line report and trace
        // dumps: each word remembers where it came from.
        store.annotate(addr, pw.line, std::move(pw.text));
    }
    for (auto &e : entries) {
        if (e.second >= store.size()) {
            diags.push_back(MasmDiagnostic{
                0, 0,
                strfmt("entry '%s' points past the end",
                       e.first.c_str())});
            continue;
        }
        store.defineEntry(e.first, e.second);
    }
    if (!diags.empty())
        return std::nullopt;
    return store;
}

ControlStore
MicroAssembler::assemble(const std::string &source) const
{
    std::vector<MasmDiagnostic> diags;
    auto store = assemble(source, diags);
    if (store)
        return std::move(*store);
    std::string msg = strfmt("masm: %zu error%s", diags.size(),
                             diags.size() == 1 ? "" : "s");
    for (const MasmDiagnostic &d : diags) {
        if (d.line && d.col)
            msg += strfmt("\n  line %d:%d: %s", d.line, d.col,
                          d.message.c_str());
        else if (d.line)
            msg += strfmt("\n  line %d: %s", d.line,
                          d.message.c_str());
        else
            msg += strfmt("\n  %s", d.message.c_str());
    }
    throw FatalError(msg);
}

// ----------------------------------------------------------------
// Frontend registration (see driver/frontend.hh): hand microassembly
// enters the pipeline at the very bottom, producing a finished
// control store with no assertions or variable bindings.
// ----------------------------------------------------------------

namespace frontend_anchor {
extern const char masm = 0;
} // namespace frontend_anchor

namespace {

class MasmFrontend final : public Frontend
{
  public:
    const char *name() const override { return "masm"; }
    const char *describe() const override
    {
        return "masm: hand microassembly for any machine "
               "description";
    }
    bool producesMir() const override { return false; }
    Translation
    translate(const std::string &source,
              const MachineDescription &mach,
              const FrontendOptions &) const override
    {
        MicroAssembler as(mach);
        Translation t;
        t.direct.emplace(mach);
        t.direct->store = as.assemble(source);
        return t;
    }
};

const MasmFrontend masmFrontend;
const FrontendRegistry::Registrar reg(&masmFrontend);

} // namespace

} // namespace uhll
