#include "masm/masm.hh"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** A very small hand-rolled scanner over one source line. */
class LineScanner
{
  public:
    LineScanner(const std::string &text, int line)
        : text_(text), line_(line)
    {}

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size() || text_[pos_] == ';';
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fatal("masm line %d: expected '%c'", line_, c);
    }

    /** Identifier: [A-Za-z_.][A-Za-z0-9_.]* */
    std::string
    ident()
    {
        skipSpace();
        size_t start = pos_;
        auto ok = [](char ch, bool first) {
            return std::isalpha(static_cast<unsigned char>(ch)) ||
                   ch == '_' || ch == '.' ||
                   (!first && std::isdigit(static_cast<unsigned char>(ch)));
        };
        while (pos_ < text_.size() && ok(text_[pos_], pos_ == start))
            ++pos_;
        if (pos_ == start)
            fatal("masm line %d: expected identifier", line_);
        return text_.substr(start, pos_ - start);
    }

    /** Immediate literal after '#': dec, 0x, 0b, 0o. */
    uint64_t
    number()
    {
        skipSpace();
        size_t start = pos_;
        int base = 10;
        if (pos_ + 1 < text_.size() && text_[pos_] == '0') {
            char c = text_[pos_ + 1];
            if (c == 'x' || c == 'X') { base = 16; pos_ += 2; }
            else if (c == 'b' || c == 'B') { base = 2; pos_ += 2; }
            else if (c == 'o' || c == 'O') { base = 8; pos_ += 2; }
        }
        uint64_t v = 0;
        bool any = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                d = c - 'A' + 10;
            else
                break;
            if (d >= base)
                break;
            v = v * base + d;
            any = true;
            ++pos_;
        }
        if (!any)
            fatal("masm line %d: expected number at '%s'", line_,
                  text_.substr(start).c_str());
        return v;
    }

    int line() const { return line_; }

  private:
    const std::string &text_;
    size_t pos_ = 0;
    int line_;
};

/** One parsed word before label resolution. */
struct ParsedWord {
    MicroInstruction mi;
    std::string targetLabel;    // non-empty: fix up mi.target
    int line = 0;
    std::string text;           // trimmed source text (line table)
};

/** Trim whitespace and the trailing comment off a source line. */
std::string
trimLine(const std::string &line)
{
    size_t end = line.find(';');
    if (end == std::string::npos)
        end = line.size();
    size_t start = 0;
    while (start < end &&
           std::isspace(static_cast<unsigned char>(line[start])))
        ++start;
    while (end > start &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
        --end;
    return line.substr(start, end - start);
}

Cond
parseCond(const std::string &s, int line)
{
    if (s == "z") return Cond::Z;
    if (s == "nz") return Cond::NZ;
    if (s == "neg") return Cond::Neg;
    if (s == "nonneg") return Cond::NonNeg;
    if (s == "c") return Cond::C;
    if (s == "nc") return Cond::NC;
    if (s == "uf") return Cond::UF;
    if (s == "nouf") return Cond::NoUF;
    if (s == "ovf") return Cond::Ovf;
    if (s == "int") return Cond::Int;
    if (s == "noint") return Cond::NoInt;
    fatal("masm line %d: unknown condition '%s'", line, s.c_str());
}

} // namespace

ControlStore
MicroAssembler::assemble(const std::string &source) const
{
    std::vector<ParsedWord> words;
    std::unordered_map<std::string, uint32_t> labels;
    std::vector<std::pair<std::string, uint32_t>> entries;
    bool next_restart = false;

    auto parseReg = [&](LineScanner &sc) -> RegId {
        std::string name = sc.ident();
        auto r = mach_->findRegister(name);
        if (!r)
            fatal("masm line %d: unknown register '%s'", sc.line(),
                  name.c_str());
        return *r;
    };

    // Pass 1: parse lines, collect labels.
    size_t pos = 0;
    int lineno = 0;
    while (pos <= source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        std::string line = source.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;

        LineScanner sc(line, lineno);
        if (sc.atEnd())
            continue;

        if (sc.peek() == '.') {
            std::string dir = sc.ident();
            if (dir == ".entry") {
                entries.emplace_back(
                    sc.ident(), static_cast<uint32_t>(words.size()));
            } else if (dir == ".restart") {
                next_restart = true;
            } else {
                fatal("masm line %d: unknown directive '%s'", lineno,
                      dir.c_str());
            }
            if (!sc.atEnd())
                fatal("masm line %d: trailing text", lineno);
            continue;
        }

        if (sc.peek() != '[') {
            // label definition
            std::string lbl = sc.ident();
            sc.expect(':');
            if (labels.count(lbl))
                fatal("masm line %d: duplicate label '%s'", lineno,
                      lbl.c_str());
            labels.emplace(lbl, static_cast<uint32_t>(words.size()));
            if (!sc.atEnd())
                fatal("masm line %d: trailing text after label",
                      lineno);
            continue;
        }

        // A control word.
        ParsedWord pw;
        pw.line = lineno;
        pw.text = trimLine(line);
        pw.mi.restart = next_restart;
        next_restart = false;

        sc.expect('[');
        while (!sc.consume(']')) {
            std::string mn = sc.ident();
            bool overlap = false;
            if (mn.size() > 3 && mn.ends_with(".ov")) {
                overlap = true;
                mn = mn.substr(0, mn.size() - 3);
            }
            auto spec_idx = mach_->findUop(mn);
            if (!spec_idx)
                fatal("masm line %d: machine %s has no microop '%s'",
                      lineno, mach_->name().c_str(), mn.c_str());
            const MicroOpSpec &spec = mach_->uop(*spec_idx);

            BoundOp op;
            op.spec = *spec_idx;
            op.overlap = overlap;

            std::vector<bool> slots; // order: dst, srcA, srcB
            bool first = true;
            auto sep = [&]() {
                if (!first)
                    sc.expect(',');
                first = false;
            };
            if (uKindHasDst(spec.kind)) {
                sep();
                op.dst = parseReg(sc);
            }
            if (uKindHasSrcA(spec.kind)) {
                sep();
                op.srcA = parseReg(sc);
            }
            if (uKindHasSrcB(spec.kind)) {
                sep();
                if (sc.consume('#')) {
                    op.useImm = true;
                    op.imm = sc.number();
                } else {
                    op.srcB = parseReg(sc);
                }
            }
            if (spec.kind == UKind::Ldi ||
                spec.kind == UKind::NewBlock) {
                sep();
                sc.expect('#');
                op.imm = sc.number();
            }
            (void)slots;
            pw.mi.ops.push_back(op);

            if (sc.peek() == '|')
                sc.consume('|');
            else if (sc.peek() != ']')
                fatal("masm line %d: expected '|' or ']'", lineno);
        }

        // Optional sequencing part.
        if (!sc.atEnd()) {
            std::string kw = sc.ident();
            if (kw == "jump") {
                pw.mi.seq = SeqKind::Jump;
                pw.targetLabel = sc.ident();
            } else if (kw == "if") {
                pw.mi.seq = SeqKind::CondJump;
                pw.mi.cond = parseCond(sc.ident(), lineno);
                std::string j = sc.ident();
                if (j != "jump")
                    fatal("masm line %d: expected 'jump'", lineno);
                pw.targetLabel = sc.ident();
            } else if (kw == "call") {
                pw.mi.seq = SeqKind::Call;
                pw.targetLabel = sc.ident();
            } else if (kw == "return") {
                pw.mi.seq = SeqKind::Return;
            } else if (kw == "halt") {
                pw.mi.seq = SeqKind::Halt;
            } else if (kw == "mbranch") {
                pw.mi.seq = SeqKind::Multiway;
                pw.mi.mwReg = parseReg(sc);
                sc.expect(',');
                sc.expect('#');
                pw.mi.mwMask = sc.number();
                sc.expect(',');
                pw.targetLabel = sc.ident();
            } else {
                fatal("masm line %d: unknown sequencing '%s'", lineno,
                      kw.c_str());
            }
            if (!sc.atEnd())
                fatal("masm line %d: trailing text", lineno);
        }

        // Validate the word against the machine model.
        std::string why;
        if (!mach_->wordLegal(pw.mi.ops, /*phase_aware=*/true, &why))
            fatal("masm line %d: illegal word: %s", lineno,
                  why.c_str());
        if (pw.mi.seq == SeqKind::Multiway && !mach_->hasMultiway())
            fatal("masm line %d: machine %s has no multiway branch",
                  lineno, mach_->name().c_str());

        words.push_back(std::move(pw));
    }

    // Pass 2: resolve labels, build the store.
    ControlStore store(*mach_);
    for (auto &pw : words) {
        if (!pw.targetLabel.empty()) {
            auto it = labels.find(pw.targetLabel);
            if (it == labels.end())
                fatal("masm line %d: undefined label '%s'", pw.line,
                      pw.targetLabel.c_str());
            pw.mi.target = it->second;
        }
        uint32_t addr = store.append(std::move(pw.mi));
        // Line table for the profiler's hot-line report and trace
        // dumps: each word remembers where it came from.
        store.annotate(addr, pw.line, std::move(pw.text));
    }
    for (auto &e : entries) {
        if (e.second >= store.size())
            fatal("masm: entry '%s' points past the end",
                  e.first.c_str());
        store.defineEntry(e.first, e.second);
    }
    return store;
}

} // namespace uhll
