/**
 * @file
 * MicroAssembler: textual microassembly for any MachineDescription.
 *
 * This is the survey's status quo ante ("at best, support provided by
 * the manufacturer consists of a good manual, an assembler and a
 * loader"): the tool every hand-written baseline in the benchmarks is
 * written in.
 *
 * Syntax (one control word per line):
 *
 *     ; comment
 *     .entry main          ; name the address of the next word
 *     .restart             ; next word is a microtrap restart point
 *     label:
 *         [ mova mar, r5 | memrd mbr, mar ]
 *         [ addi r1, r1, #1 ] if z jump done
 *         [ ldi r3, #0x10 ] jump label
 *         [ memrd.ov mbr, mar ]        ; overlapped (no stall)
 *         [ ] call sub
 *         [ ] mbranch r4, #0x0f, table
 *         [ ] halt
 *
 * Operands are written dst, srcA, srcB in the arity of the
 * microoperation's kind; immediates are #n with decimal, 0x, 0b or
 * 0o bases. The assembler verifies every word against the machine's
 * conflict model (phase-aware) and operand class constraints.
 */

#ifndef UHLL_MASM_MASM_HH
#define UHLL_MASM_MASM_HH

#include <optional>
#include <string>
#include <vector>

#include "machine/control_store.hh"
#include "machine/machine_desc.hh"

namespace uhll {

/** One collected assembly diagnostic. */
struct MasmDiagnostic {
    int line = 0;       //!< 1-based source line (0 = whole program)
    int col = 0;        //!< 1-based column (0 = whole line)
    std::string message;
};

/** Assembles microassembly text into a ControlStore. */
class MicroAssembler
{
  public:
    explicit MicroAssembler(const MachineDescription &mach)
        : mach_(&mach)
    {}

    /**
     * Assemble @p source. FatalError on any syntax error, unknown
     * mnemonic/register/label, operand-class violation or intra-word
     * resource conflict; the message lists *every* diagnostic, not
     * just the first one.
     */
    ControlStore assemble(const std::string &source) const;

    /**
     * Assemble @p source, collecting diagnostics instead of
     * throwing: a malformed line is recorded in @p diags (with line
     * and column) and skipped, and parsing continues so one pass
     * reports every error in the program. Returns the store on
     * success, std::nullopt when @p diags is non-empty.
     */
    std::optional<ControlStore>
    assemble(const std::string &source,
             std::vector<MasmDiagnostic> &diags) const;

  private:
    const MachineDescription *mach_;
};

} // namespace uhll

#endif // UHLL_MASM_MASM_HH
