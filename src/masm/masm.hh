/**
 * @file
 * MicroAssembler: textual microassembly for any MachineDescription.
 *
 * This is the survey's status quo ante ("at best, support provided by
 * the manufacturer consists of a good manual, an assembler and a
 * loader"): the tool every hand-written baseline in the benchmarks is
 * written in.
 *
 * Syntax (one control word per line):
 *
 *     ; comment
 *     .entry main          ; name the address of the next word
 *     .restart             ; next word is a microtrap restart point
 *     label:
 *         [ mova mar, r5 | memrd mbr, mar ]
 *         [ addi r1, r1, #1 ] if z jump done
 *         [ ldi r3, #0x10 ] jump label
 *         [ memrd.ov mbr, mar ]        ; overlapped (no stall)
 *         [ ] call sub
 *         [ ] mbranch r4, #0x0f, table
 *         [ ] halt
 *
 * Operands are written dst, srcA, srcB in the arity of the
 * microoperation's kind; immediates are #n with decimal, 0x, 0b or
 * 0o bases. The assembler verifies every word against the machine's
 * conflict model (phase-aware) and operand class constraints.
 */

#ifndef UHLL_MASM_MASM_HH
#define UHLL_MASM_MASM_HH

#include <string>

#include "machine/control_store.hh"
#include "machine/machine_desc.hh"

namespace uhll {

/** Assembles microassembly text into a ControlStore. */
class MicroAssembler
{
  public:
    explicit MicroAssembler(const MachineDescription &mach)
        : mach_(&mach)
    {}

    /**
     * Assemble @p source. fatal() (FatalError) on any syntax error,
     * unknown mnemonic/register/label, operand-class violation or
     * intra-word resource conflict.
     */
    ControlStore assemble(const std::string &source) const;

  private:
    const MachineDescription *mach_;
};

} // namespace uhll

#endif // UHLL_MASM_MASM_HH
