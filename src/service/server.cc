#include "service/server.hh"

#include <cerrno>
#include <cstring>
#include <functional>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "driver/batch.hh"
#include "driver/options.hh"
#include "obs/json.hh"
#include "obs/schema.hh"
#include "obs/telemetry.hh"
#include "service/protocol.hh"
#include "support/logging.hh"

namespace uhll {

std::string
sanitizeBatchId(const std::string &id)
{
    std::string out;
    for (char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        out.push_back(ok ? c : '_');
    }
    // An id of dots could escape the journal directory as a path.
    bool meaningful = false;
    for (char c : out)
        meaningful |= c != '.';
    return meaningful ? out : "";
}

namespace {

/** Stat-name-safe tenant label (dots would split the group). */
std::string
statLabel(const std::string &tenant)
{
    std::string out;
    for (char c : tenant) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '-';
        out.push_back(ok ? c : '_');
    }
    return out.empty() ? "anon" : out;
}

/** True when the peer of @p fd has hung up (or the fd went bad).
 *  A zero-timeout poll + MSG_PEEK never consumes request bytes, so
 *  a client that pipelined its next request still reads as alive. */
bool
peerGone(int fd)
{
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 0);
    if (pr < 0)
        return false;  // transient; keep waiting
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL))
        return true;
    if (pfd.revents & POLLIN) {
        char c;
        const ssize_t r =
            ::recv(fd, &c, 1, MSG_PEEK | MSG_DONTWAIT);
        return r == 0;  // orderly shutdown, nothing buffered
    }
    return false;
}

/** Releases one admission slot on every exit path. */
class AdmissionTicket
{
  public:
    AdmissionTicket(ServiceDaemon *, std::function<void()> release)
        : release_(std::move(release))
    {}
    ~AdmissionTicket()
    {
        if (release_)
            release_();
    }
    AdmissionTicket(const AdmissionTicket &) = delete;
    AdmissionTicket &operator=(const AdmissionTicket &) = delete;

  private:
    std::function<void()> release_;
};

} // namespace

// ----------------------------------------------------------------
// Construction / lifecycle
// ----------------------------------------------------------------

ServiceDaemon::ServiceDaemon(ServiceConfig cfg) : cfg_(std::move(cfg))
{
    tc_.setCacheCapBytes(cfg_.cacheCapBytes);
    tc_.bindCacheStats(reg_);

    reg_.formula("service.requests",
                 [this] { return double(requests_.load()); },
                 "envelopes handled");
    reg_.formula("service.batches",
                 [this] { return double(batches_.load()); },
                 "batch/job requests run");
    reg_.formula("service.jobs",
                 [this] { return double(jobsRun_.load()); },
                 "jobs run on behalf of clients");
    reg_.formula("service.rejected",
                 [this] { return double(rejected_.load()); },
                 "requests refused by admission control");
    reg_.formula("service.protocolErrors",
                 [this] { return double(protocolErrors_.load()); },
                 "malformed frames/envelopes survived");
    reg_.formula("service.connections",
                 [this] { return double(connections_.load()); },
                 "connections accepted");
    reg_.formula("service.queueDepth",
                 [this] { return double(waiting_.load()); },
                 "admitted requests waiting for a run slot");
    reg_.formula("service.active",
                 [this] { return double(running_.load()); },
                 "requests running right now");
    reg_.formula("service.uptimeSeconds",
                 [this] {
                     return std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                started_)
                         .count();
                 },
                 "seconds since start()");
    reg_.formula("service.requestsPerSec",
                 [this] {
                     const double up =
                         std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             started_)
                             .count();
                     return up > 0 ? double(requests_.load()) / up
                                   : 0.0;
                 },
                 "request throughput since start()");
    reg_.markVolatile("service.uptimeSeconds");
    reg_.markVolatile("service.requestsPerSec");
    started_ = std::chrono::steady_clock::now();

    if (cfg_.isolation == IsolationMode::Process) {
        if (WorkerPool::available(cfg_.pool)) {
            pool_ = std::make_unique<WorkerPool>(cfg_.pool);
            pool_->bindStats(reg_);
        } else {
            warn("uhlld: no worker executable found; --workers "
                 "degraded to in-thread execution");
        }
    }
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

bool
ServiceDaemon::start(std::string *err)
{
    if (cfg_.socketPath.empty()) {
        *err = "no socket path configured";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof addr.sun_path) {
        *err = strfmt("socket path '%s' exceeds %zu bytes",
                      cfg_.socketPath.c_str(),
                      sizeof addr.sun_path - 1);
        return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size() + 1);

    if (!cfg_.journalDir.empty()) {
        if (::mkdir(cfg_.journalDir.c_str(), 0777) != 0 &&
            errno != EEXIST) {
            *err = strfmt("mkdir '%s': %s", cfg_.journalDir.c_str(),
                          std::strerror(errno));
            return false;
        }
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        *err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    ::unlink(cfg_.socketPath.c_str());  // stale path from a crash
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        *err = strfmt("bind '%s': %s", cfg_.socketPath.c_str(),
                      std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        *err = strfmt("listen: %s", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    started_ = std::chrono::steady_clock::now();
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
ServiceDaemon::wait()
{
    std::unique_lock<std::mutex> lk(stopMu_);
    stopCv_.wait(lk, [this] { return stopping_.load(); });
}

void
ServiceDaemon::stop()
{
    stopping_.store(true);
    {
        std::lock_guard<std::mutex> lk(stopMu_);
        stopCv_.notify_all();
    }
    admissionCv_.notify_all();
    // stopping_ alone cannot gate the cleanup: a `shutdown` request
    // sets it long before anyone calls stop(). stopDone_ makes the
    // teardown itself run exactly once.
    if (stopDone_.exchange(true))
        return;
    // Retire the fd atomically first: the accept thread reads it
    // concurrently and must see -1 or the live value, never a torn
    // close.
    const int lfd = listenFd_.exchange(-1);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<int> fds;
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        fds = connFds_;
        threads.swap(connThreads_);
    }
    for (int fd : fds)
        ::shutdown(fd, SHUT_RDWR);  // unblock their recv()s
    for (std::thread &t : threads) {
        if (t.joinable())
            t.join();
    }
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (int fd : connFds_)
            ::close(fd);
        connFds_.clear();
    }
    // Workers go down last: every connection thread has joined, so
    // no job is in flight and each child exits 0 on a clean EOF.
    if (pool_)
        pool_->shutdown();
    if (!cfg_.socketPath.empty())
        ::unlink(cfg_.socketPath.c_str());
}

void
ServiceDaemon::acceptLoop()
{
    for (;;) {
        const int lfd = listenFd_.load();
        if (lfd < 0)
            return;  // stop() already retired the socket
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listen fd closed: shutting down
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        ++connections_;
        std::lock_guard<std::mutex> lk(connMu_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

// ----------------------------------------------------------------
// Admission control
// ----------------------------------------------------------------

ServiceDaemon::Tenant &
ServiceDaemon::tenantSlot(const std::string &tenant)
{
    // Caller holds admissionMu_. Slots are never erased, so the
    // formulas registered here can capture the Tenant for good.
    auto it = tenants_.find(tenant);
    if (it != tenants_.end())
        return *it->second;
    auto slot = std::make_unique<Tenant>();
    Tenant *t = slot.get();
    tenants_.emplace(tenant, std::move(slot));
    const std::string label = statLabel(tenant);
    std::lock_guard<std::mutex> lk(regMu_);
    reg_.formula("service.tenant." + label + ".requests",
                 [t] { return double(t->requests.load()); },
                 "requests admitted for this tenant");
    reg_.formula("service.tenant." + label + ".rejected",
                 [t] { return double(t->rejected.load()); },
                 "requests refused for this tenant");
    return *t;
}

bool
ServiceDaemon::admit(int fd, const std::string &tenant,
                     std::string *err, std::string *code)
{
    std::unique_lock<std::mutex> lk(admissionMu_);
    Tenant &t = tenantSlot(tenant);
    for (;;) {
        if (stopping_.load()) {
            *err = "daemon is shutting down";
            *code = "shutting-down";
            break;
        }
        if (cfg_.tenantQuota == 0) {
            // A zero quota can never be satisfied: refuse now
            // rather than park the request forever.
            *err = strfmt("tenant '%s' has a zero request quota",
                          tenant.c_str());
            *code = "quota";
            break;
        }
        if (t.running < cfg_.tenantQuota &&
            running_ < cfg_.maxActive) {
            ++running_;
            ++t.running;
            ++t.requests;
            return true;
        }
        // Over quota or over maxActive: wait in the bounded queue
        // for a slot to free up.
        if (waiting_ >= cfg_.maxQueue) {
            *err = strfmt("admission queue full (%u running, %u "
                          "waiting)",
                          running_.load(), waiting_.load());
            *code = "busy";
            break;
        }
        ++waiting_;
        // Timed waits so a queued client that hangs up frees its
        // slot in ~50ms instead of occupying the queue until a run
        // slot happens to open (which, behind a long batch, could
        // be minutes of a dead client displacing live ones).
        bool gone = false;
        while (!admissionCv_.wait_for(
            lk, std::chrono::milliseconds(50), [this, &t] {
                return (t.running < cfg_.tenantQuota &&
                        running_ < cfg_.maxActive) ||
                       stopping_.load();
            })) {
            if (peerGone(fd)) {
                gone = true;
                break;
            }
        }
        --waiting_;
        if (gone) {
            *err = "client disconnected while queued";
            *code = "disconnected";
            break;
        }
    }
    ++t.rejected;
    ++rejected_;
    return false;
}

void
ServiceDaemon::release(const std::string &tenant)
{
    std::lock_guard<std::mutex> lk(admissionMu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second->running)
        --it->second->running;
    if (running_)
        --running_;
    admissionCv_.notify_all();
}

// ----------------------------------------------------------------
// Request handling
// ----------------------------------------------------------------

void
ServiceDaemon::serveConnection(int fd)
{
    SpanTracer::instance().setLaneName(
        strfmt("uhlld-conn-%d", fd));
    for (;;) {
        std::string payload, err;
        const FrameRead r = readFrame(fd, &payload, &err);
        if (r == FrameRead::Ok) {
            handleRequest(fd, payload);
            continue;
        }
        if (r == FrameRead::Eof)
            break;
        // Anything else: the framing is broken, so answer once
        // (best effort) and drop the connection -- there is no way
        // to resync mid-stream.
        ++protocolErrors_;
        if (r == FrameRead::Malformed || r == FrameRead::TooBig) {
            std::string werr;
            writeFrame(fd,
                       responseEnvelope("", "", false, err,
                                        r == FrameRead::TooBig
                                            ? "too-big"
                                            : "bad-request",
                                        "", false),
                       &werr);
        }
        break;
    }
    ::shutdown(fd, SHUT_RDWR);
}

void
ServiceDaemon::sendError(int fd, const std::string &op,
                         const std::string &id,
                         const std::string &error,
                         const std::string &code)
{
    std::string werr;
    if (!writeFrame(fd,
                    responseEnvelope(op, id, false, error, code, "",
                                     false),
                    &werr))
        warn("uhlld: client vanished mid-error: %s", werr.c_str());
}

void
ServiceDaemon::handleRequest(int fd, const std::string &payload)
{
    ++requests_;
    std::string op, id, tenant;
    const JsonValue *body = nullptr;
    JsonValue root;
    try {
        root = JsonValue::parse(payload);
    } catch (const FatalError &e) {
        ++protocolErrors_;
        sendError(fd, "", "", strfmt("bad envelope: %s", e.what()),
                  "bad-request");
        return;
    }
    if (!root.isObject()) {
        ++protocolErrors_;
        sendError(fd, "", "", "envelope is not a JSON object",
                  "bad-request");
        return;
    }
    if (const JsonValue *v = root.get("op"))
        op = v->asString();
    if (const JsonValue *v = root.get("id"))
        id = v->asString();
    if (const JsonValue *v = root.get("tenant"))
        tenant = v->asString();
    if (tenant.empty())
        tenant = "anon";
    body = root.get("body");

    const JsonValue *schema = root.get("schema");
    if (!schema) {
        ++protocolErrors_;
        sendError(fd, op, id, "envelope has no 'schema' field",
                  "bad-request");
        return;
    }
    const std::string serr = checkSchemaTag(schema->asString());
    if (!serr.empty()) {
        ++protocolErrors_;
        sendError(fd, op, id, serr, "unsupported-schema");
        return;
    }

    SpanScope span(SpanCat::Service,
                   strfmt("%s tenant=%s", op.c_str(),
                          tenant.c_str()));

    if (op == "ping") {
        JsonWriter w(false);
        w.beginObject();
        w.value("server", "uhlld");
        w.value("schema", kSchemaTag);
        w.endObject();
        std::string werr;
        writeFrame(fd,
                   responseEnvelope(op, id, true, "", "", w.str(),
                                    false),
                   &werr);
        return;
    }
    if (op == "metrics" || op == "stats") {
        std::string follow;
        {
            std::lock_guard<std::mutex> lk(regMu_);
            follow = op == "metrics" ? prometheusText()
                                     : reg_.toJson(true) + "\n";
        }
        std::string werr;
        if (writeFrame(fd,
                       responseEnvelope(op, id, true, "", "", "",
                                        true),
                       &werr))
            writeFrame(fd, follow, &werr);
        return;
    }
    if (op == "shutdown") {
        // Flag first, respond second: a client that has read the
        // response must already observe stopped().
        stopping_.store(true);
        {
            std::lock_guard<std::mutex> lk(stopMu_);
            stopCv_.notify_all();
        }
        admissionCv_.notify_all();
        std::string werr;
        writeFrame(fd,
                   responseEnvelope(op, id, true, "", "", "", false),
                   &werr);
        return;
    }
    if (op == "job" || op == "batch") {
        handleBatch(fd, op, id, tenant, body);
        return;
    }
    sendError(fd, op, id, strfmt("unknown op '%s'", op.c_str()),
              "bad-request");
}

void
ServiceDaemon::handleBatch(int fd, const std::string &op,
                           const std::string &id,
                           const std::string &tenant,
                           const JsonValue *body)
{
    if (!body || !body->isObject()) {
        sendError(fd, op, id, "request has no body object",
                  "bad-request");
        return;
    }
    const JsonValue *manifest = body->get("manifest");
    if (!manifest || !manifest->isObject()) {
        sendError(fd, op, id, "body has no 'manifest' object",
                  "bad-request");
        return;
    }
    if (manifest->has("fuzz")) {
        sendError(fd, op, id,
                  "fuzz campaigns are not served; run them with "
                  "uhllc --batch locally",
                  "bad-request");
        return;
    }
    const std::string dir =
        body->get("manifest_dir")
            ? body->get("manifest_dir")->asString()
            : "";
    const bool timings = body->get("timings")
                             ? body->get("timings")->asBool(true)
                             : true;

    // Everything the request configures parses before admission, so
    // a malformed request never occupies a run slot.
    std::vector<Job> jobs;
    SupervisePolicy policy;
    PipelineOverrides po;
    try {
        jobs = parseManifest(*manifest, dir);
        // Merge order mirrors local uhllc: the daemon's own policy
        // is the base, the manifest's "supervise" object overrides
        // what it names, and the request's "supervise" object (the
        // client's command line) wins last.
        SuperviseOverrides mo;
        mo.cli = parseSupervisePolicy(manifest->get("supervise"));
        policy = mo.mergedWith(cfg_.policy);
        if (const JsonValue *s = body->get("supervise"))
            policy =
                SuperviseOverrides::fromJson(*s).mergedWith(policy);
        if (const JsonValue *p = body->get("pipeline"))
            po = PipelineOverrides::fromJson(*p);
    } catch (const FatalError &e) {
        sendError(fd, op, id, e.what(), "bad-request");
        return;
    }
    const std::string verr = po.validate();
    if (!verr.empty()) {
        sendError(fd, op, id, verr, "bad-request");
        return;
    }
    po.applyToJobs(&jobs);
    if (op == "job" && jobs.size() != 1) {
        sendError(fd, op, id,
                  strfmt("op 'job' takes a single-job manifest, got "
                         "%zu jobs",
                         jobs.size()),
                  "bad-request");
        return;
    }
    if (jobs.empty()) {
        sendError(fd, op, id, "manifest has no jobs", "bad-request");
        return;
    }

    std::string journal;
    if (const JsonValue *b = body->get("batch_id")) {
        const std::string sane = sanitizeBatchId(b->asString());
        if (sane.empty()) {
            sendError(fd, op, id, "unusable batch_id",
                      "bad-request");
            return;
        }
        if (!cfg_.journalDir.empty())
            journal = cfg_.journalDir + "/" + sane + ".journal";
    }

    std::string aerr, acode;
    if (!admit(fd, tenant, &aerr, &acode)) {
        // A disconnected client cannot read an error; anyone else
        // gets the structured refusal.
        if (acode != "disconnected")
            sendError(fd, op, id, aerr, acode);
        return;
    }
    AdmissionTicket ticket(this, [this, tenant] { release(tenant); });

    unsigned threads = cfg_.workers;
    if (const JsonValue *t = body->get("threads"))
        threads = static_cast<unsigned>(t->asU64(threads));

    BatchRunner runner(tc_, threads);
    runner.setPolicy(policy);
    if (pool_)
        runner.setWorkerPool(pool_.get());
    if (!journal.empty()) {
        runner.setJournal(journal);
        // Resume is always on: a fresh batch_id reads an empty
        // journal (a fresh run), a resubmitted one splices every
        // ok result byte-identically -- which is how a client
        // survives a daemon SIGKILL mid-batch.
        runner.setResume(true);
    }
    ++batches_;
    jobsRun_ += jobs.size();
    BatchReport report = runner.run(jobs);

    int exit = 0;
    if (!report.allOk()) {
        exit = 1;
        for (const JobResult &r : report.results) {
            if (r.ran && !r.sim.ok()) {
                exit = 3;
                break;
            }
        }
    }

    JsonWriter w(false);
    w.beginObject();
    w.value("jobs", static_cast<uint64_t>(report.results.size()));
    w.value("ok", static_cast<uint64_t>(report.okCount()));
    w.value("failed", static_cast<uint64_t>(report.results.size() -
                                            report.okCount()));
    w.value("exit", static_cast<uint64_t>(exit));
    w.endObject();

    const std::string follow =
        op == "job" ? report.results[0].toJson(true, timings) + "\n"
                    : report.toJson(true, timings) + "\n";
    std::string werr;
    if (!writeFrame(fd,
                    responseEnvelope(op, id, true, "", "", w.str(),
                                     true),
                    &werr) ||
        !writeFrame(fd, follow, &werr)) {
        // The client hung up mid-batch. The work is done and (when
        // journaled) safely on disk for a resubmit; just log it.
        warn("uhlld: client vanished before its report: %s",
             werr.c_str());
    }
}

std::string
ServiceDaemon::prometheusText()
{
    // Caller holds regMu_. One synthetic sample labelled "uhlld":
    // the shared exporter does the flattening.
    MetricsSample s;
    s.seq = metricsSeq_++;
    s.label = "uhlld";
    s.statsFull = reg_.toJson(false, true);
    s.statsClean = reg_.toJson(false, false);
    return metricsToPrometheus({s}, true);
}

} // namespace uhll
