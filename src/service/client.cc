#include "service/client.hh"

#include <cerrno>
#include <cmath>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.hh"
#include "support/logging.hh"

namespace uhll {

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::connectTo(const std::string &path, std::string *err)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        *err = strfmt("socket path '%s' exceeds %zu bytes",
                      path.c_str(), sizeof addr.sun_path - 1);
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        *err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }

    if (ioTimeout_ <= 0) {
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            *err = strfmt("connect '%s': %s", path.c_str(),
                          std::strerror(errno));
            close();
            return false;
        }
        return true;
    }

    // Timed connect: non-blocking connect + poll, then restore
    // blocking mode and let SO_RCVTIMEO/SO_SNDTIMEO bound frames.
    const int flags = fcntl(fd_, F_GETFL, 0);
    fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    if (rc != 0 && errno == EINPROGRESS) {
        pollfd pfd{fd_, POLLOUT, 0};
        const int pr =
            ::poll(&pfd, 1, int(ioTimeout_ * 1000));
        if (pr == 0) {
            *err = strfmt("connect '%s': timed out after %.1fs",
                          path.c_str(), ioTimeout_);
            close();
            return false;
        }
        int soerr = 0;
        socklen_t len = sizeof soerr;
        if (pr < 0 ||
            getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) !=
                0 ||
            soerr != 0) {
            *err = strfmt("connect '%s': %s", path.c_str(),
                          std::strerror(soerr ? soerr : errno));
            close();
            return false;
        }
        rc = 0;
    }
    if (rc != 0) {
        *err = strfmt("connect '%s': %s", path.c_str(),
                      std::strerror(errno));
        close();
        return false;
    }
    fcntl(fd_, F_SETFL, flags);

    timeval tv{};
    tv.tv_sec = time_t(ioTimeout_);
    tv.tv_usec = suseconds_t((ioTimeout_ - std::floor(ioTimeout_)) *
                             1e6);
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    return true;
}

bool
ServiceClient::roundtrip(const std::string &payload,
                         ServiceResponse *resp, std::string *err)
{
    *resp = ServiceResponse{};
    if (fd_ < 0) {
        *err = "not connected";
        return false;
    }
    if (!writeFrame(fd_, payload, err))
        return false;
    std::string respPayload;
    const FrameRead r = readFrame(fd_, &respPayload, err);
    if (r != FrameRead::Ok) {
        if (err->empty())
            *err = "daemon closed the connection";
        return false;
    }
    try {
        resp->envelope = JsonValue::parse(respPayload);
    } catch (const FatalError &e) {
        *err = strfmt("bad response envelope: %s", e.what());
        return false;
    }
    if (const JsonValue *v = resp->envelope.get("ok"))
        resp->ok = v->asBool();
    if (const JsonValue *v = resp->envelope.get("error"))
        resp->error = v->asString();
    if (const JsonValue *v = resp->envelope.get("code"))
        resp->code = v->asString();
    const JsonValue *follow = resp->envelope.get("follow");
    if (follow && follow->asBool()) {
        const FrameRead fr = readFrame(fd_, &resp->follow, err);
        if (fr != FrameRead::Ok) {
            if (err->empty())
                *err = "daemon closed before the follow frame";
            return false;
        }
    }
    return true;
}

bool
ServiceClient::request(const std::string &op,
                       const std::string &tenant,
                       const std::string &id,
                       const std::string &body_raw,
                       ServiceResponse *resp, std::string *err)
{
    return roundtrip(requestEnvelope(op, tenant, id, body_raw), resp,
                     err);
}

} // namespace uhll
