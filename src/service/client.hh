/**
 * @file
 * ServiceClient: the uhlld client side (uhllc --connect, tests,
 * bench).
 *
 * One client holds one connection and runs one framed roundtrip at
 * a time: send a request envelope, read the response envelope, read
 * the follow frame when the response announces one. The follow
 * frame's bytes are handed back verbatim -- callers write them
 * straight to disk, preserving the daemon's byte-identical report
 * guarantee.
 */

#ifndef UHLL_SERVICE_CLIENT_HH
#define UHLL_SERVICE_CLIENT_HH

#include <string>

#include "obs/json.hh"

namespace uhll {

/** One parsed response (the envelope fields clients branch on). */
struct ServiceResponse {
    bool ok = false;          //!< envelope "ok"
    std::string error;        //!< "" when ok
    std::string code;         //!< machine-readable failure class
    std::string follow;       //!< follow frame bytes ("" when none)
    JsonValue envelope;       //!< the full parsed envelope
    const JsonValue *body() const { return envelope.get("body"); }
};

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Bound every subsequent connect/send/recv by @p seconds
     * (uhllc --io-timeout). A wedged daemon then fails the
     * roundtrip with a "timed out" diagnostic instead of blocking
     * forever. 0 (the default) keeps fully blocking I/O. Set
     * before connectTo().
     */
    void setIoTimeout(double seconds) { ioTimeout_ = seconds; }

    /** Connect to the AF_UNIX socket at @p path. */
    bool connectTo(const std::string &path, std::string *err);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * One request/response roundtrip. False only on transport
     * problems (connect lost, malformed response envelope) -- a
     * structured daemon error still returns true with resp->ok
     * false.
     */
    bool roundtrip(const std::string &payload, ServiceResponse *resp,
                   std::string *err);

    /** requestEnvelope() + roundtrip(). */
    bool request(const std::string &op, const std::string &tenant,
                 const std::string &id, const std::string &body_raw,
                 ServiceResponse *resp, std::string *err);

  private:
    int fd_ = -1;
    double ioTimeout_ = 0;  //!< seconds; 0 = blocking
};

} // namespace uhll

#endif // UHLL_SERVICE_CLIENT_HH
