/**
 * @file
 * uhlld: the multi-tenant compile-and-simulate daemon.
 *
 * One ServiceDaemon owns one Toolchain, so every client session
 * shares the same immutable MachineDescriptions and the same
 * artefact cache -- a manifest two tenants both submit compiles
 * once, and its pre-decoded DecodedStore and JIT region cache are
 * reused read-only across their simulations. The cache is the
 * Toolchain's byte-capped LRU (Toolchain::setCacheCapBytes), so a
 * long-lived daemon stays under a fixed artefact budget.
 *
 * Request handling. The accept thread hands each connection to its
 * own handler thread; a connection carries a sequence of framed
 * uhll/v1 envelopes (service/protocol.hh) handled one at a time.
 * Batch and job requests pass admission control first:
 *
 *  - per-tenant quota: at most `tenantQuota` concurrently running
 *    requests per tenant; excess requests wait for a slot. A quota
 *    of zero can never be satisfied and refuses immediately
 *    ("quota" error).
 *  - bounded queue: at most `maxActive` requests run at once;
 *    excess admitted requests wait, but no more than `maxQueue` may
 *    wait ("busy" error beyond that). A queued client that hangs up
 *    is noticed (the wait polls its connection) and dequeued, so a
 *    dead client never displaces a live one.
 *
 * Admitted batches run on the existing supervised BatchRunner --
 * worker pool, deadlines, retries, DMR, journal/resume all
 * unchanged. With `--workers N` (isolation = Process) the daemon
 * also owns a WorkerPool of sandboxed child processes and every
 * serializable job executes out-of-process: a job that segfaults,
 * blows its rlimit, or hangs kills a disposable child -- the daemon
 * and its other tenants never notice beyond a retried job. When the daemon has a journal directory, a request's
 * `batch_id` names its journal file; resubmitting the same id after
 * a daemon crash resumes from the journal and returns the same
 * byte-identical report a local `--resume` run would.
 *
 * Every request runs under a SpanCat::Service span, and the daemon
 * keeps a StatsRegistry (service.* counters, toolchain.cache*) that
 * the `metrics` op exports as a Prometheus text exposition and the
 * `stats` op as JSON.
 */

#ifndef UHLL_SERVICE_SERVER_HH
#define UHLL_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/supervisor.hh"
#include "driver/toolchain.hh"
#include "obs/stats.hh"
#include "proc/pool.hh"

namespace uhll {

/** Everything `uhlld` configures (see tools/uhlld.cc for flags). */
struct ServiceConfig {
    std::string socketPath;       //!< AF_UNIX listening path
    unsigned workers = 0;         //!< BatchRunner pool (0 = all hw)
    uint64_t cacheCapBytes = 256ull << 20;  //!< artefact cache cap
    unsigned maxActive = 4;       //!< concurrent running requests
    unsigned maxQueue = 16;       //!< admitted requests may wait
    unsigned tenantQuota = 2;     //!< running requests per tenant
    std::string journalDir;       //!< "" = no journals (no resume)
    SupervisePolicy policy;       //!< daemon-wide supervision base
    /** Process isolation: when Process, tenant jobs run in a shared
     *  WorkerPool of sandboxed child processes (uhlld --workers),
     *  so a crashing job kills a disposable child, never the
     *  daemon. Thread keeps the historical in-process path. */
    IsolationMode isolation = IsolationMode::Thread;
    WorkerPoolConfig pool;        //!< pool shape when Process
};

/**
 * The daemon. start() binds and listens; stop() (or a `shutdown`
 * request) closes every connection and joins every thread. One
 * instance per socket path.
 */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(ServiceConfig cfg);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind + listen + start the accept thread. False with *err on
     *  a bind/listen failure (stale socket files are unlinked). */
    bool start(std::string *err);

    /** Block until stop() or a `shutdown` request. */
    void wait();

    /** Shut down: stop accepting, unblock every connection, join. */
    void stop();

    /** True once a `shutdown` request or stop() was seen. */
    bool stopped() const { return stopping_.load(); }

    const ServiceConfig &config() const { return cfg_; }

    /** The daemon registry (service.* + toolchain.cache*). */
    const StatsRegistry &stats() const { return reg_; }

  private:
    struct Tenant {
        std::atomic<uint64_t> requests{0};  //!< admitted, lifetime
        std::atomic<uint64_t> rejected{0};
        unsigned running = 0;  //!< guarded by admissionMu_
    };

    void acceptLoop();
    void serveConnection(int fd);
    /** One request payload -> one response (+ optional follow). */
    void handleRequest(int fd, const std::string &payload);
    void handleBatch(int fd, const std::string &op,
                     const std::string &id,
                     const std::string &tenant,
                     const struct JsonValue *body);
    void sendError(int fd, const std::string &op,
                   const std::string &id, const std::string &error,
                   const std::string &code);

    /** Admission: false with a diagnostic + code when rejected.
     *  @p fd is the request's connection: a queued request polls it
     *  while waiting so a client that hangs up is dequeued (code
     *  "disconnected") instead of holding a queue slot and then
     *  running a batch nobody will read. */
    bool admit(int fd, const std::string &tenant, std::string *err,
               std::string *code);
    void release(const std::string &tenant);
    Tenant &tenantSlot(const std::string &tenant);

    std::string prometheusText();

    ServiceConfig cfg_;
    Toolchain tc_;
    StatsRegistry reg_;
    /** Non-null iff cfg_.isolation == Process and a worker
     *  executable was found; shared by every batch (the pool is the
     *  daemon-wide crash-containment boundary). */
    std::unique_ptr<WorkerPool> pool_;
    mutable std::mutex regMu_;  //!< guards reg_ structure + dumps

    // Admission state. running_/waiting_ only change under
    // admissionMu_ (the condvar predicate needs that), but they are
    // atomics so registry formulas can read them lock-free -- a
    // dump holds regMu_, and tenantSlot() takes regMu_ while
    // holding admissionMu_, so a formula must never lock
    // admissionMu_ (lock order is admissionMu_ -> regMu_ only).
    std::mutex admissionMu_;
    std::condition_variable admissionCv_;
    std::atomic<unsigned> running_{0};
    std::atomic<unsigned> waiting_{0};
    std::map<std::string, std::unique_ptr<Tenant>> tenants_;

    // Service counters (atomics: bumped from connection threads,
    // read lock-free by registry formulas during dumps).
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> jobsRun_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> protocolErrors_{0};
    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> metricsSeq_{0};
    std::chrono::steady_clock::time_point started_{};

    // Lifecycle. listenFd_ is atomic because stop() retires it
    // while the accept thread is still reading it.
    std::atomic<int> listenFd_{-1};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopDone_{false};
    std::thread acceptThread_;
    std::mutex connMu_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;
    std::mutex stopMu_;
    std::condition_variable stopCv_;
};

/** `sanitized` batch_id -> journal file stem: [A-Za-z0-9._-] pass,
 *  everything else becomes '_'; "" and dot-only ids are rejected
 *  upstream. Exposed for tests. */
std::string sanitizeBatchId(const std::string &id);

} // namespace uhll

#endif // UHLL_SERVICE_SERVER_HH
