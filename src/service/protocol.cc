#include "service/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>

#include "obs/json.hh"
#include "obs/schema.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

/** One diagnostic per failed socket call; a SO_RCVTIMEO/SO_SNDTIMEO
 *  expiry (EAGAIN on a timed socket) reads as "timed out", not the
 *  misleading "resource temporarily unavailable". */
std::string
sockErr(const char *what)
{
    if (errno == EAGAIN || errno == EWOULDBLOCK)
        return strfmt("%s: timed out", what);
    return strfmt("%s: %s", what, std::strerror(errno));
}

/** recv() exactly @p n bytes; 1 ok, 0 clean eof at a byte boundary
 *  start, -1 error. Partial reads after the first byte report as
 *  eof-with-progress via @p got. */
int
recvAll(int fd, char *buf, size_t n, size_t *got)
{
    *got = 0;
    while (*got < n) {
        const ssize_t r = ::recv(fd, buf + *got, n - *got, 0);
        if (r == 0)
            return 0;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        *got += static_cast<size_t>(r);
    }
    return 1;
}

} // namespace

FrameRead
readFrame(int fd, std::string *payload, std::string *err)
{
    err->clear();
    payload->clear();

    // Header: read byte-at-a-time up to '\n'. Headers are tens of
    // bytes; one recv() per byte costs nothing next to a compile.
    std::string header;
    for (;;) {
        char c;
        size_t got = 0;
        const int r = recvAll(fd, &c, 1, &got);
        if (r == 0) {
            if (header.empty())
                return FrameRead::Eof;
            *err = "stream ended mid-header";
            return FrameRead::Truncated;
        }
        if (r < 0) {
            *err = sockErr("recv");
            return FrameRead::Error;
        }
        if (c == '\n')
            break;
        header.push_back(c);
        // A header with no newline in sight is not this protocol.
        if (header.size() > 64) {
            *err = "frame header overlong (not an uhll-frame peer?)";
            return FrameRead::Malformed;
        }
    }

    const std::string magic = kFrameMagic;
    if (header.size() <= magic.size() + 1 ||
        header.compare(0, magic.size(), magic) != 0 ||
        header[magic.size()] != ' ') {
        *err = strfmt("bad frame header '%s'", header.c_str());
        return FrameRead::Malformed;
    }
    const std::string lenStr = header.substr(magic.size() + 1);
    uint64_t n = 0;
    for (char c : lenStr) {
        if (c < '0' || c > '9') {
            *err = strfmt("bad frame length '%s'", lenStr.c_str());
            return FrameRead::Malformed;
        }
        n = n * 10 + static_cast<uint64_t>(c - '0');
        if (n > kMaxFramePayload)
            break;
    }
    if (n > kMaxFramePayload) {
        *err = strfmt("frame payload %s exceeds the %llu-byte cap",
                      lenStr.c_str(),
                      (unsigned long long)kMaxFramePayload);
        return FrameRead::TooBig;
    }

    payload->resize(static_cast<size_t>(n));
    if (n) {
        size_t got = 0;
        const int r = recvAll(fd, payload->data(),
                              static_cast<size_t>(n), &got);
        if (r == 0) {
            *err = strfmt("stream ended %zu bytes into a %llu-byte "
                          "payload",
                          got, (unsigned long long)n);
            return FrameRead::Truncated;
        }
        if (r < 0) {
            *err = sockErr("recv");
            return FrameRead::Error;
        }
    }
    return FrameRead::Ok;
}

bool
writeFrame(int fd, const std::string &payload, std::string *err)
{
    err->clear();
    std::string msg = strfmt("%s %zu\n", kFrameMagic,
                             payload.size());
    msg += payload;
    size_t off = 0;
    while (off < msg.size()) {
        // MSG_NOSIGNAL: a vanished peer is a return value, not a
        // SIGPIPE -- the daemon must outlive its clients.
        const ssize_t w = ::send(fd, msg.data() + off,
                                 msg.size() - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            *err = sockErr("send");
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

std::string
requestEnvelope(const std::string &op, const std::string &tenant,
                const std::string &id, const std::string &body_raw)
{
    JsonWriter w(false);
    w.beginObject();
    writeSchemaField(w);
    w.value("op", op);
    if (!tenant.empty())
        w.value("tenant", tenant);
    if (!id.empty())
        w.value("id", id);
    if (!body_raw.empty())
        w.raw("body", body_raw);
    w.endObject();
    return w.str();
}

std::string
responseEnvelope(const std::string &op, const std::string &id,
                 bool ok, const std::string &error,
                 const std::string &code,
                 const std::string &body_raw, bool follow)
{
    JsonWriter w(false);
    w.beginObject();
    writeSchemaField(w);
    w.value("op", op);
    if (!id.empty())
        w.value("id", id);
    w.value("ok", ok);
    if (!error.empty())
        w.value("error", error);
    if (!code.empty())
        w.value("code", code);
    if (!body_raw.empty())
        w.raw("body", body_raw);
    if (follow)
        w.value("follow", true);
    w.endObject();
    return w.str();
}

} // namespace uhll
