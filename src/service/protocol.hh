/**
 * @file
 * The uhlld wire protocol: length-prefixed frames over a local
 * stream socket, carrying uhll/v1 JSON envelopes.
 *
 * Framing. Every message is one frame:
 *
 *     uhll-frame/1 <payload-bytes>\n
 *     <payload-bytes bytes of payload>
 *
 * The header is ASCII so a truncated or corrupted stream fails with
 * a diagnostic instead of a misread length; payloads are capped at
 * kMaxFramePayload so a hostile header cannot make the daemon
 * allocate without bound. Either side closing cleanly between
 * frames reads as Eof, never as an error.
 *
 * Envelopes. A request payload is one JSON object:
 *
 *     {"schema": "uhll/v1", "op": "batch", "tenant": "alice",
 *      "id": "req-1", "body": { ... }}
 *
 * `op` is one of ping | job | batch | metrics | stats | shutdown.
 * The response echoes `op` and `id`:
 *
 *     {"schema": "uhll/v1", "op": "batch", "id": "req-1",
 *      "ok": true, "error": "", "code": "", "follow": true,
 *      "body": { ... }}
 *
 * With `"follow": true` one more frame follows immediately, carrying
 * an opaque document (a BatchReport, a JobResult, a Prometheus
 * exposition). The follow frame is the *exact* bytes the local
 * renderer produced -- clients write it verbatim, which is how a
 * report fetched through the daemon stays byte-identical to a local
 * `uhllc --batch` run.
 *
 * Error codes: "bad-request" (malformed envelope or manifest),
 * "unsupported-schema" (unknown major), "quota" (per-tenant cap),
 * "busy" (admission queue full), "shutting-down".
 */

#ifndef UHLL_SERVICE_PROTOCOL_HH
#define UHLL_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace uhll {

/** The frame header magic (version 1 of the framing itself). */
inline constexpr const char *kFrameMagic = "uhll-frame/1";

/** Hard cap on one frame's payload (a manifest or a report). */
inline constexpr uint64_t kMaxFramePayload = 64ull << 20;

/** Outcome of readFrame(). */
enum class FrameRead {
    Ok,         //!< *payload holds one complete payload
    Eof,        //!< clean close before any header byte
    Truncated,  //!< stream ended mid-header or mid-payload
    Malformed,  //!< header is not "uhll-frame/1 <n>\n"
    TooBig,     //!< declared payload exceeds kMaxFramePayload
    Error,      //!< recv() failed (*err has strerror)
};

/**
 * Read one frame from @p fd (blocking). On anything but Ok, *err
 * carries a one-line diagnostic ("" for clean Eof).
 */
FrameRead readFrame(int fd, std::string *payload, std::string *err);

/**
 * Write one frame to @p fd. Short writes are retried; a peer that
 * vanished (EPIPE, reset) returns false with *err set -- never a
 * signal, so a client disconnecting mid-batch cannot kill the
 * daemon.
 */
bool writeFrame(int fd, const std::string &payload, std::string *err);

/** Render a request envelope; @p body_raw must be a JSON value. */
std::string requestEnvelope(const std::string &op,
                            const std::string &tenant,
                            const std::string &id,
                            const std::string &body_raw);

/**
 * Render a response envelope. @p body_raw "" emits no body; @p code
 * classifies failures for clients that branch without string
 * matching.
 */
std::string responseEnvelope(const std::string &op,
                             const std::string &id, bool ok,
                             const std::string &error,
                             const std::string &code,
                             const std::string &body_raw,
                             bool follow);

} // namespace uhll

#endif // UHLL_SERVICE_PROTOCOL_HH
