/**
 * @file
 * Bounded verification of S* assertion programs.
 *
 * The survey notes (sec. 2.2.3) that "an automatic verifier to check
 * the validity of the program proof provided by the user, would fit
 * very well in an S(M) implementation"; Strum [17] built exactly
 * that for the Burroughs D-machine. This verifier is the bounded
 * variant: it executes the compiled microprogram on the machine
 * simulator from many randomly drawn initial states (rejection
 * sampled against the program's entry assertions, which act as the
 * precondition) and checks every assertion each time control passes
 * its program point. It proves nothing beyond the tested bound --
 * and says so in its report -- but it catches real assertion
 * violations with machine-accurate semantics, because the checked
 * object is the actual control store.
 */

#ifndef UHLL_VERIFY_VERIFIER_HH
#define UHLL_VERIFY_VERIFIER_HH

#include <string>

#include "lang/sstar/sstar.hh"

namespace uhll {

/** Verification knobs. */
struct VerifyOptions {
    unsigned trials = 100;          //!< random initial states
    uint64_t seed = 1;
    uint64_t maxCyclesPerTrial = 100'000;
    //! cap on rejection-sampling attempts per accepted state
    unsigned maxRejects = 10'000;
};

/** Outcome of a verification run. */
struct VerifyResult {
    bool ok = true;
    unsigned trialsRun = 0;
    unsigned violations = 0;
    //! assertions that no trial ever reached (possible dead code or
    //! unsatisfiable precondition)
    unsigned unreached = 0;
    std::string report;
};

/**
 * Check the assertions of @p prog by bounded execution.
 * Assertions located at the program entry are treated as the
 * precondition and constrain the sampled initial states.
 */
VerifyResult verifySstar(const SstarProgram &prog,
                         const VerifyOptions &opts = {});

} // namespace uhll

#endif // UHLL_VERIFY_VERIFIER_HH
