#include "verify/verifier.hh"

#include <map>
#include <random>

#include "machine/memory.hh"
#include "machine/simulator.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

VerifyResult
verifySstar(const SstarProgram &prog, const VerifyOptions &opts)
{
    const MachineDescription &mach = prog.store.machine();
    VerifyResult res;
    std::mt19937_64 rng(opts.seed);

    uint32_t entry = prog.store.entry("main");
    std::vector<const SstarAssertion *> preconds;
    std::vector<const SstarAssertion *> checks;
    for (const SstarAssertion &a : prog.assertions) {
        if (a.addr == entry)
            preconds.push_back(&a);
        else
            checks.push_back(&a);
    }

    std::map<const SstarAssertion *, uint64_t> hits;
    for (const SstarAssertion *a : checks)
        hits[a] = 0;

    // Stratified sampling: equality-style preconditions (x = 0,
    // small ranges) are unhittable under a uniform draw, so mix in
    // zeros, ones and small values.
    auto randomValue = [&]() -> uint64_t {
        switch (rng() % 8) {
          case 0:
          case 1:
            return 0;
          case 2:
            return 1;
          case 3:
          case 4:
            return rng() & 0xFF;
          default:
            return rng() & bitMask(mach.dataWidth());
        }
    };
    auto randomState = [&](MicroSimulator &sim) {
        for (auto &[name, reg] : prog.vars) {
            (void)name;
            sim.setReg(reg, randomValue());
        }
    };
    auto envOf = [&](const MicroSimulator &sim) {
        return [&](const std::string &name) -> uint64_t {
            auto it = prog.vars.find(name);
            if (it == prog.vars.end())
                fatal("verifier: assertion names unknown variable "
                      "'%s'", name.c_str());
            return sim.getReg(it->second);
        };
    };

    std::string failures;
    for (unsigned t = 0; t < opts.trials; ++t) {
        MainMemory mem(0x10000, mach.dataWidth());
        SimConfig cfg;
        cfg.maxCycles = opts.maxCyclesPerTrial;
        MicroSimulator sim(prog.store, mem, cfg);

        // Rejection-sample a state satisfying the precondition.
        bool found = false;
        for (unsigned k = 0; k < opts.maxRejects; ++k) {
            randomState(sim);
            bool ok = true;
            for (const SstarAssertion *p : preconds) {
                if (!evalVExpr(p->expr, envOf(sim),
                               mach.dataWidth())) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                found = true;
                break;
            }
        }
        if (!found) {
            res.report += strfmt(
                "trial %u: no state satisfying the precondition "
                "found in %u draws\n", t, opts.maxRejects);
            continue;
        }

        // Run with an assertion hook.
        SimConfig cfg2 = cfg;
        MicroSimulator *simp = &sim;
        cfg2.onWord = [&](uint32_t addr) {
            for (const SstarAssertion *a : checks) {
                if (a->addr != addr)
                    continue;
                ++hits[a];
                if (!evalVExpr(a->expr, envOf(*simp),
                               mach.dataWidth())) {
                    ++res.violations;
                    if (res.violations <= 10) {
                        failures += strfmt(
                            "assertion at line %d violated "
                            "(word %u): %s\n", a->line, addr,
                            renderVExpr(a->expr).c_str());
                    }
                }
            }
        };
        // Rebuild the simulator with the hook, preserving state.
        MicroSimulator checked(prog.store, mem, cfg2);
        for (auto &[name, reg] : prog.vars) {
            (void)name;
            checked.setReg(reg, sim.getReg(reg));
        }
        simp = &checked;
        auto r = checked.run(entry);
        if (!r.halted) {
            res.report += strfmt("trial %u: cycle budget exhausted\n",
                                 t);
        }
        ++res.trialsRun;
    }

    for (const SstarAssertion *a : checks) {
        if (hits[a] == 0) {
            ++res.unreached;
            res.report += strfmt(
                "assertion at line %d was never reached\n", a->line);
        }
    }

    res.ok = res.violations == 0 && res.trialsRun > 0;
    res.report += failures;
    res.report += strfmt(
        "verified %zu assertion(s) over %u trial(s): %u violation(s),"
        " %u unreached\n[bounded check: no violation found within the"
        " tested states; this is not a proof]\n",
        checks.size(), res.trialsRun, res.violations, res.unreached);
    return res;
}

} // namespace uhll
