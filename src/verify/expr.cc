#include "verify/expr.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

uint64_t
evalVExpr(const VExpr &e, const VEnv &env, unsigned width)
{
    switch (e.kind) {
      case VExpr::Kind::Const:
        return truncBits(e.value, width);
      case VExpr::Kind::Var:
        return truncBits(env(e.var), width);
      case VExpr::Kind::Not:
        return evalVExpr(e.kids[0], env, width) ? 0 : 1;
      case VExpr::Kind::Bin: {
        uint64_t a = evalVExpr(e.kids[0], env, width);
        uint64_t b = evalVExpr(e.kids[1], env, width);
        switch (e.op) {
          case VExpr::Op::Add: return truncBits(a + b, width);
          case VExpr::Op::Sub: return truncBits(a - b, width);
          case VExpr::Op::And: return a & b;
          case VExpr::Op::Or: return a | b;
          case VExpr::Op::Xor: return a ^ b;
          case VExpr::Op::Shl:
            return truncBits(a << (b % width), width);
          case VExpr::Op::Shr:
            return a >> (b % width);
          case VExpr::Op::Eq: return a == b;
          case VExpr::Op::Ne: return a != b;
          case VExpr::Op::Lt: return a < b;
          case VExpr::Op::Le: return a <= b;
          case VExpr::Op::Gt: return a > b;
          case VExpr::Op::Ge: return a >= b;
          case VExpr::Op::LAnd: return (a != 0 && b != 0) ? 1 : 0;
          case VExpr::Op::LOr: return (a != 0 || b != 0) ? 1 : 0;
        }
        break;
      }
    }
    panic("evalVExpr: malformed expression");
}

std::string
renderVExpr(const VExpr &e)
{
    switch (e.kind) {
      case VExpr::Kind::Const:
        return strfmt("%llu", (unsigned long long)e.value);
      case VExpr::Kind::Var:
        return e.var;
      case VExpr::Kind::Not:
        return "not (" + renderVExpr(e.kids[0]) + ")";
      case VExpr::Kind::Bin: {
        const char *ops[] = {"+", "-", "&", "|", "xor", "shl", "shr",
                             "=", "!=", "<", "<=", ">", ">=",
                             "and", "or"};
        return "(" + renderVExpr(e.kids[0]) + " " +
               ops[static_cast<int>(e.op)] + " " +
               renderVExpr(e.kids[1]) + ")";
      }
    }
    return "?";
}

} // namespace uhll
