/**
 * @file
 * Boolean/arithmetic expressions for S* assertions (the pre- and
 * postcondition language of survey sec. 2.2.3, after Strum's
 * assertion mechanism [17]).
 */

#ifndef UHLL_VERIFY_EXPR_HH
#define UHLL_VERIFY_EXPR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace uhll {

/** An assertion expression tree. */
struct VExpr {
    enum class Kind : uint8_t { Const, Var, Bin, Not };
    enum class Op : uint8_t {
        Add, Sub, And, Or, Xor, Shl, Shr,
        Eq, Ne, Lt, Le, Gt, Ge,     //!< unsigned comparisons -> 0/1
        LAnd, LOr,                  //!< logical, short-circuit-free
    };

    Kind kind = Kind::Const;
    uint64_t value = 0;         //!< Const
    std::string var;            //!< Var
    Op op = Op::Add;            //!< Bin
    std::vector<VExpr> kids;    //!< Bin: 2, Not: 1

    static VExpr
    constant(uint64_t v)
    {
        VExpr e;
        e.kind = Kind::Const;
        e.value = v;
        return e;
    }

    static VExpr
    variable(std::string name)
    {
        VExpr e;
        e.kind = Kind::Var;
        e.var = std::move(name);
        return e;
    }

    static VExpr
    bin(Op op, VExpr a, VExpr b)
    {
        VExpr e;
        e.kind = Kind::Bin;
        e.op = op;
        e.kids.push_back(std::move(a));
        e.kids.push_back(std::move(b));
        return e;
    }

    static VExpr
    negation(VExpr a)
    {
        VExpr e;
        e.kind = Kind::Not;
        e.kids.push_back(std::move(a));
        return e;
    }
};

/** Environment: variable name -> value. */
using VEnv = std::function<uint64_t(const std::string &)>;

/**
 * Evaluate @p e under @p env with @p width -bit arithmetic.
 * Comparisons and logical operators yield 0/1.
 */
uint64_t evalVExpr(const VExpr &e, const VEnv &env, unsigned width);

/** Render for diagnostics. */
std::string renderVExpr(const VExpr &e);

} // namespace uhll

#endif // UHLL_VERIFY_EXPR_HH
