#include "machine/checkpoint.hh"

#include <cstdio>
#include <cstring>

#include "support/fsio.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

constexpr uint32_t kMagic = 0x55434B50;     // "UCKP"

/** @name Little-endian fixed-width primitives */
/// @{
void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/** Bounds-checked reader over a byte string. */
struct Reader {
    const std::string &buf;
    size_t off = 0;

    void
    need(size_t n) const
    {
        if (off + n > buf.size())
            fatal("checkpoint: truncated at byte %zu (need %zu more, "
                  "have %zu)", off, n, buf.size() - off);
    }

    uint8_t
    u8()
    {
        need(1);
        return static_cast<uint8_t>(buf[off++]);
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(static_cast<uint8_t>(buf[off + i])) << (8 * i);
        off += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(static_cast<uint8_t>(buf[off + i])) << (8 * i);
        off += 8;
        return v;
    }
};
/// @}

uint64_t
fnv1a(const char *data, size_t n)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    for (size_t i = 0; i < n; ++i)
        h = (h ^ static_cast<uint8_t>(data[i])) * 0x100000001B3ULL;
    return h;
}

uint8_t
packFlags(const Flags &f)
{
    return uint8_t(f.z) | uint8_t(f.n) << 1 | uint8_t(f.c) << 2 |
           uint8_t(f.uf) << 3 | uint8_t(f.ovf) << 4;
}

Flags
unpackFlags(uint8_t v)
{
    Flags f;
    f.z = v & 1;
    f.n = v & 2;
    f.c = v & 4;
    f.uf = v & 8;
    f.ovf = v & 16;
    return f;
}

void
putResult(std::string &out, const SimResult &r)
{
    putU64(out, r.cycles);
    putU64(out, r.wordsExecuted);
    putU64(out, r.pageFaults);
    putU64(out, r.interruptsServiced);
    putU64(out, r.interruptLatencyTotal);
    putU64(out, r.memReads);
    putU64(out, r.memWrites);
    putU8(out, r.halted);
    putU64(out, r.fastPathWords);
    putU64(out, r.slowPathWords);
    putU64(out, r.pendingHighWater);
    putU64(out, r.faultsInjected);
    putU64(out, r.eccCorrected);
    putU64(out, r.eccDoubleBit);
    putU64(out, r.parityRefetches);
    putU64(out, r.memRetries);
    putU64(out, r.spuriousInterrupts);
    putU64(out, r.jitterCycles);
    putU64(out, r.watchdogTrips);
    putU64(out, r.faultSeed);
}

SimResult
getResult(Reader &in)
{
    SimResult r;
    r.cycles = in.u64();
    r.wordsExecuted = in.u64();
    r.pageFaults = in.u64();
    r.interruptsServiced = in.u64();
    r.interruptLatencyTotal = in.u64();
    r.memReads = in.u64();
    r.memWrites = in.u64();
    r.halted = in.u8();
    r.fastPathWords = in.u64();
    r.slowPathWords = in.u64();
    r.pendingHighWater = in.u64();
    r.faultsInjected = in.u64();
    r.eccCorrected = in.u64();
    r.eccDoubleBit = in.u64();
    r.parityRefetches = in.u64();
    r.memRetries = in.u64();
    r.spuriousInterrupts = in.u64();
    r.jitterCycles = in.u64();
    r.watchdogTrips = in.u64();
    r.faultSeed = in.u64();
    return r;
}

} // namespace

Checkpoint
Checkpoint::capture(const MicroSimulator &sim,
                    const std::vector<uint64_t> &baseline)
{
    const MainMemory &mem = sim.memory();
    const std::vector<uint64_t> &words = mem.words();
    if (baseline.size() != words.size())
        fatal("checkpoint: baseline is %zu words, memory is %zu",
              baseline.size(), words.size());

    Checkpoint c;
    c.machineName = sim.machine().name();
    c.storeWords = sim.store().size();
    c.memWords = mem.sizeWords();
    c.memWidth = mem.width();
    c.pageWords = mem.pageWords();
    c.presentPages = mem.presentBitmap();
    for (uint32_t a = 0; a < words.size(); ++a) {
        if (words[a] != baseline[a])
            c.memDelta.emplace_back(a, words[a]);
    }
    c.sim = sim.snapshot();
    return c;
}

std::string
Checkpoint::compatible(const MicroSimulator &sim) const
{
    if (machineName != sim.machine().name())
        return strfmt("machine '%s' != '%s'", machineName.c_str(),
                      sim.machine().name().c_str());
    if (storeWords != sim.store().size())
        return strfmt("control store has %zu words, checkpoint "
                      "expects %llu", sim.store().size(),
                      (unsigned long long)storeWords);
    const MainMemory &mem = sim.memory();
    if (memWords != mem.sizeWords() || memWidth != mem.width())
        return strfmt("memory %ux%u != checkpoint %ux%u",
                      mem.sizeWords(), mem.width(), memWords,
                      memWidth);
    if (sim.snapshot().regs.size() != this->sim.regs.size())
        return "register file size mismatch";
    return "";
}

void
Checkpoint::apply(MicroSimulator &target,
                  const std::vector<uint64_t> &baseline) const
{
    std::string why = compatible(target);
    if (!why.empty())
        fatal("checkpoint: incompatible with target: %s", why.c_str());
    MainMemory &mem = target.memory();
    std::vector<uint64_t> words = baseline;
    for (const auto &[addr, value] : memDelta) {
        if (addr >= words.size())
            fatal("checkpoint: delta address %u out of range", addr);
        words[addr] = value;
    }
    mem.loadWords(words);
    mem.restorePaging(pageWords, presentPages);
    target.restore(sim);
}

std::string
Checkpoint::serialize() const
{
    std::string p;
    putU32(p, static_cast<uint32_t>(machineName.size()));
    p.append(machineName);
    putU64(p, storeWords);
    putU32(p, memWords);
    putU32(p, memWidth);
    putU32(p, pageWords);
    putU32(p, static_cast<uint32_t>(presentPages.size()));
    {
        uint8_t byte = 0;
        for (size_t i = 0; i < presentPages.size(); ++i) {
            if (presentPages[i])
                byte |= uint8_t(1u << (i % 8));
            if (i % 8 == 7 || i + 1 == presentPages.size()) {
                putU8(p, byte);
                byte = 0;
            }
        }
    }
    putU32(p, static_cast<uint32_t>(memDelta.size()));
    for (const auto &[addr, value] : memDelta) {
        putU32(p, addr);
        putU64(p, value);
    }

    putU32(p, sim.entry);
    putU32(p, sim.upc);
    putU32(p, sim.restartPoint);
    putU32(p, static_cast<uint32_t>(sim.regs.size()));
    for (uint64_t v : sim.regs)
        putU64(p, v);
    putU8(p, packFlags(sim.flags));
    putU32(p, static_cast<uint32_t>(sim.microStack.size()));
    for (uint32_t v : sim.microStack)
        putU32(p, v);
    putU32(p, static_cast<uint32_t>(sim.pending.size()));
    for (const SimSnapshot::Pending &q : sim.pending) {
        putU64(p, q.commitCycle);
        putU8(p, q.isMem);
        putU32(p, q.reg);
        putU32(p, q.addr);
        putU64(p, q.value);
    }
    putU8(p, sim.intPending);
    putU64(p, sim.intArrivalCycle);
    putU64(p, sim.intPeriod);
    putU64(p, sim.intNext);
    putU64(p, sim.lastRetire);
    putU32(p, sim.consecFaults);
    putU32(p, sim.lastFaultRestart);
    putResult(p, sim.res);
    putU32(p, static_cast<uint32_t>(sim.pendingDepth.buckets.size()));
    for (uint64_t v : sim.pendingDepth.buckets)
        putU64(p, v);
    putU64(p, sim.pendingDepth.samples);
    putU64(p, sim.pendingDepth.sum);
    putU64(p, sim.pendingDepth.min);
    putU64(p, sim.pendingDepth.max);

    putU8(p, sim.haveInjector);
    if (sim.haveInjector) {
        for (size_t k = 0; k < kNumFaultKinds; ++k)
            putU64(p, sim.faults.state[k]);
        putU32(p, static_cast<uint32_t>(sim.faults.fired.size()));
        for (uint64_t v : sim.faults.fired)
            putU64(p, v);
        const FaultCounters &fc = sim.faults.counters;
        putU64(p, fc.injectedSingleBit);
        putU64(p, fc.injectedDoubleBit);
        putU64(p, fc.injectedParity);
        putU64(p, fc.injectedSpurious);
        putU64(p, fc.injectedJitterEvents);
        putU64(p, fc.jitterCycles);
        putU64(p, fc.eccCorrected);
        putU64(p, fc.silentFlips);
        putU64(p, sim.faults.now);
    }

    std::string out;
    out.reserve(p.size() + 24);
    putU32(out, kMagic);
    putU32(out, kFormatVersion);
    putU64(out, p.size());
    putU64(out, fnv1a(p.data(), p.size()));
    out.append(p);
    return out;
}

Checkpoint
Checkpoint::deserialize(const std::string &bytes)
{
    Reader in{bytes};
    if (in.u32() != kMagic)
        fatal("checkpoint: bad magic (not a checkpoint file)");
    uint32_t version = in.u32();
    if (version != kFormatVersion)
        fatal("checkpoint: format version %u, this build reads %u",
              version, kFormatVersion);
    uint64_t len = in.u64();
    uint64_t sum = in.u64();
    if (bytes.size() - in.off != len)
        fatal("checkpoint: payload is %zu bytes, header says %llu",
              bytes.size() - in.off, (unsigned long long)len);
    if (fnv1a(bytes.data() + in.off, len) != sum)
        fatal("checkpoint: payload checksum mismatch (torn or "
              "corrupted file)");

    Checkpoint c;
    uint32_t nameLen = in.u32();
    in.need(nameLen);
    c.machineName = bytes.substr(in.off, nameLen);
    in.off += nameLen;
    c.storeWords = in.u64();
    c.memWords = in.u32();
    c.memWidth = in.u32();
    c.pageWords = in.u32();
    // Every count below is validated against the bytes actually
    // remaining BEFORE it sizes an allocation or is trusted as a
    // loop bound: a corrupt (fuzzed) file whose checksum happens to
    // hold must degrade to a FatalError -- which readFile() turns
    // into nullopt -- never into a multi-gigabyte resize or an
    // out-of-range memory write at apply() time.
    uint32_t nPages = in.u32();
    in.need((size_t(nPages) + 7) / 8);
    if (c.pageWords != 0 &&
        uint64_t(nPages) * c.pageWords < c.memWords)
        fatal("checkpoint: %u pages of %u words cannot cover %u "
              "memory words", nPages, c.pageWords, c.memWords);
    c.presentPages.resize(nPages);
    for (uint32_t i = 0; i < nPages; i += 8) {
        uint8_t byte = in.u8();
        for (uint32_t b = 0; b < 8 && i + b < nPages; ++b)
            c.presentPages[i + b] = (byte >> b) & 1;
    }
    uint32_t nDelta = in.u32();
    in.need(size_t(nDelta) * 12);   // u32 addr + u64 value each
    if (nDelta > c.memWords)
        fatal("checkpoint: %u delta entries for a %u-word memory",
              nDelta, c.memWords);
    c.memDelta.reserve(nDelta);
    for (uint32_t i = 0; i < nDelta; ++i) {
        uint32_t addr = in.u32();
        uint64_t value = in.u64();
        if (addr >= c.memWords)
            fatal("checkpoint: delta address 0x%x outside the "
                  "%u-word memory", addr, c.memWords);
        c.memDelta.emplace_back(addr, value);
    }

    SimSnapshot &s = c.sim;
    s.entry = in.u32();
    s.upc = in.u32();
    s.restartPoint = in.u32();
    uint32_t nRegs = in.u32();
    in.need(size_t(nRegs) * 8);
    s.regs.resize(nRegs);
    for (uint64_t &v : s.regs)
        v = in.u64();
    s.flags = unpackFlags(in.u8());
    uint32_t nStack = in.u32();
    in.need(size_t(nStack) * 4);
    s.microStack.resize(nStack);
    for (uint32_t &v : s.microStack)
        v = in.u32();
    uint32_t nPending = in.u32();
    in.need(size_t(nPending) * 25);     // 8+1+4+4+8 bytes each
    s.pending.resize(nPending);
    for (SimSnapshot::Pending &q : s.pending) {
        q.commitCycle = in.u64();
        q.isMem = in.u8();
        q.reg = static_cast<RegId>(in.u32());
        q.addr = in.u32();
        q.value = in.u64();
    }
    s.intPending = in.u8();
    s.intArrivalCycle = in.u64();
    s.intPeriod = in.u64();
    s.intNext = in.u64();
    s.lastRetire = in.u64();
    s.consecFaults = in.u32();
    s.lastFaultRestart = in.u32();
    s.res = getResult(in);
    uint32_t nBuckets = in.u32();
    in.need(size_t(nBuckets) * 8);
    s.pendingDepth.buckets.resize(nBuckets);
    for (uint64_t &v : s.pendingDepth.buckets)
        v = in.u64();
    s.pendingDepth.samples = in.u64();
    s.pendingDepth.sum = in.u64();
    s.pendingDepth.min = in.u64();
    s.pendingDepth.max = in.u64();

    s.haveInjector = in.u8();
    if (s.haveInjector) {
        for (size_t k = 0; k < kNumFaultKinds; ++k)
            s.faults.state[k] = in.u64();
        uint32_t nFired = in.u32();
        in.need(size_t(nFired) * 8);
        s.faults.fired.resize(nFired);
        for (uint64_t &v : s.faults.fired)
            v = in.u64();
        FaultCounters &fc = s.faults.counters;
        fc.injectedSingleBit = in.u64();
        fc.injectedDoubleBit = in.u64();
        fc.injectedParity = in.u64();
        fc.injectedSpurious = in.u64();
        fc.injectedJitterEvents = in.u64();
        fc.jitterCycles = in.u64();
        fc.eccCorrected = in.u64();
        fc.silentFlips = in.u64();
        s.faults.now = in.u64();
    }
    if (in.off != bytes.size())
        fatal("checkpoint: %zu trailing bytes after payload",
              bytes.size() - in.off);
    return c;
}

void
Checkpoint::writeFile(const std::string &path) const
{
    // Durable as well as atomic: a checkpoint that --resume can see
    // must survive power loss, not just a killed process.
    std::string err;
    if (!atomicWriteDurable(path, serialize(), &err))
        fatal("checkpoint: %s", err.c_str());
}

std::optional<Checkpoint>
Checkpoint::readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string bytes;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    try {
        return Checkpoint::deserialize(bytes);
    } catch (const FatalError &) {
        return std::nullopt;
    }
}

} // namespace uhll
