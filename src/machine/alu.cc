#include "machine/alu.hh"

#include <algorithm>

#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

bool
aluHandles(UKind k)
{
    switch (k) {
      case UKind::Add: case UKind::Sub: case UKind::And:
      case UKind::Or: case UKind::Xor: case UKind::Inc:
      case UKind::Dec: case UKind::Neg: case UKind::Not:
      case UKind::Shl: case UKind::Shr: case UKind::Sar:
      case UKind::Rol: case UKind::Ror: case UKind::Mov:
      case UKind::Ldi: case UKind::Cmp:
        return true;
      default:
        return false;
    }
}

AluOut
aluEval(UKind k, uint64_t a, uint64_t b, unsigned width)
{
    const unsigned w = width;
    const uint64_t msb = 1ULL << (w - 1);
    a = truncBits(a, w);
    b = truncBits(b, w);

    AluOut out;
    auto setZN = [&](uint64_t v) {
        out.flags.z = truncBits(v, w) == 0;
        out.flags.n = (v & msb) != 0;
    };
    // Full-width add with carry/overflow flags; sub is a + ~b + 1.
    auto arith = [&](uint64_t va, uint64_t vb, bool sub) {
        uint64_t full = sub ? va + truncBits(~vb, w) + 1 : va + vb;
        uint64_t r = truncBits(full, w);
        setZN(r);
        out.flags.c = (full >> w) & 1;
        bool sa = (va & msb) != 0, sb = (vb & msb) != 0;
        bool sr = (r & msb) != 0;
        out.flags.ovf = sub ? (sa != sb) && (sr != sa)
                            : (sa == sb) && (sr != sa);
        return r;
    };

    switch (k) {
      case UKind::Add:
        out.value = arith(a, b, false);
        break;
      case UKind::Sub:
        out.value = arith(a, b, true);
        break;
      case UKind::And:
        out.value = a & b;
        setZN(out.value);
        break;
      case UKind::Or:
        out.value = a | b;
        setZN(out.value);
        break;
      case UKind::Xor:
        out.value = a ^ b;
        setZN(out.value);
        break;
      case UKind::Inc:
        out.value = arith(a, 1, false);
        break;
      case UKind::Dec:
        out.value = arith(a, 1, true);
        break;
      case UKind::Neg:
        out.value = truncBits(truncBits(~a, w) + 1, w);
        setZN(out.value);
        break;
      case UKind::Not:
        out.value = truncBits(~a, w);
        setZN(out.value);
        break;
      case UKind::Shl: {
        unsigned n = static_cast<unsigned>(b % (w + 1));
        out.value = n ? truncBits(a << n, w) : a;
        setZN(out.value);
        out.flags.uf = n ? ((a >> (w - n)) & 1) != 0 : false;
        break;
      }
      case UKind::Shr: {
        unsigned n = static_cast<unsigned>(b % (w + 1));
        out.value = n >= w ? 0 : (a >> n);
        setZN(out.value);
        out.flags.uf = n ? ((a >> (n - 1)) & 1) != 0 : false;
        break;
      }
      case UKind::Sar: {
        unsigned n = static_cast<unsigned>(b % (w + 1));
        int64_t sa = signExtend(a, w);
        out.value =
            truncBits(static_cast<uint64_t>(sa >> std::min(n, 63u)), w);
        setZN(out.value);
        out.flags.uf = n ? ((a >> (n - 1)) & 1) != 0 : false;
        break;
      }
      case UKind::Rol:
        out.value = rotateLeft(a, static_cast<unsigned>(b), w);
        setZN(out.value);
        break;
      case UKind::Ror:
        out.value = rotateRight(a, static_cast<unsigned>(b), w);
        setZN(out.value);
        break;
      case UKind::Mov:
        out.value = a;
        setZN(out.value);
        break;
      case UKind::Ldi:
        out.value = b;
        break;
      case UKind::Cmp:
        arith(a, b, true);
        out.wrote = false;
        break;
      default:
        panic("aluEval: kind %s is not a compute kind", uKindName(k));
    }
    return out;
}

} // namespace uhll
