#include "machine/machine_desc.hh"

#include <algorithm>

#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

MachineDescription::MachineDescription(std::string name,
                                       unsigned data_width)
    : name_(std::move(name)), dataWidth_(data_width)
{
    if (data_width == 0 || data_width > 64)
        fatal("machine %s: data width %u out of range", name_.c_str(),
              data_width);
}

void
MachineDescription::setNumPhases(unsigned n)
{
    if (n == 0 || n > 4)
        fatal("machine %s: %u phases unsupported", name_.c_str(), n);
    numPhases_ = n;
}

void
MachineDescription::setScratchArea(uint32_t base, uint32_t words)
{
    scratchBase_ = base;
    scratchWords_ = words;
}

RegId
MachineDescription::addRegister(const std::string &name, unsigned width,
                                uint32_t classes, bool architectural,
                                bool allocatable)
{
    if (regByName_.count(name))
        fatal("machine %s: duplicate register '%s'", name_.c_str(),
              name.c_str());
    RegisterInfo info;
    info.name = name;
    info.width = width;
    info.classes = classes;
    info.architectural = architectural;
    info.allocatable = allocatable;
    RegId id = static_cast<RegId>(regs_.size());
    regs_.push_back(std::move(info));
    regByName_.emplace(name, id);
    return id;
}

const RegisterInfo &
MachineDescription::reg(RegId r) const
{
    if (r >= regs_.size())
        panic("machine %s: bad register id %u", name_.c_str(), r);
    return regs_[r];
}

uint64_t
MachineDescription::regMask(RegId r) const
{
    return bitMask(reg(r).width);
}

std::optional<RegId>
MachineDescription::findRegister(const std::string &name) const
{
    auto it = regByName_.find(name);
    if (it == regByName_.end())
        return std::nullopt;
    return it->second;
}

std::vector<RegId>
MachineDescription::allocatableRegs() const
{
    std::vector<RegId> out;
    for (RegId r = 0; r < regs_.size(); ++r) {
        if (regs_[r].allocatable)
            out.push_back(r);
    }
    return out;
}

void
MachineDescription::addScratchReg(RegId r)
{
    if (reg(r).allocatable)
        fatal("machine %s: scratch register '%s' must not be "
              "allocatable", name_.c_str(), reg(r).name.c_str());
    scratch_.push_back(r);
}

RegId
MachineDescription::scratchFor(uint32_t classes,
                               std::span<const RegId> avoid,
                               bool allow_dedicated) const
{
    auto avoided = [&](RegId r) {
        return std::find(avoid.begin(), avoid.end(), r) != avoid.end();
    };
    for (RegId r : scratch_) {
        if ((reg(r).classes & classes) && !avoided(r))
            return r;
    }
    // Fall back to dedicated non-allocatable registers (mar/mbr).
    if (allow_dedicated) {
        for (RegId r = 0; r < regs_.size(); ++r) {
            if (!regs_[r].allocatable &&
                (regs_[r].classes & classes) && !avoided(r)) {
                return r;
            }
        }
    }
    fatal("machine %s: no scratch register for class mask %#x",
          name_.c_str(), classes);
}

FieldId
MachineDescription::addField(const std::string &name, unsigned width)
{
    FieldId id = static_cast<FieldId>(fields_.size());
    fields_.push_back(FieldInfo{name, width});
    return id;
}

UnitId
MachineDescription::addUnit(const std::string &name)
{
    UnitId id = static_cast<UnitId>(units_.size());
    units_.push_back(UnitInfo{name});
    return id;
}

BusId
MachineDescription::addBus(const std::string &name)
{
    BusId id = static_cast<BusId>(buses_.size());
    buses_.push_back(BusInfo{name});
    return id;
}

unsigned
MachineDescription::controlWordBits() const
{
    unsigned bits = 0;
    for (const auto &f : fields_)
        bits += f.width;
    return bits;
}

uint16_t
MachineDescription::addMicroOp(MicroOpSpec spec)
{
    if (uopByName_.count(spec.mnemonic))
        fatal("machine %s: duplicate microop '%s'", name_.c_str(),
              spec.mnemonic.c_str());
    if (spec.phase == 0 || spec.phase > numPhases_)
        fatal("machine %s: microop '%s' in phase %u of %u",
              name_.c_str(), spec.mnemonic.c_str(), spec.phase,
              numPhases_);
    uint16_t id = static_cast<uint16_t>(uops_.size());
    uopByName_.emplace(spec.mnemonic, id);
    uops_.push_back(std::move(spec));
    return id;
}

std::optional<uint16_t>
MachineDescription::findUop(const std::string &mnemonic) const
{
    auto it = uopByName_.find(mnemonic);
    if (it == uopByName_.end())
        return std::nullopt;
    return it->second;
}

std::vector<uint16_t>
MachineDescription::uopsOfKind(UKind k) const
{
    std::vector<uint16_t> out;
    for (uint16_t i = 0; i < uops_.size(); ++i) {
        if (uops_[i].kind == k)
            out.push_back(i);
    }
    return out;
}

namespace {

/** True if vectors (sorted or not) share an element. */
template <typename T>
bool
sharesElement(const std::vector<T> &a, const std::vector<T> &b)
{
    for (T x : a) {
        if (std::find(b.begin(), b.end(), x) != b.end())
            return true;
    }
    return false;
}

/** Registers written by a bound op (dst, plus srcA for push/pop). */
void
writtenRegs(const MicroOpSpec &spec, const BoundOp &op,
            RegId out[2], int &n)
{
    n = 0;
    if (uKindHasDst(spec.kind) && op.dst != kNoReg)
        out[n++] = op.dst;
    if (uKindModifiesSrcA(spec.kind) && op.srcA != kNoReg)
        out[n++] = op.srcA;
}

} // namespace

bool
MachineDescription::conflict(const BoundOp &a, const BoundOp &b,
                             bool phase_aware) const
{
    const MicroOpSpec &sa = uop(a.spec);
    const MicroOpSpec &sb = uop(b.spec);

    // Control-word fields exist once per word: always conflict.
    if (sharesElement(sa.fields, sb.fields))
        return true;

    bool same_phase = sa.phase == sb.phase;
    bool resources_clash = !phase_aware || same_phase;
    if (resources_clash &&
        (sharesElement(sa.units, sb.units) ||
         sharesElement(sa.buses, sb.buses))) {
        return true;
    }

    // Double write of one register in the same phase.
    if (same_phase) {
        RegId wa[2], wb[2];
        int na, nb;
        writtenRegs(sa, a, wa, na);
        writtenRegs(sb, b, wb, nb);
        for (int i = 0; i < na; ++i) {
            for (int j = 0; j < nb; ++j) {
                if (wa[i] == wb[j])
                    return true;
            }
        }
    }

    // Only one op per word may set the flag latch in a given phase.
    if (same_phase && sa.setsFlags && sb.setsFlags)
        return true;

    return false;
}

bool
MachineDescription::checkOperands(const BoundOp &op,
                                  std::string *why) const
{
    const MicroOpSpec &s = uop(op.spec);
    auto complain = [&](const char *what) {
        if (why)
            *why = strfmt("%s: operand violation (%s)",
                          s.mnemonic.c_str(), what);
        return false;
    };

    if (uKindHasDst(s.kind)) {
        if (op.dst == kNoReg)
            return complain("missing dst");
        if (s.dstClasses && !(reg(op.dst).classes & s.dstClasses))
            return complain("dst class");
    }
    if (uKindHasSrcA(s.kind)) {
        if (op.srcA == kNoReg)
            return complain("missing srcA");
        if (s.srcAClasses && !(reg(op.srcA).classes & s.srcAClasses))
            return complain("srcA class");
    }
    if (uKindHasSrcB(s.kind)) {
        if (op.useImm) {
            if (!s.allowImm)
                return complain("immediate not supported");
            if (s.immWidth < 64 && op.imm > bitMask(s.immWidth))
                return complain("immediate too wide");
        } else {
            if (op.srcB == kNoReg)
                return complain("missing srcB");
            if (s.srcBClasses &&
                !(reg(op.srcB).classes & s.srcBClasses)) {
                return complain("srcB class");
            }
        }
    }
    if (s.kind == UKind::Ldi || s.kind == UKind::NewBlock) {
        if (s.immWidth < 64 && op.imm > bitMask(s.immWidth))
            return complain("immediate too wide");
    }
    return true;
}

bool
MachineDescription::wordLegal(std::span<const BoundOp> ops,
                              bool phase_aware, std::string *why) const
{
    if (vertical_ && ops.size() > 1) {
        if (why)
            *why = "vertical machine: one microoperation per word";
        return false;
    }
    for (size_t i = 0; i < ops.size(); ++i) {
        if (!checkOperands(ops[i], why))
            return false;
        for (size_t j = i + 1; j < ops.size(); ++j) {
            if (conflict(ops[i], ops[j], phase_aware)) {
                if (why) {
                    *why = strfmt("resource conflict between '%s' and "
                                  "'%s'",
                                  renderOp(ops[i]).c_str(),
                                  renderOp(ops[j]).c_str());
                }
                return false;
            }
        }
    }
    return true;
}

std::string
MachineDescription::renderOp(const BoundOp &op) const
{
    const MicroOpSpec &s = uop(op.spec);
    std::string out = s.mnemonic;
    auto rname = [&](RegId r) {
        return r == kNoReg ? std::string("-") : reg(r).name;
    };
    if (uKindHasDst(s.kind))
        out += " " + rname(op.dst);
    if (uKindHasSrcA(s.kind))
        out += (uKindHasDst(s.kind) ? "," : " ") + rname(op.srcA);
    if (uKindHasSrcB(s.kind)) {
        if (op.useImm)
            out += "," + strfmt("#%llu", (unsigned long long)op.imm);
        else
            out += "," + rname(op.srcB);
    }
    if (s.kind == UKind::Ldi)
        out += strfmt(" #%llu", (unsigned long long)op.imm);
    if (s.kind == UKind::NewBlock)
        out += strfmt(" #%llu", (unsigned long long)op.imm);
    return out;
}

std::string
MachineDescription::renderWord(const MicroInstruction &mi) const
{
    std::string out = "[";
    for (size_t i = 0; i < mi.ops.size(); ++i) {
        if (i)
            out += " | ";
        out += renderOp(mi.ops[i]);
    }
    out += "]";
    switch (mi.seq) {
      case SeqKind::Next:
        break;
      case SeqKind::Jump:
        out += strfmt(" jump %u", mi.target);
        break;
      case SeqKind::CondJump:
        out += strfmt(" if %s jump %u", condName(mi.cond), mi.target);
        break;
      case SeqKind::Call:
        out += strfmt(" call %u", mi.target);
        break;
      case SeqKind::Return:
        out += " return";
        break;
      case SeqKind::Multiway:
        out += strfmt(" mbranch %s mask=%llx base=%u",
                      mi.mwReg == kNoReg ? "-" : reg(mi.mwReg).name.c_str(),
                      (unsigned long long)mi.mwMask, mi.target);
        break;
      case SeqKind::Halt:
        out += " halt";
        break;
    }
    return out;
}

} // namespace uhll
