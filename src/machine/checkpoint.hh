/**
 * @file
 * Checkpoint: a serializable pairing of a SimSnapshot with the main
 * memory state, delta-compressed against a baseline image.
 *
 * A checkpoint captures everything a paused simulation needs to
 * resume bit-identically in another simulator instance -- or another
 * process: registers, memory (as (addr, word) deltas against the
 * image the job loaded), microstack, pending overlapped writes,
 * fault-stream cursors and every cycle/stat counter. The binary
 * serialization is versioned and checksummed (FNV-1a over the
 * payload) so a torn or stale file is rejected instead of resuming
 * garbage; readers should treat a rejected checkpoint as "start from
 * cycle 0", which is always safe.
 *
 * The baseline image is *not* stored: both sides reconstruct it
 * deterministically (the job's setupMemory hook / workload loader),
 * which keeps checkpoints small -- a long-running job's delta is the
 * set of words it has written, not the whole array.
 */

#ifndef UHLL_MACHINE_CHECKPOINT_HH
#define UHLL_MACHINE_CHECKPOINT_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "machine/simulator.hh"

namespace uhll {

struct Checkpoint {
    //! bump when the serialized layout changes; readers reject
    //! other versions (no migration: a checkpoint is ephemeral)
    static constexpr uint32_t kFormatVersion = 1;

    /** @name Identity (checked before a restore is attempted) */
    /// @{
    std::string machineName;
    uint64_t storeWords = 0;    //!< control-store size at capture
    uint32_t memWords = 0;
    uint32_t memWidth = 0;
    /// @}

    /** @name Memory state */
    /// @{
    uint32_t pageWords = 0;     //!< 0 = paging off
    std::vector<bool> presentPages;
    //! (addr, word) where memory differs from the baseline image
    std::vector<std::pair<uint32_t, uint64_t>> memDelta;
    /// @}

    SimSnapshot sim;

    /**
     * Capture @p sim (paused at a slice boundary) and its memory,
     * delta-compressed against @p baseline (the memory contents
     * right after job setup; pass the full array).
     */
    static Checkpoint capture(const MicroSimulator &sim,
                              const std::vector<uint64_t> &baseline);

    /**
     * Restore into @p sim: memory := @p baseline + delta, paging
     * state, then MicroSimulator::restore(). fatal()s when the
     * checkpoint does not match the simulator (see compatible()).
     */
    void apply(MicroSimulator &sim,
               const std::vector<uint64_t> &baseline) const;

    /**
     * Identity check against a target simulator. Returns an empty
     * string when the checkpoint can be applied, else the reason.
     */
    std::string compatible(const MicroSimulator &sim) const;

    /** @name Versioned, checksummed binary serialization */
    /// @{
    std::string serialize() const;
    /** Throws FatalError on bad magic/version/checksum/truncation. */
    static Checkpoint deserialize(const std::string &bytes);
    /// @}

    /** @name Checkpoint files (batch --resume) */
    /// @{
    /**
     * Write atomically (temp file + rename), so a process killed
     * mid-write leaves either the previous checkpoint or none --
     * never a torn one.
     */
    void writeFile(const std::string &path) const;
    /**
     * Read and deserialize; nullopt when the file is missing,
     * truncated or fails its checks (callers fall back to a fresh
     * run).
     */
    static std::optional<Checkpoint> readFile(const std::string &path);
    /// @}
};

} // namespace uhll

#endif // UHLL_MACHINE_CHECKPOINT_HH
