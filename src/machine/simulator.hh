/**
 * @file
 * MicroSimulator: phase-accurate execution of a control store.
 *
 * Semantics implemented (matching the survey's machine model):
 *  - A microinstruction executes all its microoperations in one
 *    microcycle; operations are grouped by phase; within one phase all
 *    reads happen before all writes (parallel, cobegin semantics);
 *    writes of phase p are visible to reads of phase p+1 (cocycle
 *    semantics).
 *  - A word is transactional with respect to page faults: if any
 *    memory access in the word faults, none of the word's register or
 *    memory writes commit.
 *  - Page-fault (microtrap) handling reproduces sec. 2.1.5: the
 *    "operating system" saves and restores the architectural
 *    registers (so their current -- possibly already modified --
 *    values survive), scrambles the non-architectural
 *    microregisters, services the page and restarts the
 *    microroutine at its restart point.
 *  - Interrupts are a pending line tested via Cond::Int and cleared
 *    by the IntAck microoperation.
 *  - Memory operations take memLatency() cycles: either stalling the
 *    engine (default) or overlapped with later words when the bound
 *    op is marked overlap (the S* "dur" construct / hand-tuned code).
 */

#ifndef UHLL_MACHINE_SIMULATOR_HH
#define UHLL_MACHINE_SIMULATOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault.hh"
#include "machine/control_store.hh"
#include "machine/decoded_store.hh"
#include "machine/machine_desc.hh"
#include "machine/memory.hh"
#include "machine/types.hh"
#include "obs/stats.hh"

namespace uhll {

class TraceBuffer;
class CycleProfiler;
class FaultInjector;
class JitTier;
class JitRegionCache;

/** Knobs for a simulation run. */
struct SimConfig {
    uint64_t maxCycles = 50'000'000;
    //! fatal() when a register with a pending overlapped write is
    //! read (catches illegal hand-written overlap); when false the
    //! stale value is returned, as real hardware would.
    bool strictHazards = true;
    //! scramble non-architectural registers on a microtrap (models
    //! the OS and other firmware clobbering the micro temporaries)
    bool scrambleOnTrap = true;
    //! execute every word through the general (slow) path even when
    //! it is fast-path eligible; architectural results must be
    //! bit-identical either way (the differential tests assert it)
    bool forceSlowPath = false;
    /** @name JIT tier (see src/jit/) */
    /// @{
    //! lower hot decoded-word regions to native x86-64 when the host
    //! supports it (JitTier::available(); UHLL_NO_JIT=1 disables).
    //! Bit-identical to the interpreter by construction, and the
    //! tier stands down automatically whenever tracing, profiling,
    //! fault injection or an onWord hook could observe per-word
    //! execution.
    bool jit = true;
    //! region-entry count that triggers compilation; 0 = default
    //! (64), 1 = compile on first execution (the forced-threshold
    //! differential smoke)
    uint32_t jitThreshold = 0;
    //! shared compiled-region cache (Artefact::jitCache) -- the
    //! native-code analogue of SimConfig::decoded; null compiles
    //! privately per simulator
    JitRegionCache *jitCache = nullptr;
    /// @}
    //! called before each word executes (assertion checkers, traces)
    std::function<void(uint32_t addr)> onWord;
    /**
     * Shared read-only decoded-word cache (null = the simulator
     * decodes privately). Must be fully pre-decoded
     * (DecodedStore::decodeAll) against the same, no longer mutated,
     * ControlStore; run() checks both and fatal()s on a mismatch.
     * This lets N concurrent simulators of one (machine, program)
     * pair share a single decode (BatchRunner's per-artefact cache).
     */
    const DecodedStore *decoded = nullptr;
    /** @name Observability (null = off; both are zero-cost when off
     *  and touch nothing architectural when on) */
    /// @{
    TraceBuffer *trace = nullptr;       //!< event ring to record into
    CycleProfiler *profiler = nullptr;  //!< cycle-attribution sink
    /// @}

    /** @name Fault injection & recovery (see src/fault/) */
    /// @{
    //! fault source consulted at the defined injection points; the
    //! simulator resets it at every run() start so each run replays
    //! the same schedule. run() also attaches it to the memory's
    //! read path (ECC model) for the duration of the run.
    FaultInjector *injector = nullptr;
    //! the memory array has ECC: injected single-bit errors are
    //! corrected in flight, double-bit errors are detected (and
    //! retried / microtrapped); false = silent corruption
    bool ecc = true;
    //! trip a watchdog when no word retired for this many cycles
    //! (0 = off; an attached injector's plan value is the default)
    uint64_t watchdogCycles = 0;
    //! declare restart livelock after this many consecutive faulting
    //! restarts of the same restart point (0 = off; an attached
    //! injector's plan value is the default)
    uint32_t maxRestarts = 0;
    /// @}

    /** @name Supervision (see src/driver/supervisor.hh) */
    /// @{
    //! cooperative cancellation token, polled every few thousand
    //! words; when it reads true the run stops with a structured
    //! SimErrorKind::Cancelled (null = no cancellation source)
    const std::atomic<bool> *cancel = nullptr;
    //! wall-clock deadline, polled with the cancellation token;
    //! past it the run stops with SimErrorKind::DeadlineExceeded
    //! (default-constructed = no deadline)
    std::chrono::steady_clock::time_point deadline{};
    /// @}
};

/** Why a run ended in a structured error instead of halting. */
enum class SimErrorKind : uint8_t {
    None,
    WatchdogStall,          //!< no word retired for watchdogCycles
    RestartLivelock,        //!< same restart point kept faulting
    ParityUnrecoverable,    //!< control-store re-fetch limit exceeded
    Cancelled,              //!< cooperative cancellation token read true
    DeadlineExceeded,       //!< wall-clock deadline passed mid-run
    //! the out-of-process worker running the job died (signal, OOM
    //! kill, rlimit) and the pool's own retry budget is exhausted
    //! (see src/proc/pool.hh) -- never produced by the simulator
    WorkerCrashed,
};

const char *simErrorKindName(SimErrorKind k);

/**
 * True for error kinds worth retrying: transient fault pile-ups
 * (watchdog stalls, ECC-driven restart livelock) that a re-execution
 * from the last checkpoint may ride out. Supervision verdicts
 * (cancel, deadline) and hard parity failures are not retryable.
 */
bool simErrorRecoverable(SimErrorKind k);

/**
 * A structured run failure: instead of abort()ing, runaway microcode
 * is converted into this diagnostic -- the uPC, restart point and a
 * full register snapshot at the moment the watchdog gave up.
 */
struct SimError {
    SimErrorKind kind = SimErrorKind::None;
    std::string message;
    uint64_t cycle = 0;
    uint32_t upc = 0;
    uint32_t restartPoint = 0;
    //! (register name, value) at trip time, register-file order
    std::vector<std::pair<std::string, uint64_t>> regs;

    explicit operator bool() const
    {
        return kind != SimErrorKind::None;
    }
};

/** Aggregate results of a run. */
struct SimResult {
    uint64_t cycles = 0;
    uint64_t wordsExecuted = 0;
    uint64_t pageFaults = 0;
    uint64_t interruptsServiced = 0;
    //! sum over serviced interrupts of (ack cycle - arrival cycle)
    uint64_t interruptLatencyTotal = 0;
    uint64_t memReads = 0;
    uint64_t memWrites = 0;
    bool halted = false;    //!< false: maxCycles exceeded

    /** @name Perf counters (host-side, no architectural meaning) */
    /// @{
    uint64_t fastPathWords = 0; //!< words run on the pure-ALU fast path
    uint64_t slowPathWords = 0; //!< words run through the general path
    uint64_t pendingHighWater = 0;  //!< max depth of the pending queue
    /// @}

    /** @name Fault injection & recovery (zero without an injector) */
    /// @{
    uint64_t faultsInjected = 0;    //!< total injected events
    uint64_t eccCorrected = 0;      //!< single-bit reads corrected
    uint64_t eccDoubleBit = 0;      //!< uncorrectable read errors
    uint64_t parityRefetches = 0;   //!< control-store re-fetches
    uint64_t memRetries = 0;        //!< uncorrectable-read retries
    uint64_t spuriousInterrupts = 0;    //!< injected int arrivals
    uint64_t jitterCycles = 0;      //!< extra memory-latency cycles
    uint64_t watchdogTrips = 0;     //!< watchdog/livelock conversions
    uint64_t faultSeed = 0;         //!< injector seed (0 = no injector)
    /// @}

    //! structured failure diagnostic; kind == None on a clean run
    SimError error;

    /** True when the run did not end in a structured error. */
    bool ok() const { return error.kind == SimErrorKind::None; }

    /** All fields as a JSON object (uhllc --stats-json, bench JSON). */
    std::string toJson(bool pretty = true) const;
};

/**
 * The complete mutable state of a paused MicroSimulator, captured at
 * a word boundary between run slices. A snapshot restored into a
 * fresh simulator over the same control store and memory image
 * resumes bit-identically to the uninterrupted run -- including the
 * fault-stream cursors, so a resumed run injects the same remaining
 * faults. Main memory itself is *not* part of the snapshot (it is a
 * separate object); machine/checkpoint.hh pairs the two into a
 * serializable checkpoint.
 */
struct SimSnapshot {
    uint32_t entry = 0;             //!< uPC the run began at
    uint32_t upc = 0;
    uint32_t restartPoint = 0;
    std::vector<uint64_t> regs;
    Flags flags;
    std::vector<uint32_t> microStack;

    /** One queued overlapped write (mirrors the private queue). */
    struct Pending {
        uint64_t commitCycle = 0;
        bool isMem = false;
        RegId reg = kNoReg;
        uint32_t addr = 0;
        uint64_t value = 0;
    };
    std::vector<Pending> pending;

    bool intPending = false;
    uint64_t intArrivalCycle = 0;
    uint64_t intPeriod = 0;
    uint64_t intNext = 0;

    uint64_t lastRetire = 0;
    uint32_t consecFaults = 0;
    uint32_t lastFaultRestart = 0;

    //! every counter at snapshot time (error kind is always None:
    //! snapshots are only taken at clean word boundaries)
    SimResult res;
    //! sim.pendingDepth histogram contents at snapshot time
    Histogram::State pendingDepth;

    bool haveInjector = false;
    FaultStreamState faults;        //!< valid when haveInjector
};

/** Executes microcode from a ControlStore against a MainMemory. */
class MicroSimulator
{
  public:
    MicroSimulator(const ControlStore &store, MainMemory &mem,
                   SimConfig cfg = SimConfig{});
    ~MicroSimulator();

    /** @name Architectural state access (tests & harnesses) */
    /// @{
    void setReg(RegId r, uint64_t v);
    uint64_t getReg(RegId r) const;
    void setReg(const std::string &name, uint64_t v);
    uint64_t getReg(const std::string &name) const;
    const Flags &flags() const { return flags_; }
    /// @}

    /**
     * Deliver an interrupt every @p period cycles starting at
     * @p first. 0 disables interrupt generation.
     */
    void interruptEvery(uint64_t period, uint64_t first = 0);

    /** Run from @p entry until Halt or the cycle budget is exhausted. */
    SimResult run(uint32_t entry);

    /** Run from a named control-store entry point. */
    SimResult run(const std::string &entry_name);

    /**
     * @name Sliced execution (checkpointing, lockstep, supervision)
     *
     * begin() performs everything run() does up to the interpreter
     * loop; runUntilCycle()/runUntilWords() then execute bounded
     * slices. A sequence of slices is bit-identical to one
     * uninterrupted run() -- slicing only decides where control
     * returns to the caller. finished() reports whether the program
     * halted, errored or exhausted its cycle budget (false after a
     * slice that merely hit its bound).
     */
    /// @{
    void begin(uint32_t entry);
    void begin(const std::string &entry_name);
    /** Execute until cycles >= @p stop_cycle or the run finishes. */
    const SimResult &runUntilCycle(uint64_t stop_cycle);
    /** Execute until wordsExecuted >= @p stop_words or finished. */
    const SimResult &runUntilWords(uint64_t stop_words);
    bool
    finished() const
    {
        return res_.halted || !res_.ok() ||
               res_.cycles >= cfg_.maxCycles;
    }
    const SimResult &result() const { return res_; }
    /// @}

    /**
     * @name Checkpoint/restore
     *
     * snapshot() captures the complete mutable state at a slice
     * boundary; restore() resumes from it, in this simulator or a
     * fresh one constructed over the same control store (and a
     * memory holding the same contents -- memory is restored
     * separately, see machine/checkpoint.hh). A restored run is
     * bit-identical to an uninterrupted one.
     */
    /// @{
    SimSnapshot snapshot() const;
    void restore(const SimSnapshot &s);
    /// @}

    /**
     * FNV-1a digest of the architectural state: retired-word count,
     * uPC, registers and flags (with queued overlapped writes
     * applied), microstack, and main memory (with queued overlapped
     * stores applied). Excludes cycle counts and transient interrupt
     * state, so lanes that differ only in timing-transparent faults
     * (latency jitter, corrected flips) digest equal -- the lockstep
     * DMR comparison key.
     */
    uint64_t archDigest() const;

    /**
     * The simulator's stats registry. Every SimResult counter is
     * registered here (bound to the simulator's own storage, so
     * recording costs nothing extra), plus derived formulas
     * (sim.fastPathFraction, sim.cyclesPerWord, ...) and the
     * sim.pendingDepth histogram. Values reflect the latest run.
     */
    const StatsRegistry &stats() const { return stats_; }
    //! mutable access (the supervisor adds its own sup.* counters)
    StatsRegistry &stats() { return stats_; }

    const ControlStore &store() const { return store_; }
    const MachineDescription &machine() const { return mach_; }
    MainMemory &memory() { return mem_; }
    const MainMemory &memory() const { return mem_; }

  private:
    struct PendingWrite {
        uint64_t commitCycle;
        bool isMem;
        RegId reg;
        uint32_t addr;
        uint64_t value;
    };

    /** Buffered effect of one microoperation within a word. */
    struct WordEffect {
        bool hasRegWrite = false;
        RegId reg = kNoReg;
        uint64_t regValue = 0;
        bool hasReg2Write = false;  //!< push/pop second write
        RegId reg2 = kNoReg;
        uint64_t reg2Value = 0;
        bool hasMemWrite = false;
        uint32_t memAddr = 0;
        uint64_t memValue = 0;
        bool setsFlags = false;
        Flags flags;
        bool delayed = false;       //!< overlapped: commits later
        bool intAck = false;
    };

    /** How one slow-path word ended. */
    enum class WordStatus : uint8_t { Ok, PageFault, EccFault };

    uint64_t readReg(RegId r);
    void registerStats();
    /**
     * The interpreter loop, bounded by @p stop_cycle / @p stop_words
     * on top of the configured budget. Attaches the injector for the
     * slice and folds its counters into res_ at slice end.
     */
    void runUntil(uint64_t stop_cycle, uint64_t stop_words);
    /** Poll the cancellation token and wall-clock deadline. */
    void pollSupervision();
    /** Per-word observability epilogue (run only when obs is on). */
    void noteObsWord(uint32_t addr, uint64_t start_cycle, bool fast);
    /**
     * Commit due pending writes. Returns false when an overlapped
     * store page-faulted at commit time (a microtrap: the caller
     * services the page and restarts), filling @p fault_addr.
     */
    bool commitPending(uint32_t *fault_addr);
    bool hasPendingFor(RegId r) const { return pendingRegs_[r] != 0; }
    void enqueuePending(const PendingWrite &p);
    void applyTrap();
    void noteInterruptArrival();

    /**
     * Read main memory with ECC-retry recovery: an uncorrectable
     * error is retried up to the plan's retry-limit (each retry
     * costs a full memory latency and re-consults the injector).
     */
    MemAccess readMemChecked(uint32_t addr, uint64_t &out);

    /** Track a faulting restart; trips the livelock watchdog. */
    void noteFaultRestart();

    /** Fill res_.error with a snapshot and stop the run. */
    void raiseError(SimErrorKind kind, uint32_t detail,
                    std::string message);

    /**
     * Execute one word through the general path. On PageFault or
     * EccFault (the caller then traps) @p fault_addr holds the
     * faulting memory address. Fills @p next with the following uPC.
     */
    WordStatus execWordSlow(const DecodedWord &dw, uint32_t addr,
                            uint32_t &next, uint32_t &fault_addr);

    /**
     * Execute a fast-path-eligible word (pure compute, no pending
     * writes outstanding, no interrupt generation): registers are
     * written directly with per-phase buffering, no transactional
     * overlay or pending bookkeeping is touched, and nothing is
     * allocated. Cannot fault.
     */
    void execWordFast(const DecodedWord &dw, uint32_t addr,
                      uint32_t &next);

    /**
     * Try to execute natively from the current uPC: profiles the
     * address, enters its compiled region when one exists and the
     * remaining word/cycle/poll budget allows, and folds the spilled
     * exit state back in. True when at least one word retired
     * natively (the dispatch loop then continues at the exit uPC).
     */
    bool tryJitEnter(uint64_t cycle_bound, uint64_t stop_words,
                     bool supervised);

    /** Shared sequencing switch; @p mw_val is the multiway value. */
    void seqAdvance(const DecodedWord &dw, uint32_t addr,
                    uint64_t mw_val, uint32_t &next);

    /** fatal() on a malformed multiway word (pre-dispatch checks). */
    void checkMultiway(const DecodedWord &dw) const;

    bool evalCond(Cond c) const;

    const ControlStore &store_;
    const MachineDescription &mach_;
    MainMemory &mem_;
    SimConfig cfg_;

    std::vector<uint64_t> regs_;
    Flags flags_;
    uint32_t upc_ = 0;
    uint32_t restartPoint_ = 0;
    std::vector<uint32_t> microStack_;
    std::vector<PendingWrite> pending_;
    //! per-register count of outstanding pending writes: makes the
    //! hazard check in readReg() O(1)
    std::vector<uint16_t> pendingRegs_;

    bool intPending_ = false;
    uint64_t intArrivalCycle_ = 0;
    uint64_t intPeriod_ = 0;
    uint64_t intNext_ = 0;

    uint32_t entry_ = 0;        //!< begin() entry (snapshot identity)
    //! iterations until the next cancel/deadline poll (supervised
    //! runs only; steady_clock reads are too slow for every word)
    uint32_t pollCountdown_ = 0;

    /** @name JIT tier (see src/jit/) */
    /// @{
    //! null when cfg_.jit is off or the host cannot run native code
    std::unique_ptr<JitTier> jit_;
    //! resolved per run: jit_ present and no per-word hook active
    bool jitActive_ = false;
    /// @}

    //! decoded-word cache (rebuilt when the store's version changes)
    DecodedStore decoded_;
    //! cfg_.decoded: pre-decoded cache shared across simulators
    //! (null = use the private decoded_)
    const DecodedStore *sharedDecoded_ = nullptr;
    unsigned dataWidth_;

    /** @name Reusable per-word scratch (no per-word allocation) */
    /// @{
    std::vector<std::pair<RegId, uint64_t>> overlay_;
    std::vector<std::pair<uint32_t, uint64_t>> memWrites_;
    std::vector<PendingWrite> newPending_;
    std::vector<WordEffect> effects_;
    std::vector<std::pair<RegId, uint64_t>> phaseWrites_;
    /// @}

    SimResult res_;

    /** @name Observability (see src/obs/) */
    /// @{
    StatsRegistry stats_;
    Histogram *pendingDepth_ = nullptr; //!< owned by stats_
    //! trace.dropped scalar (owned by stats_); null when untraced
    uint64_t *traceDropped_ = nullptr;
    //! cached cfg_.trace / cfg_.profiler; null = disabled, and the
    //! hot loop pays one predictable branch to find out
    TraceBuffer *trace_ = nullptr;
    CycleProfiler *prof_ = nullptr;
    /// @}

    /** @name Fault injection & recovery (see src/fault/) */
    /// @{
    FaultInjector *inj_ = nullptr;  //!< cached cfg_.injector
    uint64_t lastRetire_ = 0;       //!< cycle of the last retired word
    uint32_t consecFaults_ = 0;     //!< faulting restarts in a row
    uint32_t lastFaultRestart_ = 0; //!< restart point of the last fault
    //! effective limits: cfg_ value, else the attached plan's value
    uint64_t watchdogCycles_ = 0;
    uint32_t livelockLimit_ = 0;
    uint32_t retryLimit_ = 0;
    uint32_t refetchLimit_ = 0;
    /// @}
};

} // namespace uhll

#endif // UHLL_MACHINE_SIMULATOR_HH
