/**
 * @file
 * MicroSimulator: phase-accurate execution of a control store.
 *
 * Semantics implemented (matching the survey's machine model):
 *  - A microinstruction executes all its microoperations in one
 *    microcycle; operations are grouped by phase; within one phase all
 *    reads happen before all writes (parallel, cobegin semantics);
 *    writes of phase p are visible to reads of phase p+1 (cocycle
 *    semantics).
 *  - A word is transactional with respect to page faults: if any
 *    memory access in the word faults, none of the word's register or
 *    memory writes commit.
 *  - Page-fault (microtrap) handling reproduces sec. 2.1.5: the
 *    "operating system" saves and restores the architectural
 *    registers (so their current -- possibly already modified --
 *    values survive), scrambles the non-architectural
 *    microregisters, services the page and restarts the
 *    microroutine at its restart point.
 *  - Interrupts are a pending line tested via Cond::Int and cleared
 *    by the IntAck microoperation.
 *  - Memory operations take memLatency() cycles: either stalling the
 *    engine (default) or overlapped with later words when the bound
 *    op is marked overlap (the S* "dur" construct / hand-tuned code).
 */

#ifndef UHLL_MACHINE_SIMULATOR_HH
#define UHLL_MACHINE_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "machine/control_store.hh"
#include "machine/machine_desc.hh"
#include "machine/memory.hh"
#include "machine/types.hh"

namespace uhll {

/** Knobs for a simulation run. */
struct SimConfig {
    uint64_t maxCycles = 50'000'000;
    //! fatal() when a register with a pending overlapped write is
    //! read (catches illegal hand-written overlap); when false the
    //! stale value is returned, as real hardware would.
    bool strictHazards = true;
    //! scramble non-architectural registers on a microtrap (models
    //! the OS and other firmware clobbering the micro temporaries)
    bool scrambleOnTrap = true;
    //! called before each word executes (assertion checkers, traces)
    std::function<void(uint32_t addr)> onWord;
};

/** Aggregate results of a run. */
struct SimResult {
    uint64_t cycles = 0;
    uint64_t wordsExecuted = 0;
    uint64_t pageFaults = 0;
    uint64_t interruptsServiced = 0;
    //! sum over serviced interrupts of (ack cycle - arrival cycle)
    uint64_t interruptLatencyTotal = 0;
    uint64_t memReads = 0;
    uint64_t memWrites = 0;
    bool halted = false;    //!< false: maxCycles exceeded
};

/** Executes microcode from a ControlStore against a MainMemory. */
class MicroSimulator
{
  public:
    MicroSimulator(const ControlStore &store, MainMemory &mem,
                   SimConfig cfg = SimConfig{});

    /** @name Architectural state access (tests & harnesses) */
    /// @{
    void setReg(RegId r, uint64_t v);
    uint64_t getReg(RegId r) const;
    void setReg(const std::string &name, uint64_t v);
    uint64_t getReg(const std::string &name) const;
    const Flags &flags() const { return flags_; }
    /// @}

    /**
     * Deliver an interrupt every @p period cycles starting at
     * @p first. 0 disables interrupt generation.
     */
    void interruptEvery(uint64_t period, uint64_t first = 0);

    /** Run from @p entry until Halt or the cycle budget is exhausted. */
    SimResult run(uint32_t entry);

    /** Run from a named control-store entry point. */
    SimResult run(const std::string &entry_name);

  private:
    struct PendingWrite {
        uint64_t commitCycle;
        bool isMem;
        RegId reg;
        uint32_t addr;
        uint64_t value;
    };

    uint64_t readReg(RegId r);
    void commitPending();
    bool hasPendingFor(RegId r) const;
    void applyTrap();
    void noteInterruptArrival();

    /**
     * Execute one word. Returns false if the word page-faulted (the
     * caller then traps), filling @p fault_addr with the faulting
     * memory address. Fills @p next with the following uPC.
     */
    bool execWord(const MicroInstruction &mi, uint32_t addr,
                  uint32_t &next, uint32_t &fault_addr);

    bool evalCond(Cond c) const;

    const ControlStore &store_;
    const MachineDescription &mach_;
    MainMemory &mem_;
    SimConfig cfg_;

    std::vector<uint64_t> regs_;
    Flags flags_;
    uint32_t upc_ = 0;
    uint32_t restartPoint_ = 0;
    std::vector<uint32_t> microStack_;
    std::vector<PendingWrite> pending_;

    bool intPending_ = false;
    uint64_t intArrivalCycle_ = 0;
    uint64_t intPeriod_ = 0;
    uint64_t intNext_ = 0;

    SimResult res_;
};

} // namespace uhll

#endif // UHLL_MACHINE_SIMULATOR_HH
