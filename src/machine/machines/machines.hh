/**
 * @file
 * The bundled machine descriptions.
 *
 * HM-1 -- a "clean" horizontal engine in the spirit of the HP300
 *         micro machine the YALLL authors praised: regular register
 *         file, orthogonal control word, independent move ports,
 *         hardware stack ops and a multiway branch.
 *
 * VM-2 -- a "baroque" horizontal engine in the spirit of the VAX-11
 *         micro machine the YALLL authors despaired of: partitioned
 *         register banks with per-operand class restrictions, one
 *         shared mover, overloaded control-word fields, a narrow
 *         immediate field, slow memory, no multiway branch, and no
 *         inc/dec/rotate/stack hardware.
 *
 * VS-3 -- a vertical engine in the spirit of the Burroughs B1700:
 *         one microoperation per (narrow) control word. Flexible but
 *         slow, exercising the survey's sec. 1 claim that vertical
 *         encoding trades speed for simplicity.
 *
 * Register class bits are machine-local; the accessors below expose
 * the classes the toolchain needs by role.
 */

#ifndef UHLL_MACHINE_MACHINES_MACHINES_HH
#define UHLL_MACHINE_MACHINES_MACHINES_HH

#include "machine/machine_desc.hh"

namespace uhll {

/** Register class bits shared by all bundled machines. */
namespace reg_class {
constexpr uint32_t kGpr = 1u << 0;   //!< general purpose
constexpr uint32_t kMar = 1u << 1;   //!< usable as memory address reg
constexpr uint32_t kMbr = 1u << 2;   //!< usable as memory buffer reg
constexpr uint32_t kAluA = 1u << 3;  //!< usable as ALU left input
constexpr uint32_t kAluB = 1u << 4;  //!< usable as ALU right input
constexpr uint32_t kAddr = 1u << 5;  //!< address bank (VM-2)
} // namespace reg_class

/**
 * Build the clean horizontal machine HM-1.
 * @param num_gprs size of the general register file (default 16;
 *        the E5 benchmark sweeps this up to 256, the Control Data
 *        480 figure the survey quotes). Must be a multiple of 4 and
 *        at least 8. The lower half are micro temporaries, the upper
 *        half macro-architectural; the two highest micro
 *        temporaries are compiler scratch.
 */
MachineDescription buildHm1(unsigned num_gprs = 16);

/** Build the baroque horizontal machine VM-2. */
MachineDescription buildVm2();

/** Build the vertical machine VS-3. */
MachineDescription buildVs3();

} // namespace uhll

#endif // UHLL_MACHINE_MACHINES_MACHINES_HH
