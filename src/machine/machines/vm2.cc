#include "machine/machines/machines.hh"

namespace uhll {

using namespace reg_class;

/**
 * VM-2: the baroque horizontal engine.
 *
 * Irregularities (each maps to a complaint in the survey or in the
 * YALLL paper about the VAX-11 micro machine):
 *  - partitioned register banks: r0-r3 feed only the ALU left input,
 *    r4-r7 only the right input; a0-a3 are address registers that
 *    cannot reach the ALU at all;
 *  - memory only via the dedicated mar/mbr pair, latency 3;
 *  - one shared mover, sharing its bus with the ALU result bus, so a
 *    move never packs with an ALU operation;
 *  - the shifter borrows the ALU's operand field, so shifts never
 *    pack with ALU operations either, count is immediate-only;
 *  - an 8-bit immediate field;
 *  - no inc/dec/neg/rotate/stack hardware, no multiway branch.
 */
MachineDescription
buildVm2()
{
    MachineDescription m("VM-2", 16);
    m.setNumPhases(3);
    m.setMemLatency(3);
    m.setHasMultiway(false);
    m.setScratchArea(0x80, 112);

    for (int i = 0; i < 4; ++i) {
        // r3 is reserved as the code generator's left-bank fixup temp.
        m.addRegister("r" + std::to_string(i), 16, kGpr | kAluA,
                      /*architectural=*/false, /*allocatable=*/i != 3);
    }
    for (int i = 4; i < 8; ++i) {
        // r7 is reserved as the right-bank fixup temp.
        m.addRegister("r" + std::to_string(i), 16, kGpr | kAluB,
                      /*architectural=*/i >= 6, /*allocatable=*/i != 7);
    }
    for (int i = 0; i < 4; ++i) {
        // a3 is reserved as the address-bank fixup temp.
        m.addRegister("a" + std::to_string(i), 16, kGpr | kAddr,
                      /*architectural=*/i >= 2, /*allocatable=*/i != 3);
    }
    RegId mar = m.addRegister("mar", 16, kMar, false, false);
    RegId mbr = m.addRegister("mbr", 16, kMbr, false, false);
    m.setMar(mar);
    m.setMbr(mbr);
    m.addScratchReg(*m.findRegister("r3"));
    m.addScratchReg(*m.findRegister("r7"));
    m.addScratchReg(*m.findRegister("a3"));

    FieldId f_aluop = m.addField("aluop", 3);
    FieldId f_opa = m.addField("opa", 4);   // shared: ALU-A / shifter
    FieldId f_opb = m.addField("opb", 4);
    FieldId f_dst = m.addField("dst", 4);   // shared: ALU / shifter dst
    FieldId f_shcnt = m.addField("shcnt", 4);
    FieldId f_mvsrc = m.addField("mvsrc", 5);
    FieldId f_imm = m.addField("imm", 8);
    FieldId f_mem = m.addField("mem", 2);
    m.addField("seq", 3);
    m.addField("cond", 4);
    m.addField("addr", 11);

    UnitId u_alu = m.addUnit("ALU");
    UnitId u_sh = m.addUnit("SHIFTER");
    UnitId u_mov = m.addUnit("MOVER");
    UnitId u_mem = m.addUnit("MEM");
    BusId b_a = m.addBus("ABUS");
    BusId b_b = m.addBus("BBUS");
    BusId b_r = m.addBus("RBUS");   // shared by ALU result and mover
    BusId b_m = m.addBus("MBUS");

    auto alu2 = [&](const char *mn, UKind k, bool imm) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 2;
        s.setsFlags = true;
        s.allowImm = imm;
        s.immWidth = 8;
        s.dstClasses = kAluA | kAluB;
        s.srcAClasses = kAluA;
        s.srcBClasses = imm ? 0 : kAluB;
        s.fields = {f_aluop, f_opa, f_opb, f_dst};
        if (imm)
            s.fields.push_back(f_imm);
        s.units = {u_alu};
        s.buses = imm ? std::vector<BusId>{b_a, b_r}
                      : std::vector<BusId>{b_a, b_b, b_r};
        m.addMicroOp(s);
    };
    alu2("add", UKind::Add, false);
    alu2("addi", UKind::Add, true);
    alu2("sub", UKind::Sub, false);
    alu2("subi", UKind::Sub, true);
    alu2("and", UKind::And, false);
    alu2("andi", UKind::And, true);
    alu2("or", UKind::Or, false);
    alu2("ori", UKind::Or, true);
    alu2("xor", UKind::Xor, false);
    alu2("xori", UKind::Xor, true);

    {
        MicroOpSpec s;
        s.mnemonic = "not";
        s.kind = UKind::Not;
        s.phase = 2;
        s.setsFlags = true;
        s.dstClasses = kAluA | kAluB;
        s.srcAClasses = kAluA;
        s.fields = {f_aluop, f_opa, f_dst};
        s.units = {u_alu};
        s.buses = {b_a, b_r};
        m.addMicroOp(s);
    }

    auto cmp = [&](const char *mn, bool imm) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = UKind::Cmp;
        s.phase = 2;
        s.setsFlags = true;
        s.allowImm = imm;
        s.immWidth = 8;
        s.srcAClasses = kAluA;
        s.srcBClasses = imm ? 0 : kAluB;
        s.fields = {f_aluop, f_opa, f_opb};
        if (imm)
            s.fields.push_back(f_imm);
        s.units = {u_alu};
        s.buses = {b_a, b_b};
        m.addMicroOp(s);
    };
    cmp("cmp", false);
    cmp("cmpi", true);

    // Shifter: left bank only, immediate count only; borrows the
    // ALU's operand and destination fields.
    auto shift = [&](const char *mn, UKind k) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 2;
        s.setsFlags = true;
        s.allowImm = true;
        s.immWidth = 4;
        s.dstClasses = kAluA;
        s.srcAClasses = kAluA;
        s.srcBClasses = 0;      // immediate only
        s.fields = {f_opa, f_dst, f_shcnt};
        s.units = {u_sh};
        s.buses = {b_r};
        m.addMicroOp(s);
    };
    shift("shl", UKind::Shl);
    shift("shr", UKind::Shr);
    shift("sar", UKind::Sar);

    {
        MicroOpSpec s;
        s.mnemonic = "mov";
        s.kind = UKind::Mov;
        s.phase = 1;
        s.dstClasses = kGpr | kAluA | kAluB | kAddr | kMar | kMbr;
        s.srcAClasses = kGpr | kAluA | kAluB | kAddr | kMar | kMbr;
        // The mover borrows the ALU's destination field: a move can
        // never share a word with an ALU or shifter operation.
        s.fields = {f_mvsrc, f_dst};
        s.units = {u_mov};
        s.buses = {b_r};    // shared with the ALU result bus
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "ldi";
        s.kind = UKind::Ldi;
        s.phase = 1;
        s.immWidth = 8;
        s.dstClasses = kGpr | kAluA | kAluB | kAddr | kMar | kMbr;
        s.fields = {f_imm, f_dst};
        s.units = {u_mov};
        s.buses = {b_r};
        m.addMicroOp(s);
    }

    {
        MicroOpSpec s;
        s.mnemonic = "memrd";
        s.kind = UKind::MemRead;
        s.phase = 3;
        s.latency = 3;
        s.dstClasses = kMbr;    // strictly mbr := mem[mar]
        s.srcAClasses = kMar;
        s.fields = {f_mem};
        s.units = {u_mem};
        s.buses = {b_m};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "memwr";
        s.kind = UKind::MemWrite;
        s.phase = 3;
        s.latency = 3;
        s.srcAClasses = kMar;
        s.srcBClasses = kMbr;   // strictly mem[mar] := mbr
        s.fields = {f_mem};
        s.units = {u_mem};
        s.buses = {b_m};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "intack";
        s.kind = UKind::IntAck;
        s.phase = 1;
        s.fields = {f_mem};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "nop";
        s.kind = UKind::Nop;
        s.phase = 1;
        m.addMicroOp(s);
    }

    return m;
}

} // namespace uhll
