#include "machine/machines/machines.hh"

namespace uhll {

using namespace reg_class;

/**
 * VS-3: the vertical engine. One microoperation per 24-bit control
 * word, single-phase microcycle, a regular register file (vertical
 * machines could afford regularity -- the survey notes the Burroughs
 * B1700 as the canonical user-microprogrammable vertical machine),
 * but no intra-word parallelism at all.
 */
MachineDescription
buildVs3()
{
    MachineDescription m("VS-3", 16);
    m.setNumPhases(1);
    m.setVertical(true);
    m.setMemLatency(2);
    m.setHasMultiway(false);
    m.setScratchArea(0x180, 120);

    uint32_t gpr = kGpr | kMar | kMbr | kAluA | kAluB;
    for (int i = 0; i < 16; ++i) {
        bool scratch = i == 6 || i == 7;
        m.addRegister("r" + std::to_string(i), 16, gpr,
                      /*architectural=*/i >= 8,
                      /*allocatable=*/!scratch);
    }
    m.addScratchReg(*m.findRegister("r6"));
    m.addScratchReg(*m.findRegister("r7"));
    RegId mar = m.addRegister("mar", 16, kMar, false, false);
    RegId mbr = m.addRegister("mbr", 16, kMbr | kAluA | kAluB,
                              false, false);
    m.setMar(mar);
    m.setMbr(mbr);

    // A vertical word is opcode + two operand selectors + immediate.
    FieldId f_op = m.addField("op", 5);
    FieldId f_a = m.addField("a", 5);
    FieldId f_b = m.addField("b", 5);
    FieldId f_imm = m.addField("imm", 9);

    UnitId u_alu = m.addUnit("ALU");
    UnitId u_mem = m.addUnit("MEM");

    uint32_t any = gpr;
    auto op2 = [&](const char *mn, UKind k, bool imm) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 1;
        s.setsFlags = true;
        s.allowImm = imm;
        s.immWidth = 9;
        s.dstClasses = any | kMar | kMbr;
        s.srcAClasses = any | kMar | kMbr;
        s.srcBClasses = imm ? 0 : (any | kMbr);
        s.fields = {f_op, f_a, f_b};
        if (imm)
            s.fields.push_back(f_imm);
        s.units = {u_alu};
        m.addMicroOp(s);
    };
    op2("add", UKind::Add, false);
    op2("addi", UKind::Add, true);
    op2("sub", UKind::Sub, false);
    op2("subi", UKind::Sub, true);
    op2("and", UKind::And, false);
    op2("or", UKind::Or, false);
    op2("xor", UKind::Xor, false);
    op2("shl", UKind::Shl, true);
    op2("shr", UKind::Shr, true);
    op2("sar", UKind::Sar, true);
    op2("rol", UKind::Rol, true);
    op2("ror", UKind::Ror, true);

    auto op1 = [&](const char *mn, UKind k, bool flags = true) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 1;
        s.setsFlags = flags;
        s.dstClasses = any | kMar | kMbr;
        s.srcAClasses = any | kMar | kMbr;
        s.fields = {f_op, f_a};
        s.units = {u_alu};
        m.addMicroOp(s);
    };
    op1("inc", UKind::Inc);
    op1("dec", UKind::Dec);
    op1("neg", UKind::Neg);
    op1("not", UKind::Not);
    op1("mov", UKind::Mov, false);

    {
        MicroOpSpec s;
        s.mnemonic = "cmp";
        s.kind = UKind::Cmp;
        s.phase = 1;
        s.setsFlags = true;
        s.srcAClasses = any | kMbr;
        s.srcBClasses = any | kMbr;
        s.fields = {f_op, f_a, f_b};
        s.units = {u_alu};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "cmpi";
        s.kind = UKind::Cmp;
        s.phase = 1;
        s.setsFlags = true;
        s.allowImm = true;
        s.immWidth = 9;
        s.srcAClasses = any | kMbr;
        s.fields = {f_op, f_a, f_imm};
        s.units = {u_alu};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "ldi";
        s.kind = UKind::Ldi;
        s.phase = 1;
        s.immWidth = 9;
        s.dstClasses = any | kMar | kMbr;
        s.fields = {f_op, f_a, f_imm};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "memrd";
        s.kind = UKind::MemRead;
        s.phase = 1;
        s.latency = 2;
        s.dstClasses = any | kMbr;
        s.srcAClasses = any | kMar;
        s.fields = {f_op, f_a, f_b};
        s.units = {u_mem};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "memwr";
        s.kind = UKind::MemWrite;
        s.phase = 1;
        s.latency = 2;
        s.srcAClasses = any | kMar;
        s.srcBClasses = any | kMbr;
        s.fields = {f_op, f_a, f_b};
        s.units = {u_mem};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "intack";
        s.kind = UKind::IntAck;
        s.phase = 1;
        s.fields = {f_op};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "nop";
        s.kind = UKind::Nop;
        s.phase = 1;
        m.addMicroOp(s);
    }

    return m;
}

} // namespace uhll
