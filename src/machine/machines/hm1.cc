#include "machine/machines/machines.hh"

#include "support/logging.hh"

namespace uhll {

using namespace reg_class;

/**
 * HM-1: 16-bit data paths, 3-phase microcycle
 * (phase 1: routing/constants, phase 2: compute, phase 3: writeback
 * and memory), two independent input move ports and one output move
 * port, orthogonal control word, memory latency 2, multiway branch.
 */
MachineDescription
buildHm1(unsigned num_gprs)
{
    if (num_gprs < 8 || num_gprs % 4 != 0)
        fatal("HM-1: register file size %u unsupported", num_gprs);
    MachineDescription m("HM-1", 16);
    m.setNumPhases(3);
    m.setMemLatency(2);
    m.setHasMultiway(true);
    m.setScratchArea(0xF000, 256);

    // General registers. The lower half are micro temporaries, the
    // upper half macro-architectural (saved/restored by the OS on
    // traps). The two highest micro temporaries are compiler
    // scratch and stay out of the allocator's pool.
    uint32_t gpr = kGpr | kMar | kMbr | kAluA | kAluB;
    unsigned half = num_gprs / 2;
    for (unsigned i = 0; i < num_gprs; ++i) {
        bool scratch = i == half - 2 || i == half - 1;
        m.addRegister("r" + std::to_string(i), 16, gpr,
                      /*architectural=*/i >= half,
                      /*allocatable=*/!scratch);
    }
    m.addScratchReg(static_cast<RegId>(half - 2));
    m.addScratchReg(static_cast<RegId>(half - 1));
    RegId mar = m.addRegister("mar", 16, kMar, false, false);
    RegId mbr = m.addRegister("mbr", 16, kMbr | kAluA | kAluB,
                              false, false);
    m.setMar(mar);
    m.setMbr(mbr);

    // Control-word fields. Register selector width grows with the
    // register file (the survey's Control Data 480 example has 256).
    unsigned sel = 1;
    while ((1u << sel) < num_gprs + 2)
        ++sel;
    FieldId f_aluop = m.addField("aluop", 4);
    FieldId f_alua = m.addField("alua", sel);
    FieldId f_alub = m.addField("alub", sel);
    FieldId f_aludst = m.addField("aludst", sel);
    FieldId f_shop = m.addField("shop", 3);
    FieldId f_shsrc = m.addField("shsrc", sel);
    FieldId f_shcnt = m.addField("shcnt", 4);
    FieldId f_shdst = m.addField("shdst", sel);
    FieldId f_mvasrc = m.addField("mvasrc", sel);
    FieldId f_mvadst = m.addField("mvadst", sel);
    FieldId f_mvbsrc = m.addField("mvbsrc", sel);
    FieldId f_mvbdst = m.addField("mvbdst", sel);
    FieldId f_mvcsrc = m.addField("mvcsrc", sel);
    FieldId f_mvcdst = m.addField("mvcdst", sel);
    FieldId f_imm = m.addField("imm", 16);
    FieldId f_immdst = m.addField("immdst", sel);
    FieldId f_mem = m.addField("mem", 2);
    FieldId f_memr = m.addField("memr", 10);
    m.addField("seq", 3);
    m.addField("cond", 4);
    m.addField("addr", 12);

    // Functional units and buses.
    UnitId u_alu = m.addUnit("ALU");
    UnitId u_sh = m.addUnit("SHIFTER");
    UnitId u_mova = m.addUnit("MOVA");
    UnitId u_movb = m.addUnit("MOVB");
    UnitId u_movc = m.addUnit("MOVC");
    UnitId u_mem = m.addUnit("MEM");
    BusId b_a = m.addBus("ABUS");
    BusId b_b = m.addBus("BBUS");
    BusId b_r = m.addBus("RBUS");
    BusId b_s = m.addBus("SBUS");
    BusId b_m = m.addBus("MBUS");

    uint32_t alu_in = kGpr | kMbr;
    uint32_t alu_out = kGpr | kMar | kMbr;
    uint32_t any = kGpr | kMar | kMbr;

    auto alu2 = [&](const char *mn, UKind k, bool imm) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 2;
        s.setsFlags = true;
        s.allowImm = imm;
        s.immWidth = 16;
        s.dstClasses = alu_out;
        s.srcAClasses = alu_in;
        s.srcBClasses = imm ? 0 : alu_in;
        s.fields = {f_aluop, f_alua, f_alub, f_aludst};
        if (imm)
            s.fields.push_back(f_imm);
        s.units = {u_alu};
        s.buses = imm ? std::vector<BusId>{b_a, b_r}
                      : std::vector<BusId>{b_a, b_b, b_r};
        m.addMicroOp(s);
    };
    alu2("add", UKind::Add, false);
    alu2("addi", UKind::Add, true);
    alu2("sub", UKind::Sub, false);
    alu2("subi", UKind::Sub, true);
    alu2("and", UKind::And, false);
    alu2("andi", UKind::And, true);
    alu2("or", UKind::Or, false);
    alu2("ori", UKind::Or, true);
    alu2("xor", UKind::Xor, false);
    alu2("xori", UKind::Xor, true);

    auto alu1 = [&](const char *mn, UKind k) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 2;
        s.setsFlags = true;
        s.dstClasses = alu_out;
        s.srcAClasses = alu_in;
        s.fields = {f_aluop, f_alua, f_aludst};
        s.units = {u_alu};
        s.buses = {b_a, b_r};
        m.addMicroOp(s);
    };
    alu1("inc", UKind::Inc);
    alu1("dec", UKind::Dec);
    alu1("neg", UKind::Neg);
    alu1("not", UKind::Not);

    auto cmp = [&](const char *mn, bool imm) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = UKind::Cmp;
        s.phase = 2;
        s.setsFlags = true;
        s.allowImm = imm;
        s.immWidth = 16;
        s.srcAClasses = alu_in;
        s.srcBClasses = imm ? 0 : alu_in;
        s.fields = {f_aluop, f_alua, f_alub};
        if (imm)
            s.fields.push_back(f_imm);
        s.units = {u_alu};
        s.buses = {b_a, b_b};
        m.addMicroOp(s);
    };
    cmp("cmp", false);
    cmp("cmpi", true);

    auto shift = [&](const char *mn, UKind k) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = k;
        s.phase = 2;
        s.setsFlags = true;
        s.allowImm = true;
        s.immWidth = 4;
        s.dstClasses = alu_out;
        s.srcAClasses = alu_in;
        s.srcBClasses = alu_in;
        s.fields = {f_shop, f_shsrc, f_shcnt, f_shdst};
        s.units = {u_sh};
        s.buses = {b_s};
        m.addMicroOp(s);
    };
    shift("shl", UKind::Shl);
    shift("shr", UKind::Shr);
    shift("sar", UKind::Sar);
    shift("rol", UKind::Rol);
    shift("ror", UKind::Ror);

    auto mover = [&](const char *mn, uint8_t phase, FieldId fs,
                     FieldId fd, UnitId u) {
        MicroOpSpec s;
        s.mnemonic = mn;
        s.kind = UKind::Mov;
        s.phase = phase;
        s.dstClasses = any;
        s.srcAClasses = any;
        s.fields = {fs, fd};
        s.units = {u};
        m.addMicroOp(s);
    };
    mover("mova", 1, f_mvasrc, f_mvadst, u_mova);
    mover("movb", 1, f_mvbsrc, f_mvbdst, u_movb);
    mover("movc", 3, f_mvcsrc, f_mvcdst, u_movc);

    {
        MicroOpSpec s;
        s.mnemonic = "ldi";
        s.kind = UKind::Ldi;
        s.phase = 1;
        s.immWidth = 16;
        s.dstClasses = any;
        s.fields = {f_imm, f_immdst};
        m.addMicroOp(s);
    }

    {
        MicroOpSpec s;
        s.mnemonic = "memrd";
        s.kind = UKind::MemRead;
        s.phase = 3;
        s.latency = 2;
        s.dstClasses = kGpr | kMbr;
        s.srcAClasses = kGpr | kMar;
        s.fields = {f_mem, f_memr};
        s.units = {u_mem};
        s.buses = {b_m};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "memwr";
        s.kind = UKind::MemWrite;
        s.phase = 3;
        s.latency = 2;
        s.srcAClasses = kGpr | kMar;
        s.srcBClasses = kGpr | kMbr;
        s.fields = {f_mem, f_memr};
        s.units = {u_mem};
        s.buses = {b_m};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "push";
        s.kind = UKind::Push;
        s.phase = 3;
        s.latency = 2;
        s.srcAClasses = kGpr;
        s.srcBClasses = kGpr | kMbr;
        s.fields = {f_mem, f_memr};
        s.units = {u_mem};
        s.buses = {b_m};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "pop";
        s.kind = UKind::Pop;
        s.phase = 3;
        s.latency = 2;
        s.dstClasses = kGpr | kMbr;
        s.srcAClasses = kGpr;
        s.fields = {f_mem, f_memr};
        s.units = {u_mem};
        s.buses = {b_m};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "intack";
        s.kind = UKind::IntAck;
        s.phase = 1;
        s.fields = {f_mem};
        m.addMicroOp(s);
    }
    {
        MicroOpSpec s;
        s.mnemonic = "nop";
        s.kind = UKind::Nop;
        s.phase = 1;
        m.addMicroOp(s);
    }

    return m;
}

} // namespace uhll
