/**
 * @file
 * Shared evaluation of the pure compute microoperation kinds.
 *
 * Both the machine simulator and the MIR reference interpreter call
 * this one function, so the two execution paths agree by construction
 * -- the differential property tests rely on that.
 */

#ifndef UHLL_MACHINE_ALU_HH
#define UHLL_MACHINE_ALU_HH

#include <cstdint>

#include "machine/types.hh"

namespace uhll {

/** Result of evaluating a compute kind. */
struct AluOut {
    uint64_t value = 0;     //!< truncated to width
    Flags flags;            //!< flags the operation produces
    bool wrote = true;      //!< false for Cmp (flags only)
};

/**
 * Evaluate a pure compute kind (@c Add through @c Ldi plus @c Cmp).
 *
 * @param k the operation; must not be a memory/stack/control kind
 * @param a first operand (Ldi ignores it)
 * @param b second operand / immediate / shift count (unary ops
 *          ignore it; Ldi takes the immediate here)
 * @param width data path width in bits
 */
AluOut aluEval(UKind k, uint64_t a, uint64_t b, unsigned width);

/** True if @p k is handled by aluEval(). */
bool aluHandles(UKind k);

} // namespace uhll

#endif // UHLL_MACHINE_ALU_HH
