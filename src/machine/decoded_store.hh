/**
 * @file
 * DecodedStore: the simulator's per-ControlStore decoded-word cache.
 *
 * The interpreter loop used to re-scan every word's ops once per
 * phase and chase MicroOpSpec / RegisterInfo pointers per op per
 * execution. Everything derivable from the static machine
 * description is instead resolved here once per word: ops are
 * bucketed and ordered by phase with their semantic kind, operand
 * presence, destination width mask and pre-truncated immediate
 * inlined, and static word facts (touches memory, uses overlap,
 * pure-ALU fast-path eligibility, memory stall cycles) are computed
 * up front.
 */

#ifndef UHLL_MACHINE_DECODED_STORE_HH
#define UHLL_MACHINE_DECODED_STORE_HH

#include <cstdint>
#include <vector>

#include "machine/types.hh"

namespace uhll {

class ControlStore;
class MachineDescription;

/**
 * One microoperation resolved against the machine description. All
 * repertoire and register-file lookups happen at decode time; the
 * interpreter loop reads only this struct.
 */
struct DecodedOp {
    UKind kind = UKind::Nop;
    uint8_t phase = 1;
    bool setsFlags = false;
    bool useImm = false;    //!< b operand is @c imm (always for Ldi)
    bool overlap = false;   //!< memory op commits via the pending queue
    bool hasSrcA = false;
    bool hasSrcB = false;
    RegId dst = kNoReg;
    RegId srcA = kNoReg;
    RegId srcB = kNoReg;
    uint64_t imm = 0;       //!< pre-truncated to the data width
    uint64_t dstMask = 0;   //!< bitMask(dst register width); 0 = no dst
};

/**
 * A pre-decoded control word: ops sorted by phase (Nops dropped),
 * sequencing copied out of the MicroInstruction, and the static word
 * facts the simulator's dispatch needs.
 */
struct DecodedWord {
    std::vector<DecodedOp> ops;
    SeqKind seq = SeqKind::Next;
    Cond cond = Cond::Always;
    uint32_t target = 0;
    RegId mwReg = kNoReg;   //!< multiway dispatch register
    uint64_t mwMask = 0;
    bool restart = false;
    //! every op is pure compute: the word cannot fault, stall, ack an
    //! interrupt or enqueue a pending write, so it is eligible for
    //! the zero-allocation fast path
    bool fastEligible = false;
    bool touchesMem = false;    //!< some op can page-fault
    bool usesOverlap = false;   //!< some op enqueues a pending write
    bool writesFlags = false;
    //! static stall: non-overlapped memory ops cost memLatency-1
    //! extra cycles; a word's stall does not depend on dynamic state
    uint32_t stallCycles = 0;
};

/**
 * Decoded-word cache for one ControlStore, built by the simulator at
 * construction. Words are decoded lazily on first execution so that
 * malformed words which never run keep failing exactly when the
 * un-cached interpreter would have failed. The cache watches the
 * store's mutation version (ControlStore::version()) and re-syncs at
 * every run() start, so patched words are re-decoded.
 */
class DecodedStore
{
  public:
    DecodedStore(const ControlStore &store,
                 const MachineDescription &mach);

    /** Invalidate and resize if the store changed since last sync. */
    void sync();

    /** The decoded word at @p addr, decoding it on first use. */
    const DecodedWord &word(uint32_t addr)
    {
        if (addr < slots_.size() && slots_[addr].ready)
            return slots_[addr].dw;
        return decodeAt(addr);
    }

    /**
     * Non-decoding fetch: the decoded word at @p addr if that slot is
     * already ready, else null. The JIT region builder walks the store
     * through this so that words the interpreter never executed stay
     * undecoded (and malformed ones keep failing exactly when the
     * interpreter would first touch them).
     */
    const DecodedWord *peek(uint32_t addr) const
    {
        if (addr < slots_.size() && slots_[addr].ready)
            return &slots_[addr].dw;
        return nullptr;
    }

    /** Number of word slots (the store's current size). */
    size_t size() const { return slots_.size(); }

    /**
     * Eagerly decode every word so the cache can be shared read-only
     * between concurrently running simulators (SimConfig::decoded).
     * After this, wordAt() serves any in-range fetch without
     * mutation. Unlike the lazy path, malformed words fail here --
     * callers share only stores produced by the in-tree compiler and
     * assembler, whose words are well-formed by construction.
     */
    void decodeAll();

    /**
     * Const fetch for a fully pre-decoded cache; panics if @p addr
     * was never decoded (i.e. decodeAll() was not run or the store
     * grew since).
     */
    const DecodedWord &wordAt(uint32_t addr) const;

    /** True when every current word has been decoded. */
    bool fullyDecoded() const { return decoded_ == slots_.size(); }

    /** The store version this cache was last synced against. */
    uint64_t syncedVersion() const { return version_; }

    /**
     * Upper bound on ops per word over the whole store (from the raw
     * words, so it is valid before any word is decoded). Used to size
     * the simulator's reusable scratch buffers.
     */
    size_t maxOpsPerWord() const { return maxOps_; }

  private:
    struct Slot {
        DecodedWord dw;
        bool ready = false;
    };

    const DecodedWord &decodeAt(uint32_t addr);

    const ControlStore &store_;
    const MachineDescription &mach_;
    std::vector<Slot> slots_;
    uint64_t version_ = ~0ULL;
    size_t maxOps_ = 0;
    size_t decoded_ = 0;    //!< slots currently ready
};

} // namespace uhll

#endif // UHLL_MACHINE_DECODED_STORE_HH
