#include "machine/decoded_store.hh"

#include <algorithm>

#include "machine/alu.hh"
#include "machine/control_store.hh"
#include "machine/machine_desc.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

DecodedStore::DecodedStore(const ControlStore &store,
                           const MachineDescription &mach)
    : store_(store), mach_(mach)
{
    sync();
}

void
DecodedStore::sync()
{
    if (version_ == store_.version() && slots_.size() == store_.size())
        return;
    slots_.clear();
    slots_.resize(store_.size());
    maxOps_ = 0;
    decoded_ = 0;
    for (uint32_t a = 0; a < store_.size(); ++a)
        maxOps_ = std::max(maxOps_, store_.word(a).ops.size());
    version_ = store_.version();
}

const DecodedWord &
DecodedStore::decodeAt(uint32_t addr)
{
    // Out-of-range fetches go through the store's own bounds check
    // (panics exactly like the un-cached fetch did).
    const MicroInstruction &mi = store_.word(addr);
    if (addr >= slots_.size())
        slots_.resize(store_.size());
    if (mi.seq == SeqKind::Multiway && mi.mwReg != kNoReg)
        (void)mach_.reg(mi.mwReg);

    const unsigned w = mach_.dataWidth();
    DecodedWord dw;
    dw.seq = mi.seq;
    dw.cond = mi.cond;
    dw.target = mi.target;
    dw.mwReg = mi.mwReg;
    dw.mwMask = mi.mwMask;
    dw.restart = mi.restart;
    dw.fastEligible = true;

    dw.ops.reserve(mi.ops.size());
    for (const BoundOp &op : mi.ops) {
        const MicroOpSpec &s = mach_.uop(op.spec);
        if (s.kind == UKind::Nop)
            continue;
        DecodedOp d;
        d.kind = s.kind;
        d.phase = s.phase;
        d.setsFlags = s.setsFlags;
        d.overlap = op.overlap;
        d.hasSrcA = uKindHasSrcA(s.kind);
        d.hasSrcB = uKindHasSrcB(s.kind);
        // Ldi always takes its immediate; other kinds only when the
        // bound op says so. aluEval() truncates its operands to the
        // data width, so pre-truncating here is exact.
        d.useImm = op.useImm || s.kind == UKind::Ldi;
        d.imm = truncBits(op.imm, w);
        d.dst = op.dst;
        d.srcA = op.srcA;
        d.srcB = op.srcB;
        // Validate every register id the op will use, so the
        // interpreter loop can index the register file unchecked.
        // reg() panics on a bad id, at the word's first execution
        // (lazy decode), like the un-cached interpreter did.
        if (uKindHasDst(s.kind))
            d.dstMask = mach_.regMask(op.dst);
        if (d.hasSrcA)
            (void)mach_.reg(op.srcA);
        if (d.hasSrcB && !d.useImm)
            (void)mach_.reg(op.srcB);

        if (!aluHandles(s.kind)) {
            dw.fastEligible = false;
            if (uKindFaults(s.kind)) {
                dw.touchesMem = true;
                bool delayed = op.overlap &&
                               (s.kind == UKind::MemRead ||
                                s.kind == UKind::MemWrite);
                if (delayed)
                    dw.usesOverlap = true;
                else if (mach_.memLatency() > 1)
                    dw.stallCycles = mach_.memLatency() - 1;
            }
        }
        if (s.setsFlags)
            dw.writesFlags = true;
        dw.ops.push_back(d);
    }

    // Bucket by phase; stable so same-phase ops keep program order
    // (flag-latch updates and overlay commits depend on it).
    std::stable_sort(dw.ops.begin(), dw.ops.end(),
                     [](const DecodedOp &a, const DecodedOp &b) {
                         return a.phase < b.phase;
                     });

    Slot &slot = slots_[addr];
    slot.dw = std::move(dw);
    if (!slot.ready)
        ++decoded_;
    slot.ready = true;
    return slot.dw;
}

void
DecodedStore::decodeAll()
{
    sync();
    for (uint32_t a = 0; a < slots_.size(); ++a) {
        if (!slots_[a].ready)
            (void)decodeAt(a);
    }
}

const DecodedWord &
DecodedStore::wordAt(uint32_t addr) const
{
    if (addr >= slots_.size() || !slots_[addr].ready) {
        panic("shared decoded cache: word 0x%04x not pre-decoded",
              addr);
    }
    return slots_[addr].dw;
}

} // namespace uhll
