/**
 * @file
 * ControlStore: the writable micro memory of a machine.
 *
 * Words are kept in decoded form (MicroInstruction); the encoded size
 * in bits is derived from the machine's control-word width, which is
 * the code-size metric used throughout the benchmarks.
 */

#ifndef UHLL_MACHINE_CONTROL_STORE_HH
#define UHLL_MACHINE_CONTROL_STORE_HH

#include <string>
#include <vector>

#include "machine/types.hh"

namespace uhll {

class MachineDescription;

/**
 * Optional per-word provenance used by the observability layer: the
 * source line (masm) or -1, and a short description (the source text
 * for masm, the function/block and microop mnemonics for compiled
 * code). Attached by the producers, consumed by the profiler's hot
 * word / hot line reports and the trace dumpers.
 */
struct SourceNote {
    int32_t line = -1;
    std::string what;
};

/** A sequence of microinstructions plus named entry points. */
class ControlStore
{
  public:
    explicit ControlStore(const MachineDescription &mach)
        : mach_(&mach)
    {}

    const MachineDescription &machine() const { return *mach_; }

    /** Append a word; returns its address. */
    uint32_t append(MicroInstruction mi);

    size_t size() const { return words_.size(); }
    bool empty() const { return words_.empty(); }

    const MicroInstruction &word(uint32_t addr) const;
    MicroInstruction &word(uint32_t addr);

    /**
     * Mutation counter: bumped by append() and by every mutable
     * word() access. Decoded-word caches (DecodedStore) compare it to
     * know when their pre-decoded state is stale.
     */
    uint64_t version() const { return version_; }

    /** Define a named entry point at @p addr. */
    void defineEntry(const std::string &name, uint32_t addr);

    /** Look up a named entry point; fatal() if absent. */
    uint32_t entry(const std::string &name) const;

    bool hasEntry(const std::string &name) const;

    /**
     * Attach a source note to @p addr. Provenance only: does not
     * invalidate decoded caches.
     */
    void annotate(uint32_t addr, int32_t line, std::string what);

    /** The note for @p addr, or null when unannotated. */
    const SourceNote *note(uint32_t addr) const;

    bool hasNotes() const { return !notes_.empty(); }

    /** True when some note carries a real source line (masm input). */
    bool hasLineNumbers() const;

    /** Total encoded size in bits (words * control-word width). */
    uint64_t sizeBits() const;

    /** Disassembly listing for debugging and golden tests. */
    std::string listing() const;

  private:
    const MachineDescription *mach_;
    std::vector<MicroInstruction> words_;
    std::vector<std::pair<std::string, uint32_t>> entries_;
    std::vector<SourceNote> notes_;     //!< parallel to words_, lazy
    uint64_t version_ = 0;
};

} // namespace uhll

#endif // UHLL_MACHINE_CONTROL_STORE_HH
