#include "machine/simulator.hh"

#include <algorithm>

#include "machine/alu.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

MicroSimulator::MicroSimulator(const ControlStore &store,
                               MainMemory &mem, SimConfig cfg)
    : store_(store), mach_(store.machine()), mem_(mem), cfg_(cfg),
      regs_(store.machine().numRegisters(), 0)
{
    if (mem.width() != mach_.dataWidth())
        fatal("simulator: memory width %u != machine data width %u",
              mem.width(), mach_.dataWidth());
}

void
MicroSimulator::setReg(RegId r, uint64_t v)
{
    regs_.at(r) = truncBits(v, mach_.reg(r).width);
}

uint64_t
MicroSimulator::getReg(RegId r) const
{
    return regs_.at(r);
}

void
MicroSimulator::setReg(const std::string &name, uint64_t v)
{
    auto r = mach_.findRegister(name);
    if (!r)
        fatal("simulator: no register '%s'", name.c_str());
    setReg(*r, v);
}

uint64_t
MicroSimulator::getReg(const std::string &name) const
{
    auto r = mach_.findRegister(name);
    if (!r)
        fatal("simulator: no register '%s'", name.c_str());
    return getReg(*r);
}

void
MicroSimulator::interruptEvery(uint64_t period, uint64_t first)
{
    intPeriod_ = period;
    intNext_ = period ? first : ~0ULL;
}

uint64_t
MicroSimulator::readReg(RegId r)
{
    if (hasPendingFor(r)) {
        if (cfg_.strictHazards)
            fatal("simulator: register '%s' read while an overlapped "
                  "write is pending (cycle %llu)",
                  mach_.reg(r).name.c_str(),
                  (unsigned long long)res_.cycles);
        // non-strict: hardware returns the stale value
    }
    return regs_.at(r);
}

bool
MicroSimulator::hasPendingFor(RegId r) const
{
    for (const auto &p : pending_) {
        if (!p.isMem && p.reg == r)
            return true;
    }
    return false;
}

void
MicroSimulator::commitPending()
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->commitCycle <= res_.cycles) {
            if (it->isMem) {
                if (!mem_.write(it->addr, it->value))
                    fatal("simulator: overlapped store faulted at "
                          "commit (addr %u)", it->addr);
            } else {
                regs_[it->reg] =
                    truncBits(it->value, mach_.reg(it->reg).width);
            }
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
}

void
MicroSimulator::noteInterruptArrival()
{
    if (intPeriod_ && !intPending_ && res_.cycles >= intNext_) {
        intPending_ = true;
        intArrivalCycle_ = res_.cycles;
        intNext_ += intPeriod_;
    }
}

void
MicroSimulator::applyTrap()
{
    ++res_.pageFaults;
    // The macro-level OS saves and restores architectural registers
    // around fault service, so their current values survive. The
    // micro temporaries do not: other firmware runs meanwhile.
    if (cfg_.scrambleOnTrap) {
        for (RegId r = 0; r < regs_.size(); ++r) {
            if (!mach_.reg(r).architectural)
                regs_[r] = truncBits(0xDEAD ^ (0x101ULL * r),
                                     mach_.reg(r).width);
        }
    }
    flags_ = Flags{};
    microStack_.clear();
    pending_.clear();
    upc_ = restartPoint_;
}

bool
MicroSimulator::evalCond(Cond c) const
{
    switch (c) {
      case Cond::Always: return true;
      case Cond::Z: return flags_.z;
      case Cond::NZ: return !flags_.z;
      case Cond::Neg: return flags_.n;
      case Cond::NonNeg: return !flags_.n;
      case Cond::C: return flags_.c;
      case Cond::NC: return !flags_.c;
      case Cond::UF: return flags_.uf;
      case Cond::NoUF: return !flags_.uf;
      case Cond::Ovf: return flags_.ovf;
      case Cond::Int: return intPending_;
      case Cond::NoInt: return !intPending_;
    }
    return false;
}

namespace {

/** Buffered effect of one microoperation within a word. */
struct Effect {
    bool hasRegWrite = false;
    RegId reg = kNoReg;
    uint64_t regValue = 0;
    bool hasReg2Write = false;      // push/pop second write
    RegId reg2 = kNoReg;
    uint64_t reg2Value = 0;
    bool hasMemWrite = false;
    uint32_t memAddr = 0;
    uint64_t memValue = 0;
    bool setsFlags = false;
    Flags flags;
    bool delayed = false;           // overlapped: commits later
    bool intAck = false;
};

} // namespace

bool
MicroSimulator::execWord(const MicroInstruction &mi, uint32_t addr,
                         uint32_t &next, uint32_t &fault_addr)
{
    auto faulted = [&](uint32_t a) {
        fault_addr = a;
        return false;
    };
    // Overlay of register values built up phase by phase; the real
    // register file is only updated if the whole word succeeds.
    std::vector<std::pair<RegId, uint64_t>> overlay;
    auto ovRead = [&](RegId r) -> uint64_t {
        for (auto it = overlay.rbegin(); it != overlay.rend(); ++it) {
            if (it->first == r)
                return it->second;
        }
        return readReg(r);
    };

    std::vector<std::pair<uint32_t, uint64_t>> mem_writes;
    std::vector<PendingWrite> new_pending;
    Flags new_flags = flags_;
    bool flags_dirty = false;
    unsigned stall = 0;
    bool int_acked = false;

    unsigned w = mach_.dataWidth();

    for (unsigned phase = 1; phase <= mach_.numPhases(); ++phase) {
        std::vector<Effect> effects;
        for (const BoundOp &op : mi.ops) {
            const MicroOpSpec &s = mach_.uop(op.spec);
            if (s.phase != phase)
                continue;

            uint64_t a = uKindHasSrcA(s.kind) ? ovRead(op.srcA) : 0;
            uint64_t b = 0;
            if (uKindHasSrcB(s.kind))
                b = op.useImm ? truncBits(op.imm, w) : ovRead(op.srcB);

            Effect e;
            e.setsFlags = s.setsFlags;
            auto write = [&](RegId r, uint64_t v) {
                e.hasRegWrite = true;
                e.reg = r;
                e.regValue = truncBits(v, mach_.reg(r).width);
            };

            if (aluHandles(s.kind)) {
                AluOut r = aluEval(s.kind, a,
                                   s.kind == UKind::Ldi ? op.imm : b,
                                   w);
                e.flags = r.flags;
                if (r.wrote)
                    write(op.dst, r.value);
                effects.push_back(std::move(e));
                continue;
            }

            switch (s.kind) {
              default:
                panic("simulator: unexpected kind %s",
                      uKindName(s.kind));
              case UKind::Nop:
                break;
              case UKind::MemRead: {
                uint64_t v;
                if (!mem_.read(static_cast<uint32_t>(a), v))
                    return faulted(static_cast<uint32_t>(a));
                ++res_.memReads;
                if (op.overlap) {
                    e.delayed = true;
                    e.hasRegWrite = true;
                    e.reg = op.dst;
                    e.regValue = truncBits(v, mach_.reg(op.dst).width);
                } else {
                    write(op.dst, v);
                    stall = std::max(stall, mach_.memLatency() - 1);
                }
                break;
              }
              case UKind::MemWrite: {
                if (!mem_.pagePresent(static_cast<uint32_t>(a)))
                    return faulted(static_cast<uint32_t>(a));
                ++res_.memWrites;
                e.hasMemWrite = true;
                e.memAddr = static_cast<uint32_t>(a);
                e.memValue = b;
                if (op.overlap)
                    e.delayed = true;
                else
                    stall = std::max(stall, mach_.memLatency() - 1);
                break;
              }
              case UKind::Push: {
                uint64_t sp = truncBits(a + 1, w);
                if (!mem_.pagePresent(static_cast<uint32_t>(sp)))
                    return faulted(static_cast<uint32_t>(sp));
                ++res_.memWrites;
                e.hasMemWrite = true;
                e.memAddr = static_cast<uint32_t>(sp);
                e.memValue = b;
                e.hasRegWrite = true;
                e.reg = op.srcA;
                e.regValue = sp;
                stall = std::max(stall, mach_.memLatency() - 1);
                break;
              }
              case UKind::Pop: {
                uint64_t v;
                if (!mem_.read(static_cast<uint32_t>(a), v))
                    return faulted(static_cast<uint32_t>(a));
                ++res_.memReads;
                write(op.dst, v);
                e.hasReg2Write = true;
                e.reg2 = op.srcA;
                e.reg2Value = truncBits(a - 1, w);
                stall = std::max(stall, mach_.memLatency() - 1);
                break;
              }
              case UKind::NewBlock:
                panic("simulator: NewBlock not supported by any "
                      "bundled machine");
              case UKind::IntAck:
                e.intAck = true;
                break;
            }
            effects.push_back(std::move(e));
        }

        // All reads of this phase happened; commit the phase's writes
        // to the overlay so the next phase observes them.
        for (const Effect &e : effects) {
            if (e.delayed) {
                PendingWrite p;
                p.commitCycle = res_.cycles + mach_.memLatency();
                if (e.hasMemWrite) {
                    p.isMem = true;
                    p.addr = e.memAddr;
                    p.value = truncBits(e.memValue, w);
                } else {
                    p.isMem = false;
                    p.reg = e.reg;
                    p.value = e.regValue;
                }
                new_pending.push_back(p);
                continue;
            }
            if (e.hasRegWrite)
                overlay.emplace_back(e.reg, e.regValue);
            if (e.hasReg2Write)
                overlay.emplace_back(e.reg2, e.reg2Value);
            if (e.hasMemWrite)
                mem_writes.emplace_back(e.memAddr,
                                        truncBits(e.memValue, w));
            if (e.setsFlags) {
                new_flags = e.flags;
                flags_dirty = true;
            }
            if (e.intAck && intPending_) {
                intPending_ = false;
                int_acked = true;
            }
        }
    }

    // The word succeeded: commit everything.
    for (auto &[r, v] : overlay)
        regs_[r] = v;
    for (auto &[a, v] : mem_writes) {
        if (!mem_.write(a, v))
            panic("simulator: committed store faulted (addr %u)", a);
    }
    for (auto &p : new_pending)
        pending_.push_back(p);
    if (flags_dirty)
        flags_ = new_flags;
    if (int_acked) {
        ++res_.interruptsServiced;
        res_.interruptLatencyTotal += res_.cycles - intArrivalCycle_;
    }

    res_.cycles += 1 + stall;

    // Sequencing (conditions see the flags produced by this word).
    switch (mi.seq) {
      case SeqKind::Next:
        next = addr + 1;
        break;
      case SeqKind::Jump:
        next = mi.target;
        break;
      case SeqKind::CondJump:
        next = evalCond(mi.cond) ? mi.target : addr + 1;
        break;
      case SeqKind::Call:
        if (microStack_.size() >= 16)
            fatal("simulator: micro return stack overflow");
        microStack_.push_back(addr + 1);
        next = mi.target;
        break;
      case SeqKind::Return:
        if (microStack_.empty())
            fatal("simulator: micro return stack underflow");
        next = microStack_.back();
        microStack_.pop_back();
        break;
      case SeqKind::Multiway: {
        if (!mach_.hasMultiway())
            fatal("simulator: machine %s has no multiway branch",
                  mach_.name().c_str());
        if (mi.mwReg == kNoReg)
            fatal("simulator: multiway without dispatch register");
        uint64_t v = ovRead(mi.mwReg);
        next = mi.target +
               static_cast<uint32_t>(compressBits(v, mi.mwMask));
        break;
      }
      case SeqKind::Halt:
        next = addr;
        res_.halted = true;
        break;
    }
    return true;
}

SimResult
MicroSimulator::run(uint32_t entry)
{
    res_ = SimResult{};
    upc_ = entry;
    restartPoint_ = entry;
    microStack_.clear();
    pending_.clear();
    flags_ = Flags{};
    intPending_ = false;

    while (!res_.halted && res_.cycles < cfg_.maxCycles) {
        commitPending();
        noteInterruptArrival();

        const MicroInstruction &mi = store_.word(upc_);
        if (cfg_.onWord)
            cfg_.onWord(upc_);
        if (mi.restart)
            restartPoint_ = upc_;

        uint32_t next = upc_ + 1;
        uint32_t fault_addr = 0;
        if (execWord(mi, upc_, next, fault_addr)) {
            ++res_.wordsExecuted;
            upc_ = next;
        } else {
            // Page fault: service it, restart the microroutine.
            mem_.servicePage(fault_addr);
            applyTrap();
            // fault service costs time at macro level; charge a
            // nominal constant so fault-heavy runs are visible
            res_.cycles += 50;
        }
    }
    return res_;
}

SimResult
MicroSimulator::run(const std::string &entry_name)
{
    return run(store_.entry(entry_name));
}

} // namespace uhll
