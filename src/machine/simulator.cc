#include "machine/simulator.hh"

#include <algorithm>

#include "fault/fault.hh"
#include "jit/jit.hh"
#include "machine/alu.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace uhll {

const char *
simErrorKindName(SimErrorKind k)
{
    switch (k) {
      case SimErrorKind::None: return "none";
      case SimErrorKind::WatchdogStall: return "watchdog-stall";
      case SimErrorKind::RestartLivelock: return "restart-livelock";
      case SimErrorKind::ParityUnrecoverable:
        return "parity-unrecoverable";
      case SimErrorKind::Cancelled: return "cancelled";
      case SimErrorKind::DeadlineExceeded: return "deadline-exceeded";
      case SimErrorKind::WorkerCrashed: return "worker-crashed";
    }
    return "?";
}

bool
simErrorRecoverable(SimErrorKind k)
{
    return k == SimErrorKind::WatchdogStall ||
           k == SimErrorKind::RestartLivelock;
}

std::string
SimResult::toJson(bool pretty) const
{
    JsonWriter w(pretty);
    w.beginObject();
    w.value("cycles", cycles);
    w.value("words_executed", wordsExecuted);
    w.value("page_faults", pageFaults);
    w.value("interrupts_serviced", interruptsServiced);
    w.value("interrupt_latency_total", interruptLatencyTotal);
    w.value("mem_reads", memReads);
    w.value("mem_writes", memWrites);
    w.value("halted", halted);
    w.value("fast_path_words", fastPathWords);
    w.value("slow_path_words", slowPathWords);
    w.value("pending_high_water", pendingHighWater);
    w.value("faults_injected", faultsInjected);
    w.value("ecc_corrected", eccCorrected);
    w.value("ecc_double_bit", eccDoubleBit);
    w.value("parity_refetches", parityRefetches);
    w.value("mem_retries", memRetries);
    w.value("spurious_interrupts", spuriousInterrupts);
    w.value("jitter_cycles", jitterCycles);
    w.value("watchdog_trips", watchdogTrips);
    w.value("fault_seed", faultSeed);
    w.value("ok", ok());
    if (error) {
        w.beginObject("error");
        w.value("kind", simErrorKindName(error.kind));
        w.value("message", error.message);
        w.value("cycle", error.cycle);
        w.value("upc", uint64_t(error.upc));
        w.value("restart_point", uint64_t(error.restartPoint));
        w.beginObject("regs");
        for (const auto &[name, val] : error.regs)
            w.value(name, val);
        w.endObject();
        w.endObject();
    }
    w.endObject();
    return w.str();
}

MicroSimulator::MicroSimulator(const ControlStore &store,
                               MainMemory &mem, SimConfig cfg)
    : store_(store), mach_(store.machine()), mem_(mem),
      cfg_(std::move(cfg)),
      regs_(store.machine().numRegisters(), 0),
      pendingRegs_(store.machine().numRegisters(), 0),
      decoded_(store, store.machine()),
      dataWidth_(store.machine().dataWidth())
{
    if (mem.width() != mach_.dataWidth())
        fatal("simulator: memory width %u != machine data width %u",
              mem.width(), mach_.dataWidth());
    // The native tier needs imm32-encodable width masks; every
    // in-tree machine is 16-bit, the gate is belt and braces.
    if (cfg_.jit && dataWidth_ >= 1 && dataWidth_ <= 31 &&
        JitTier::available()) {
        jit_ = std::make_unique<JitTier>(
            mach_, cfg_.jitThreshold ? cfg_.jitThreshold : 64,
            cfg_.jitCache);
    }
    registerStats();
}

MicroSimulator::~MicroSimulator() = default;

void
MicroSimulator::registerStats()
{
    // Every counter is bound to res_, the same storage the
    // interpreter loop already bumps: registration is free on the
    // hot path, and the registry (hence --stats-json and the bench
    // JSON) can never drift out of sync with SimResult.
    stats_.bindScalar("sim.cycles", &res_.cycles,
                      "microcycles simulated");
    stats_.bindScalar("sim.wordsExecuted", &res_.wordsExecuted,
                      "microwords retired");
    stats_.bindScalar("sim.pageFaults", &res_.pageFaults,
                      "page faults (microtraps) serviced");
    stats_.bindScalar("sim.interruptsServiced",
                      &res_.interruptsServiced,
                      "interrupts acknowledged");
    stats_.bindScalar("sim.interruptLatencyTotal",
                      &res_.interruptLatencyTotal,
                      "sum of arrival-to-ack latencies");
    stats_.bindScalar("sim.memReads", &res_.memReads,
                      "main memory reads");
    stats_.bindScalar("sim.memWrites", &res_.memWrites,
                      "main memory writes");
    stats_.bindScalar("sim.fastPathWords", &res_.fastPathWords,
                      "words retired on the pure-ALU fast path");
    stats_.bindScalar("sim.slowPathWords", &res_.slowPathWords,
                      "words retired through the general path");
    stats_.bindScalar("sim.pendingHighWater", &res_.pendingHighWater,
                      "max depth of the overlapped-write queue");
    stats_.bindScalar("sim.faultsInjected", &res_.faultsInjected,
                      "fault events injected");
    stats_.bindScalar("sim.eccCorrected", &res_.eccCorrected,
                      "single-bit read errors corrected by ECC");
    stats_.bindScalar("sim.eccDoubleBit", &res_.eccDoubleBit,
                      "uncorrectable (double-bit) read errors");
    stats_.bindScalar("sim.parityRefetches", &res_.parityRefetches,
                      "control-store words re-fetched on bad parity");
    stats_.bindScalar("sim.memRetries", &res_.memRetries,
                      "memory reads retried after an ECC error");
    stats_.bindScalar("sim.spuriousInterrupts",
                      &res_.spuriousInterrupts,
                      "injected spurious interrupt arrivals");
    stats_.bindScalar("sim.jitterCycles", &res_.jitterCycles,
                      "extra memory-latency cycles injected");
    stats_.bindScalar("sim.watchdogTrips", &res_.watchdogTrips,
                      "runaway runs converted to structured errors");
    pendingDepth_ = &stats_.histogram(
        "sim.pendingDepth", 1, 8,
        "overlapped-write queue depth at enqueue");
    if (cfg_.trace) {
        // Ring truncation must be visible in stats dumps, not only in
        // the text export. A pure function of the traced events, so
        // it stays in deterministic (timings-off) dumps.
        traceDropped_ = &stats_.scalar(
            "trace.dropped",
            "microtrace records the ring dropped (truncation)");
    }
    stats_.formula(
        "sim.fastPathFraction",
        [this] {
            return res_.wordsExecuted
                       ? double(res_.fastPathWords) /
                             double(res_.wordsExecuted)
                       : 0.0;
        },
        "fraction of words on the fast path");
    stats_.formula(
        "sim.cyclesPerWord",
        [this] {
            return res_.wordsExecuted
                       ? double(res_.cycles) /
                             double(res_.wordsExecuted)
                       : 0.0;
        },
        "average microcycles per retired word");
    stats_.formula(
        "sim.avgInterruptLatency",
        [this] {
            return res_.interruptsServiced
                       ? double(res_.interruptLatencyTotal) /
                             double(res_.interruptsServiced)
                       : 0.0;
        },
        "average interrupt arrival-to-ack latency");
    stats_.formula("sim.halted",
                   [this] { return res_.halted ? 1.0 : 0.0; },
                   "1 when the last run reached Halt");
    stats_.formula(
        "sim.faultsPerKiloWord",
        [this] {
            return res_.wordsExecuted
                       ? 1000.0 * double(res_.faultsInjected) /
                             double(res_.wordsExecuted)
                       : 0.0;
        },
        "injected faults per thousand retired words");
    stats_.formula(
        "sim.memRetryRate",
        [this] {
            return res_.memReads ? double(res_.memRetries) /
                                       double(res_.memReads)
                                 : 0.0;
        },
        "memory-read retries per architectural read");

    // jit.* counters live here, not in SimResult: they are host-side
    // tiering facts (cache state persists across runs, so they are
    // cumulative per simulator), and keeping them out of SimResult is
    // what makes jit-on and jit-off runs byte-identical at the
    // counter level.
    if (jit_) {
        JitCounters &jc = jit_->counters();
        stats_.bindScalar("jit.regionsCompiled", &jc.regionsCompiled,
                          "native superblocks compiled");
        stats_.bindScalar("jit.compileFailed", &jc.compileFailed,
                          "region compiles rejected or failed");
        stats_.bindScalar("jit.entries", &jc.entries,
                          "native region entries");
        stats_.bindScalar("jit.nativeWords", &jc.nativeWords,
                          "words retired in native code");
        stats_.bindScalar("jit.deoptBudget", &jc.deoptBudget,
                          "deopts: word/cycle/poll budget reached");
        stats_.bindScalar("jit.deoptOffRegion", &jc.deoptOffRegion,
                          "deopts: control left the region");
        stats_.bindScalar("jit.deoptHalt", &jc.deoptHalt,
                          "deopts: halt word executed natively");
        stats_.bindScalar("jit.compileMicros", &jc.compileMicros,
                          "wall-clock microseconds spent compiling");
        stats_.bindScalar("jit.codeBytes", &jc.codeBytes,
                          "finalized native code bytes");
        // Tier diagnostics are host-side measurements: compile times
        // are wall clock, and entry/deopt/word counts depend on where
        // slice boundaries land (a checkpoint hop splits a region
        // entry in two). Volatile marking keeps them out of
        // deterministic dumps -- batch byte-identity reports and
        // checkpoint-resume comparisons -- while value() and
        // timings-on dumps still see them.
        for (const char *n :
             {"jit.regionsCompiled", "jit.compileFailed",
              "jit.entries", "jit.nativeWords", "jit.deoptBudget",
              "jit.deoptOffRegion", "jit.deoptHalt",
              "jit.compileMicros", "jit.codeBytes"}) {
            stats_.markVolatile(n);
        }
    }
}

void
MicroSimulator::setReg(RegId r, uint64_t v)
{
    regs_.at(r) = v & mach_.regMask(r);
}

uint64_t
MicroSimulator::getReg(RegId r) const
{
    return regs_.at(r);
}

void
MicroSimulator::setReg(const std::string &name, uint64_t v)
{
    auto r = mach_.findRegister(name);
    if (!r)
        fatal("simulator: no register '%s'", name.c_str());
    setReg(*r, v);
}

uint64_t
MicroSimulator::getReg(const std::string &name) const
{
    auto r = mach_.findRegister(name);
    if (!r)
        fatal("simulator: no register '%s'", name.c_str());
    return getReg(*r);
}

void
MicroSimulator::interruptEvery(uint64_t period, uint64_t first)
{
    intPeriod_ = period;
    intNext_ = period ? first : ~0ULL;
}

uint64_t
MicroSimulator::readReg(RegId r)
{
    if (hasPendingFor(r)) {
        if (cfg_.strictHazards)
            fatal("simulator: register '%s' read while an overlapped "
                  "write is pending (cycle %llu)",
                  mach_.reg(r).name.c_str(),
                  (unsigned long long)res_.cycles);
        // non-strict: hardware returns the stale value
    }
    return regs_[r];
}

void
MicroSimulator::enqueuePending(const PendingWrite &p)
{
    pending_.push_back(p);
    if (!p.isMem)
        ++pendingRegs_[p.reg];
    if (pending_.size() > res_.pendingHighWater)
        res_.pendingHighWater = pending_.size();
    // Slow path only: overlapped writes never come from the fast path.
    pendingDepth_->sample(pending_.size());
    if (trace_) {
        trace_->record(TraceCat::Overlap, TraceSev::Info, res_.cycles,
                       upc_, p.isMem,
                       static_cast<uint32_t>(p.commitCycle));
    }
}

bool
MicroSimulator::commitPending(uint32_t *fault_addr)
{
    // Stable single-pass compaction instead of erase-from-middle:
    // O(pending) per call, and same-cycle commits to one register or
    // address still apply in enqueue order (swap-and-pop would not
    // preserve that).
    size_t out = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
        PendingWrite &p = pending_[i];
        if (p.commitCycle <= res_.cycles) {
            if (p.isMem) {
                if (!mem_.write(p.addr, p.value)) {
                    // The page was evicted between issue and commit:
                    // a microtrap like any other page fault. The
                    // queue is left as-is -- applyTrap() clears it
                    // (the restarted routine re-issues the store).
                    *fault_addr = p.addr;
                    return false;
                }
            } else {
                // value was truncated to the register width when the
                // write was enqueued
                regs_[p.reg] = p.value;
                --pendingRegs_[p.reg];
            }
        } else {
            if (out != i)
                pending_[out] = p;
            ++out;
        }
    }
    pending_.resize(out);
    return true;
}

MemAccess
MicroSimulator::readMemChecked(uint32_t addr, uint64_t &out)
{
    MemAccess st = mem_.readWord(addr, out);
    if (st != MemAccess::EccError)
        return st;
    // An uncorrectable ECC error is a transient soft error: re-read
    // the array. Each retry costs a full memory latency and
    // re-consults the injector, so a persistent fault site still
    // exhausts the budget and microtraps.
    for (uint32_t i = 0; i < retryLimit_; ++i) {
        ++res_.memRetries;
        res_.cycles += mach_.memLatency();
        if (trace_) {
            trace_->record(TraceCat::Recover, TraceSev::Warning,
                           res_.cycles, upc_,
                           uint32_t(RecoverAction::MemRetry), addr);
        }
        st = mem_.readWord(addr, out);
        if (st != MemAccess::EccError)
            return st;
    }
    return MemAccess::EccError;
}

void
MicroSimulator::noteFaultRestart()
{
    if (restartPoint_ == lastFaultRestart_) {
        ++consecFaults_;
    } else {
        lastFaultRestart_ = restartPoint_;
        consecFaults_ = 1;
    }
    if (livelockLimit_ && consecFaults_ >= livelockLimit_) {
        raiseError(SimErrorKind::RestartLivelock, consecFaults_,
                   strfmt("restart point 0x%04x faulted %u times in "
                          "a row", restartPoint_, consecFaults_));
    }
}

void
MicroSimulator::raiseError(SimErrorKind kind, uint32_t detail,
                           std::string message)
{
    res_.error.kind = kind;
    res_.error.message = std::move(message);
    res_.error.cycle = res_.cycles;
    res_.error.upc = upc_;
    res_.error.restartPoint = restartPoint_;
    res_.error.regs.clear();
    for (RegId r = 0; r < regs_.size(); ++r)
        res_.error.regs.emplace_back(mach_.reg(r).name, regs_[r]);
    // Supervision verdicts (cancel, deadline) are external stop
    // requests, not fault conversions: they neither count as
    // watchdog trips nor trace as recovery events.
    if (kind == SimErrorKind::Cancelled ||
        kind == SimErrorKind::DeadlineExceeded) {
        if (trace_) {
            SuperviseAction act = kind == SimErrorKind::Cancelled
                                      ? SuperviseAction::Cancel
                                      : SuperviseAction::Deadline;
            trace_->record(TraceCat::Supervise, TraceSev::Warning,
                           res_.cycles, upc_, uint32_t(act), detail);
        }
        return;
    }
    ++res_.watchdogTrips;
    if (trace_) {
        RecoverAction act =
            kind == SimErrorKind::WatchdogStall
                ? RecoverAction::WatchdogTrip
            : kind == SimErrorKind::RestartLivelock
                ? RecoverAction::Livelock
                : RecoverAction::ParityRefetch;
        trace_->record(TraceCat::Recover, TraceSev::Warning,
                       res_.cycles, upc_, uint32_t(act), detail);
    }
}

void
MicroSimulator::noteInterruptArrival()
{
    if (intPeriod_ && !intPending_ && res_.cycles >= intNext_) {
        intPending_ = true;
        intArrivalCycle_ = res_.cycles;
        intNext_ += intPeriod_;
        if (trace_) {
            trace_->record(TraceCat::Interrupt, TraceSev::Info,
                           res_.cycles, upc_, 0);
        }
    }
}

void
MicroSimulator::applyTrap()
{
    ++res_.pageFaults;
    // The macro-level OS saves and restores architectural registers
    // around fault service, so their current values survive. The
    // micro temporaries do not: other firmware runs meanwhile.
    if (cfg_.scrambleOnTrap) {
        for (RegId r = 0; r < regs_.size(); ++r) {
            if (!mach_.reg(r).architectural)
                regs_[r] = truncBits(0xDEAD ^ (0x101ULL * r),
                                     mach_.reg(r).width);
        }
    }
    flags_ = Flags{};
    microStack_.clear();
    pending_.clear();
    std::fill(pendingRegs_.begin(), pendingRegs_.end(), 0);
    upc_ = restartPoint_;
    if (trace_) {
        trace_->record(TraceCat::Control, TraceSev::Info, res_.cycles,
                       restartPoint_, 1);
    }
}

bool
MicroSimulator::evalCond(Cond c) const
{
    switch (c) {
      case Cond::Always: return true;
      case Cond::Z: return flags_.z;
      case Cond::NZ: return !flags_.z;
      case Cond::Neg: return flags_.n;
      case Cond::NonNeg: return !flags_.n;
      case Cond::C: return flags_.c;
      case Cond::NC: return !flags_.c;
      case Cond::UF: return flags_.uf;
      case Cond::NoUF: return !flags_.uf;
      case Cond::Ovf: return flags_.ovf;
      case Cond::Int: return intPending_;
      case Cond::NoInt: return !intPending_;
    }
    return false;
}

void
MicroSimulator::checkMultiway(const DecodedWord &dw) const
{
    if (!mach_.hasMultiway())
        fatal("simulator: machine %s has no multiway branch",
              mach_.name().c_str());
    if (dw.mwReg == kNoReg)
        fatal("simulator: multiway without dispatch register");
}

void
MicroSimulator::seqAdvance(const DecodedWord &dw, uint32_t addr,
                           uint64_t mw_val, uint32_t &next)
{
    // Conditions see the flags produced by this word.
    switch (dw.seq) {
      case SeqKind::Next:
        next = addr + 1;
        break;
      case SeqKind::Jump:
        next = dw.target;
        break;
      case SeqKind::CondJump:
        next = evalCond(dw.cond) ? dw.target : addr + 1;
        break;
      case SeqKind::Call:
        if (microStack_.size() >= 16)
            fatal("simulator: micro return stack overflow");
        microStack_.push_back(addr + 1);
        next = dw.target;
        break;
      case SeqKind::Return:
        if (microStack_.empty())
            fatal("simulator: micro return stack underflow");
        next = microStack_.back();
        microStack_.pop_back();
        break;
      case SeqKind::Multiway:
        next = dw.target +
               static_cast<uint32_t>(compressBits(mw_val, dw.mwMask));
        break;
      case SeqKind::Halt:
        next = addr;
        res_.halted = true;
        break;
    }
}

void
MicroSimulator::execWordFast(const DecodedWord &dw, uint32_t addr,
                             uint32_t &next)
{
    // Precondition (checked by the dispatch in run()): every op is
    // pure compute, the pending queue is empty and no interrupt
    // source is configured. No fault, no stall, no hazard is
    // possible, so phase writes go straight to the register file --
    // buffered within a phase only to keep read-before-write
    // (cobegin) semantics when a phase has several ops.
    const unsigned w = dataWidth_;
    Flags new_flags = flags_;
    bool flags_dirty = false;

    const size_t n = dw.ops.size();
    size_t i = 0;
    while (i < n) {
        size_t j = i + 1;
        while (j < n && dw.ops[j].phase == dw.ops[i].phase)
            ++j;
        if (j == i + 1) {
            // Single op in this phase: no intra-phase ordering to
            // respect, write through directly.
            const DecodedOp &op = dw.ops[i];
            AluOut r = aluEval(
                op.kind, op.hasSrcA ? regs_[op.srcA] : 0,
                op.useImm ? op.imm
                          : (op.hasSrcB ? regs_[op.srcB] : 0),
                w);
            if (op.setsFlags) {
                new_flags = r.flags;
                flags_dirty = true;
            }
            if (r.wrote)
                regs_[op.dst] = r.value & op.dstMask;
        } else {
            phaseWrites_.clear();
            for (size_t k = i; k < j; ++k) {
                const DecodedOp &op = dw.ops[k];
                AluOut r = aluEval(
                    op.kind, op.hasSrcA ? regs_[op.srcA] : 0,
                    op.useImm ? op.imm
                              : (op.hasSrcB ? regs_[op.srcB] : 0),
                    w);
                if (op.setsFlags) {
                    new_flags = r.flags;
                    flags_dirty = true;
                }
                if (r.wrote)
                    phaseWrites_.emplace_back(op.dst,
                                              r.value & op.dstMask);
            }
            for (const auto &[r, v] : phaseWrites_)
                regs_[r] = v;
        }
        i = j;
    }

    if (flags_dirty)
        flags_ = new_flags;
    res_.cycles += 1;

    uint64_t mw_val = 0;
    if (dw.seq == SeqKind::Multiway) {
        checkMultiway(dw);
        mw_val = regs_[dw.mwReg];
    }
    seqAdvance(dw, addr, mw_val, next);
}

MicroSimulator::WordStatus
MicroSimulator::execWordSlow(const DecodedWord &dw, uint32_t addr,
                             uint32_t &next, uint32_t &fault_addr)
{
    auto faulted = [&](uint32_t a,
                       WordStatus st = WordStatus::PageFault) {
        fault_addr = a;
        return st;
    };
    // Overlay of register values built up phase by phase; the real
    // register file is only updated if the whole word succeeds. The
    // buffers are members so steady-state execution allocates
    // nothing.
    overlay_.clear();
    memWrites_.clear();
    newPending_.clear();
    auto ovRead = [&](RegId r) -> uint64_t {
        for (auto it = overlay_.rbegin(); it != overlay_.rend(); ++it) {
            if (it->first == r)
                return it->second;
        }
        return readReg(r);
    };

    Flags new_flags = flags_;
    bool flags_dirty = false;
    bool int_acked = false;

    const unsigned w = dataWidth_;
    const size_t n = dw.ops.size();
    size_t i = 0;
    while (i < n) {
        const uint8_t phase = dw.ops[i].phase;
        effects_.clear();
        for (; i < n && dw.ops[i].phase == phase; ++i) {
            const DecodedOp &op = dw.ops[i];
            uint64_t a = op.hasSrcA ? ovRead(op.srcA) : 0;
            uint64_t b =
                op.useImm ? op.imm
                          : (op.hasSrcB ? ovRead(op.srcB) : 0);

            WordEffect e;
            e.setsFlags = op.setsFlags;
            auto write = [&](RegId r, uint64_t v) {
                e.hasRegWrite = true;
                e.reg = r;
                e.regValue = v & op.dstMask;
            };

            if (aluHandles(op.kind)) {
                AluOut r = aluEval(op.kind, a, b, w);
                e.flags = r.flags;
                if (r.wrote)
                    write(op.dst, r.value);
                effects_.push_back(e);
                continue;
            }

            switch (op.kind) {
              default:
                panic("simulator: unexpected kind %s",
                      uKindName(op.kind));
              case UKind::MemRead: {
                uint64_t v;
                switch (readMemChecked(static_cast<uint32_t>(a), v)) {
                  case MemAccess::Ok: break;
                  case MemAccess::PageFault:
                    return faulted(static_cast<uint32_t>(a));
                  case MemAccess::EccError:
                    return faulted(static_cast<uint32_t>(a),
                                   WordStatus::EccFault);
                }
                ++res_.memReads;
                if (op.overlap) {
                    e.delayed = true;
                    e.hasRegWrite = true;
                    e.reg = op.dst;
                    e.regValue = v & op.dstMask;
                } else {
                    write(op.dst, v);
                }
                break;
              }
              case UKind::MemWrite: {
                if (!mem_.pagePresent(static_cast<uint32_t>(a)))
                    return faulted(static_cast<uint32_t>(a));
                ++res_.memWrites;
                e.hasMemWrite = true;
                e.memAddr = static_cast<uint32_t>(a);
                e.memValue = b;
                if (op.overlap)
                    e.delayed = true;
                break;
              }
              case UKind::Push: {
                uint64_t sp = truncBits(a + 1, w);
                if (!mem_.pagePresent(static_cast<uint32_t>(sp)))
                    return faulted(static_cast<uint32_t>(sp));
                ++res_.memWrites;
                e.hasMemWrite = true;
                e.memAddr = static_cast<uint32_t>(sp);
                e.memValue = b;
                e.hasRegWrite = true;
                e.reg = op.srcA;
                e.regValue = sp;
                break;
              }
              case UKind::Pop: {
                uint64_t v;
                switch (readMemChecked(static_cast<uint32_t>(a), v)) {
                  case MemAccess::Ok: break;
                  case MemAccess::PageFault:
                    return faulted(static_cast<uint32_t>(a));
                  case MemAccess::EccError:
                    return faulted(static_cast<uint32_t>(a),
                                   WordStatus::EccFault);
                }
                ++res_.memReads;
                write(op.dst, v);
                e.hasReg2Write = true;
                e.reg2 = op.srcA;
                e.reg2Value = truncBits(a - 1, w);
                break;
              }
              case UKind::NewBlock:
                panic("simulator: NewBlock not supported by any "
                      "bundled machine");
              case UKind::IntAck:
                e.intAck = true;
                break;
            }
            effects_.push_back(e);
        }

        // All reads of this phase happened; commit the phase's writes
        // to the overlay so the next phase observes them.
        for (const WordEffect &e : effects_) {
            if (e.delayed) {
                PendingWrite p;
                p.commitCycle = res_.cycles + mach_.memLatency();
                if (e.hasMemWrite) {
                    p.isMem = true;
                    p.addr = e.memAddr;
                    p.value = truncBits(e.memValue, w);
                } else {
                    p.isMem = false;
                    p.reg = e.reg;
                    p.value = e.regValue;
                }
                newPending_.push_back(p);
                continue;
            }
            if (e.hasRegWrite)
                overlay_.emplace_back(e.reg, e.regValue);
            if (e.hasReg2Write)
                overlay_.emplace_back(e.reg2, e.reg2Value);
            if (e.hasMemWrite)
                memWrites_.emplace_back(e.memAddr,
                                        truncBits(e.memValue, w));
            if (e.setsFlags) {
                new_flags = e.flags;
                flags_dirty = true;
            }
            if (e.intAck && intPending_) {
                intPending_ = false;
                int_acked = true;
            }
        }
    }

    // The word succeeded: commit everything.
    for (auto &[r, v] : overlay_)
        regs_[r] = v;
    for (auto &[a, v] : memWrites_) {
        if (!mem_.write(a, v))
            panic("simulator: committed store faulted (addr %u)", a);
    }
    for (auto &p : newPending_)
        enqueuePending(p);
    if (flags_dirty)
        flags_ = new_flags;
    if (int_acked) {
        ++res_.interruptsServiced;
        res_.interruptLatencyTotal += res_.cycles - intArrivalCycle_;
        if (trace_) {
            trace_->record(
                TraceCat::Interrupt, TraceSev::Info, res_.cycles,
                addr, 1,
                static_cast<uint32_t>(res_.cycles -
                                      intArrivalCycle_));
        }
    }

    res_.cycles += 1 + dw.stallCycles;
    if (inj_ && dw.stallCycles) {
        // Memory-latency jitter on blocking (stalling) memory ops
        // only: overlapped ops keep their static commit timing, so
        // stale-read visibility never depends on the injector.
        uint32_t j = inj_->onBlockingMemOp();
        if (j) {
            res_.cycles += j;
            if (trace_) {
                trace_->record(TraceCat::Inject, TraceSev::Info,
                               res_.cycles, addr,
                               uint32_t(FaultKind::MemJitter), j);
            }
        }
    }

    uint64_t mw_val = 0;
    if (dw.seq == SeqKind::Multiway) {
        checkMultiway(dw);
        mw_val = ovRead(dw.mwReg);
    }
    seqAdvance(dw, addr, mw_val, next);
    return WordStatus::Ok;
}

void
MicroSimulator::noteObsWord(uint32_t addr, uint64_t start_cycle,
                            bool fast)
{
    const uint64_t dc = res_.cycles - start_cycle;
    const uint64_t stall = dc > 1 ? dc - 1 : 0;
    if (prof_)
        prof_->record(addr, dc, stall, fast);
    if (trace_) {
        trace_->record(TraceCat::Word, TraceSev::Info, start_cycle,
                       addr, static_cast<uint32_t>(dc), fast);
        if (stall) {
            trace_->record(TraceCat::Stall, TraceSev::Info,
                           start_cycle, addr,
                           static_cast<uint32_t>(stall));
        }
        if (res_.halted) {
            trace_->record(TraceCat::Control, TraceSev::Info,
                           res_.cycles, addr, 0);
        }
    }
}

void
MicroSimulator::begin(uint32_t entry)
{
    res_ = SimResult{};
    stats_.reset();     // owned stats (histograms); bound scalars
                        // were just cleared through res_
    entry_ = entry;
    upc_ = entry;
    restartPoint_ = entry;
    microStack_.clear();
    pending_.clear();
    std::fill(pendingRegs_.begin(), pendingRegs_.end(), 0);
    flags_ = Flags{};
    intPending_ = false;
    // A shared pre-decoded cache (batch runs) must cover this exact
    // store snapshot; otherwise fall back to the private cache.
    sharedDecoded_ = cfg_.decoded;
    if (sharedDecoded_) {
        if (!sharedDecoded_->fullyDecoded() ||
            sharedDecoded_->syncedVersion() != store_.version()) {
            fatal("shared decoded cache is stale or incomplete "
                  "(store version %llu, cache version %llu)",
                  (unsigned long long)store_.version(),
                  (unsigned long long)
                      sharedDecoded_->syncedVersion());
        }
    } else {
        decoded_.sync();
    }
    trace_ = cfg_.trace;
    prof_ = cfg_.profiler;

    // Fault injection: reset the injector so every run() replays the
    // same schedule, attach it to the memory read path (ECC model)
    // for the duration of the run, and resolve the effective
    // recovery limits (explicit config wins over the plan).
    inj_ = cfg_.injector;
    lastRetire_ = 0;
    consecFaults_ = 0;
    lastFaultRestart_ = 0;
    pollCountdown_ = 0;
    watchdogCycles_ = cfg_.watchdogCycles;
    livelockLimit_ = cfg_.maxRestarts;
    retryLimit_ = 0;
    refetchLimit_ = 0;
    if (inj_) {
        inj_->reset();
        mem_.attachFaults(inj_, cfg_.ecc);
        const FaultPlan &plan = inj_->plan();
        if (!watchdogCycles_)
            watchdogCycles_ = plan.watchdogCycles;
        if (!livelockLimit_)
            livelockLimit_ = plan.livelockLimit;
        retryLimit_ = plan.retryLimit;
        refetchLimit_ = plan.refetchLimit;
    }

    // The native tier stands down for the whole run whenever any
    // per-word hook could observe or perturb execution (those runs
    // must see every word interpreted); interrupts and pending
    // writes gate dynamically at each region entry instead.
    jitActive_ = jit_ && !cfg_.forceSlowPath && !trace_ && !prof_ &&
                 !inj_ && !cfg_.onWord;
    if (jit_) {
        jit_->sync(store_.version(), sharedDecoded_
                                         ? sharedDecoded_->size()
                                         : decoded_.size());
    }

    // One reservation up front; every per-word buffer is reused, so
    // the interpreter loop itself never allocates.
    const size_t max_ops = sharedDecoded_
                               ? sharedDecoded_->maxOpsPerWord()
                               : decoded_.maxOpsPerWord();
    overlay_.reserve(2 * max_ops + 2);
    memWrites_.reserve(max_ops + 2);
    newPending_.reserve(max_ops + 2);
    effects_.reserve(max_ops + 2);
    phaseWrites_.reserve(max_ops + 2);
}

void
MicroSimulator::begin(const std::string &entry_name)
{
    begin(store_.entry(entry_name));
}

void
MicroSimulator::pollSupervision()
{
    if (cfg_.cancel &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
        raiseError(SimErrorKind::Cancelled, 0,
                   "cooperative cancellation token read true");
        return;
    }
    if (cfg_.deadline.time_since_epoch().count() != 0 &&
        std::chrono::steady_clock::now() >= cfg_.deadline) {
        raiseError(SimErrorKind::DeadlineExceeded, 0,
                   strfmt("wall-clock deadline passed at cycle %llu",
                          (unsigned long long)res_.cycles));
    }
}

bool
MicroSimulator::tryJitEnter(uint64_t cycle_bound, uint64_t stop_words,
                            bool supervised)
{
    const DecodedStore &ds =
        sharedDecoded_ ? *sharedDecoded_ : decoded_;
    const CompiledRegion *region = jit_->request(upc_, ds);
    if (!region)
        return false;

    // Budget = whole words the region may retire before any slice
    // boundary, cycle bound or supervision poll would have stopped
    // the interpreter. One native word costs exactly one cycle, so
    // words and cycles share one counter. The supervision countdown
    // for the current word was already consumed by the loop header,
    // hence the +1.
    uint64_t budget = stop_words - res_.wordsExecuted;
    budget = std::min(budget, cycle_bound - res_.cycles);
    if (supervised)
        budget = std::min<uint64_t>(budget, pollCountdown_ + 1);
    if (budget == 0)
        return false;

    JitEnterState st;
    st.regs = regs_.data();
    st.flags = packJitFlags(flags_);
    st.budget = budget;
    st.exitUpc = upc_;
    st.exitReason = uint32_t(JitExit::Budget);
    st.restartUpc = restartPoint_;
    jitInvoke(region->fn, &st);

    const uint64_t executed = budget - st.budget;
    JitCounters &jc = jit_->counters();
    ++jc.entries;
    jc.nativeWords += executed;
    switch (JitExit(st.exitReason)) {
      case JitExit::Budget: ++jc.deoptBudget; break;
      case JitExit::OffRegion: ++jc.deoptOffRegion; break;
      case JitExit::Halt: ++jc.deoptHalt; break;
    }
    if (executed == 0)
        return false;

    // Spill: native words retire exactly like interpreter fast-path
    // words, and the exit left the machine at a word boundary.
    res_.cycles += executed;
    res_.wordsExecuted += executed;
    res_.fastPathWords += executed;
    lastRetire_ = res_.cycles;
    flags_ = unpackJitFlags(st.flags);
    restartPoint_ = st.restartUpc;
    upc_ = st.exitUpc;
    if (JitExit(st.exitReason) == JitExit::Halt)
        res_.halted = true;
    if (supervised)
        pollCountdown_ -= uint32_t(executed - 1);
    return true;
}

void
MicroSimulator::runUntil(uint64_t stop_cycle, uint64_t stop_words)
{
    // Slices re-attach the injector each entry: snapshot()/restore()
    // and the end-of-slice counter fold detach it, and a fresh
    // simulator resuming a checkpoint never ran begin()'s attach
    // against this memory.
    if (inj_)
        mem_.attachFaults(inj_, cfg_.ecc);

    const uint64_t cycle_bound = std::min(stop_cycle, cfg_.maxCycles);
    const bool force_slow = cfg_.forceSlowPath;
    // One flag gates all per-word observability work, so disabled
    // runs pay a single predicted-not-taken branch per word.
    const bool obs = trace_ || prof_;
    // Cancel/deadline polling is amortized: a steady_clock read per
    // word would dominate the loop.
    const bool supervised =
        cfg_.cancel != nullptr ||
        cfg_.deadline.time_since_epoch().count() != 0;
    constexpr uint32_t kPollInterval = 2048;

    while (!res_.halted && res_.cycles < cycle_bound &&
           res_.wordsExecuted < stop_words && res_.ok()) {
        if (supervised && pollCountdown_-- == 0) {
            pollCountdown_ = kPollInterval;
            pollSupervision();
            if (!res_.ok())
                break;
        }
        if (!pending_.empty()) {
            uint32_t fault_addr = 0;
            if (!commitPending(&fault_addr)) {
                // An overlapped store's page was evicted between
                // issue and commit: a microtrap like any other page
                // fault (the restarted routine re-issues the store).
                if (trace_) {
                    trace_->record(TraceCat::Fault, TraceSev::Warning,
                                   res_.cycles, upc_, fault_addr);
                }
                mem_.servicePage(fault_addr);
                applyTrap();
                res_.cycles += 50;
                noteFaultRestart();
                continue;
            }
        }
        if (intPeriod_)
            noteInterruptArrival();

        if (watchdogCycles_ &&
            res_.cycles - lastRetire_ > watchdogCycles_) {
            raiseError(
                SimErrorKind::WatchdogStall,
                static_cast<uint32_t>(res_.cycles - lastRetire_),
                strfmt("no word retired for %llu cycles",
                       (unsigned long long)(res_.cycles -
                                            lastRetire_)));
            break;
        }

        if (inj_) {
            inj_->setNow(res_.cycles);
            if (inj_->onSpuriousInt()) {
                // A spurious arrival raises the same pending line a
                // real interrupt would; firmware that never polls or
                // acks it is architecturally unaffected.
                if (trace_) {
                    trace_->record(TraceCat::Interrupt,
                                   TraceSev::Warning, res_.cycles,
                                   upc_, 2);
                }
                if (!intPending_) {
                    intPending_ = true;
                    intArrivalCycle_ = res_.cycles;
                }
            }
            // Control-store parity: a corrupted fetch is detected by
            // the parity check and re-fetched (bounded).
            uint32_t refetch = 0;
            while (inj_->onWordFetch(upc_)) {
                ++res_.parityRefetches;
                ++refetch;
                res_.cycles += 1;
                inj_->setNow(res_.cycles);
                if (trace_) {
                    trace_->record(TraceCat::Inject, TraceSev::Warning,
                                   res_.cycles, upc_,
                                   uint32_t(FaultKind::CsParity),
                                   upc_);
                    trace_->record(
                        TraceCat::Recover, TraceSev::Info, res_.cycles,
                        upc_, uint32_t(RecoverAction::ParityRefetch),
                        refetch);
                }
                if (refetch >= refetchLimit_) {
                    raiseError(SimErrorKind::ParityUnrecoverable,
                               refetch,
                               strfmt("control word 0x%04x failed "
                                      "parity %u times",
                                      upc_, refetch));
                    break;
                }
            }
            if (!res_.ok())
                break;
        }

        const DecodedWord &dw = sharedDecoded_
                                    ? sharedDecoded_->wordAt(upc_)
                                    : decoded_.word(upc_);
        if (cfg_.onWord)
            cfg_.onWord(upc_);
        if (dw.restart)
            restartPoint_ = upc_;

        const uint32_t addr = upc_;
        const uint64_t c0 = obs ? res_.cycles : 0;
        uint32_t next = upc_ + 1;
        if (jitActive_ && pending_.empty() && !intPeriod_ &&
            tryJitEnter(cycle_bound, stop_words, supervised))
            continue;
        if (dw.fastEligible && !force_slow && pending_.empty() &&
            !intPeriod_) {
            execWordFast(dw, upc_, next);
            ++res_.wordsExecuted;
            ++res_.fastPathWords;
            lastRetire_ = res_.cycles;
            upc_ = next;
            if (obs)
                noteObsWord(addr, c0, true);
            continue;
        }

        uint32_t fault_addr = 0;
        WordStatus st = execWordSlow(dw, upc_, next, fault_addr);
        if (st == WordStatus::Ok) {
            ++res_.wordsExecuted;
            ++res_.slowPathWords;
            lastRetire_ = res_.cycles;
            upc_ = next;
            if (obs)
                noteObsWord(addr, c0, false);
        } else {
            // Page fault (service the page) or unrecoverable ECC
            // error (transient -- nothing to service): either way,
            // restart the microroutine.
            if (trace_) {
                trace_->record(TraceCat::Fault, TraceSev::Warning,
                               res_.cycles, addr, fault_addr);
            }
            if (st == WordStatus::PageFault) {
                mem_.servicePage(fault_addr);
            } else if (trace_) {
                trace_->record(TraceCat::Recover, TraceSev::Warning,
                               res_.cycles, addr,
                               uint32_t(RecoverAction::EccTrap),
                               fault_addr);
            }
            applyTrap();
            // fault service costs time at macro level; charge a
            // nominal constant so fault-heavy runs are visible
            res_.cycles += 50;
            noteFaultRestart();
            if (prof_)
                prof_->recordFault(addr, res_.cycles - c0);
        }
    }

    if (inj_) {
        const FaultCounters &fc = inj_->counters();
        res_.faultsInjected = fc.totalInjected();
        res_.eccCorrected = fc.eccCorrected;
        res_.eccDoubleBit = fc.injectedDoubleBit;
        res_.spuriousInterrupts = fc.injectedSpurious;
        res_.jitterCycles = fc.jitterCycles;
        res_.faultSeed = inj_->seed();
        mem_.attachFaults(nullptr);
    }
    if (traceDropped_)
        *traceDropped_ = trace_ ? trace_->dropped() : 0;
}

const SimResult &
MicroSimulator::runUntilCycle(uint64_t stop_cycle)
{
    runUntil(stop_cycle, ~0ULL);
    return res_;
}

const SimResult &
MicroSimulator::runUntilWords(uint64_t stop_words)
{
    runUntil(~0ULL, stop_words);
    return res_;
}

SimResult
MicroSimulator::run(uint32_t entry)
{
    begin(entry);
    runUntil(~0ULL, ~0ULL);
    return res_;
}

SimResult
MicroSimulator::run(const std::string &entry_name)
{
    return run(store_.entry(entry_name));
}

SimSnapshot
MicroSimulator::snapshot() const
{
    SimSnapshot s;
    s.entry = entry_;
    s.upc = upc_;
    s.restartPoint = restartPoint_;
    s.regs = regs_;
    s.flags = flags_;
    s.microStack = microStack_;
    s.pending.reserve(pending_.size());
    for (const PendingWrite &p : pending_) {
        s.pending.push_back(
            {p.commitCycle, p.isMem, p.reg, p.addr, p.value});
    }
    s.intPending = intPending_;
    s.intArrivalCycle = intArrivalCycle_;
    s.intPeriod = intPeriod_;
    s.intNext = intNext_;
    s.lastRetire = lastRetire_;
    s.consecFaults = consecFaults_;
    s.lastFaultRestart = lastFaultRestart_;
    s.res = res_;
    s.pendingDepth = pendingDepth_->state();
    if (inj_) {
        s.haveInjector = true;
        s.faults = inj_->cursor();
    }
    return s;
}

void
MicroSimulator::restore(const SimSnapshot &s)
{
    // begin() performs the full prepare (decode sync, injector reset
    // and attach, scratch reservation); everything mutable is then
    // overwritten with the snapshot -- including the injector's
    // stream cursors, which begin()'s reset() just rewound.
    begin(s.entry);
    if (s.regs.size() != regs_.size()) {
        fatal("restore: snapshot has %zu registers, machine %s has "
              "%zu", s.regs.size(), mach_.name().c_str(),
              regs_.size());
    }
    regs_ = s.regs;
    flags_ = s.flags;
    upc_ = s.upc;
    restartPoint_ = s.restartPoint;
    microStack_ = s.microStack;
    pending_.clear();
    std::fill(pendingRegs_.begin(), pendingRegs_.end(), 0);
    for (const SimSnapshot::Pending &p : s.pending) {
        PendingWrite pw;
        pw.commitCycle = p.commitCycle;
        pw.isMem = p.isMem;
        pw.reg = p.reg;
        pw.addr = p.addr;
        pw.value = p.value;
        pending_.push_back(pw);
        if (!pw.isMem)
            ++pendingRegs_[pw.reg];
    }
    intPending_ = s.intPending;
    intArrivalCycle_ = s.intArrivalCycle;
    intPeriod_ = s.intPeriod;
    intNext_ = s.intNext;
    lastRetire_ = s.lastRetire;
    consecFaults_ = s.consecFaults;
    lastFaultRestart_ = s.lastFaultRestart;
    res_ = s.res;
    pendingDepth_->restore(s.pendingDepth);
    if (s.haveInjector) {
        if (!inj_) {
            fatal("restore: snapshot carries fault-stream cursors "
                  "but no injector is configured");
        }
        inj_->restoreCursor(s.faults);
    }
}

uint64_t
MicroSimulator::archDigest() const
{
    constexpr uint64_t kFnvPrime = 0x100000001B3ULL;
    uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h = (h ^ (v & 0xFF)) * kFnvPrime;
            v >>= 8;
        }
    };

    // Registers and memory with queued overlapped writes applied in
    // commit order: two lanes paused at the same retired word may
    // hold the same architectural future in differently-timed
    // pending queues (latency jitter shifts commit cycles), so the
    // digest compares the settled state, not the queue.
    std::vector<uint64_t> regs = regs_;
    std::vector<std::pair<uint32_t, uint64_t>> memOverlay;
    for (const PendingWrite &p : pending_) {
        if (p.isMem)
            memOverlay.emplace_back(p.addr, p.value);
        else
            regs[p.reg] = p.value;
    }

    mix(res_.wordsExecuted);
    mix(upc_);
    mix((uint64_t(flags_.z) << 0) | (uint64_t(flags_.n) << 1) |
        (uint64_t(flags_.c) << 2) | (uint64_t(flags_.uf) << 3) |
        (uint64_t(flags_.ovf) << 4));
    for (uint64_t v : regs)
        mix(v);
    mix(microStack_.size());
    for (uint32_t v : microStack_)
        mix(v);

    const std::vector<uint64_t> &words = mem_.words();
    for (uint32_t a = 0; a < words.size(); ++a) {
        uint64_t v = words[a];
        for (const auto &[addr, val] : memOverlay) {
            if (addr == a)
                v = val;
        }
        mix(v);
    }
    return h;
}

} // namespace uhll
