#include "machine/memory.hh"

#include "fault/fault.hh"
#include "support/logging.hh"

namespace uhll {

MainMemory::MainMemory(uint32_t words, unsigned width)
    : size_(words), width_(width), data_(words, 0)
{
    if (width == 0 || width > 64)
        fatal("memory: word width %u out of range", width);
}

void
MainMemory::enablePaging(uint32_t page_words)
{
    if (page_words == 0)
        fatal("memory: page size must be non-zero");
    pageWords_ = page_words;
    present_.assign((size_ + page_words - 1) / page_words, false);
}

void
MainMemory::servicePage(uint32_t addr)
{
    checkAddr(addr);
    if (pageWords_)
        present_[pageIndex(addr)] = true;
}

void
MainMemory::evictPage(uint32_t addr)
{
    checkAddr(addr);
    if (pageWords_)
        present_[pageIndex(addr)] = false;
}

bool
MainMemory::pagePresent(uint32_t addr) const
{
    if (!pageWords_)
        return true;
    if (addr >= size_)
        return false;
    return present_[pageIndex(addr)];
}

MemAccess
MainMemory::readWord(uint32_t addr, uint64_t &out) const
{
    checkAddr(addr);
    if (!pagePresent(addr))
        return MemAccess::PageFault;
    uint64_t v = data_[addr];
    if (inj_) {
        switch (inj_->onMemRead(addr)) {
          case MemFault::None:
            break;
          case MemFault::SingleBit:
            if (ecc_) {
                // Corrected in flight: correct data delivered.
                ++inj_->counters().eccCorrected;
            } else {
                // No ECC: the flip goes through silently. The bit
                // position is a hash of (addr, cycle) rather than a
                // PRNG draw so that toggling ECC does not shift the
                // injection schedule.
                ++inj_->counters().silentFlips;
                v ^= 1ULL << ((addr * 0x9E37u + inj_->now()) % width_);
            }
            break;
          case MemFault::DoubleBit: {
            if (ecc_)
                return MemAccess::EccError;
            ++inj_->counters().silentFlips;
            unsigned b = (addr * 0x9E37u + inj_->now()) % width_;
            v ^= 1ULL << b;
            v ^= 1ULL << ((b + 1) % width_);
            break;
          }
        }
    }
    out = v;
    return MemAccess::Ok;
}

bool
MainMemory::write(uint32_t addr, uint64_t value)
{
    checkAddr(addr);
    if (!pagePresent(addr))
        return false;
    data_[addr] = truncBits(value, width_);
    return true;
}

uint64_t
MainMemory::peek(uint32_t addr) const
{
    checkAddr(addr);
    return data_[addr];
}

void
MainMemory::poke(uint32_t addr, uint64_t value)
{
    checkAddr(addr);
    data_[addr] = truncBits(value, width_);
}

void
MainMemory::loadWords(const std::vector<uint64_t> &words)
{
    if (words.size() != data_.size())
        fatal("memory: restore image is %zu words, array is %zu",
              words.size(), data_.size());
    data_ = words;
}

void
MainMemory::restorePaging(uint32_t page_words,
                          std::vector<bool> present)
{
    pageWords_ = page_words;
    if (page_words) {
        size_t pages = (size_ + page_words - 1) / page_words;
        if (present.size() != pages)
            fatal("memory: restore bitmap has %zu pages, expected %zu",
                  present.size(), pages);
    }
    present_ = std::move(present);
}

void
MainMemory::checkAddr(uint32_t addr) const
{
    if (addr >= size_)
        fatal("memory: address %u out of range (size %u words)", addr,
              size_);
}

} // namespace uhll
