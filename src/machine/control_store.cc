#include "machine/control_store.hh"

#include "machine/machine_desc.hh"
#include "support/logging.hh"

namespace uhll {

uint32_t
ControlStore::append(MicroInstruction mi)
{
    uint32_t addr = static_cast<uint32_t>(words_.size());
    words_.push_back(std::move(mi));
    ++version_;
    return addr;
}

const MicroInstruction &
ControlStore::word(uint32_t addr) const
{
    if (addr >= words_.size())
        panic("control store: address %u out of range (size %zu)",
              addr, words_.size());
    return words_[addr];
}

MicroInstruction &
ControlStore::word(uint32_t addr)
{
    if (addr >= words_.size())
        panic("control store: address %u out of range (size %zu)",
              addr, words_.size());
    // Handing out a mutable reference may invalidate decoded caches.
    ++version_;
    return words_[addr];
}

void
ControlStore::annotate(uint32_t addr, int32_t line, std::string what)
{
    if (addr >= words_.size())
        panic("control store: annotate %u out of range (size %zu)",
              addr, words_.size());
    if (notes_.size() < words_.size())
        notes_.resize(words_.size());
    notes_[addr].line = line;
    notes_[addr].what = std::move(what);
}

const SourceNote *
ControlStore::note(uint32_t addr) const
{
    if (addr >= notes_.size())
        return nullptr;
    const SourceNote &n = notes_[addr];
    if (n.line < 0 && n.what.empty())
        return nullptr;
    return &n;
}

bool
ControlStore::hasLineNumbers() const
{
    for (const SourceNote &n : notes_) {
        if (n.line >= 0)
            return true;
    }
    return false;
}

void
ControlStore::defineEntry(const std::string &name, uint32_t addr)
{
    for (auto &e : entries_) {
        if (e.first == name)
            fatal("control store: duplicate entry point '%s'",
                  name.c_str());
    }
    entries_.emplace_back(name, addr);
}

uint32_t
ControlStore::entry(const std::string &name) const
{
    for (auto &e : entries_) {
        if (e.first == name)
            return e.second;
    }
    fatal("control store: no entry point '%s'", name.c_str());
}

bool
ControlStore::hasEntry(const std::string &name) const
{
    for (auto &e : entries_) {
        if (e.first == name)
            return true;
    }
    return false;
}

uint64_t
ControlStore::sizeBits() const
{
    return static_cast<uint64_t>(words_.size()) *
           mach_->controlWordBits();
}

std::string
ControlStore::listing() const
{
    std::string out;
    for (uint32_t a = 0; a < words_.size(); ++a) {
        for (auto &e : entries_) {
            if (e.second == a)
                out += e.first + ":\n";
        }
        out += strfmt("%4u  ", a) + mach_->renderWord(words_[a]) + "\n";
    }
    return out;
}

} // namespace uhll
