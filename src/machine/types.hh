/**
 * @file
 * Fundamental types of the microarchitecture model.
 *
 * The model follows the structure the survey attributes to horizontal
 * micro engines: a control word is a bundle of fields; each
 * microoperation claims control-word fields, functional units and
 * buses in a specific phase of the microcycle; a microinstruction is a
 * set of bound microoperations plus a sequencing part.
 */

#ifndef UHLL_MACHINE_TYPES_HH
#define UHLL_MACHINE_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uhll {

using RegId = uint16_t;
using UnitId = uint8_t;
using BusId = uint8_t;
using FieldId = uint8_t;

/** Sentinel "no register" value for unused operand slots. */
constexpr RegId kNoReg = 0xffff;

/**
 * Semantic kind of a microoperation. The simulator executes these;
 * machine descriptions choose which kinds they provide, with which
 * operand-class constraints, phases and resource claims.
 */
enum class UKind : uint8_t {
    Nop,
    // ALU, two operands: dst := a OP b (b may be an immediate)
    Add, Sub, And, Or, Xor,
    // ALU, one operand: dst := OP a
    Inc, Dec, Neg, Not,
    // Shift unit: dst := a shifted by b (or immediate count)
    Shl,        //!< logical left; UF flag = last bit shifted out
    Shr,        //!< logical right; UF flag = last bit shifted out
    Sar,        //!< arithmetic right
    Rol, Ror,   //!< rotates
    // Data movement
    Mov,        //!< dst := a
    Ldi,        //!< dst := immediate
    // Memory unit
    MemRead,    //!< dst := mem[a]
    MemWrite,   //!< mem[a] := b
    // Flag-setting compare: flags(a - b), no destination
    Cmp,
    // High-level operations some machines support in hardware
    Push,       //!< a := a+1; mem[a] := b   (a is the stack pointer)
    Pop,        //!< dst := mem[a]; a := a-1 (a is the stack pointer)
    NewBlock,   //!< switch the active register block to immediate value
    // Interrupt acknowledge: clears the pending-interrupt line
    IntAck,
};

/** Printable mnemonic-ish name of a UKind (for diagnostics). */
const char *uKindName(UKind k);

/** True if the kind reads main memory and can therefore page-fault. */
bool uKindFaults(UKind k);

/** True if the kind writes its srcA operand as well as reading it. */
bool uKindModifiesSrcA(UKind k);

/** True if the kind has a dst operand. */
bool uKindHasDst(UKind k);

/** True if the kind has a srcA operand. */
bool uKindHasSrcA(UKind k);

/** True if the kind has a srcB operand (register or immediate). */
bool uKindHasSrcB(UKind k);

/** Sequencing action of a microinstruction. */
enum class SeqKind : uint8_t {
    Next,       //!< fall through to the next control word
    Jump,       //!< unconditional transfer
    CondJump,   //!< transfer if condition holds, else fall through
    Call,       //!< push return address on the hardware microstack
    Return,     //!< pop the hardware microstack
    Multiway,   //!< uPC := target + compress(reg, mask)
    Halt,       //!< stop the micro engine
};

/** Hardware-testable conditions (evaluated against the flag latch). */
enum class Cond : uint8_t {
    Always,
    Z, NZ,          //!< zero / not zero
    Neg, NonNeg,    //!< sign bit
    C, NC,          //!< carry out
    UF, NoUF,       //!< last bit shifted out of the shifter
    Ovf,            //!< two's-complement overflow
    Int, NoInt,     //!< interrupt line pending
};

/** Printable name of a condition. */
const char *condName(Cond c);

/** The flag latch updated by flag-setting microoperations. */
struct Flags {
    bool z = false;     //!< result was zero
    bool n = false;     //!< result sign bit
    bool c = false;     //!< carry out of the adder
    bool uf = false;    //!< last bit shifted out of the shifter
    bool ovf = false;   //!< signed overflow
};

/**
 * A microoperation bound to concrete operands, as stored in a control
 * word. The @c spec index refers into the machine's microoperation
 * repertoire.
 */
struct BoundOp {
    uint16_t spec = 0;
    RegId dst = kNoReg;
    RegId srcA = kNoReg;
    RegId srcB = kNoReg;
    uint64_t imm = 0;
    bool useImm = false;    //!< srcB slot carries the immediate
    bool overlap = false;   //!< multicycle op overlapped with later words
};

/**
 * One horizontal microinstruction: a set of microoperations executing
 * in the same microcycle (ordered internally by their specs' phases)
 * plus the sequencing part of the word.
 */
struct MicroInstruction {
    std::vector<BoundOp> ops;
    SeqKind seq = SeqKind::Next;
    Cond cond = Cond::Always;
    uint32_t target = 0;
    RegId mwReg = kNoReg;   //!< multiway dispatch register
    uint64_t mwMask = 0;    //!< multiway bit-selection mask
    //! executing this word moves the microtrap restart point here
    //! (the boundary of a restartable microroutine, e.g. the start of
    //! one macroinstruction's interpretation)
    bool restart = false;
    std::string label;      //!< debugging aid: source label if any
};

/** A register of the micro engine. */
struct RegisterInfo {
    std::string name;
    unsigned width = 16;        //!< bits
    uint32_t classes = 0;       //!< bitmask of machine register classes
    bool architectural = false; //!< macro-visible: saved/restored on trap
    bool allocatable = false;   //!< usable by the register allocator
};

/** A field of the control word. Field claims conflict word-wide. */
struct FieldInfo {
    std::string name;
    unsigned width = 0; //!< bits contributed to the control word
};

/** A functional unit; unit claims conflict per phase (if phase-aware). */
struct UnitInfo {
    std::string name;
};

/** A data bus; bus claims conflict per phase (if phase-aware). */
struct BusInfo {
    std::string name;
};

/**
 * A microoperation in a machine's repertoire: its semantics (kind),
 * timing (phase, latency) and resource claims.
 */
struct MicroOpSpec {
    std::string mnemonic;
    UKind kind = UKind::Nop;
    uint8_t phase = 1;      //!< 1-based phase of the microcycle
    uint8_t latency = 1;    //!< cycles to complete (memory ops > 1)
    bool setsFlags = false;
    bool allowImm = false;  //!< srcB may be an immediate
    uint8_t immWidth = 64;  //!< max immediate width in bits
    //! Register-class masks for the operand slots; 0 = slot unused by
    //! this machine even if the kind nominally has the operand.
    uint32_t dstClasses = 0;
    uint32_t srcAClasses = 0;
    uint32_t srcBClasses = 0;
    std::vector<FieldId> fields;
    std::vector<UnitId> units;
    std::vector<BusId> buses;
};

} // namespace uhll

#endif // UHLL_MACHINE_TYPES_HH
