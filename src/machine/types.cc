#include "machine/types.hh"

#include "support/logging.hh"

namespace uhll {

const char *
uKindName(UKind k)
{
    switch (k) {
      case UKind::Nop: return "nop";
      case UKind::Add: return "add";
      case UKind::Sub: return "sub";
      case UKind::And: return "and";
      case UKind::Or: return "or";
      case UKind::Xor: return "xor";
      case UKind::Inc: return "inc";
      case UKind::Dec: return "dec";
      case UKind::Neg: return "neg";
      case UKind::Not: return "not";
      case UKind::Shl: return "shl";
      case UKind::Shr: return "shr";
      case UKind::Sar: return "sar";
      case UKind::Rol: return "rol";
      case UKind::Ror: return "ror";
      case UKind::Mov: return "mov";
      case UKind::Ldi: return "ldi";
      case UKind::MemRead: return "memread";
      case UKind::MemWrite: return "memwrite";
      case UKind::Cmp: return "cmp";
      case UKind::Push: return "push";
      case UKind::Pop: return "pop";
      case UKind::NewBlock: return "newblock";
      case UKind::IntAck: return "intack";
    }
    return "?";
}

bool
uKindFaults(UKind k)
{
    switch (k) {
      case UKind::MemRead:
      case UKind::MemWrite:
      case UKind::Push:
      case UKind::Pop:
        return true;
      default:
        return false;
    }
}

bool
uKindModifiesSrcA(UKind k)
{
    return k == UKind::Push || k == UKind::Pop;
}

bool
uKindHasDst(UKind k)
{
    switch (k) {
      case UKind::Nop:
      case UKind::MemWrite:
      case UKind::Cmp:
      case UKind::Push:
      case UKind::NewBlock:
      case UKind::IntAck:
        return false;
      default:
        return true;
    }
}

bool
uKindHasSrcA(UKind k)
{
    switch (k) {
      case UKind::Nop:
      case UKind::Ldi:
      case UKind::NewBlock:
      case UKind::IntAck:
        return false;
      default:
        return true;
    }
}

bool
uKindHasSrcB(UKind k)
{
    switch (k) {
      case UKind::Add:
      case UKind::Sub:
      case UKind::And:
      case UKind::Or:
      case UKind::Xor:
      case UKind::Shl:
      case UKind::Shr:
      case UKind::Sar:
      case UKind::Rol:
      case UKind::Ror:
      case UKind::MemWrite:
      case UKind::Cmp:
      case UKind::Push:
        return true;
      default:
        return false;
    }
}

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::Always: return "always";
      case Cond::Z: return "z";
      case Cond::NZ: return "nz";
      case Cond::Neg: return "neg";
      case Cond::NonNeg: return "nonneg";
      case Cond::C: return "c";
      case Cond::NC: return "nc";
      case Cond::UF: return "uf";
      case Cond::NoUF: return "nouf";
      case Cond::Ovf: return "ovf";
      case Cond::Int: return "int";
      case Cond::NoInt: return "noint";
    }
    return "?";
}

} // namespace uhll
