/**
 * @file
 * MainMemory: word-addressed main memory with optional demand paging
 * and an ECC model on the read path.
 *
 * Paging exists to reproduce the survey's microtrap discussion
 * (sec. 2.1.5): a memory access to a non-present page raises a page
 * fault, which the simulator turns into a restart of the executing
 * microroutine.
 *
 * The ECC model activates when a FaultInjector is attached
 * (attachFaults): the injector decides per read whether a bit flip
 * occurred in the array. With ECC enabled a single-bit error is
 * corrected in flight (counted, correct data delivered) and a
 * double-bit error is detected but uncorrectable
 * (MemAccess::EccError, no data delivered -- the engine retries or
 * microtraps). With ECC disabled the flipped value is delivered
 * silently, which is what makes the corrected/uncorrected counters
 * worth having.
 */

#ifndef UHLL_MACHINE_MEMORY_HH
#define UHLL_MACHINE_MEMORY_HH

#include <cstdint>
#include <vector>

#include "support/bits.hh"

namespace uhll {

class FaultInjector;

/** Result of a full-status memory read. */
enum class MemAccess : uint8_t {
    Ok,         //!< data delivered
    PageFault,  //!< page not present (out untouched)
    EccError,   //!< uncorrectable ECC error (out untouched)
};

/** Word-addressed memory; values are masked to the machine width. */
class MainMemory
{
  public:
    /**
     * @param words memory size in words
     * @param width bits per word (machine data width)
     */
    MainMemory(uint32_t words, unsigned width);

    uint32_t sizeWords() const { return size_; }
    unsigned width() const { return width_; }

    /**
     * Enable demand paging: all pages start non-present. An access to
     * a non-present page fails (returns false) until the page is
     * serviced with servicePage().
     */
    void enablePaging(uint32_t page_words);
    bool pagingEnabled() const { return pageWords_ != 0; }

    /** Mark the page containing @p addr present. */
    void servicePage(uint32_t addr);

    /** Mark the page containing @p addr non-present again. */
    void evictPage(uint32_t addr);

    bool pagePresent(uint32_t addr) const;

    /**
     * Attach a fault injector to the read path. @p ecc chooses
     * whether the array has ECC: corrected single-bit errors vs
     * silent corruption. Null detaches.
     */
    void
    attachFaults(FaultInjector *inj, bool ecc = true)
    {
        inj_ = inj;
        ecc_ = ecc;
    }
    bool eccEnabled() const { return inj_ && ecc_; }

    /**
     * Read the word at @p addr into @p out, with full fault status.
     * Every status other than Ok leaves @p out untouched. EccError
     * models a transient soft error: simply retrying the read
     * re-consults the injector.
     */
    MemAccess readWord(uint32_t addr, uint64_t &out) const;

    /**
     * Read the word at @p addr into @p out.
     * @return false on page fault or uncorrectable ECC error
     *         (out untouched).
     */
    bool
    read(uint32_t addr, uint64_t &out) const
    {
        return readWord(addr, out) == MemAccess::Ok;
    }

    /**
     * Write @p value to @p addr.
     * @return false on page fault (memory untouched).
     */
    bool write(uint32_t addr, uint64_t value);

    /** Backdoor read, ignores paging (for loaders and tests). */
    uint64_t peek(uint32_t addr) const;

    /** Backdoor write, ignores paging (for loaders and tests). */
    void poke(uint32_t addr, uint64_t value);

    /** @name Raw state access (checkpoint/restore; see
     *  machine/checkpoint.hh). None of these touch the fault path. */
    /// @{
    //! the whole array, paging ignored
    const std::vector<uint64_t> &words() const { return data_; }
    uint32_t pageWords() const { return pageWords_; }
    //! present-page bitmap (empty when paging is off)
    const std::vector<bool> &presentBitmap() const { return present_; }
    /** Overwrite the whole array (sizes must match). */
    void loadWords(const std::vector<uint64_t> &words);
    /** Restore the paging configuration and present bitmap. */
    void restorePaging(uint32_t page_words, std::vector<bool> present);
    /// @}

  private:
    uint32_t pageIndex(uint32_t addr) const { return addr / pageWords_; }
    void checkAddr(uint32_t addr) const;

    uint32_t size_;
    unsigned width_;
    uint32_t pageWords_ = 0;
    std::vector<uint64_t> data_;
    std::vector<bool> present_;
    FaultInjector *inj_ = nullptr;  //!< read-path fault source
    bool ecc_ = true;               //!< the array has ECC
};

} // namespace uhll

#endif // UHLL_MACHINE_MEMORY_HH
