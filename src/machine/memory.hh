/**
 * @file
 * MainMemory: word-addressed main memory with optional demand paging.
 *
 * Paging exists to reproduce the survey's microtrap discussion
 * (sec. 2.1.5): a memory access to a non-present page raises a page
 * fault, which the simulator turns into a restart of the executing
 * microroutine.
 */

#ifndef UHLL_MACHINE_MEMORY_HH
#define UHLL_MACHINE_MEMORY_HH

#include <cstdint>
#include <vector>

#include "support/bits.hh"

namespace uhll {

/** Word-addressed memory; values are masked to the machine width. */
class MainMemory
{
  public:
    /**
     * @param words memory size in words
     * @param width bits per word (machine data width)
     */
    MainMemory(uint32_t words, unsigned width);

    uint32_t sizeWords() const { return size_; }
    unsigned width() const { return width_; }

    /**
     * Enable demand paging: all pages start non-present. An access to
     * a non-present page fails (returns false) until the page is
     * serviced with servicePage().
     */
    void enablePaging(uint32_t page_words);
    bool pagingEnabled() const { return pageWords_ != 0; }

    /** Mark the page containing @p addr present. */
    void servicePage(uint32_t addr);

    /** Mark the page containing @p addr non-present again. */
    void evictPage(uint32_t addr);

    bool pagePresent(uint32_t addr) const;

    /**
     * Read the word at @p addr into @p out.
     * @return false on page fault (out untouched).
     */
    bool read(uint32_t addr, uint64_t &out) const;

    /**
     * Write @p value to @p addr.
     * @return false on page fault (memory untouched).
     */
    bool write(uint32_t addr, uint64_t value);

    /** Backdoor read, ignores paging (for loaders and tests). */
    uint64_t peek(uint32_t addr) const;

    /** Backdoor write, ignores paging (for loaders and tests). */
    void poke(uint32_t addr, uint64_t value);

  private:
    uint32_t pageIndex(uint32_t addr) const { return addr / pageWords_; }
    void checkAddr(uint32_t addr) const;

    uint32_t size_;
    unsigned width_;
    uint32_t pageWords_ = 0;
    std::vector<uint64_t> data_;
    std::vector<bool> present_;
};

} // namespace uhll

#endif // UHLL_MACHINE_MEMORY_HH
