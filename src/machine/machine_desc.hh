/**
 * @file
 * MachineDescription: the data-driven model of one micro engine.
 *
 * Everything downstream -- the microassembler, the simulator, the
 * compaction conflict model and the code generator -- is parameterised
 * by a MachineDescription. This realises the MPGL idea the survey
 * highlights (sec. 2.2.5): the machine specification is an input to
 * the toolchain, not baked into it.
 */

#ifndef UHLL_MACHINE_MACHINE_DESC_HH
#define UHLL_MACHINE_MACHINE_DESC_HH

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/types.hh"

namespace uhll {

/**
 * Static description of one microprogrammable machine: registers and
 * their classes, control-word fields, functional units, buses, the
 * microoperation repertoire, and global properties (phases per cycle,
 * memory latency, vertical vs horizontal encoding).
 */
class MachineDescription
{
  public:
    /** @param name machine name; @param data_width register width. */
    MachineDescription(std::string name, unsigned data_width);

    const std::string &name() const { return name_; }
    unsigned dataWidth() const { return dataWidth_; }

    /** @name Global properties (set once while building) */
    /// @{
    void setNumPhases(unsigned n);
    unsigned numPhases() const { return numPhases_; }

    /** Vertical machines hold exactly one microoperation per word. */
    void setVertical(bool v) { vertical_ = v; }
    bool vertical() const { return vertical_; }

    void setMemLatency(unsigned cycles) { memLatency_ = cycles; }
    unsigned memLatency() const { return memLatency_; }

    /** Reserved main-memory area for compiler spills. */
    void setScratchArea(uint32_t base, uint32_t words);
    uint32_t scratchBase() const { return scratchBase_; }
    uint32_t scratchWords() const { return scratchWords_; }

    /** Whether a hardware multiway branch exists. */
    void setHasMultiway(bool v) { hasMultiway_ = v; }
    bool hasMultiway() const { return hasMultiway_; }

    /** Number of register blocks selectable via NewBlock (1 = none). */
    void setNumRegBlocks(unsigned n) { numRegBlocks_ = n; }
    unsigned numRegBlocks() const { return numRegBlocks_; }
    /// @}

    /** @name Registers */
    /// @{
    RegId addRegister(const std::string &name, unsigned width,
                      uint32_t classes, bool architectural = false,
                      bool allocatable = false);
    const RegisterInfo &reg(RegId r) const;
    /** All-ones mask of register @p r 's width. */
    uint64_t regMask(RegId r) const;
    size_t numRegisters() const { return regs_.size(); }
    std::optional<RegId> findRegister(const std::string &name) const;

    /** Registers available to the register allocator. */
    std::vector<RegId> allocatableRegs() const;

    void setMar(RegId r) { mar_ = r; }
    void setMbr(RegId r) { mbr_ = r; }
    RegId mar() const { return mar_; }
    RegId mbr() const { return mbr_; }

    /**
     * Designate @p r as a compiler scratch register (operand-class
     * fixups and spill reloads). Scratch registers must not be
     * allocatable.
     */
    void addScratchReg(RegId r);
    const std::vector<RegId> &scratchRegs() const { return scratch_; }

    /**
     * A scratch register whose classes intersect @p classes and that
     * is not in @p avoid. Falls back to dedicated non-allocatable
     * registers (mar/mbr) unless @p allow_dedicated is false.
     * fatal() if none exists (machine description bug for the
     * requested lowering).
     */
    RegId scratchFor(uint32_t classes,
                     std::span<const RegId> avoid = {},
                     bool allow_dedicated = true) const;
    /// @}

    /** @name Control-word structure */
    /// @{
    FieldId addField(const std::string &name, unsigned width);
    UnitId addUnit(const std::string &name);
    BusId addBus(const std::string &name);
    const FieldInfo &field(FieldId f) const { return fields_.at(f); }
    const UnitInfo &unit(UnitId u) const { return units_.at(u); }
    const BusInfo &bus(BusId b) const { return buses_.at(b); }
    size_t numFields() const { return fields_.size(); }
    size_t numUnits() const { return units_.size(); }
    size_t numBuses() const { return buses_.size(); }

    /** Width in bits of one control word (sum of all field widths). */
    unsigned controlWordBits() const;
    /// @}

    /** @name Microoperation repertoire */
    /// @{
    uint16_t addMicroOp(MicroOpSpec spec);
    const MicroOpSpec &uop(uint16_t idx) const { return uops_.at(idx); }
    size_t numMicroOps() const { return uops_.size(); }
    std::optional<uint16_t> findUop(const std::string &mnemonic) const;

    /**
     * All repertoire entries with semantic kind @p k. Code generators
     * iterate these to find one whose operand classes fit.
     */
    std::vector<uint16_t> uopsOfKind(UKind k) const;
    /// @}

    /** @name Conflict model (DeWitt control-word model) */
    /// @{
    /**
     * Do two bound ops conflict when placed in the same control word?
     *
     * Field claims always conflict word-wide (the bits exist once).
     * Unit and bus claims conflict per phase when @p phase_aware,
     * word-wide otherwise. Two writes of the same register in the
     * same phase conflict.
     */
    bool conflict(const BoundOp &a, const BoundOp &b,
                  bool phase_aware) const;

    /**
     * Check that @p ops can legally share one control word. On
     * failure returns false and, if @p why is non-null, stores a
     * diagnostic.
     *
     * Besides pairwise resource conflicts this also enforces operand
     * class constraints per op (see checkOperands()).
     */
    bool wordLegal(std::span<const BoundOp> ops, bool phase_aware,
                   std::string *why = nullptr) const;

    /**
     * Check a single op's operands against its spec's class masks.
     * Returns false and fills @p why on violation.
     */
    bool checkOperands(const BoundOp &op, std::string *why = nullptr)
        const;
    /// @}

    /** Human-readable rendering of a bound op (diagnostics). */
    std::string renderOp(const BoundOp &op) const;

    /** Human-readable rendering of a whole microinstruction. */
    std::string renderWord(const MicroInstruction &mi) const;

  private:
    std::string name_;
    unsigned dataWidth_;
    unsigned numPhases_ = 1;
    bool vertical_ = false;
    unsigned memLatency_ = 1;
    uint32_t scratchBase_ = 0;
    uint32_t scratchWords_ = 0;
    bool hasMultiway_ = false;
    unsigned numRegBlocks_ = 1;
    RegId mar_ = kNoReg;
    RegId mbr_ = kNoReg;

    std::vector<RegisterInfo> regs_;
    std::vector<RegId> scratch_;
    std::unordered_map<std::string, RegId> regByName_;
    std::vector<FieldInfo> fields_;
    std::vector<UnitInfo> units_;
    std::vector<BusInfo> buses_;
    std::vector<MicroOpSpec> uops_;
    std::unordered_map<std::string, uint16_t> uopByName_;
};

} // namespace uhll

#endif // UHLL_MACHINE_MACHINE_DESC_HH
