#include "fuzz/generator.hh"

#include <algorithm>

#include "support/logging.hh"

namespace uhll {

// ----------------------------------------------------------------
// PRNG: splitmix64 to spread the seed, xorshift64* to draw -- the
// same construction the fault injector uses, so one seed word fully
// determines a campaign.
// ----------------------------------------------------------------

namespace {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

FuzzRng::FuzzRng(uint64_t seed) : s(splitmix64(seed))
{
    if (!s)
        s = 0x9e3779b97f4a7c15ull;
}

uint64_t
FuzzRng::next()
{
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dull;
}

uint64_t
FuzzRng::below(uint64_t n)
{
    return n ? next() % n : 0;
}

uint64_t
FuzzRng::range(uint64_t lo, uint64_t hi)
{
    return lo + below(hi - lo + 1);
}

bool
FuzzRng::chance(unsigned pct)
{
    return below(100) < pct;
}

// ----------------------------------------------------------------
// Program generation. A shared driver decides the statement
// sequence (constants, one-operator expressions, moves, shifts,
// windowed loads/stores, counted loops, guarded statements); a
// per-language emitter renders each decision as grammar-guaranteed
// well-formed text, drawing operands under its machine's
// constraints from the same deterministic stream.
// ----------------------------------------------------------------

namespace {

/** Statement-level emitter interface. Variable operands are indices
 *  into vars(); @p avoid is the active loop counter (never written
 *  inside its loop, so every loop provably terminates). */
class Emitter
{
  public:
    virtual ~Emitter() = default;

    virtual const std::vector<std::string> &vars() const = 0;

    virtual void stConst(FuzzRng &r, int avoid) = 0;
    virtual void stBin(FuzzRng &r, int avoid) = 0;
    virtual void stMov(FuzzRng &r, int avoid) = 0;
    virtual void stShift(FuzzRng &r, int avoid) = 0;
    virtual void stStore(FuzzRng &r, int avoid) = 0;
    virtual void stLoad(FuzzRng &r, int avoid) = 0;
    /** Emit a whole guarded construct (condition + one simple
     *  statement). */
    virtual void stCond(FuzzRng &r, int avoid) = 0;
    /** Open a counted loop; returns the counter's index. */
    virtual int loopBegin(FuzzRng &r) = 0;
    virtual void loopEnd() = 0;

    virtual void prologue(uint64_t seed) = 0;
    virtual void epilogue() = 0;

    std::string
    text() const
    {
        std::string out;
        for (const std::string &l : lines_) {
            out += l;
            out += '\n';
        }
        return out;
    }

    /** True when statement emission referenced variable @p i --
     *  prologue declarations don't count, so this mirrors what the
     *  register allocator will consider live enough to allocate. */
    bool
    varUsed(size_t i) const
    {
        return i < used_.size() && used_[i];
    }

  protected:
    void add(std::string l) { lines_.push_back(std::move(l)); }

    /** Operand name for index @p i; every statement operand funnels
     *  through here, which is what makes varUsed() trustworthy. */
    const std::string &
    v(int i)
    {
        if (used_.size() < vars().size())
            used_.resize(vars().size(), false);
        used_[static_cast<size_t>(i)] = true;
        return vars()[static_cast<size_t>(i)];
    }

    /** A random window address (word-addressed, every machine). */
    static uint32_t
    windowAddr(FuzzRng &r)
    {
        return kFuzzMemBase +
               static_cast<uint32_t>(r.below(kFuzzMemWords));
    }

    /** Pick an index from @p from, never @p avoid. */
    static int
    pickFrom(FuzzRng &r, const std::vector<int> &from, int avoid)
    {
        std::vector<int> c;
        for (int i : from) {
            if (i != avoid)
                c.push_back(i);
        }
        if (c.empty())
            return from.at(0);
        return c[static_cast<size_t>(r.below(c.size()))];
    }

    std::vector<std::string> lines_;
    std::vector<bool> used_;
    int label_ = 0;
};

std::vector<int>
iota(int n)
{
    std::vector<int> v(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        v[static_cast<size_t>(i)] = i;
    return v;
}

const char *const kOpsYalll[] = {"add", "sub", "and", "or", "xor"};
const char *const kOpsSimpl[] = {"+", "-", "&", "|", "xor"};

// ---------------- YALLL ----------------

class YalllEmitter final : public Emitter
{
  public:
    const std::vector<std::string> &
    vars() const override
    {
        static const std::vector<std::string> v = {"a", "b", "c",
                                                   "d", "e"};
        return v;
    }

    void
    prologue(uint64_t seed) override
    {
        add("; fuzz-generated yalll program, seed " +
            std::to_string(seed));
        // Two variables bound to registers that exist and are not
        // compiler scratch on any bundled machine, three symbolic:
        // both allocator paths get exercised.
        add("reg a = r1");
        add("reg b = r4");
        add("reg c");
        add("reg d");
        add("reg e");
        add("reg p");
        add("proc main");
    }

    void epilogue() override { add("    exit"); }

    void
    stConst(FuzzRng &r, int avoid) override
    {
        add("    put " + v(dst(r, avoid)) + ", " +
            std::to_string(r.below(0x10000)));
    }

    void
    stBin(FuzzRng &r, int avoid) override
    {
        std::string op = kOpsYalll[r.below(5)];
        std::string d = v(dst(r, avoid));
        std::string a = v(any(r));
        if ((op == "add" || op == "sub") && r.chance(30)) {
            add("    " + op + " " + d + ", " + a + ", " +
                std::to_string(r.range(1, 255)));
        } else {
            add("    " + op + " " + d + ", " + a + ", " + v(any(r)));
        }
    }

    void
    stMov(FuzzRng &r, int avoid) override
    {
        add("    move " + v(dst(r, avoid)) + ", " + v(any(r)));
    }

    void
    stShift(FuzzRng &r, int avoid) override
    {
        static const char *const sh[] = {"shl", "shr", "rol"};
        add("    " + std::string(sh[r.below(3)]) + " " +
            v(dst(r, avoid)) + ", " + v(any(r)) + ", " +
            std::to_string(r.range(1, 3)));
    }

    void
    stStore(FuzzRng &r, int avoid) override
    {
        add("    put p, " + std::to_string(windowAddr(r)));
        add("    stor " + v(any(r)) + ", p");
        (void)avoid;
    }

    void
    stLoad(FuzzRng &r, int avoid) override
    {
        add("    put p, " + std::to_string(windowAddr(r)));
        add("    load " + v(dst(r, avoid)) + ", p");
    }

    void
    stCond(FuzzRng &r, int avoid) override
    {
        int lab = label_++;
        std::string s = "s" + std::to_string(lab);
        add("    jump " + s + " if " + v(any(r)) + " < " + v(any(r)));
        stBin(r, avoid);
        add(s + ":");
    }

    int
    loopBegin(FuzzRng &r) override
    {
        int c = any(r);
        int lab = label_++;
        loops_.push_back({c, lab});
        add("    put " + v(c) + ", " +
            std::to_string(r.range(2, 7)));
        add("l" + std::to_string(lab) + ":");
        add("    jump e" + std::to_string(lab) + " if " + v(c) +
            " = 0");
        return c;
    }

    void
    loopEnd() override
    {
        auto [c, lab] = loops_.back();
        loops_.pop_back();
        add("    sub " + v(c) + ", " + v(c) + ", 1");
        add("    jump l" + std::to_string(lab));
        add("e" + std::to_string(lab) + ":");
    }

  private:
    int any(FuzzRng &r) { return int(r.below(5)); }
    int dst(FuzzRng &r, int avoid)
    {
        return pickFrom(r, iota(5), avoid);
    }

    std::vector<std::pair<int, int>> loops_;
};

// ---------------- SIMPL ----------------

class SimplEmitter final : public Emitter
{
  public:
    const std::vector<std::string> &
    vars() const override
    {
        // Registers that exist and are not compiler scratch on
        // every bundled machine (SIMPL variables ARE registers).
        static const std::vector<std::string> v = {"r0", "r1", "r2",
                                                   "r4", "r5"};
        return v;
    }

    void
    prologue(uint64_t seed) override
    {
        add("program main;");
        add("const fuzzseed = " + std::to_string(seed) + ";");
        add("begin");
    }

    void epilogue() override { add("end"); }

    void
    stConst(FuzzRng &r, int avoid) override
    {
        add("    " + std::to_string(r.below(0x10000)) + " -> " +
            v(dst(r, avoid)) + ";");
    }

    void
    stBin(FuzzRng &r, int avoid) override
    {
        std::string b = r.chance(30)
                            ? std::to_string(r.range(1, 255))
                            : v(any(r));
        add("    " + v(any(r)) + " " + kOpsSimpl[r.below(5)] + " " +
            b + " -> " + v(dst(r, avoid)) + ";");
    }

    void
    stMov(FuzzRng &r, int avoid) override
    {
        add("    " + v(any(r)) + " -> " + v(dst(r, avoid)) + ";");
    }

    void
    stShift(FuzzRng &r, int avoid) override
    {
        // ^ n: positive = left shift, negative = right; ^^ circular.
        int n = int(r.range(1, 3));
        if (r.chance(50))
            n = -n;
        std::string op = r.chance(25) ? "^^" : "^";
        add("    " + v(any(r)) + " " + op + " " + std::to_string(n) +
            " -> " + v(dst(r, avoid)) + ";");
    }

    void
    stStore(FuzzRng &r, int avoid) override
    {
        int a = dst(r, avoid);
        add("    " + std::to_string(windowAddr(r)) + " -> " + v(a) +
            ";");
        add("    write " + v(a) + ", " + v(any(r)) + ";");
    }

    void
    stLoad(FuzzRng &r, int avoid) override
    {
        int a = dst(r, avoid);
        add("    " + std::to_string(windowAddr(r)) + " -> " + v(a) +
            ";");
        add("    read " + v(pickFrom(r, iota(5), avoid)) + ", " +
            v(a) + ";");
    }

    void
    stCond(FuzzRng &r, int avoid) override
    {
        add("    if " + v(any(r)) + " < " + v(any(r)) + " then " +
            v(any(r)) + " + 1 -> " + v(dst(r, avoid)) + ";");
    }

    int
    loopBegin(FuzzRng &r) override
    {
        int c = any(r);
        counters_.push_back(c);
        add("    " + std::to_string(r.range(2, 7)) + " -> " + v(c) +
            ";");
        add("    while " + v(c) + " != 0 do");
        add("    begin");
        return c;
    }

    void
    loopEnd() override
    {
        int c = counters_.back();
        counters_.pop_back();
        add("        " + v(c) + " - 1 -> " + v(c) + ";");
        add("    end;");
    }

  private:
    int any(FuzzRng &r) { return int(r.below(5)); }
    int dst(FuzzRng &r, int avoid)
    {
        return pickFrom(r, iota(5), avoid);
    }

    std::vector<int> counters_;
};

// ---------------- EMPL ----------------

class EmplEmitter final : public Emitter
{
  public:
    const std::vector<std::string> &
    vars() const override
    {
        static const std::vector<std::string> v = {"a", "b", "c",
                                                   "d", "e"};
        return v;
    }

    void
    prologue(uint64_t seed) override
    {
        add("/* fuzz-generated empl program, seed " +
            std::to_string(seed) + " */");
        for (const std::string &n : vars())
            add("declare " + n + " fixed;");
        add("main: procedure;");
    }

    void
    epilogue() override
    {
        add("    return;");
        add("end;");
    }

    void
    stConst(FuzzRng &r, int avoid) override
    {
        add("    " + v(dst(r, avoid)) + " = " +
            std::to_string(r.below(0x10000)) + ";");
    }

    void
    stBin(FuzzRng &r, int avoid) override
    {
        static const char *const ops[] = {"+", "-", "&", "|", "xor"};
        std::string b = r.chance(30)
                            ? std::to_string(r.range(1, 255))
                            : v(any(r));
        add("    " + v(dst(r, avoid)) + " = " + v(any(r)) + " " +
            ops[r.below(5)] + " " + b + ";");
    }

    void
    stMov(FuzzRng &r, int avoid) override
    {
        add("    " + v(dst(r, avoid)) + " = " + v(any(r)) + ";");
    }

    void
    stShift(FuzzRng &r, int avoid) override
    {
        static const char *const sh[] = {"shl", "shr", "rol"};
        add("    " + v(dst(r, avoid)) + " = " + v(any(r)) + " " +
            sh[r.below(3)] + " " + std::to_string(r.range(1, 3)) +
            ";");
    }

    void
    stStore(FuzzRng &r, int avoid) override
    {
        add("    mem(" + std::to_string(windowAddr(r)) + ") = " +
            v(any(r)) + ";");
        (void)avoid;
    }

    void
    stLoad(FuzzRng &r, int avoid) override
    {
        add("    " + v(dst(r, avoid)) + " = mem(" +
            std::to_string(windowAddr(r)) + ");");
    }

    void
    stCond(FuzzRng &r, int avoid) override
    {
        add("    if " + v(any(r)) + " < " + v(any(r)) + " then " +
            v(dst(r, avoid)) + " = " + v(any(r)) + " + 1;");
    }

    int
    loopBegin(FuzzRng &r) override
    {
        int c = any(r);
        counters_.push_back(c);
        add("    " + v(c) + " = " + std::to_string(r.range(2, 7)) +
            ";");
        add("    while " + v(c) + " != 0 do;");
        return c;
    }

    void
    loopEnd() override
    {
        int c = counters_.back();
        counters_.pop_back();
        add("        " + v(c) + " = " + v(c) + " - 1;");
        add("    end;");
    }

  private:
    int any(FuzzRng &r) { return int(r.below(5)); }
    int dst(FuzzRng &r, int avoid)
    {
        return pickFrom(r, iota(5), avoid);
    }

    std::vector<int> counters_;
};

// ---------------- S* ----------------

/**
 * S* statements must each map onto a single microoperation of the
 * target machine, so operand choice is machine-aware: on VM-2 the
 * ALU reads bank A (r0-r2 here) on the left and bank B (r4, r5) on
 * the right, the shifter works inside bank A, and compares take an
 * A-bank left operand. HM-1 and VS-3 have uniform register files.
 */
class SstarEmitter final : public Emitter
{
  public:
    SstarEmitter(bool banked, bool bit_imm)
        : banked_(banked), bitImm_(bit_imm)
    {}

    const std::vector<std::string> &
    vars() const override
    {
        static const std::vector<std::string> v = {"a", "b", "c",
                                                   "d", "e"};
        return v;
    }

    void
    prologue(uint64_t seed) override
    {
        add("# fuzz-generated s* program, seed " +
            std::to_string(seed) + " #");
        add("program fuzz;");
        add("var a : seq [15..0] bit bind r0;");
        add("var b : seq [15..0] bit bind r1;");
        add("var c : seq [15..0] bit bind r2;");
        add("var d : seq [15..0] bit bind r4;");
        add("var e : seq [15..0] bit bind r5;");
        add("begin");
    }

    void epilogue() override { add("end"); }

    void
    stConst(FuzzRng &r, int avoid) override
    {
        add("    " + v(dst(r, avoid)) + " := " +
            std::to_string(r.below(256)) + ";");
    }

    void
    stBin(FuzzRng &r, int avoid) override
    {
        static const char *const ops[] = {"+", "-", "&", "|", "xor"};
        const std::string d = v(dst(r, avoid));
        const std::string a = v(left(r));
        const unsigned op = static_cast<unsigned>(r.below(5));
        // The immediate chance is drawn unconditionally to keep the
        // stream aligned across machines; S(VS-3) encodes no
        // bitwise-immediate microoperation, so there the draw falls
        // back to a register operand.
        const bool imm = r.chance(35) && (op < 2 || bitImm_);
        const std::string b = imm
                                  ? std::to_string(r.range(1, 255))
                                  : v(right(r));
        add("    " + d + " := " + a + " " + ops[op] + " " + b + ";");
    }

    void
    stMov(FuzzRng &r, int avoid) override
    {
        add("    " + v(dst(r, avoid)) + " := " + v(any(r)) + ";");
    }

    void
    stShift(FuzzRng &r, int avoid) override
    {
        // VM-2's shifter reads and writes bank A only.
        int d = banked_ ? pickFrom(r, {0, 1, 2}, avoid)
                        : dst(r, avoid);
        int s = banked_ ? int(r.below(3)) : any(r);
        add("    " + v(d) + " := " + v(s) +
            (r.chance(50) ? " shl " : " shr ") +
            std::to_string(r.range(1, 3)) + ";");
    }

    // S* programs here stay in registers: memory binding is a
    // declaration-level feature the other four frontends cover.
    void stStore(FuzzRng &r, int avoid) override { stBin(r, avoid); }
    void stLoad(FuzzRng &r, int avoid) override { stMov(r, avoid); }

    void
    stCond(FuzzRng &r, int avoid) override
    {
        std::string a = v(left(r));
        std::string b = r.chance(50)
                            ? std::to_string(r.below(256))
                            : v(right(r));
        add("    if " + a + " < " + b + " then");
        stMov(r, avoid);
        add("    fi;");
    }

    int
    loopBegin(FuzzRng &r) override
    {
        // Counter in bank A ('b' = r1): compare and decrement both
        // need an A-bank left operand on VM-2.
        int c = 1;
        add("    " + v(c) + " := " + std::to_string(r.range(2, 7)) +
            ";");
        add("    repeat");
        return c;
    }

    void
    loopEnd() override
    {
        add("        b := b - 1;");
        add("    until b = 0;");
    }

  private:
    int any(FuzzRng &r) { return int(r.below(5)); }
    int left(FuzzRng &r)
    {
        return banked_ ? int(r.below(3)) : any(r);
    }
    int right(FuzzRng &r)
    {
        return banked_ ? int(3 + r.below(2)) : any(r);
    }
    int dst(FuzzRng &r, int avoid)
    {
        return pickFrom(r, iota(5), avoid);
    }

    bool banked_;
    bool bitImm_;   //!< machine encodes and/or/xor with an immediate
};

// ---------------- masm ----------------

/** Hand microassembly, one operation per word (always composable),
 *  with a per-machine template table. */
class MasmEmitter final : public Emitter
{
  public:
    enum class M { Hm1, Vm2, Vs3 };

    explicit MasmEmitter(M m) : m_(m) {}

    const std::vector<std::string> &
    vars() const override
    {
        static const std::vector<std::string> gpr = {
            "r0", "r1", "r2", "r3", "r4", "r5"};
        static const std::vector<std::string> banked = {
            "r0", "r1", "r2", "r4", "r5", "r6"};
        return m_ == M::Vm2 ? banked : gpr;
    }

    void
    prologue(uint64_t seed) override
    {
        add("; fuzz-generated masm program, seed " +
            std::to_string(seed));
        add(".entry main");
        add("main:");
    }

    void epilogue() override { add("    [ ] halt"); }

    void
    stConst(FuzzRng &r, int avoid) override
    {
        add("    [ ldi " + v(dst(r, avoid)) + ", #" +
            std::to_string(r.below(immMax() + 1)) + " ]");
    }

    void
    stBin(FuzzRng &r, int avoid) override
    {
        static const char *const ops[] = {"add", "sub", "and", "or",
                                          "xor"};
        std::string op = ops[r.below(5)];
        std::string d = v(dst(r, avoid));
        if ((op == "add" || op == "sub") && r.chance(30)) {
            add("    [ " + op + "i " + d + ", " + v(left(r)) + ", #" +
                std::to_string(r.range(1, 200)) + " ]");
        } else {
            add("    [ " + op + " " + d + ", " + v(left(r)) + ", " +
                v(right(r)) + " ]");
        }
    }

    void
    stMov(FuzzRng &r, int avoid) override
    {
        add("    [ " + std::string(m_ == M::Hm1 ? "mova" : "mov") +
            " " + v(dst(r, avoid)) + ", " + v(any(r)) + " ]");
    }

    void
    stShift(FuzzRng &r, int avoid) override
    {
        // VM-2's shifter is bank-A only.
        int d = m_ == M::Vm2 ? pickFrom(r, {0, 1, 2}, avoid)
                             : dst(r, avoid);
        int s = m_ == M::Vm2 ? int(r.below(3)) : any(r);
        add("    [ " + std::string(r.chance(50) ? "shl" : "shr") +
            " " + v(d) + ", " + v(s) + ", #" +
            std::to_string(r.range(1, 3)) + " ]");
    }

    void
    stStore(FuzzRng &r, int avoid) override
    {
        uint32_t addr = windowAddr(r);
        int t = addrReg(r, avoid);
        int val = any(r);
        loadAddr(t, addr);
        if (m_ == M::Vm2) {
            add("    [ mov mbr, " + v(val) + " ]");
            add("    [ mov mar, " + v(t) + " ]");
            add("    [ memwr mar, mbr ]");
        } else {
            add("    [ memwr " + v(t) + ", " + v(val) + " ]");
        }
    }

    void
    stLoad(FuzzRng &r, int avoid) override
    {
        uint32_t addr = windowAddr(r);
        int t = addrReg(r, avoid);
        int d = pickFrom(r, iota(int(vars().size())), avoid);
        loadAddr(t, addr);
        if (m_ == M::Vm2) {
            add("    [ mov mar, " + v(t) + " ]");
            add("    [ memrd mbr, mar ]");
            add("    [ mov " + v(d) + ", mbr ]");
        } else {
            add("    [ memrd " + v(d) + ", " + v(t) + " ]");
        }
    }

    void
    stCond(FuzzRng &r, int avoid) override
    {
        int lab = label_++;
        std::string s = "s" + std::to_string(lab);
        if (r.chance(50)) {
            add("    [ cmpi " + v(left(r)) + ", #" +
                std::to_string(r.below(std::min<uint64_t>(
                    immMax() + 1, 256))) +
                " ] if " + (r.chance(50) ? "z" : "nz") + " jump " +
                s);
        } else {
            add("    [ cmp " + v(left(r)) + ", " + v(right(r)) +
                " ] if " + (r.chance(50) ? "c" : "nc") + " jump " +
                s);
        }
        stBin(r, avoid);
        add(s + ":");
    }

    int
    loopBegin(FuzzRng &r) override
    {
        // Do-while countdown: decrement and exit test share a word,
        // so the branch always reads that word's own flags.
        int c = m_ == M::Vm2 ? int(r.below(3))
                             : int(r.below(vars().size()));
        int lab = label_++;
        loops_.push_back({c, lab});
        add("    [ ldi " + v(c) + ", #" +
            std::to_string(r.range(2, 7)) + " ]");
        add("l" + std::to_string(lab) + ":");
        return c;
    }

    void
    loopEnd() override
    {
        auto [c, lab] = loops_.back();
        loops_.pop_back();
        add("    [ subi " + v(c) + ", " + v(c) +
            ", #1 ] if nz jump l" + std::to_string(lab));
    }

  private:
    int any(FuzzRng &r) { return int(r.below(vars().size())); }
    int dst(FuzzRng &r, int avoid)
    {
        return pickFrom(r, iota(int(vars().size())), avoid);
    }
    //! ALU left operand: bank A on VM-2, anything elsewhere
    int left(FuzzRng &r)
    {
        return m_ == M::Vm2 ? int(r.below(3)) : any(r);
    }
    //! ALU right operand: bank B on VM-2, anything elsewhere
    int right(FuzzRng &r)
    {
        return m_ == M::Vm2 ? int(3 + r.below(3)) : any(r);
    }
    //! address staging register: must accept shl on VM-2 (bank A)
    int addrReg(FuzzRng &r, int avoid)
    {
        return m_ == M::Vm2 ? pickFrom(r, {0, 1, 2}, avoid)
                            : pickFrom(r, iota(6), avoid);
    }
    uint64_t immMax() const { return m_ == M::Hm1 ? 0xffff : 255; }

    /** Materialize a window address in @p t. HM-1 loads it in one
     *  16-bit immediate; VM-2 (8-bit) and VS-3 (9-bit) build it as
     *  (addr>>3) shl 3 + low. */
    void
    loadAddr(int t, uint32_t addr)
    {
        if (m_ == M::Hm1) {
            add("    [ ldi " + v(t) + ", #" + std::to_string(addr) +
                " ]");
            return;
        }
        add("    [ ldi " + v(t) + ", #" + std::to_string(addr >> 3) +
            " ]");
        add("    [ shl " + v(t) + ", " + v(t) + ", #3 ]");
        if (addr & 7) {
            add("    [ addi " + v(t) + ", " + v(t) + ", #" +
                std::to_string(addr & 7) + " ]");
        }
    }

    M m_;
    std::vector<std::pair<int, int>> loops_;
};

std::unique_ptr<Emitter>
makeEmitter(const std::string &lang, const std::string &machine)
{
    if (lang == "yalll")
        return std::make_unique<YalllEmitter>();
    if (lang == "simpl")
        return std::make_unique<SimplEmitter>();
    if (lang == "empl")
        return std::make_unique<EmplEmitter>();
    if (lang == "sstar")
        return std::make_unique<SstarEmitter>(machine == "vm2",
                                              machine != "vs3");
    if (lang == "masm") {
        if (machine == "hm1")
            return std::make_unique<MasmEmitter>(MasmEmitter::M::Hm1);
        if (machine == "vm2")
            return std::make_unique<MasmEmitter>(MasmEmitter::M::Vm2);
        if (machine == "vs3")
            return std::make_unique<MasmEmitter>(MasmEmitter::M::Vs3);
        fatal("fuzz: unknown machine '%s'", machine.c_str());
    }
    fatal("fuzz: no generator for language '%s'", lang.c_str());
}

} // namespace

std::vector<std::string>
fuzzGeneratorLangs()
{
    return {"empl", "masm", "simpl", "sstar", "yalll"};
}

GeneratedProgram
generateProgram(const std::string &lang, const std::string &machine,
                uint64_t seed, unsigned budget)
{
    if (budget < 4)
        budget = 4;
    // Mix the language and machine into the stream so every cell of
    // the (frontend x machine) matrix explores different programs
    // from one campaign seed.
    uint64_t h = seed;
    for (char ch : lang + "/" + machine)
        h = splitmix64(h ^ uint64_t(uint8_t(ch)));
    FuzzRng rng(h);

    std::unique_ptr<Emitter> em = makeEmitter(lang, machine);
    em->prologue(seed);

    unsigned n = budget / 2 + unsigned(rng.below(budget));
    bool inLoop = false;
    unsigned loopsUsed = 0;
    unsigned bodyLeft = 0;
    int counter = -1;

    for (unsigned i = 0; i < n; ++i) {
        if (inLoop && bodyLeft == 0) {
            em->loopEnd();
            inLoop = false;
            counter = -1;
        }
        unsigned w = unsigned(rng.below(100));
        if (w < 12) {
            em->stConst(rng, counter);
        } else if (w < 42) {
            em->stBin(rng, counter);
        } else if (w < 52) {
            em->stMov(rng, counter);
        } else if (w < 62) {
            em->stShift(rng, counter);
        } else if (w < 72) {
            em->stStore(rng, counter);
        } else if (w < 82) {
            em->stLoad(rng, counter);
        } else if (w < 90) {
            em->stCond(rng, counter);
        } else if (!inLoop && loopsUsed < 2) {
            counter = em->loopBegin(rng);
            inLoop = true;
            ++loopsUsed;
            bodyLeft = 1 + unsigned(rng.below(3));
            continue;
        } else {
            em->stBin(rng, counter);
        }
        if (inLoop)
            --bodyLeft;
    }
    if (inLoop)
        em->loopEnd();
    em->epilogue();

    GeneratedProgram p;
    p.lang = lang;
    p.machine = machine;
    p.seed = seed;
    p.source = em->text();
    // Initial values only for variables the body references: the
    // pipeline never allocates an unused variable, so setting one
    // would fail the job against a golden run that happily accepts
    // it. The draw itself is unconditional to keep the value stream
    // aligned with the statement stream.
    const std::vector<std::string> &names = em->vars();
    for (size_t i = 0; i < names.size(); ++i) {
        const uint64_t val = rng.below(0x10000);
        if (em->varUsed(i))
            p.sets.emplace_back(names[i], val);
    }
    return p;
}

// ----------------------------------------------------------------
// Configuration sampling.
// ----------------------------------------------------------------

ConfigSample
referenceConfig()
{
    ConfigSample c;
    c.options.jit = false;
    c.forceSlowPath = true;
    return c;
}

ConfigSample
sampleConfig(FuzzRng &rng)
{
    static const char *const compactors[] = {
        "", "linear", "critical_path", "dasgupta_tartar", "tokoro",
        "optimal"};
    static const char *const allocators[] = {"", "graph_coloring",
                                             "linear_scan"};

    ConfigSample c;
    c.options.compact = rng.chance(85);
    if (c.options.compact)
        c.options.compactor = compactors[rng.below(6)];
    c.options.allocator = allocators[rng.below(3)];
    c.options.optimize = rng.chance(70);
    c.forceSlowPath = rng.chance(30);
    c.options.jit = rng.chance(50) && !c.forceSlowPath;
    if (c.options.jit && rng.chance(50))
        c.options.jitThreshold = 1;     // force the tier hot

    if (rng.chance(35)) {
        // A random architecturally-transparent fault mix: ECC
        // corrects the single-bit flips, refetch absorbs parity,
        // jitter only stretches time.
        std::string plan;
        if (rng.chance(20)) {
            plan = "-";     // the built-in recoverable chaos mix
        } else {
            if (rng.chance(70))
                plan += "mem1 rate 1/" +
                        std::to_string(rng.range(32, 256)) + "\n";
            if (rng.chance(50))
                plan += "parity rate 1/" +
                        std::to_string(rng.range(64, 256)) + "\n";
            if (rng.chance(40))
                plan += "spurint rate 1/" +
                        std::to_string(rng.range(64, 256)) + "\n";
            if (rng.chance(50))
                plan += "jitter rate 1/" +
                        std::to_string(rng.range(32, 128)) +
                        " max " + std::to_string(rng.range(1, 4)) +
                        "\n";
        }
        if (!plan.empty()) {
            c.faultPlan = plan;
            c.faultSeed = rng.next() | 1;
        }
    }
    // ECC off only without injection: silent flips are a
    // deliberate-divergence knob, not semantics-preserving.
    c.ecc = c.faultPlan.empty() ? !rng.chance(15) : true;
    c.dmr = rng.chance(15);
    return c;
}

std::string
ConfigSample::summary() const
{
    std::string s;
    s += "compactor=" +
         (options.compactor.empty() ? "(default)" : options.compactor);
    s += " allocator=" +
         (options.allocator.empty() ? "(default)" : options.allocator);
    s += options.compact ? " compact" : " no-compact";
    s += options.optimize ? " optimize" : " no-optimize";
    s += forceSlowPath ? " slow" : " fast";
    s += options.jit ? (options.jitThreshold == 1 ? " jit-hot"
                                                  : " jit")
                     : " no-jit";
    if (!faultPlan.empty()) {
        std::string fp = faultPlan;
        for (char &ch : fp) {
            if (ch == '\n')
                ch = ',';
        }
        s += " faults[" + fp + "]seed=" + std::to_string(faultSeed);
    }
    if (dmr)
        s += " dmr";
    if (!ecc)
        s += " no-ecc";
    return s;
}

} // namespace uhll
