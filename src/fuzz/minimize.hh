/**
 * @file
 * Automatic test-case minimization for fuzz-farm divergences.
 *
 * Delta debugging (ddmin) at line granularity over the generated
 * program -- the generators emit one statement per line, so lines
 * are the AST nodes -- followed by knob-by-knob reduction of the
 * diverging configuration toward the reference configuration. Every
 * candidate is re-run through the Toolchain facade and kept only if
 * it still (a) produces a usable golden observation and (b)
 * diverges. The result is 1-minimal: removing any single remaining
 * line, or resetting any single remaining knob, makes the
 * divergence disappear.
 */

#ifndef UHLL_FUZZ_MINIMIZE_HH
#define UHLL_FUZZ_MINIMIZE_HH

#include <cstdint>
#include <string>

#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"

namespace uhll {

class Toolchain;

/** A minimized divergence: the smallest (program, config) pair
 *  still showing it, plus both observations on that pair. */
struct MinimizedRepro {
    GeneratedProgram program;
    ConfigSample config;
    FuzzObservation expected;   //!< golden on the minimized program
    FuzzObservation observed;   //!< config run on the minimized program
    unsigned probes = 0;        //!< candidate evaluations spent
    bool oneMinimal = false;    //!< probe budget did not truncate ddmin
};

/**
 * Shrink (@p p, @p c), known to diverge under @p tc, to a 1-minimal
 * repro. @p max_probes bounds the total candidate evaluations
 * (compile+run each); when it runs out the best-so-far is returned
 * with oneMinimal=false.
 */
MinimizedRepro fuzzMinimize(const Toolchain &tc,
                            const GeneratedProgram &p,
                            const ConfigSample &c,
                            unsigned max_probes = 400);

} // namespace uhll

#endif // UHLL_FUZZ_MINIMIZE_HH
