#include "fuzz/campaign.hh"

#include <algorithm>
#include <chrono>

#include "driver/batch.hh"
#include "driver/toolchain.hh"
#include "fuzz/corpus.hh"
#include "obs/json.hh"
#include "obs/schema.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

//! programs per BatchRunner wave: enough to keep a pool busy,
//! small enough that a duration cap reacts within a few seconds
constexpr uint64_t kWavePrograms = 16;

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
fnvString(uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    h ^= 0x1f;      // field separator
    h *= 0x100000001b3ull;
    return h;
}

std::string
hex64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** One generated program with its configs and wave job indices. */
struct PlannedProgram {
    GeneratedProgram prog;
    std::vector<ConfigSample> configs;  //!< [0] = reference
    size_t firstJob = 0;                //!< index into the wave's jobs
};

void
writeObservation(JsonWriter &w, const std::string &key,
                 const FuzzObservation &o)
{
    w.raw(key, o.toJson());
}

} // namespace

std::string
FuzzReport::toJson(bool pretty, bool timings) const
{
    JsonWriter w(pretty);
    w.beginObject();
    writeSchemaField(w);
    w.beginObject("fuzz");
    w.value("seed", hex64(seed));
    w.value("jobs_planned", jobsPlanned);
    w.value("jobs_run", jobsRun);
    w.value("programs", programs);
    w.value("golden_failures", goldenFailures);
    w.value("gen_digest", hex64(genDigest));
    w.value("divergences",
            static_cast<uint64_t>(divergences.size()));
    if (timings) {
        w.value("wall_seconds", wallSeconds);
        w.value("jobs_per_sec", jobsPerSec);
        w.value("programs_per_sec", programsPerSec);
    }
    w.endObject();
    w.beginArray("findings");
    for (const FuzzDivergence &d : divergences) {
        w.beginObject();
        w.value("job", d.jobName);
        w.value("lang", d.lang);
        w.value("machine", d.machine);
        w.value("program_seed", hex64(d.programSeed));
        w.value("config", d.configSummary);
        writeObservation(w, "expected", d.expected);
        writeObservation(w, "observed", d.observed);
        w.value("minimized", d.minimized);
        if (d.minimized) {
            w.value("repro_lines",
                    static_cast<uint64_t>(d.reproLines));
            w.value("minimized_source", d.minimizedSource);
            w.value("minimized_config", d.minimizedConfig);
        }
        if (!d.corpusPath.empty())
            w.value("corpus_path", d.corpusPath);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

FuzzOptions
parseFuzzOptions(const JsonValue &v)
{
    if (!v.isObject())
        fatal("fuzz manifest: \"fuzz\" must be an object");
    FuzzOptions o;
    for (const auto &[key, val] : v.fields) {
        if (key == "seed") {
            o.seed = val.asU64(o.seed);
        } else if (key == "jobs") {
            o.jobs = val.asU64(o.jobs);
        } else if (key == "duration_seconds") {
            o.durationSeconds = val.asNumber(o.durationSeconds);
        } else if (key == "threads") {
            o.threads = static_cast<unsigned>(val.asU64(o.threads));
        } else if (key == "configs_per_program") {
            o.configsPerProgram =
                static_cast<unsigned>(val.asU64(o.configsPerProgram));
        } else if (key == "size_budget") {
            o.sizeBudget =
                static_cast<unsigned>(val.asU64(o.sizeBudget));
        } else if (key == "langs") {
            for (const JsonValue &l : val.items)
                o.langs.push_back(l.asString());
        } else if (key == "machines") {
            for (const JsonValue &m : val.items)
                o.machines.push_back(m.asString());
        } else if (key == "corpus_dir") {
            o.corpusDir = val.asString();
        } else if (key == "minimize") {
            o.minimize = val.asBool(o.minimize);
        } else if (key == "max_minimize") {
            o.maxMinimize =
                static_cast<unsigned>(val.asU64(o.maxMinimize));
        } else {
            fatal("fuzz manifest: unknown key \"%s\"", key.c_str());
        }
    }
    return o;
}

FuzzReport
runFuzzCampaign(const Toolchain &tc, const FuzzOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    std::vector<std::string> langs = opts.langs;
    if (langs.empty())
        langs = fuzzGeneratorLangs();
    std::vector<std::string> machines = opts.machines;
    if (machines.empty())
        machines = machineNames();
    if (langs.empty() || machines.empty())
        fatal("fuzz: empty language or machine list");

    const unsigned perProg = 1 + opts.configsPerProgram;
    const uint64_t programsTotal =
        (opts.jobs + perProg - 1) / perProg;

    FuzzReport rep;
    rep.seed = opts.seed;
    rep.jobsPlanned = programsTotal * perProg;
    rep.genDigest = 0xcbf29ce484222325ull;

    BatchRunner runner(tc, opts.threads ? opts.threads : 0);
    SupervisePolicy policy;     // per-job deadlines come from fuzzJob
    runner.setPolicy(policy);

    uint64_t nextProgram = 0;
    while (nextProgram < programsTotal) {
        if (opts.durationSeconds > 0) {
            const double elapsed =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            if (elapsed >= opts.durationSeconds)
                break;
        }

        // ---- generate one wave -------------------------------------
        std::vector<PlannedProgram> wave;
        std::vector<Job> jobs;
        const uint64_t waveEnd =
            std::min(programsTotal, nextProgram + kWavePrograms);
        for (uint64_t i = nextProgram; i < waveEnd; ++i) {
            PlannedProgram pp;
            const std::string &lang =
                langs[static_cast<size_t>(i % langs.size())];
            const std::string &mach = machines[static_cast<size_t>(
                (i / langs.size()) % machines.size())];
            const uint64_t progSeed =
                splitmix64(opts.seed ^ splitmix64(i + 1));
            pp.prog = generateProgram(lang, mach, progSeed,
                                      opts.sizeBudget);
            pp.configs.push_back(referenceConfig());
            FuzzRng crng(splitmix64(progSeed ^ 0xc0ffee));
            for (unsigned k = 0; k < opts.configsPerProgram; ++k)
                pp.configs.push_back(sampleConfig(crng));
            pp.firstJob = jobs.size();

            rep.genDigest = fnvString(rep.genDigest, pp.prog.source);
            for (const auto &[n, val] : pp.prog.sets)
                rep.genDigest = fnvString(
                    rep.genDigest, n + "=" + hex64(val));
            for (size_t k = 0; k < pp.configs.size(); ++k) {
                Job j = fuzzJob(pp.prog, pp.configs[k]);
                j.name += (k == 0) ? ":ref"
                                   : ":c" + std::to_string(k);
                jobs.push_back(std::move(j));
                rep.genDigest = fnvString(
                    rep.genDigest, pp.configs[k].summary());
            }
            wave.push_back(std::move(pp));
        }
        nextProgram = waveEnd;

        // Each job captures its final-memory digest into its own
        // slot; the vector is sized up front so the worker threads'
        // writes never move it.
        std::vector<uint64_t> digests(jobs.size(), 0);
        for (size_t j = 0; j < jobs.size(); ++j) {
            const auto [base, count] =
                fuzzScratchRange(jobs[j].machine);
            uint64_t *slot = &digests[j];
            jobs[j].onFinish = [slot, base = base, count = count](
                                   const MicroSimulator &,
                                   const MainMemory &mem) {
                *slot = fuzzMemDigest(mem.words(), base, count);
            };
        }

        // ---- run it ------------------------------------------------
        BatchReport br = runner.run(jobs);
        rep.jobsRun += jobs.size();
        rep.programs += wave.size();

        // ---- diff every configuration against golden ---------------
        for (const PlannedProgram &pp : wave) {
            const bool mir = fuzzLangIsMir(pp.prog.lang);
            std::vector<FuzzObservation> obs;
            for (size_t k = 0; k < pp.configs.size(); ++k) {
                const size_t j = pp.firstJob + k;
                obs.push_back(
                    fuzzObserve(br.results[j], digests[j]));
            }
            FuzzObservation golden;
            size_t firstCompared;
            if (mir) {
                golden = fuzzMirGolden(pp.prog);
                firstCompared = 0;  // the reference run is under test
                if (!golden.ok)
                    ++rep.goldenFailures;   // still diffed: an ok
                                            // config run diverges
            } else {
                golden = obs[0];    // reference run IS the golden
                firstCompared = 1;
                if (!golden.ok) {
                    ++rep.goldenFailures;
                    continue;
                }
            }
            for (size_t k = firstCompared; k < pp.configs.size();
                 ++k) {
                if (!fuzzDiverges(golden, obs[k]))
                    continue;
                FuzzDivergence d;
                d.jobName = jobs[pp.firstJob + k].name;
                d.lang = pp.prog.lang;
                d.machine = pp.prog.machine;
                d.programSeed = pp.prog.seed;
                d.configSummary = pp.configs[k].summary();
                d.expected = golden;
                d.observed = obs[k];
                if (opts.minimize &&
                    static_cast<unsigned>(
                        rep.divergences.size()) < opts.maxMinimize) {
                    MinimizedRepro mr = fuzzMinimize(
                        tc, pp.prog, pp.configs[k]);
                    d.minimized = mr.oneMinimal;
                    d.minimizedSource = mr.program.source;
                    d.minimizedConfig = mr.config.summary();
                    d.reproLines = 0;
                    for (char c : mr.program.source)
                        d.reproLines += (c == '\n');
                    if (!opts.corpusDir.empty()) {
                        const std::string stem =
                            "fuzz-" + d.lang + "-" + d.machine +
                            "-s" + hex64(d.programSeed) + "-" +
                            std::to_string(rep.divergences.size());
                        CorpusEntry e = corpusFromRepro(
                            stem,
                            "found by campaign seed " +
                                hex64(opts.seed),
                            mr);
                        d.corpusPath = writeCorpusEntry(
                            opts.corpusDir, e);
                    }
                }
                rep.divergences.push_back(std::move(d));
            }
        }
    }

    rep.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (rep.wallSeconds > 0) {
        rep.jobsPerSec =
            static_cast<double>(rep.jobsRun) / rep.wallSeconds;
        rep.programsPerSec =
            static_cast<double>(rep.programs) / rep.wallSeconds;
    }
    return rep;
}

} // namespace uhll
