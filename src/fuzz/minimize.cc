#include "fuzz/minimize.hh"

#include <functional>

#include "driver/toolchain.hh"

namespace uhll {

namespace {

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : s) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const auto &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

/** Shared probe state: rebuilds a candidate program from a line
 *  subset, re-derives golden semantics for it, and answers "does it
 *  still diverge under this config?". */
struct Prober {
    const Toolchain &tc;
    const GeneratedProgram &orig;
    unsigned budget;
    unsigned spent = 0;
    //! the original divergence's signature; once set, a candidate
    //! only counts when it diverges the SAME way (classic ddmin
    //! hygiene -- keeps shrinking from wandering onto another bug)
    FuzzDivergenceKind wantKind = FuzzDivergenceKind::None;

    GeneratedProgram
    rebuild(const std::vector<std::string> &lines) const
    {
        GeneratedProgram p = orig;
        p.source = joinLines(lines);
        p.sets = fuzzFilterSets(orig.sets, p.source);
        return p;
    }

    bool
    exhausted() const
    {
        return spent >= budget;
    }

    /** One candidate evaluation. Fills @p want / @p got on a
     *  diverging candidate so callers can keep the observations of
     *  the final survivor without a re-run. */
    bool
    diverges(const GeneratedProgram &p, const ConfigSample &c,
             FuzzObservation *want = nullptr,
             FuzzObservation *got = nullptr)
    {
        ++spent;
        FuzzObservation golden = fuzzGolden(tc, p);
        if (!golden.ok)
            return false;   // candidate broke the program: reject
        FuzzObservation obs = fuzzRunConfig(tc, p, c);
        const FuzzDivergenceKind kind =
            fuzzDivergenceKind(golden, obs);
        if (kind == FuzzDivergenceKind::None)
            return false;
        if (wantKind != FuzzDivergenceKind::None && kind != wantKind)
            return false;   // diverges, but not the bug we're shrinking
        if (want)
            *want = golden;
        if (got)
            *got = obs;
        return true;
    }
};

/**
 * Greedy ddmin over lines: repeatedly try deleting contiguous chunks,
 * halving the chunk size down to 1; restart from the top after any
 * successful deletion. Terminates 1-minimal (no single line can be
 * removed) unless the probe budget runs dry first.
 */
bool
ddminLines(Prober &pr, const ConfigSample &c,
           std::vector<std::string> &lines, FuzzObservation *want,
           FuzzObservation *got)
{
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (size_t chunk = lines.size() / 2; chunk >= 1;
             chunk = chunk / 2) {
            for (size_t at = 0; at + chunk <= lines.size();) {
                if (pr.exhausted())
                    return false;
                std::vector<std::string> cand;
                cand.reserve(lines.size() - chunk);
                cand.insert(cand.end(), lines.begin(),
                            lines.begin() +
                                static_cast<long>(at));
                cand.insert(cand.end(),
                            lines.begin() +
                                static_cast<long>(at + chunk),
                            lines.end());
                if (pr.diverges(pr.rebuild(cand), c, want, got)) {
                    lines = std::move(cand);
                    shrunk = true;
                    // stay at `at`: the next chunk slid into place
                } else {
                    at += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
    }
    return true;
}

/** One knob-reset action toward the reference configuration. */
struct Knob {
    const char *name;
    std::function<bool(ConfigSample &)> reset;  //!< false: already there
};

std::vector<Knob>
configKnobs()
{
    const ConfigSample ref = referenceConfig();
    return {
        {"faults",
         [](ConfigSample &c) {
             if (c.faultPlan.empty() && c.faultSeed == 0)
                 return false;
             c.faultPlan.clear();
             c.faultSeed = 0;
             return true;
         }},
        {"dmr",
         [](ConfigSample &c) {
             if (!c.dmr)
                 return false;
             c.dmr = false;
             return true;
         }},
        {"ecc",
         [](ConfigSample &c) {
             if (c.ecc)
                 return false;
             c.ecc = true;
             return true;
         }},
        // jit off resets the threshold too: a bare threshold without
        // the tier is the combination validate() rejects
        {"jit",
         [ref](ConfigSample &c) {
             if (c.options.jit == ref.options.jit &&
                 c.options.jitThreshold == 0)
                 return false;
             c.options.jit = ref.options.jit;
             c.options.jitThreshold = 0;
             return true;
         }},
        {"force_slow",
         [ref](ConfigSample &c) {
             if (c.forceSlowPath == ref.forceSlowPath)
                 return false;
             c.forceSlowPath = ref.forceSlowPath;
             return true;
         }},
        {"compactor",
         [](ConfigSample &c) {
             if (c.options.compactor.empty())
                 return false;
             c.options.compactor.clear();
             return true;
         }},
        {"allocator",
         [](ConfigSample &c) {
             if (c.options.allocator.empty())
                 return false;
             c.options.allocator.clear();
             return true;
         }},
        {"optimize",
         [ref](ConfigSample &c) {
             if (c.options.optimize == ref.options.optimize)
                 return false;
             c.options.optimize = ref.options.optimize;
             return true;
         }},
        // last: turning compaction off usually kills a compactor
        // divergence, so it only survives when something else is the
        // culprit -- but compactor="" must already have been retried
        {"compact",
         [ref](ConfigSample &c) {
             if (c.options.compact == ref.options.compact)
                 return false;
             c.options.compact = ref.options.compact;
             if (ref.options.compact == false)
                 c.options.compactor.clear();
             return true;
         }},
    };
}

/** Reset config knobs toward reference, keeping each reset that
 *  still diverges; loops to fixpoint (resets can unlock others). */
bool
reduceConfig(Prober &pr, const GeneratedProgram &p, ConfigSample &c,
             FuzzObservation *want, FuzzObservation *got)
{
    const std::vector<Knob> knobs = configKnobs();
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Knob &k : knobs) {
            ConfigSample cand = c;
            if (!k.reset(cand))
                continue;
            if (pr.exhausted())
                return false;
            if (pr.diverges(p, cand, want, got)) {
                c = cand;
                changed = true;
            }
        }
    }
    return true;
}

} // namespace

MinimizedRepro
fuzzMinimize(const Toolchain &tc, const GeneratedProgram &p,
             const ConfigSample &c, unsigned max_probes)
{
    Prober pr{tc, p, max_probes};
    MinimizedRepro out;
    out.program = p;
    out.config = c;

    std::vector<std::string> lines = splitLines(p.source);
    FuzzObservation want, got;

    // Confirm the divergence reproduces at all before spending the
    // budget (flaky inputs -- e.g. an unseeded fault plan -- bail out
    // with the original as the "minimized" form).
    if (!pr.diverges(p, c, &want, &got)) {
        out.expected = want;
        out.observed = got;
        out.probes = pr.spent;
        return out;
    }
    pr.wantKind = fuzzDivergenceKind(want, got);

    bool lines_done = ddminLines(pr, c, lines, &want, &got);
    out.program = pr.rebuild(lines);

    ConfigSample mini = c;
    bool config_done =
        reduceConfig(pr, out.program, mini, &want, &got);
    out.config = mini;

    out.expected = want;
    out.observed = got;
    out.probes = pr.spent;
    out.oneMinimal = lines_done && config_done;
    return out;
}

} // namespace uhll
