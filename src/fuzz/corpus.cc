#include "fuzz/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "driver/toolchain.hh"
#include "obs/json.hh"
#include "support/fsio.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

// 64-bit values round-trip through the JSON reader's double only up
// to 2^53; digests and seeds use the full width, so they are written
// as hex strings (asU64 parses "0x..." exactly).
std::string
hex64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
writeObservation(JsonWriter &w, const std::string &key,
                 const FuzzObservation &o)
{
    w.beginObject(key);
    w.value("ok", o.ok);
    w.value("halted", o.halted);
    w.beginObject("vars");
    for (const auto &[name, value] : o.vars)
        w.value(name, hex64(value));
    w.endObject();
    w.value("mem_digest", hex64(o.memDigest));
    if (!o.diag.empty())
        w.value("diag", o.diag);
    w.endObject();
}

FuzzObservation
parseObservation(const JsonValue &v)
{
    FuzzObservation o;
    o.ok = v.require("ok").asBool();
    o.halted = v.require("halted").asBool();
    for (const auto &[name, val] : v.require("vars").fields)
        o.vars.emplace_back(name, val.asU64());
    o.memDigest = v.require("mem_digest").asU64();
    if (const JsonValue *d = v.get("diag"))
        o.diag = d->asString();
    return o;
}

} // namespace

std::string
CorpusEntry::toJson() const
{
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.value("name", name);
    if (!note.empty())
        w.value("note", note);
    w.value("lang", program.lang);
    w.value("machine", program.machine);
    w.value("seed", hex64(program.seed));
    w.value("entry", program.entry);
    w.value("source", program.source);
    w.beginObject("sets");
    for (const auto &[n, val] : program.sets)
        w.value(n, hex64(val));
    w.endObject();
    w.beginObject("config");
    w.value("compactor", config.options.compactor);
    w.value("allocator", config.options.allocator);
    w.value("compact", config.options.compact);
    w.value("optimize", config.options.optimize);
    w.value("jit", config.options.jit);
    w.value("jit_threshold",
            static_cast<uint64_t>(config.options.jitThreshold));
    w.value("fault_plan", config.faultPlan);
    w.value("fault_seed", hex64(config.faultSeed));
    w.value("force_slow", config.forceSlowPath);
    w.value("dmr", config.dmr);
    w.value("ecc", config.ecc);
    w.endObject();
    writeObservation(w, "expected", expected);
    writeObservation(w, "observed_at_capture", observedAtCapture);
    w.endObject();
    return w.str();
}

CorpusEntry
parseCorpusEntry(const std::string &json)
{
    const JsonValue root = JsonValue::parse(json);
    CorpusEntry e;
    e.name = root.require("name").asString();
    if (const JsonValue *n = root.get("note"))
        e.note = n->asString();
    e.program.lang = root.require("lang").asString();
    e.program.machine = root.require("machine").asString();
    e.program.seed = root.require("seed").asU64();
    e.program.entry = root.require("entry").asString();
    e.program.source = root.require("source").asString();
    for (const auto &[name, val] : root.require("sets").fields)
        e.program.sets.emplace_back(name, val.asU64());
    const JsonValue &c = root.require("config");
    e.config.options.compactor = c.require("compactor").asString();
    e.config.options.allocator = c.require("allocator").asString();
    e.config.options.compact = c.require("compact").asBool();
    e.config.options.optimize = c.require("optimize").asBool();
    e.config.options.jit = c.require("jit").asBool();
    e.config.options.jitThreshold =
        static_cast<uint32_t>(c.require("jit_threshold").asU64());
    e.config.faultPlan = c.require("fault_plan").asString();
    e.config.faultSeed = c.require("fault_seed").asU64();
    e.config.forceSlowPath = c.require("force_slow").asBool();
    e.config.dmr = c.require("dmr").asBool();
    e.config.ecc = c.require("ecc").asBool();
    e.expected = parseObservation(root.require("expected"));
    e.observedAtCapture =
        parseObservation(root.require("observed_at_capture"));
    return e;
}

std::optional<CorpusEntry>
loadCorpusEntry(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return std::nullopt;
    std::ostringstream ss;
    ss << f.rdbuf();
    try {
        return parseCorpusEntry(ss.str());
    } catch (const FatalError &) {
        return std::nullopt;
    }
}

std::string
writeCorpusEntry(const std::string &dir, const CorpusEntry &e)
{
    ::mkdir(dir.c_str(), 0755);     // fresh campaign corpus dirs
    const std::string path = dir + "/" + e.name + ".json";
    std::string err;
    if (!atomicWriteDurable(path, e.toJson() + "\n", &err)) {
        warn("corpus: %s", err.c_str());
        return "";
    }
    return path;
}

CorpusEntry
corpusFromRepro(const std::string &name, const std::string &note,
                const MinimizedRepro &r)
{
    CorpusEntry e;
    e.name = name;
    e.note = note;
    e.program = r.program;
    e.config = r.config;
    e.expected = r.expected;
    e.observedAtCapture = r.observed;
    return e;
}

bool
replayCorpusEntry(const Toolchain &tc, const CorpusEntry &e,
                  std::string *why)
{
    FuzzObservation golden = fuzzGolden(tc, e.program);
    if (!golden.ok) {
        if (why)
            *why = "golden no longer runs: " + golden.diag;
        return false;
    }
    if (fuzzDiverges(e.expected, golden)) {
        // The reference semantics moved since capture -- that is a
        // finding of its own, not a pass.
        if (why)
            *why = "golden drifted from the recorded expectation: "
                   "recorded " + e.expected.toJson() + " vs now " +
                   golden.toJson();
        return false;
    }
    FuzzObservation obs = fuzzRunConfig(tc, e.program, e.config);
    if (fuzzDiverges(golden, obs)) {
        if (why)
            *why = "still diverges: expected " + golden.toJson() +
                   " got " + obs.toJson();
        return false;
    }
    return true;
}

std::vector<std::string>
listCorpusFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = opendir(dir.c_str());
    if (!d)
        return out;
    while (const dirent *ent = readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(dir + "/" + name);
    }
    closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace uhll
