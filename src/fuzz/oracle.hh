/**
 * @file
 * The differential oracle of the fuzz farm: what one run of a
 * generated program looks like to the comparator, how the golden
 * observation is produced, and when two observations count as a
 * divergence.
 *
 * Golden semantics are the MIR reference interpreter for the
 * MIR-producing frontends (YALLL, SIMPL, EMPL): a program's meaning
 * is fixed before compaction, allocation, fast-path selection or
 * the JIT ever see it. The direct frontends (S*, masm) have no MIR;
 * their golden observation is the fixed reference configuration
 * (default pipeline, forced-slow interpreter, no faults) run
 * through the same Toolchain facade.
 *
 * An observation deliberately excludes anything timing- or
 * resource-shaped (cycle counts, fault tallies, jitter): the
 * configurations under test are allowed to take different paths,
 * never to produce different architectural results.
 */

#ifndef UHLL_FUZZ_ORACLE_HH
#define UHLL_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/supervisor.hh"
#include "fuzz/generator.hh"

namespace uhll {

class Toolchain;

/** The architecturally-visible outcome of one run. */
struct FuzzObservation {
    //! compile succeeded and the simulation ended at Halt
    bool ok = false;
    bool halted = false;
    //! final values of the program's observable variables, in
    //! GeneratedProgram::sets order
    std::vector<std::pair<std::string, uint64_t>> vars;
    //! FNV-1a over final main memory, compiler scratch RAM masked
    uint64_t memDigest = 0;
    //! first diagnostic when !ok (never compared)
    std::string diag;

    std::string toJson() const;
};

/** How @p got differs from @p want -- the first mismatch in
 *  severity order. The minimizer pins this signature so shrinking
 *  cannot slip from the original bug onto an unrelated one (e.g.
 *  from a wrong-result divergence onto a candidate that merely
 *  fails to compile differently than golden). */
enum class FuzzDivergenceKind {
    None,   //!< architecturally identical (or both failed)
    Ok,     //!< one side failed, the other succeeded
    Halt,   //!< both ok but different halted state
    State,  //!< variable values or memory digest differ
};

FuzzDivergenceKind fuzzDivergenceKind(const FuzzObservation &want,
                                      const FuzzObservation &got);

/** True when @p got differs architecturally from @p want: ok,
 *  halted state, any variable, or the memory digest. */
bool fuzzDiverges(const FuzzObservation &want,
                  const FuzzObservation &got);

/** @p machine's compiler scratch RAM as (base, words) -- the only
 *  main-memory range the comparator masks. */
std::pair<uint32_t, uint32_t> fuzzScratchRange(
    const std::string &machine);

/** FNV-1a over @p words with [base, base+count) masked. */
uint64_t fuzzMemDigest(const std::vector<uint64_t> &words,
                       uint32_t base, uint32_t count);

/** True when @p lang compiles through MIR (interpreter golden). */
bool fuzzLangIsMir(const std::string &lang);

/**
 * Golden observation of @p p on the MIR reference interpreter.
 * Returns ok=false (with diagnostics) when the program does not
 * translate or exhausts the step budget -- callers skip such
 * programs rather than judge configurations against them.
 */
FuzzObservation fuzzMirGolden(const GeneratedProgram &p);

/**
 * Run @p p under configuration @p c through the Toolchain facade
 * (single supervised job: deadline, optional DMR) and observe the
 * result. @p max_cycles bounds runaway candidates during
 * minimization; 0 = the campaign default.
 */
FuzzObservation fuzzRunConfig(const Toolchain &tc,
                              const GeneratedProgram &p,
                              const ConfigSample &c,
                              uint64_t max_cycles = 0);

/** The golden observation for @p p: MIR interpreter for MIR
 *  frontends, reference-configuration run for direct ones. */
FuzzObservation fuzzGolden(const Toolchain &tc,
                           const GeneratedProgram &p);

/** Drop sets entries whose variable name no longer occurs as a
 *  whole token in @p source (minimization candidates). */
std::vector<std::pair<std::string, uint64_t>> fuzzFilterSets(
    const std::vector<std::pair<std::string, uint64_t>> &sets,
    const std::string &source);

/** Condense a JobResult (plus the memory digest its onFinish hook
 *  captured) into an observation; the digest of a failed or
 *  truncated run is zeroed, never compared. */
FuzzObservation fuzzObserve(const JobResult &r, uint64_t mem_digest);

/** Build the supervised Job for (@p p, @p c) -- the one entry point
 *  campaign, minimizer and corpus replay all funnel through, so a
 *  repro re-runs exactly what the campaign ran. */
Job fuzzJob(const GeneratedProgram &p, const ConfigSample &c,
            uint64_t max_cycles = 0);

} // namespace uhll

#endif // UHLL_FUZZ_ORACLE_HH
