/**
 * @file
 * Seeded, deterministic random-program and configuration generators
 * for the differential fuzz farm (see campaign.hh).
 *
 * One generator per registered frontend (YALLL, SIMPL, EMPL, S*,
 * masm). Each emits only constructs the grammar guarantees
 * well-formed on the target machine -- every loop is a counted
 * countdown with a small bound, every memory access stays inside a
 * fixed low window no machine claims for compiler scratch, and
 * operand/bank constraints (VM-2's split ALU banks, VS-3's 9-bit
 * immediates) are respected by construction. The point is that a
 * generated program can only fail by a toolchain bug, never by its
 * own malformedness.
 *
 * Determinism contract: generateProgram() and sampleConfig() are
 * pure functions of their arguments. The same (lang, machine, seed,
 * budget) yields byte-identical program text and the same input
 * values on every call, in every thread, in every process -- the
 * property test_fuzz.cc and the verify.sh two-process cmp hold them
 * to.
 */

#ifndef UHLL_FUZZ_GENERATOR_HH
#define UHLL_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/toolchain.hh"

namespace uhll {

/**
 * The fuzzer's PRNG: splitmix64 seeding into xorshift64*, the same
 * generator family the fault injector uses. Value semantics; copy
 * freely to fork deterministic substreams.
 */
struct FuzzRng {
    uint64_t s;

    explicit FuzzRng(uint64_t seed);

    uint64_t next();
    /** Uniform in [0, n); n = 0 yields 0. */
    uint64_t below(uint64_t n);
    /** Uniform in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);
    /** True with probability pct/100. */
    bool chance(unsigned pct);
    /** One element of @p v (v must be non-empty). */
    template <typename T>
    const T &pick(const std::vector<T> &v)
    {
        return v[static_cast<size_t>(below(v.size()))];
    }
};

/** One generated program plus the inputs it is run with. */
struct GeneratedProgram {
    std::string lang;
    std::string machine;
    uint64_t seed = 0;
    std::string source;
    std::string entry = "main";
    //! (variable, value): applied via Job::sets before every run and
    //! read back afterwards -- the observable register/variable state
    //! the differential oracle compares
    std::vector<std::pair<std::string, uint64_t>> sets;
};

/** Word-addressed window generated programs confine stores to: low
 *  enough for every machine, above every machine's scratch RAM. */
constexpr uint32_t kFuzzMemBase = 0x400;
constexpr uint32_t kFuzzMemWords = 0x40;

/**
 * Generate one well-formed random program in @p lang for
 * @p machine. @p budget bounds the statement count (and with the
 * fixed loop bounds, the dynamic cycle count). fatal() on an
 * unknown language or machine name.
 */
GeneratedProgram generateProgram(const std::string &lang,
                                 const std::string &machine,
                                 uint64_t seed, unsigned budget = 20);

/** Languages a generator exists for, sorted (campaign default). */
std::vector<std::string> fuzzGeneratorLangs();

/**
 * One sampled pipeline/execution configuration: the knobs the farm
 * varies, drawn from the same names PipelineOptions and Job expose.
 */
struct ConfigSample {
    PipelineOptions options;
    std::string faultPlan;      //!< FaultPlan text, "-" = chaos mix,
                                //!< "" = none
    uint64_t faultSeed = 0;
    bool forceSlowPath = false;
    bool dmr = false;
    bool ecc = true;

    /** Canonical one-line encoding (config label, gen digest). */
    std::string summary() const;
};

/** The fixed reference configuration every divergence is judged
 *  against: default compile pipeline, forced-slow interpreter, no
 *  JIT, no faults, ECC on, no DMR. */
ConfigSample referenceConfig();

/**
 * Draw one random configuration. Contradictory combinations are
 * avoided by construction (a named compactor only with compaction
 * on, ECC off only without fault injection -- silent corruption is
 * a deliberate-divergence knob, not a semantics-preserving one).
 */
ConfigSample sampleConfig(FuzzRng &rng);

} // namespace uhll

#endif // UHLL_FUZZ_GENERATOR_HH
