/**
 * @file
 * The committed regression corpus: every divergence the fuzz farm
 * ever found, minimized and frozen as a self-contained JSON repro
 * under tests/corpus/. test_corpus.cc replays each entry as an
 * ordinary CTest case forever after, so a fixed bug stays fixed.
 *
 * An entry carries everything needed to re-run without the
 * generator: source text, language, machine, input sets, the full
 * configuration, and the expected (golden) observation. Replay
 * recomputes golden semantics from the entry and re-runs the
 * configuration through the Toolchain facade -- the same oracle the
 * campaign used, so a repro cannot drift from the farm.
 */

#ifndef UHLL_FUZZ_CORPUS_HH
#define UHLL_FUZZ_CORPUS_HH

#include <optional>
#include <string>
#include <vector>

#include "fuzz/minimize.hh"

namespace uhll {

class Toolchain;

/** One corpus file, in memory. */
struct CorpusEntry {
    std::string name;       //!< file stem / report label
    std::string note;       //!< human context ("found by seed N ...")
    GeneratedProgram program;
    ConfigSample config;
    FuzzObservation expected;
    FuzzObservation observedAtCapture;

    std::string toJson() const;
};

/** Parse one corpus JSON document. Throws FatalError with the
 *  offending key on malformed input. */
CorpusEntry parseCorpusEntry(const std::string &json);

/** Load @p path. Returns nullopt (never throws) on unreadable or
 *  malformed files -- the replay test reports them as failures. */
std::optional<CorpusEntry> loadCorpusEntry(const std::string &path);

/** Write @p e to @p dir/<name>.json (atomically via rename).
 *  Returns the path written, or "" on I/O failure. */
std::string writeCorpusEntry(const std::string &dir,
                             const CorpusEntry &e);

/** Build an entry from a minimized repro. */
CorpusEntry corpusFromRepro(const std::string &name,
                            const std::string &note,
                            const MinimizedRepro &r);

/**
 * Re-run @p e: recompute golden, run the recorded configuration,
 * and compare. @p why (optional) receives a human-readable
 * explanation on failure.
 * @return true when the run matches the golden observation (the
 *         bug stays fixed).
 */
bool replayCorpusEntry(const Toolchain &tc, const CorpusEntry &e,
                       std::string *why = nullptr);

/** All *.json files under @p dir, sorted by name. */
std::vector<std::string> listCorpusFiles(const std::string &dir);

} // namespace uhll

#endif // UHLL_FUZZ_CORPUS_HH
