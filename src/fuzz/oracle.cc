#include "fuzz/oracle.hh"

#include <cctype>

#include "driver/frontend.hh"
#include "driver/toolchain.hh"
#include "machine/machines/machines.hh"
#include "mir/interp.hh"
#include "obs/json.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

//! main-memory size every fuzz run uses, golden and candidate alike
constexpr uint32_t kFuzzMemSize = 0x10000;
//! interpreter step budget; generated loops are counted and small,
//! so anything that trips this is a generator bug, not a timeout
constexpr uint64_t kGoldenMaxSteps = 5'000'000;
//! campaign default for Job::maxCycles
constexpr uint64_t kFuzzMaxCycles = 2'000'000;
//! per-job wall-clock budget the supervisor enforces
constexpr double kFuzzDeadlineSeconds = 10.0;

} // namespace

std::string
FuzzObservation::toJson() const
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.value("ok", ok);
    w.value("halted", halted);
    w.beginObject("vars");
    for (const auto &[name, value] : vars)
        w.value(name, value);
    w.endObject();
    w.value("mem_digest", memDigest);
    if (!ok && !diag.empty())
        w.value("diag", diag);
    w.endObject();
    return w.str();
}

FuzzDivergenceKind
fuzzDivergenceKind(const FuzzObservation &want,
                   const FuzzObservation &got)
{
    if (want.ok != got.ok)
        return FuzzDivergenceKind::Ok;
    if (!want.ok)
        return FuzzDivergenceKind::None;    // both failed: nothing
                                            // architectural to compare
    if (want.halted != got.halted)
        return FuzzDivergenceKind::Halt;
    if (want.vars != got.vars || want.memDigest != got.memDigest)
        return FuzzDivergenceKind::State;
    return FuzzDivergenceKind::None;
}

bool
fuzzDiverges(const FuzzObservation &want, const FuzzObservation &got)
{
    return fuzzDivergenceKind(want, got) != FuzzDivergenceKind::None;
}

std::pair<uint32_t, uint32_t>
fuzzScratchRange(const std::string &machine)
{
    // The scratch ranges are properties of the bundled machine
    // descriptions; build each once and remember just the range.
    struct Ranges {
        std::pair<uint32_t, uint32_t> hm1, vm2, vs3;
        Ranges()
        {
            const MachineDescription h = buildHm1();
            const MachineDescription v2 = buildVm2();
            const MachineDescription v3 = buildVs3();
            hm1 = {h.scratchBase(), h.scratchWords()};
            vm2 = {v2.scratchBase(), v2.scratchWords()};
            vs3 = {v3.scratchBase(), v3.scratchWords()};
        }
    };
    static const Ranges r;
    std::string c;
    for (char ch : machine)
        if (ch != '-')
            c += static_cast<char>(std::tolower(
                static_cast<unsigned char>(ch)));
    if (c == "hm1")
        return r.hm1;
    if (c == "vm2")
        return r.vm2;
    if (c == "vs3")
        return r.vs3;
    fatal("fuzz: unknown machine '%s'", machine.c_str());
}

uint64_t
fuzzMemDigest(const std::vector<uint64_t> &words, uint32_t base,
              uint32_t count)
{
    uint64_t h = 0xcbf29ce484222325ull;     // FNV-1a offset basis
    for (size_t i = 0; i < words.size(); ++i) {
        uint64_t w = words[i];
        if (i >= base && i < static_cast<size_t>(base) + count)
            w = 0;
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xff;
            h *= 0x100000001b3ull;          // FNV prime
        }
    }
    return h;
}

bool
fuzzLangIsMir(const std::string &lang)
{
    return FrontendRegistry::get(lang).producesMir();
}

namespace {

/** The interpreter's private MachineDescription for @p machine --
 *  the golden path never touches a Toolchain. */
const MachineDescription &
goldenMachine(const std::string &machine)
{
    static const MachineDescription hm1 = buildHm1();
    static const MachineDescription vm2 = buildVm2();
    static const MachineDescription vs3 = buildVs3();
    std::string c;
    for (char ch : machine)
        if (ch != '-')
            c += static_cast<char>(std::tolower(
                static_cast<unsigned char>(ch)));
    if (c == "hm1")
        return hm1;
    if (c == "vm2")
        return vm2;
    if (c == "vs3")
        return vs3;
    fatal("fuzz: unknown machine '%s'", machine.c_str());
}

} // namespace

FuzzObservation
fuzzMirGolden(const GeneratedProgram &p)
{
    FuzzObservation o;
    try {
        const MachineDescription &mach = goldenMachine(p.machine);
        MirProgram prog =
            translateToMir(p.lang, p.source, mach);
        MainMemory mem(kFuzzMemSize, mach.dataWidth());
        MirInterpreter interp(prog, mem, mach.dataWidth());
        for (const auto &[name, value] : p.sets)
            interp.setVReg(name, value);
        uint32_t func = 0;
        const std::string entry =
            p.entry.empty() ? "main" : p.entry;
        for (uint32_t f = 0;
             f < static_cast<uint32_t>(prog.numFunctions()); ++f)
            if (prog.func(f).name == entry)
                func = f;
        MirRunResult rr = interp.run(func, kGoldenMaxSteps);
        o.halted = rr.halted;
        for (const auto &[name, value] : p.sets) {
            (void)value;
            o.vars.emplace_back(name, interp.getVReg(name));
        }
        const auto [base, count] = fuzzScratchRange(p.machine);
        o.memDigest = fuzzMemDigest(mem.words(), base, count);
        o.ok = rr.halted;
        if (!rr.halted)
            o.diag = "mir interp: step budget exceeded";
    } catch (const FatalError &e) {
        o = FuzzObservation{};
        o.diag = std::string("mir golden: ") + e.what();
    }
    return o;
}

Job
fuzzJob(const GeneratedProgram &p, const ConfigSample &c,
        uint64_t max_cycles)
{
    Job job;
    job.name = "fuzz:" + p.lang + ":" + p.machine + ":s" +
               std::to_string(p.seed);
    job.lang = p.lang;
    job.machine = p.machine;
    job.source = p.source;
    job.entry = p.entry;
    job.sets = p.sets;
    job.options = c.options;
    job.faultPlan = c.faultPlan;
    job.faultSeed = c.faultSeed;
    job.forceSlowPath = c.forceSlowPath;
    job.dmr = c.dmr;
    job.ecc = c.ecc;
    job.maxCycles = max_cycles ? max_cycles : kFuzzMaxCycles;
    job.deadlineSeconds = kFuzzDeadlineSeconds;
    return job;
}

FuzzObservation
fuzzObserve(const JobResult &r, uint64_t mem_digest)
{
    FuzzObservation o;
    o.halted = r.ran && r.sim.halted;
    o.vars = r.vars;
    o.ok = r.ok && o.halted;
    if (!r.diagnostics.empty())
        o.diag = r.diagnostics.front();
    else if (!o.halted)
        o.diag = "did not halt within the cycle budget";
    // The digest of a failed or truncated run is noise: never
    // compare it (mirrors fuzzDiverges' ok-gating, and keeps
    // partial digests out of repro JSON).
    o.memDigest = o.ok ? mem_digest : 0;
    return o;
}

FuzzObservation
fuzzRunConfig(const Toolchain &tc, const GeneratedProgram &p,
              const ConfigSample &c, uint64_t max_cycles)
{
    Job job = fuzzJob(p, c, max_cycles);
    uint64_t digest = 0;
    const auto [base, count] = fuzzScratchRange(p.machine);
    job.onFinish = [&digest, base = base, count = count](
                       const MicroSimulator &,
                       const MainMemory &mem) {
        digest = fuzzMemDigest(mem.words(), base, count);
    };
    // Sequence the run before the digest read: as one call
    // expression the argument loads could be ordered either way.
    JobResult r = tc.run(job);
    return fuzzObserve(r, digest);
}

FuzzObservation
fuzzGolden(const Toolchain &tc, const GeneratedProgram &p)
{
    if (fuzzLangIsMir(p.lang))
        return fuzzMirGolden(p);
    return fuzzRunConfig(tc, p, referenceConfig());
}

std::vector<std::pair<std::string, uint64_t>>
fuzzFilterSets(
    const std::vector<std::pair<std::string, uint64_t>> &sets,
    const std::string &source)
{
    auto isWord = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_';
    };
    std::vector<std::pair<std::string, uint64_t>> kept;
    for (const auto &entry : sets) {
        const std::string &name = entry.first;
        bool found = false;
        for (size_t at = source.find(name);
             at != std::string::npos && !found;
             at = source.find(name, at + 1)) {
            const bool left_ok =
                at == 0 || !isWord(source[at - 1]);
            const size_t end = at + name.size();
            const bool right_ok =
                end >= source.size() || !isWord(source[end]);
            found = left_ok && right_ok;
        }
        if (found)
            kept.push_back(entry);
    }
    return kept;
}

} // namespace uhll
