/**
 * @file
 * FuzzCampaign: the differential fuzz farm's driver loop.
 *
 * A campaign turns one seed into a stream of generated programs
 * (round-robin over every requested language x machine cell), pairs
 * each with its reference configuration plus a handful of sampled
 * configurations, fans the jobs out through the existing BatchRunner
 * under supervision (per-job deadlines catch livelocks, sampled DMR
 * catches nondeterminism), and diffs every configuration's
 * observation against the program's golden semantics -- the MIR
 * reference interpreter for MIR frontends, the reference
 * configuration for direct ones.
 *
 * Divergences are minimized on the spot (fuzz/minimize.hh) and, when
 * a corpus directory is given, written as self-contained repro files
 * (fuzz/corpus.hh) ready to commit under tests/corpus/.
 *
 * Determinism: with a fixed seed and job count (no duration cap),
 * the generated stream, the divergence list and the whole
 * toJson(timings=false) report are byte-identical across thread
 * counts and across processes. A duration cap trades that for a
 * wall-clock bound (it cuts the wave loop wherever time ran out).
 */

#ifndef UHLL_FUZZ_CAMPAIGN_HH
#define UHLL_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/minimize.hh"

namespace uhll {

class Toolchain;
struct JsonValue;

/** Campaign knobs (uhllc --fuzz flags / the manifest "fuzz" object). */
struct FuzzOptions {
    uint64_t seed = 1;
    //! total supervised jobs to run (reference + sampled configs);
    //! the program count follows from configsPerProgram
    uint64_t jobs = 500;
    //! wall-clock cap in seconds (0 = none); checked between waves
    double durationSeconds = 0;
    unsigned threads = 0;           //!< BatchRunner pool (0 = hw)
    //! sampled configurations per program, on top of the reference
    unsigned configsPerProgram = 3;
    unsigned sizeBudget = 20;       //!< generator statement budget
    //! cells to draw from; empty = all registered / all bundled
    std::vector<std::string> langs;
    std::vector<std::string> machines;
    //! when non-empty, minimized repros are written here
    std::string corpusDir;
    bool minimize = true;           //!< auto-minimize divergences
    unsigned maxMinimize = 8;       //!< minimization budget per campaign
};

/** One confirmed divergence, with its minimized form when
 *  minimization ran. */
struct FuzzDivergence {
    std::string jobName;
    std::string lang;
    std::string machine;
    uint64_t programSeed = 0;
    std::string configSummary;
    FuzzObservation expected;
    FuzzObservation observed;
    bool minimized = false;
    //! line count of the minimized source ("repro size")
    unsigned reproLines = 0;
    std::string corpusPath;         //!< "" = not written
    std::string minimizedSource;
    std::string minimizedConfig;
};

/** The campaign's aggregate outcome. */
struct FuzzReport {
    uint64_t seed = 0;
    uint64_t jobsPlanned = 0;
    uint64_t jobsRun = 0;
    uint64_t programs = 0;
    //! programs whose golden observation failed (skipped for direct
    //! languages; for MIR languages a golden failure IS a divergence
    //! of the reference job and lands in `divergences` instead)
    uint64_t goldenFailures = 0;
    std::vector<FuzzDivergence> divergences;
    //! FNV over every generated source, sets list and config summary:
    //! the determinism tests compare it across -j values / processes
    uint64_t genDigest = 0;
    double wallSeconds = 0;
    double jobsPerSec = 0;
    double programsPerSec = 0;

    bool clean() const { return divergences.empty(); }

    /** JSON report; @p timings false omits every wall-clock-derived
     *  field so the remainder is byte-identical across runs. */
    std::string toJson(bool pretty = true, bool timings = true) const;
};

/** Run one campaign. */
FuzzReport runFuzzCampaign(const Toolchain &tc,
                           const FuzzOptions &opts);

/** Parse a manifest's "fuzz" object into options (defaults for
 *  absent keys; fatal() on unknown keys or a non-object). */
FuzzOptions parseFuzzOptions(const JsonValue &v);

} // namespace uhll

#endif // UHLL_FUZZ_CAMPAIGN_HH
