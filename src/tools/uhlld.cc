/**
 * @file
 * uhlld: the multi-tenant compile-and-simulate daemon.
 *
 *   uhlld --socket /tmp/uhll.sock [-jN] [--journal-dir DIR]
 *
 * Serves the uhll::Toolchain over a local AF_UNIX socket: clients
 * (`uhllc --connect`) submit the existing batch-manifest schema in
 * uhll/v1 envelopes and get BatchReport/JobResult JSON back,
 * byte-identical (without timings) to a local run. One daemon
 * shares one artefact cache -- compiled microcode, pre-decoded
 * stores and JIT regions -- across every tenant.
 *
 * Options:
 *   --socket PATH       AF_UNIX listening path (required)
 *   -jN | --jobs N      worker threads per batch (default: all hw)
 *   --cache-cap-mb N    artefact cache budget (default 256)
 *   --max-active N      concurrent running requests (default 4)
 *   --queue N           admitted requests that may wait (default 16)
 *   --tenant-quota N    running requests per tenant (default 2)
 *   --journal-dir DIR   per-batch_id journals (enables resume)
 *   --otrace FILE       write a merged span trace at shutdown
 *
 * Crash isolation (README "Crash isolation"): with --workers the
 * daemon shards tenant jobs across a pool of sandboxed worker
 * *processes* -- a job that segfaults, OOMs or hangs kills a
 * disposable child that is reaped, respawned, and retried; the
 * daemon itself never dies for a tenant's job.
 *   --workers N         run jobs in N worker processes (implies
 *                       --isolation process)
 *   --isolation MODE    thread (classic, default) | process
 *   --worker-mem-mb M   per-worker RLIMIT_AS cap in MiB
 *   --worker-cpu-s S    per-worker RLIMIT_CPU cap in seconds
 *   --hang-timeout S    SIGKILL a worker silent for S seconds
 *   --deadline S / --retries N / --checkpoint-every N / --dmr /
 *   --dmr-interval N / --dmr-seed-b N
 *                       daemon-wide supervision base (manifests and
 *                       client flags override, see driver/options)
 *   --describe-options  print the shared pipeline-option table
 *   --quiet / --verbose log level
 *
 * Lifecycle: runs until SIGINT/SIGTERM or a client `shutdown` op,
 * then drains connections and prints the final stats registry to
 * stderr. Exit 0 on a clean shutdown, 2 on a usage/configuration
 * error, 4 when the socket cannot be served.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "driver/options.hh"
#include "obs/telemetry.hh"
#include "proc/worker.hh"
#include "service/server.hh"
#include "support/logging.hh"

using namespace uhll;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: uhlld --socket PATH [-jN] [--cache-cap-mb N]\n"
        "             [--max-active N] [--queue N]\n"
        "             [--tenant-quota N] [--journal-dir DIR]\n"
        "             [--otrace FILE]\n"
        "             [--workers N] [--isolation thread|process]\n"
        "             [--worker-mem-mb M] [--worker-cpu-s S]\n"
        "             [--hang-timeout S]\n"
        "             [--deadline S] [--retries N]\n"
        "             [--checkpoint-every N] [--dmr]\n"
        "             [--dmr-interval N] [--dmr-seed-b N]\n"
        "             [--describe-options] [--quiet] [--verbose]\n");
    std::exit(2);
}

int
describeOptions()
{
    std::printf("pipeline options (CLI flag / manifest key):\n");
    for (const OptionSpec &s : pipelineOptionSpecs()) {
        std::printf("  %-16s %-14s %-4s %s\n",
                    s.cliFlag[0] ? s.cliFlag : "-",
                    s.manifestKey[0] ? s.manifestKey : "-", s.kind,
                    s.help);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker mode: this very binary, re-exec'd by a WorkerPool.
    // Dispatch before any daemon setup -- a worker is not a daemon.
    if (isWorkerInvocation(argc, argv)) {
        try {
            return runWorkerFromArgv(argc, argv);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "uhlld worker: %s\n", e.what());
            return 2;
        }
    }

    ServiceConfig cfg;
    SuperviseOverrides so;
    std::string otrace;
    bool describe = false;
    bool isolationGiven = false;
    bool workersGiven = false;
    // Chaos test hooks ride in via the environment so test drivers
    // need not thread them through every flag path.
    if (const char *chaos = std::getenv("UHLL_WORKER_CHAOS"))
        cfg.pool.chaosSpec = chaos;
    if (const char *cdir = std::getenv("UHLL_WORKER_CHAOS_DIR"))
        cfg.pool.chaosDir = cdir;

    ArgScanner sc(argc, argv);
    while (sc.next()) {
        std::string val;
        uint64_t n = 0;
        if (sc.value("--socket", &cfg.socketPath)) {}
        else if (sc.value("--journal-dir", &cfg.journalDir)) {}
        else if (sc.value("--otrace", &otrace)) {}
        else if (sc.valueU64("--cache-cap-mb", &n)) {
            cfg.cacheCapBytes = n << 20;
        }
        else if (sc.valueU64("--max-active", &n)) {
            cfg.maxActive = static_cast<unsigned>(n);
        }
        else if (sc.valueU64("--queue", &n, /*nonzero=*/false)) {
            cfg.maxQueue = static_cast<unsigned>(n);
        }
        else if (sc.valueU64("--tenant-quota", &n)) {
            cfg.tenantQuota = static_cast<unsigned>(n);
        }
        else if (sc.valueU64("--jobs", &n)) {
            cfg.workers = static_cast<unsigned>(n);
        }
        else if (sc.arg().rfind("-j", 0) == 0 &&
                 sc.arg().size() > 2) {
            cfg.workers = static_cast<unsigned>(
                std::strtoul(sc.arg().c_str() + 2, nullptr, 0));
            if (!cfg.workers)
                usage();
        }
        else if (sc.valueU64("--workers", &n)) {
            cfg.pool.workers = static_cast<uint32_t>(n);
            workersGiven = true;
        }
        else if (sc.value("--isolation", &val)) {
            if (val == "thread")
                cfg.isolation = IsolationMode::Thread;
            else if (val == "process")
                cfg.isolation = IsolationMode::Process;
            else {
                std::fprintf(stderr,
                             "bad --isolation '%s' "
                             "(thread|process)\n",
                             val.c_str());
                return 2;
            }
            isolationGiven = true;
        }
        else if (sc.valueU64("--worker-mem-mb",
                             &cfg.pool.memLimitMb)) {}
        else if (sc.valueU64("--worker-cpu-s", &n)) {
            cfg.pool.cpuLimitSeconds = static_cast<uint32_t>(n);
        }
        else if (sc.valueDouble("--hang-timeout",
                                &cfg.pool.hangTimeoutSeconds)) {}
        else if (so.parse(sc)) {}
        else if (sc.is("--describe-options")) describe = true;
        else if (sc.is("--quiet")) setLogLevel(LogLevel::Quiet);
        else if (sc.is("--verbose")) setLogLevel(LogLevel::Verbose);
        else if (sc.is("--help") || sc.is("-h")) usage();
        else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         sc.arg().c_str());
            usage();
        }
    }
    if (describe)
        return describeOptions();
    if (cfg.socketPath.empty()) {
        std::fprintf(stderr, "uhlld: --socket is required\n");
        usage();
    }
    cfg.policy = so.mergedWith(SupervisePolicy{});

    // --workers alone is enough to opt into process isolation; an
    // explicit --isolation always wins.
    if (workersGiven && !isolationGiven)
        cfg.isolation = IsolationMode::Process;
    if (cfg.isolation == IsolationMode::Process && !workersGiven) {
        const unsigned hw = cfg.workers
                                ? cfg.workers
                                : std::thread::hardware_concurrency();
        cfg.pool.workers = hw ? hw : 1;
    }

    if (!otrace.empty())
        SpanTracer::instance().enable();
    SpanTracer::instance().setLaneName("uhlld-main");

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    ServiceDaemon daemon(cfg);
    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "uhlld: %s\n", err.c_str());
        return 4;
    }
    inform("uhlld: listening on %s (%u max active, quota %u/tenant, "
           "cache cap %llu MiB%s%s)",
           cfg.socketPath.c_str(), cfg.maxActive, cfg.tenantQuota,
           (unsigned long long)(cfg.cacheCapBytes >> 20),
           cfg.journalDir.empty() ? "" : ", journaled",
           cfg.isolation == IsolationMode::Process
               ? strfmt(", %u process workers", cfg.pool.workers)
                     .c_str()
               : "");

    // wait() blocks on the daemon's own shutdown op; a signal can
    // only set a flag, so poll it alongside.
    while (!daemon.stopped() && !g_signal) {
        struct timespec ts = {0, 100 * 1000 * 1000};
        nanosleep(&ts, nullptr);
    }
    daemon.stop();

    if (!otrace.empty()) {
        std::ofstream f(otrace);
        if (f)
            f << SpanTracer::instance().chromeJson();
        inform("uhlld: wrote span trace to %s", otrace.c_str());
    }
    std::fprintf(stderr, "%s", daemon.stats().dumpText().c_str());
    return 0;
}
