/**
 * @file
 * uhllc: the command-line microcode compiler.
 *
 *   uhllc --lang yalll --machine hm1 prog.yll --listing --run
 *
 * Languages: yalll, simpl, empl, sstar, masm (hand microassembly).
 * Machines: hm1, vm2, vs3.
 *
 * Options:
 *   --listing           print the generated control store
 *   --run               simulate from the entry point
 *   --entry NAME        entry point for --run (default: main or the
 *                       program name)
 *   --set VAR=VALUE     set a variable/register before running
 *   --compactor NAME    linear | critical_path | dasgupta_tartar |
 *                       tokoro | optimal (default tokoro)
 *   --allocator NAME    linear_scan | graph_coloring (default)
 *   --no-compact        one microoperation per word
 *   --polls             insert interrupt polls on loop back edges
 *   --trap-safe         apply the microtrap safety transformation
 *   --verify            (sstar) run the bounded assertion verifier
 *   --stats             print compilation statistics
 *
 * Observability (see src/obs/ and README "Observability"):
 *   --stats-json FILE   write the run's stats registry + SimResult
 *                       counters as JSON
 *   --trace FILE        record a microtrace and write it as Chrome
 *                       trace_event JSON (chrome://tracing, Perfetto)
 *   --trace-limit N     trace ring capacity in records (default 4096)
 *   --profile           print hot-microword and hot-source-line
 *                       cycle attribution tables after the run
 *   --quiet / --verbose set the log level (default from UHLL_LOG)
 *
 * Fault injection (see src/fault/ and README "Fault injection"):
 *   --inject FILE       run under the fault plan in FILE ("-" for
 *                       the built-in recoverable chaos mix)
 *   --seed N            override the plan's PRNG seed
 *   --max-restarts K    declare restart livelock after K consecutive
 *                       faulting restarts of one restart point
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "codegen/compiler.hh"
#include "fault/fault.hh"
#include "lang/empl/empl.hh"
#include "lang/simpl/simpl.hh"
#include "lang/sstar/sstar.hh"
#include "lang/yalll/yalll.hh"
#include "machine/machines/machines.hh"
#include "masm/masm.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "verify/verifier.hh"

using namespace uhll;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: uhllc --lang yalll|simpl|empl|sstar|masm\n"
        "             --machine hm1|vm2|vs3 FILE\n"
        "             [--listing] [--run] [--entry NAME]\n"
        "             [--set VAR=VALUE ...]\n"
        "             [--compactor NAME] [--allocator NAME]\n"
        "             [--no-compact] [--polls] [--trap-safe]\n"
        "             [--verify] [--stats]\n"
        "             [--stats-json FILE] [--trace FILE]\n"
        "             [--trace-limit N] [--profile]\n"
        "             [--inject FILE|-] [--seed N]\n"
        "             [--max-restarts K]\n"
        "             [--quiet] [--verbose]\n");
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    f << content;
}

/** Observability knobs shared by every run path. */
struct ObsOptions {
    std::string statsJsonPath;
    std::string tracePath;
    size_t traceLimit = 4096;
    bool profile = false;
    //! fault plan path ("-" = built-in recoverable mix, "" = off)
    std::string injectPath;
    uint64_t faultSeed = 0;     //!< nonzero: override the plan seed
    uint32_t maxRestarts = 0;   //!< nonzero: livelock limit override
};

/**
 * Simulate @p store from @p entry with the observability outputs
 * wired up. Variable access is abstracted so the masm/S* path
 * (registers) and the MIR path (allocated variables) share the whole
 * run/report flow.
 */
int
runSimulation(
    const ControlStore &store, const std::string &entry,
    const std::vector<std::pair<std::string, uint64_t>> &sets,
    const ObsOptions &obs,
    const std::function<void(MicroSimulator &, MainMemory &,
                             const std::string &, uint64_t)> &setv,
    const std::function<uint64_t(const MicroSimulator &,
                                 const MainMemory &,
                                 const std::string &)> &getv)
{
    MainMemory mem(0x10000, store.machine().dataWidth());

    SimConfig cfg;
    std::unique_ptr<TraceBuffer> trace;
    std::unique_ptr<CycleProfiler> prof;
    std::unique_ptr<FaultInjector> inj;
    if (!obs.tracePath.empty()) {
        trace = std::make_unique<TraceBuffer>(obs.traceLimit);
        cfg.trace = trace.get();
    }
    if (obs.profile) {
        prof = std::make_unique<CycleProfiler>();
        cfg.profiler = prof.get();
    }
    if (!obs.injectPath.empty()) {
        FaultPlan plan =
            obs.injectPath == "-"
                ? FaultPlan::recoverable(obs.faultSeed ? obs.faultSeed
                                                       : 1)
                : FaultPlan::parse(readFile(obs.injectPath));
        inj = std::make_unique<FaultInjector>(std::move(plan),
                                              obs.faultSeed);
        cfg.injector = inj.get();
        cfg.maxRestarts = obs.maxRestarts;
    }

    MicroSimulator sim(store, mem, cfg);
    for (auto &[n, v] : sets)
        setv(sim, mem, n, v);
    SimResult res = sim.run(entry);
    std::printf("halted=%d cycles=%llu words=%llu\n", int(res.halted),
                (unsigned long long)res.cycles,
                (unsigned long long)res.wordsExecuted);
    if (inj) {
        std::printf(
            "faults: seed=%llu injected=%llu ecc_corrected=%llu "
            "ecc_double_bit=%llu parity_refetches=%llu "
            "mem_retries=%llu spurious=%llu jitter_cycles=%llu\n",
            (unsigned long long)res.faultSeed,
            (unsigned long long)res.faultsInjected,
            (unsigned long long)res.eccCorrected,
            (unsigned long long)res.eccDoubleBit,
            (unsigned long long)res.parityRefetches,
            (unsigned long long)res.memRetries,
            (unsigned long long)res.spuriousInterrupts,
            (unsigned long long)res.jitterCycles);
    }
    for (auto &[n, v] : sets) {
        (void)v;
        std::printf("%s = %llu\n", n.c_str(),
                    (unsigned long long)getv(sim, mem, n));
    }

    // Renderers over the control store's line table.
    auto describe = [&store](uint32_t addr) -> std::string {
        const SourceNote *n = store.note(addr);
        if (!n)
            return "";
        if (n->line >= 0)
            return strfmt("line %d: %s", n->line, n->what.c_str());
        return n->what;
    };
    auto lineOf = [&store](uint32_t addr) -> int32_t {
        const SourceNote *n = store.note(addr);
        return n ? n->line : -1;
    };

    if (obs.profile) {
        std::printf("\n%s", prof->report(20, describe).c_str());
        // A line table only exists for assembled (masm) input;
        // compiled code is attributed via the MIR origin strings.
        if (store.hasLineNumbers())
            std::printf("\n%s",
                        prof->lineReport(10, lineOf, describe)
                            .c_str());
    }
    if (!obs.tracePath.empty()) {
        writeFile(obs.tracePath, trace->toChromeJson(describe));
        inform("wrote %zu trace records to %s (%llu dropped)",
               trace->size(), obs.tracePath.c_str(),
               (unsigned long long)trace->dropped());
    }
    if (!obs.statsJsonPath.empty()) {
        JsonWriter w;
        w.beginObject();
        w.raw("result", res.toJson());
        w.raw("stats", sim.stats().toJson());
        if (prof)
            w.raw("profile", prof->toJson(20, lineOf, describe));
        w.endObject();
        writeFile(obs.statsJsonPath, w.str() + "\n");
        inform("wrote stats to %s", obs.statsJsonPath.c_str());
    }

    if (!res.ok()) {
        std::fprintf(
            stderr,
            "sim error: %s: %s\n"
            "  at cycle %llu, upc 0x%04x, restart point 0x%04x\n",
            simErrorKindName(res.error.kind),
            res.error.message.c_str(),
            (unsigned long long)res.error.cycle, res.error.upc,
            res.error.restartPoint);
        std::fprintf(stderr, "  registers:");
        for (size_t i = 0; i < res.error.regs.size(); ++i) {
            std::fprintf(stderr, "%s%s=0x%llx",
                         i % 4 == 0 ? "\n    " : "  ",
                         res.error.regs[i].first.c_str(),
                         (unsigned long long)res.error.regs[i].second);
        }
        std::fprintf(stderr, "\n");
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string lang, machine_name, file, entry;
    std::vector<std::pair<std::string, uint64_t>> sets;
    std::string compactor_name = "tokoro";
    std::string allocator_name = "graph_coloring";
    bool listing = false, run = false, stats = false;
    bool verify = false;
    CompileOptions opts;
    ObsOptions obs;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        // Value options accept both "--opt VALUE" and "--opt=VALUE".
        auto valueOpt = [&](const char *name,
                            std::string *out) -> bool {
            if (a == name) {
                *out = next();
                return true;
            }
            std::string prefix = std::string(name) + "=";
            if (a.rfind(prefix, 0) == 0) {
                *out = a.substr(prefix.size());
                return true;
            }
            return false;
        };
        std::string val;
        if (a == "--lang") lang = next();
        else if (a == "--machine") machine_name = next();
        else if (a == "--entry") entry = next();
        else if (a == "--compactor") compactor_name = next();
        else if (a == "--allocator") allocator_name = next();
        else if (a == "--listing") listing = true;
        else if (a == "--run") run = true;
        else if (a == "--stats") stats = true;
        else if (a == "--verify") verify = true;
        else if (a == "--no-compact") opts.compact = false;
        else if (a == "--polls") opts.insertInterruptPolls = true;
        else if (a == "--trap-safe") opts.trapSafety = true;
        else if (valueOpt("--stats-json", &obs.statsJsonPath)) {}
        else if (valueOpt("--trace", &obs.tracePath)) {}
        else if (valueOpt("--trace-limit", &val)) {
            obs.traceLimit = std::strtoull(val.c_str(), nullptr, 0);
            if (!obs.traceLimit)
                usage();
        }
        else if (a == "--profile") obs.profile = true;
        else if (valueOpt("--inject", &obs.injectPath)) {}
        else if (valueOpt("--seed", &val)) {
            obs.faultSeed = std::strtoull(val.c_str(), nullptr, 0);
            if (!obs.faultSeed)
                usage();
        }
        else if (valueOpt("--max-restarts", &val)) {
            obs.maxRestarts = static_cast<uint32_t>(
                std::strtoull(val.c_str(), nullptr, 0));
            if (!obs.maxRestarts)
                usage();
        }
        else if (a == "--quiet") setLogLevel(LogLevel::Quiet);
        else if (a == "--verbose") setLogLevel(LogLevel::Verbose);
        else if (a == "--set") {
            std::string kv = next();
            auto eq = kv.find('=');
            if (eq == std::string::npos)
                usage();
            sets.emplace_back(kv.substr(0, eq),
                              std::strtoull(kv.c_str() + eq + 1,
                                            nullptr, 0));
        } else if (a == "--help" || a == "-h") {
            usage();
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage();
        } else if (file.empty()) {
            file = a;
        } else {
            usage();
        }
    }
    if (lang.empty() || machine_name.empty() || file.empty())
        usage();

    try {
        MachineDescription mach =
            machine_name == "hm1"   ? buildHm1()
            : machine_name == "vm2" ? buildVm2()
            : machine_name == "vs3" ? buildVs3()
                                    : (usage(), buildHm1());
        std::string source = readFile(file);

        // Resolve pipeline knobs.
        std::unique_ptr<Compactor> compactor;
        for (auto &c : allCompactors()) {
            if (compactor_name == c->name())
                compactor = std::move(c);
        }
        if (!compactor)
            fatal("unknown compactor '%s'", compactor_name.c_str());
        opts.compactor = compactor.get();
        LinearScanAllocator ls;
        GraphColoringAllocator gc;
        if (allocator_name == "linear_scan")
            opts.allocator = &ls;
        else if (allocator_name == "graph_coloring")
            opts.allocator = &gc;
        else
            fatal("unknown allocator '%s'", allocator_name.c_str());

        // S* and masm produce a control store directly.
        if (lang == "sstar" || lang == "masm") {
            ControlStore store(mach);
            SstarProgram sp(mach);
            if (lang == "sstar") {
                sp = compileSstar(source, mach);
                if (verify) {
                    VerifyResult vr = verifySstar(sp);
                    std::printf("%s", vr.report.c_str());
                    if (!vr.ok)
                        return 1;
                }
                store = std::move(sp.store);
            } else {
                MicroAssembler as(mach);
                store = as.assemble(source);
            }
            if (listing || (!run && !verify))
                std::printf("%s", store.listing().c_str());
            if (stats) {
                std::printf("words: %zu (%llu bits)\n", store.size(),
                            (unsigned long long)store.sizeBits());
            }
            if (run) {
                return runSimulation(
                    store, entry.empty() ? "main" : entry, sets, obs,
                    [](MicroSimulator &sim, MainMemory &,
                       const std::string &n, uint64_t v) {
                        sim.setReg(n, v);
                    },
                    [](const MicroSimulator &sim, const MainMemory &,
                       const std::string &n) {
                        return sim.getReg(n);
                    });
            }
            return 0;
        }

        // The MIR-compiled languages.
        MirProgram prog = lang == "yalll" ? parseYalll(source, mach)
                          : lang == "simpl"
                              ? parseSimpl(source, mach)
                          : lang == "empl"
                              ? parseEmpl(source, mach, {})
                              : (usage(), MirProgram());

        Compiler comp(mach);
        CompiledProgram cp = comp.compile(prog, opts);
        if (listing || !run)
            std::printf("%s", cp.store.listing().c_str());
        if (stats) {
            std::printf("words: %u (%llu bits), ops: %u, fixups: %u, "
                        "spilled vregs: %u, spill loads/stores: "
                        "%u/%u\n",
                        cp.stats.words,
                        (unsigned long long)cp.store.sizeBits(),
                        cp.stats.opsLowered, cp.stats.fixupMovs,
                        cp.stats.spilledVRegs, cp.stats.spillLoads,
                        cp.stats.spillStores);
        }
        if (run) {
            return runSimulation(
                cp.store, entry.empty() ? prog.func(0).name : entry,
                sets, obs,
                [&](MicroSimulator &sim, MainMemory &mem,
                    const std::string &n, uint64_t v) {
                    setVar(prog, cp, sim, mem, n, v);
                },
                [&](const MicroSimulator &sim, const MainMemory &mem,
                    const std::string &n) {
                    return getVar(prog, cp, sim, mem, n);
                });
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
