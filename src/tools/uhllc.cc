/**
 * @file
 * uhllc: the command-line microcode compiler.
 *
 *   uhllc --lang yalll --machine hm1 prog.yll --listing --run
 *
 * Languages: yalll, simpl, empl, sstar, masm (hand microassembly).
 * Machines: hm1, vm2, vs3.
 *
 * Options:
 *   --listing           print the generated control store
 *   --run               simulate from the entry point
 *   --entry NAME        entry point for --run (default: main or the
 *                       program name)
 *   --set VAR=VALUE     set a variable/register before running
 *   --compactor NAME    linear | critical_path | dasgupta_tartar |
 *                       tokoro | optimal (default tokoro)
 *   --allocator NAME    linear_scan | graph_coloring (default)
 *   --no-compact        one microoperation per word
 *   --polls             insert interrupt polls on loop back edges
 *   --trap-safe         apply the microtrap safety transformation
 *   --verify            (sstar) run the bounded assertion verifier
 *   --stats             print compilation statistics
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/compiler.hh"
#include "lang/empl/empl.hh"
#include "lang/simpl/simpl.hh"
#include "lang/sstar/sstar.hh"
#include "lang/yalll/yalll.hh"
#include "machine/machines/machines.hh"
#include "masm/masm.hh"
#include "support/logging.hh"
#include "verify/verifier.hh"

using namespace uhll;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: uhllc --lang yalll|simpl|empl|sstar|masm\n"
        "             --machine hm1|vm2|vs3 FILE\n"
        "             [--listing] [--run] [--entry NAME]\n"
        "             [--set VAR=VALUE ...]\n"
        "             [--compactor NAME] [--allocator NAME]\n"
        "             [--no-compact] [--polls] [--trap-safe]\n"
        "             [--verify] [--stats]\n");
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string lang, machine_name, file, entry;
    std::vector<std::pair<std::string, uint64_t>> sets;
    std::string compactor_name = "tokoro";
    std::string allocator_name = "graph_coloring";
    bool listing = false, run = false, stats = false;
    bool verify = false;
    CompileOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--lang") lang = next();
        else if (a == "--machine") machine_name = next();
        else if (a == "--entry") entry = next();
        else if (a == "--compactor") compactor_name = next();
        else if (a == "--allocator") allocator_name = next();
        else if (a == "--listing") listing = true;
        else if (a == "--run") run = true;
        else if (a == "--stats") stats = true;
        else if (a == "--verify") verify = true;
        else if (a == "--no-compact") opts.compact = false;
        else if (a == "--polls") opts.insertInterruptPolls = true;
        else if (a == "--trap-safe") opts.trapSafety = true;
        else if (a == "--set") {
            std::string kv = next();
            auto eq = kv.find('=');
            if (eq == std::string::npos)
                usage();
            sets.emplace_back(kv.substr(0, eq),
                              std::strtoull(kv.c_str() + eq + 1,
                                            nullptr, 0));
        } else if (a == "--help" || a == "-h") {
            usage();
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage();
        } else if (file.empty()) {
            file = a;
        } else {
            usage();
        }
    }
    if (lang.empty() || machine_name.empty() || file.empty())
        usage();

    try {
        MachineDescription mach =
            machine_name == "hm1"   ? buildHm1()
            : machine_name == "vm2" ? buildVm2()
            : machine_name == "vs3" ? buildVs3()
                                    : (usage(), buildHm1());
        std::string source = readFile(file);

        // Resolve pipeline knobs.
        std::unique_ptr<Compactor> compactor;
        for (auto &c : allCompactors()) {
            if (compactor_name == c->name())
                compactor = std::move(c);
        }
        if (!compactor)
            fatal("unknown compactor '%s'", compactor_name.c_str());
        opts.compactor = compactor.get();
        LinearScanAllocator ls;
        GraphColoringAllocator gc;
        if (allocator_name == "linear_scan")
            opts.allocator = &ls;
        else if (allocator_name == "graph_coloring")
            opts.allocator = &gc;
        else
            fatal("unknown allocator '%s'", allocator_name.c_str());

        // S* and masm produce a control store directly.
        if (lang == "sstar" || lang == "masm") {
            ControlStore store(mach);
            SstarProgram sp(mach);
            if (lang == "sstar") {
                sp = compileSstar(source, mach);
                if (verify) {
                    VerifyResult vr = verifySstar(sp);
                    std::printf("%s", vr.report.c_str());
                    if (!vr.ok)
                        return 1;
                }
                store = std::move(sp.store);
            } else {
                MicroAssembler as(mach);
                store = as.assemble(source);
            }
            if (listing || (!run && !verify))
                std::printf("%s", store.listing().c_str());
            if (stats) {
                std::printf("words: %zu (%llu bits)\n", store.size(),
                            (unsigned long long)store.sizeBits());
            }
            if (run) {
                MainMemory mem(0x10000, mach.dataWidth());
                MicroSimulator sim(store, mem);
                for (auto &[n, v] : sets)
                    sim.setReg(n, v);
                std::string e = entry.empty() ? "main" : entry;
                SimResult res = sim.run(e);
                std::printf("halted=%d cycles=%llu words=%llu\n",
                            int(res.halted),
                            (unsigned long long)res.cycles,
                            (unsigned long long)res.wordsExecuted);
                for (auto &[n, v] : sets) {
                    (void)v;
                    std::printf("%s = %llu\n", n.c_str(),
                                (unsigned long long)sim.getReg(n));
                }
            }
            return 0;
        }

        // The MIR-compiled languages.
        MirProgram prog = lang == "yalll" ? parseYalll(source, mach)
                          : lang == "simpl"
                              ? parseSimpl(source, mach)
                          : lang == "empl"
                              ? parseEmpl(source, mach, {})
                              : (usage(), MirProgram());

        Compiler comp(mach);
        CompiledProgram cp = comp.compile(prog, opts);
        if (listing || !run)
            std::printf("%s", cp.store.listing().c_str());
        if (stats) {
            std::printf("words: %u (%llu bits), ops: %u, fixups: %u, "
                        "spilled vregs: %u, spill loads/stores: "
                        "%u/%u\n",
                        cp.stats.words,
                        (unsigned long long)cp.store.sizeBits(),
                        cp.stats.opsLowered, cp.stats.fixupMovs,
                        cp.stats.spilledVRegs, cp.stats.spillLoads,
                        cp.stats.spillStores);
        }
        if (run) {
            MainMemory mem(0x10000, mach.dataWidth());
            MicroSimulator sim(cp.store, mem);
            for (auto &[n, v] : sets)
                setVar(prog, cp, sim, mem, n, v);
            std::string e =
                entry.empty() ? prog.func(0).name : entry;
            SimResult res = sim.run(e);
            std::printf("halted=%d cycles=%llu words=%llu\n",
                        int(res.halted),
                        (unsigned long long)res.cycles,
                        (unsigned long long)res.wordsExecuted);
            for (auto &[n, v] : sets) {
                (void)v;
                std::printf("%s = %llu\n", n.c_str(),
                            (unsigned long long)getVar(prog, cp, sim,
                                                       mem, n));
            }
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
