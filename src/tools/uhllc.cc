/**
 * @file
 * uhllc: the command-line driver over the uhll::Toolchain facade.
 *
 *   uhllc --lang yalll --machine hm1 prog.yll --listing --run
 *   uhllc --batch manifest.json -j8 --report report.json
 *   uhllc --connect /tmp/uhll.sock --batch manifest.json
 *   uhllc --list
 *
 * Single-file mode options:
 *   --listing           print the generated control store
 *   --run               simulate from the entry point
 *   --entry NAME        entry point for --run (default: main or the
 *                       program name)
 *   --set VAR=VALUE     set a variable/register before running
 *   --compactor NAME    linear | critical_path | dasgupta_tartar |
 *                       tokoro | optimal (default tokoro)
 *   --allocator NAME    linear_scan | graph_coloring (default)
 *   --no-compact        one microoperation per word
 *   --polls             insert interrupt polls on loop back edges
 *   --trap-safe         apply the microtrap safety transformation
 *   --verify            (sstar) run the bounded assertion verifier
 *   --stats             print compilation statistics
 *
 * Execution tier (single-file --run and batch; see README "JIT
 * tier"):
 *   --jit / --no-jit    force the native execution tier on/off
 *                       (default on where available; naming both is
 *                       a contradiction, exit 2)
 *   --jit-threshold N   region-entry hotness threshold (1 = compile
 *                       on first execution; forced-tier testing)
 *
 * The pipeline flags above, their manifest spellings, and the
 * CLI-overrides-manifest merge all come from one table in
 * src/driver/options.hh, shared with uhlld.
 *
 * Batch mode (see src/driver/batch.hh for the manifest format):
 *   --batch FILE        run the jobs in the JSON manifest
 *   -jN | --jobs N      worker threads (default: all hardware)
 *   --report FILE       write the aggregate JSON report (default:
 *                       stdout); also enables the side journal
 *                       FILE.journal that --resume reads
 *   --no-timings        omit timing fields from the report (the
 *                       result is then identical across -j values)
 *   --resume REPORT     re-run only the jobs REPORT's journal does
 *                       not record as ok, resuming interrupted jobs
 *                       from their last checkpoint; completed
 *                       results are reused byte-identically
 *
 * Process isolation (batch mode; see README "Crash isolation"):
 *   --isolation MODE    thread (default) runs jobs on in-process
 *                       worker threads; process runs each job in a
 *                       sandboxed worker process (crashes, OOMs and
 *                       hangs become structured per-job errors, the
 *                       report stays byte-identical)
 *   --worker-mem-mb M   per-worker RLIMIT_AS cap in MiB
 *   --worker-cpu-s S    per-worker RLIMIT_CPU cap in seconds
 *   --hang-timeout S    SIGKILL a worker silent for S seconds
 *                       (default 30)
 *
 * Service mode (see README "Service"; uhlld serves the same
 * Toolchain over an AF_UNIX socket, sharing one artefact cache
 * across tenants):
 *   --connect SOCK      submit to the uhlld at SOCK instead of
 *                       compiling locally; with --batch the daemon
 *                       runs the manifest and the returned report is
 *                       byte-identical (with --no-timings) to a
 *                       local run
 *   --io-timeout S      bound every connect/send/recv on the daemon
 *                       socket by S seconds; a wedged daemon then
 *                       exits 4 with a "timed out" diagnostic
 *                       instead of hanging (default: blocking)
 *   --tenant NAME       tenant label for quotas and per-tenant
 *                       stats (default: $USER)
 *   --batch-id ID       names the daemon-side journal, so
 *                       resubmitting the same ID after a daemon
 *                       crash resumes instead of re-running
 *   --ping              health-check the daemon and exit
 *   --scrape-metrics    fetch the daemon's Prometheus exposition
 *                       (to --report FILE or stdout)
 *   --shutdown          ask the daemon to shut down
 *
 * Supervision (see src/driver/supervisor.hh; batch flags override
 * the manifest's "supervise" object -- locally and over --connect
 * alike -- and all but --no-ecc also apply to single-file --run):
 *   --deadline S        per-job wall-clock budget in seconds
 *   --retries N         retry recoverable sim errors up to N times
 *                       (exponential backoff with jitter)
 *   --checkpoint-every N  auto-checkpoint every N simulated cycles
 *   --dmr               run jobs in lockstep dual modular redundancy
 *   --dmr-interval N    retired words between DMR comparisons
 *   --dmr-seed-b N      secondary-lane fault seed
 *   --no-ecc            disable memory ECC (injected bit flips
 *                       corrupt silently)
 *
 * Fuzz mode (differential fuzz farm, see src/fuzz/campaign.hh; a
 * manifest's "fuzz" object is the batch-mode spelling; -jN,
 * --report and --no-timings apply):
 *   --fuzz              run a seeded differential fuzz campaign
 *   --fuzz-seed N       campaign seed (default 1)
 *   --fuzz-jobs N       total supervised jobs to run (default 500)
 *   --fuzz-duration S   wall-clock cap in seconds (trades the
 *                       report's cross-run determinism for a bound)
 *   --fuzz-configs N    sampled configurations per program (plus
 *                       the reference; default 3)
 *   --fuzz-budget N     generator statement budget (default 20)
 *   --fuzz-langs CSV    languages to draw from (default: all)
 *   --fuzz-machines CSV machines to draw from (default: all)
 *   --fuzz-corpus DIR   write minimized repros into DIR
 *   --fuzz-min-rate R   fail (exit 1) under R jobs/sec
 *   --fuzz-no-minimize  record divergences without minimizing
 *
 * Discovery:
 *   --list              print the registered languages and machines
 *
 * Observability (see src/obs/ and README "Observability"):
 *   --stats-json FILE   write the run's stats registry + SimResult
 *                       counters as JSON
 *   --trace FILE        record a microtrace and write it as Chrome
 *                       trace_event JSON (chrome://tracing, Perfetto)
 *   --trace-limit N     trace ring capacity in records (default 4096)
 *   --profile           print hot-microword and hot-source-line
 *                       cycle attribution tables after the run
 *   --quiet / --verbose set the log level (default from UHLL_LOG)
 *
 * Telemetry (see README "Telemetry"; all four work in single-file
 * and batch mode, and override the manifest's "telemetry" object):
 *   --otrace FILE       span-trace the whole pipeline (translate,
 *                       compile, decode, sim, JIT, supervisor) and
 *                       write one merged Chrome trace_event JSON; in
 *                       single-file mode a --trace microtrace is
 *                       merged in as its own process
 *   --metrics-out FILE  write periodic StatsRegistry samples as
 *                       JSONL to FILE and a Prometheus text
 *                       exposition to FILE.prom; with --no-timings
 *                       the output is deterministic (byte-identical
 *                       across -j values)
 *   --metrics-every N   sample every N simulated cycles (default:
 *                       one final sample per job)
 *   --postmortem-dir D  write a post-mortem JSON artifact into D for
 *                       every failed job (flight recorder)
 *   --validate-json FILE   exit 0 iff FILE parses as one JSON value
 *                          whose "schema" tag (when present) names a
 *                          major this build accepts (uhll/v1)
 *   --validate-jsonl FILE  exit 0 iff every line of FILE passes the
 *                          same check
 *
 * Fault injection (see src/fault/ and README "Fault injection"):
 *   --inject FILE       run under the fault plan in FILE ("-" for
 *                       the built-in recoverable chaos mix)
 *   --seed N            override the plan's PRNG seed
 *   --max-restarts K    declare restart livelock after K consecutive
 *                       faulting restarts of one restart point
 *
 * Exit codes: 0 success, 1 compile/verify/job failure, 2 usage or
 * configuration error (bad manifest, bad option combination,
 * rejected request), 3 structured simulation error (in batch mode:
 * any job's), 4 service transport failure (no daemon, daemon
 * refused admission, connection lost).
 */

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "driver/batch.hh"
#include "driver/options.hh"
#include "driver/toolchain.hh"
#include "jit/jit.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/schema.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "proc/pool.hh"
#include "proc/worker.hh"
#include "service/client.hh"
#include "support/logging.hh"

using namespace uhll;

namespace {

std::string
joined(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names)
        out += (out.empty() ? "" : "|") + n;
    return out;
}

[[noreturn]] void
usage()
{
    // The language and machine lists come from the registries, so a
    // newly registered frontend shows up here with no edit.
    std::fprintf(
        stderr,
        "usage: uhllc --lang %s\n"
        "             --machine %s FILE\n"
        "             [--listing] [--run] [--entry NAME]\n"
        "             [--set VAR=VALUE ...]\n"
        "             [--compactor NAME] [--allocator NAME]\n"
        "             [--no-compact] [--polls] [--trap-safe]\n"
        "             [--verify] [--stats]\n"
        "             [--jit | --no-jit] [--jit-threshold N]\n"
        "             [--stats-json FILE] [--trace FILE]\n"
        "             [--trace-limit N] [--profile]\n"
        "             [--inject FILE|-] [--seed N]\n"
        "             [--max-restarts K]\n"
        "             [--otrace FILE] [--metrics-out FILE]\n"
        "             [--metrics-every N] [--postmortem-dir DIR]\n"
        "             [--quiet] [--verbose]\n"
        "       uhllc --batch MANIFEST [-jN] [--report FILE]\n"
        "             [--no-timings] [--resume REPORT]\n"
        "             [--isolation thread|process]\n"
        "             [--worker-mem-mb M] [--worker-cpu-s S]\n"
        "             [--hang-timeout S]\n"
        "             [--jit | --no-jit] [--jit-threshold N]\n"
        "             [--deadline S] [--retries N]\n"
        "             [--checkpoint-every N] [--dmr]\n"
        "             [--dmr-interval N] [--dmr-seed-b N]\n"
        "             [--otrace FILE] [--metrics-out FILE]\n"
        "             [--metrics-every N] [--postmortem-dir DIR]\n"
        "       uhllc --connect SOCK [--tenant NAME]\n"
        "             [--io-timeout S]\n"
        "             [--batch MANIFEST [--batch-id ID] [-jN]\n"
        "              [--report FILE] [--no-timings]]\n"
        "             [--ping | --scrape-metrics | --shutdown]\n"
        "       uhllc --fuzz [--fuzz-seed N] [--fuzz-jobs N]\n"
        "             [--fuzz-duration S] [--fuzz-configs N]\n"
        "             [--fuzz-budget N] [--fuzz-langs L1,L2]\n"
        "             [--fuzz-machines M1,M2] [--fuzz-corpus DIR]\n"
        "             [--fuzz-min-rate R] [--fuzz-no-minimize]\n"
        "             [-jN] [--report FILE] [--no-timings]\n"
        "       uhllc --validate-json FILE | --validate-jsonl FILE\n"
        "       uhllc --list\n",
        joined(FrontendRegistry::names()).c_str(),
        joined(machineNames()).c_str());
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    f << content;
}

/** One document's checks: valid JSON, acceptable schema major. */
bool
validateDocument(const std::string &text, std::string *err)
{
    if (!jsonValid(text, err))
        return false;
    const JsonValue v = JsonValue::parse(text);
    *err = checkDocumentSchema(v);
    return err->empty();
}

/**
 * JSON(L) referee for the verify harness: exit 0 iff @p path holds
 * one valid JSON value (or, with @p jsonl, one per non-empty line),
 * each carrying an accepted "schema" tag when it carries one at all.
 */
int
validateMode(const std::string &path, bool jsonl)
{
    const std::string text = readFile(path);
    std::string err;
    if (!jsonl) {
        if (validateDocument(text, &err))
            return 0;
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 1;
    }
    std::istringstream ss(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(ss, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (!validateDocument(line, &err)) {
            std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(),
                         lineno, err.c_str());
            return 1;
        }
    }
    return 0;
}

/** JSONL + Prometheus sibling for one ordered sample list. */
void
writeMetrics(const std::string &path,
             const std::vector<MetricsSample> &samples, bool timings)
{
    writeFile(path, metricsToJsonl(samples, timings));
    writeFile(path + ".prom", metricsToPrometheus(samples, timings));
    inform("wrote %zu metrics sample(s) to %s (+ .prom)",
           samples.size(), path.c_str());
}

int
listMode()
{
    std::printf("languages:\n");
    for (const std::string &n : FrontendRegistry::names()) {
        const Frontend &fe = FrontendRegistry::get(n);
        std::printf("  %-8s %s%s\n", fe.name(), fe.describe(),
                    fe.producesMir() ? "" : " [direct]");
    }
    std::printf("machines:\n");
    for (const std::string &n : machineNames())
        std::printf("  %-8s %s\n", n.c_str(),
                    machineDescribe(n).c_str());
    std::printf("execution tiers:\n");
    std::printf("  interp   decode-cached interpreter (always)\n");
    std::printf("  jit      native x86-64 superblocks: %s\n",
                JitTier::available()
                    ? "available (--no-jit or UHLL_NO_JIT=1 "
                      "disables)"
                    : "unavailable on this host (interpreter "
                      "fallback)");
    return 0;
}

/**
 * Run a differential fuzz campaign (see fuzz/campaign.hh) and
 * report it. Exit 0 on a clean campaign; 1 on any divergence or a
 * missed jobs/sec budget.
 */
int
fuzzMode(const FuzzOptions &opts, const std::string &report_path,
         bool timings, double min_rate)
{
    Toolchain tc;
    FuzzReport rep = runFuzzCampaign(tc, opts);
    const std::string json = rep.toJson(true, timings) + "\n";
    if (report_path.empty())
        std::fputs(json.c_str(), stdout);
    else
        writeFile(report_path, json);
    for (const FuzzDivergence &d : rep.divergences) {
        std::fprintf(stderr, "DIVERGENCE %s [%s]\n",
                     d.jobName.c_str(), d.configSummary.c_str());
        if (!d.corpusPath.empty())
            std::fprintf(stderr, "  repro: %s\n",
                         d.corpusPath.c_str());
    }
    std::fprintf(stderr,
                 "fuzz: %llu job(s) over %llu program(s), "
                 "%zu divergence(s), %llu golden failure(s), "
                 "%.1f jobs/s, %.3fs wall\n",
                 (unsigned long long)rep.jobsRun,
                 (unsigned long long)rep.programs,
                 rep.divergences.size(),
                 (unsigned long long)rep.goldenFailures,
                 rep.jobsPerSec, rep.wallSeconds);
    if (min_rate > 0 && rep.jobsPerSec < min_rate) {
        std::fprintf(stderr,
                     "fuzz: throughput %.1f jobs/s is below the "
                     "%.1f jobs/s budget\n",
                     rep.jobsPerSec, min_rate);
        return 1;
    }
    return rep.clean() ? 0 : 1;
}

int
batchMode(const std::string &manifest_path, unsigned threads,
          std::string report_path, bool timings,
          const SuperviseOverrides &so,
          const std::string &resume_path,
          const PipelineOverrides &po, const TelemetryOverrides &to,
          IsolationMode isolation, const WorkerPoolConfig &poolCfg)
{
    Toolchain tc;
    BatchSpec spec;
    try {
        spec = loadBatchSpec(manifest_path);
    } catch (const FatalError &e) {
        // A bad manifest is a configuration error, not a job
        // failure: exit 2, like a bad command line.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    // A "fuzz" manifest runs a campaign instead of a job list; -j,
    // --report and --no-timings apply as usual.
    if (spec.fuzz) {
        FuzzOptions fo = *spec.fuzz;
        if (threads)
            fo.threads = threads;
        return fuzzMode(fo, report_path, timings, 0);
    }

    // The manifest's "telemetry" object is the base; the CLI flags
    // override what they name (CLI paths are cwd-relative).
    TelemetryOptions tel = to.mergedWith(spec.telemetry);

    // CLI pipeline flags override every job's manifest options --
    // the shared merge uhlld applies server-side too.
    po.applyToJobs(&spec.jobs);
    if (!tel.metricsOut.empty()) {
        for (Job &j : spec.jobs) {
            j.captureMetrics = true;
            j.metricsEveryCycles = tel.metricsEveryCycles;
        }
    }

    if (!tel.otrace.empty())
        SpanTracer::instance().enable();

    // The manifest's "supervise" object is the base; command-line
    // flags override whatever they explicitly set.
    SupervisePolicy pol = so.mergedWith(spec.policy);

    const bool resume = !resume_path.empty();
    if (resume && report_path.empty())
        report_path = resume_path;

    BatchRunner runner(tc, threads);
    runner.setPolicy(pol);
    if (!report_path.empty())
        runner.setJournal(report_path + ".journal");
    runner.setResume(resume);
    runner.setPostmortemDir(tel.postmortemDir);

    // --isolation process: execute jobs in sandboxed worker
    // processes (proc/pool.hh); fall back to threads -- with a
    // warning, never an error -- where workers cannot be spawned.
    std::unique_ptr<WorkerPool> pool;
    if (isolation == IsolationMode::Process) {
        WorkerPoolConfig pc = poolCfg;
        if (pc.workers == 0) {
            pc.workers = threads ? threads
                                 : std::thread::hardware_concurrency();
            if (pc.workers == 0)
                pc.workers = 1;
        }
        if (WorkerPool::available(pc)) {
            pool = std::make_unique<WorkerPool>(pc);
            runner.setWorkerPool(pool.get());
        } else {
            warn("batch: worker processes unavailable (no worker "
                 "executable); running in-thread");
        }
    }

    BatchReport report = runner.run(spec.jobs);
    if (pool)
        pool->shutdown();

    const std::string json = report.toJson(true, timings) + "\n";
    if (report_path.empty())
        std::fputs(json.c_str(), stdout);
    else
        writeFile(report_path, json);

    // Telemetry sinks. The workers have joined inside run(), so
    // collecting the span lanes here is race-free.
    if (!tel.otrace.empty()) {
        writeFile(tel.otrace, SpanTracer::instance().chromeJson());
        inform("wrote span trace to %s", tel.otrace.c_str());
    }
    if (!tel.metricsOut.empty()) {
        // Job-index order, then per-job sample order: independent
        // of which worker ran what. (Resume-spliced results carry
        // no samples; their jobs were not re-run.)
        std::vector<MetricsSample> samples;
        for (const JobResult &r : report.results)
            samples.insert(samples.end(), r.metrics.begin(),
                           r.metrics.end());
        writeMetrics(tel.metricsOut, samples, timings);
    }

    for (const JobResult &r : report.results) {
        if (r.ok)
            continue;
        std::fprintf(stderr, "FAILED %s:\n", r.name.c_str());
        for (const std::string &d : r.diagnostics)
            std::fprintf(stderr, "  %s\n", d.c_str());
    }
    std::fprintf(stderr,
                 "batch: %zu/%zu jobs ok, %u thread(s), "
                 "%.3fs wall, %.3fs cpu\n",
                 report.okCount(), report.results.size(),
                 report.threads, report.wallSeconds,
                 report.cpuSeconds);
    if (report.allOk())
        return 0;
    // Any structured simulation error outranks plain job failure.
    for (const JobResult &r : report.results) {
        if (r.ran && !r.sim.ok())
            return 3;
    }
    return 1;
}

/**
 * Client mode: submit to a running uhlld over its socket instead of
 * compiling locally. The daemon's follow frame is written verbatim,
 * so a --no-timings report fetched here is byte-identical to a
 * local batch run's.
 */
int
clientMode(const std::string &sock, std::string tenant,
           const std::string &batch_id,
           const std::string &manifest_path,
           const std::string &report_path, bool timings,
           unsigned threads, const PipelineOverrides &po,
           const SuperviseOverrides &so, bool ping, bool metrics,
           bool shutdown, double io_timeout)
{
    if (tenant.empty()) {
        const char *u = std::getenv("USER");
        tenant = u && *u ? u : "anon";
    }
    ServiceClient cl;
    // --io-timeout: a wedged daemon becomes a clean exit 4 instead
    // of an indefinite hang; 0 (the default) stays fully blocking
    cl.setIoTimeout(io_timeout);
    std::string err;
    if (!cl.connectTo(sock, &err)) {
        std::fprintf(stderr, "uhllc: %s\n", err.c_str());
        return 4;
    }
    ServiceResponse resp;
    auto transport = [&](const char *what) -> int {
        std::fprintf(stderr, "uhllc: %s: %s\n", what, err.c_str());
        return 4;
    };
    auto refused = [&]() -> int {
        std::fprintf(stderr, "uhllc: daemon refused: %s%s%s\n",
                     resp.error.c_str(),
                     resp.code.empty() ? "" : " ",
                     resp.code.empty()
                         ? ""
                         : ("[" + resp.code + "]").c_str());
        // A rejected request is a configuration error; a daemon
        // that cannot take it right now is a transport condition.
        return resp.code == "bad-request" ||
                       resp.code == "unsupported-schema"
                   ? 2
                   : 4;
    };

    if (ping) {
        if (!cl.request("ping", tenant, "cli", "", &resp, &err))
            return transport("ping");
        if (!resp.ok)
            return refused();
        std::printf("uhlld at %s: ok\n", sock.c_str());
        return 0;
    }
    if (metrics) {
        if (!cl.request("metrics", tenant, "cli", "", &resp, &err))
            return transport("metrics");
        if (!resp.ok)
            return refused();
        if (report_path.empty())
            std::fputs(resp.follow.c_str(), stdout);
        else
            writeFile(report_path, resp.follow);
        return 0;
    }
    if (shutdown) {
        if (!cl.request("shutdown", tenant, "cli", "", &resp, &err))
            return transport("shutdown");
        return resp.ok ? 0 : refused();
    }

    if (manifest_path.empty()) {
        std::fprintf(stderr,
                     "uhllc: --connect needs --batch, --ping, "
                     "--scrape-metrics or --shutdown\n");
        return 2;
    }
    const std::string text = readFile(manifest_path);
    std::string jerr;
    if (!jsonValid(text, &jerr)) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n",
                     manifest_path.c_str(), jerr.c_str());
        return 2;
    }

    // The daemon shares this filesystem (AF_UNIX), so an absolute
    // manifest directory lets it resolve the manifest's "file"
    // references exactly like a local run would.
    std::string dir = ".";
    const size_t slash = manifest_path.rfind('/');
    if (slash != std::string::npos)
        dir = manifest_path.substr(0, slash);
    char abs[PATH_MAX];
    if (::realpath(dir.c_str(), abs))
        dir = abs;

    JsonWriter w(false);
    w.beginObject();
    w.raw("manifest", text);
    w.value("manifest_dir", dir);
    w.value("timings", timings);
    if (!batch_id.empty())
        w.value("batch_id", batch_id);
    if (threads)
        w.value("threads", static_cast<uint64_t>(threads));
    if (po.any())
        w.raw("pipeline", po.toJson());
    const std::string soj = so.toJson();
    if (soj != "{}")
        w.raw("supervise", soj);
    w.endObject();

    if (!cl.request("batch", tenant, "cli", w.str(), &resp, &err))
        return transport("batch");
    if (!resp.ok)
        return refused();

    if (report_path.empty())
        std::fputs(resp.follow.c_str(), stdout);
    else
        writeFile(report_path, resp.follow);

    uint64_t jobs = 0, okc = 0;
    int exit_code = 0;
    if (const JsonValue *b = resp.body()) {
        if (const JsonValue *v = b->get("jobs"))
            jobs = v->asU64();
        if (const JsonValue *v = b->get("ok"))
            okc = v->asU64();
        if (const JsonValue *v = b->get("exit"))
            exit_code = static_cast<int>(v->asU64());
    }
    std::fprintf(stderr, "batch via uhlld: %llu/%llu jobs ok\n",
                 (unsigned long long)okc, (unsigned long long)jobs);
    return exit_code;
}

/** Print the structured SimError diagnostic uhllc always printed. */
void
printSimError(const SimResult &res)
{
    std::fprintf(stderr,
                 "sim error: %s: %s\n"
                 "  at cycle %llu, upc 0x%04x, restart point 0x%04x\n",
                 simErrorKindName(res.error.kind),
                 res.error.message.c_str(),
                 (unsigned long long)res.error.cycle, res.error.upc,
                 res.error.restartPoint);
    std::fprintf(stderr, "  registers:");
    for (size_t i = 0; i < res.error.regs.size(); ++i) {
        std::fprintf(stderr, "%s%s=0x%llx",
                     i % 4 == 0 ? "\n    " : "  ",
                     res.error.regs[i].first.c_str(),
                     (unsigned long long)res.error.regs[i].second);
    }
    std::fprintf(stderr, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker-mode re-execution (spawned by a WorkerPool): divert
    // before any flag parsing -- a worker is a job server, not a
    // CLI invocation.
    if (isWorkerInvocation(argc, argv)) {
        try {
            return runWorkerFromArgv(argc, argv);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "worker: %s\n", e.what());
            return 2;
        }
    }

    Job job;
    std::string file;
    bool listing = false, stats = false, list = false;
    job.run = false;

    std::string batch_manifest, report_path, resume_path;
    unsigned batch_threads = 0;
    bool batch_timings = true;

    // The shared tri-state override records (driver/options.hh):
    // everything the command line explicitly names, merged onto the
    // manifest with the same code uhlld uses.
    PipelineOverrides po;
    SuperviseOverrides so;
    TelemetryOverrides to;

    bool fuzz_mode = false;
    FuzzOptions fuzz_opts;
    double fuzz_min_rate = 0;

    std::string trace_path, stats_json_path;
    uint64_t trace_limit = 4096;
    bool profile = false;

    std::string validate_json, validate_jsonl;

    std::string connect_path, tenant, batch_id;
    bool svc_ping = false, svc_metrics = false,
         svc_shutdown = false;
    double io_timeout = 0;

    IsolationMode isolation = IsolationMode::Thread;
    WorkerPoolConfig pool_cfg;
    pool_cfg.workers = 0;  // 0 = follow the batch thread count
    if (const char *chaos = std::getenv("UHLL_WORKER_CHAOS"))
        pool_cfg.chaosSpec = chaos;
    if (const char *cdir = std::getenv("UHLL_WORKER_CHAOS_DIR"))
        pool_cfg.chaosDir = cdir;

    ArgScanner sc(argc, argv);
    while (sc.next()) {
        std::string val;
        uint64_t n = 0;
        if (sc.value("--lang", &job.lang)) {}
        else if (sc.value("--machine", &job.machine)) {}
        else if (sc.value("--entry", &job.entry)) {}
        else if (po.parse(sc)) {}
        else if (so.parse(sc)) {}
        else if (to.parse(sc)) {}
        else if (sc.is("--listing")) listing = true;
        else if (sc.is("--run")) job.run = true;
        else if (sc.is("--stats")) stats = true;
        else if (sc.is("--verify")) job.verify = true;
        else if (sc.is("--list")) list = true;
        else if (sc.is("--fuzz")) fuzz_mode = true;
        else if (sc.valueU64("--fuzz-seed", &fuzz_opts.seed,
                             /*nonzero=*/false)) {}
        else if (sc.valueU64("--fuzz-jobs", &fuzz_opts.jobs)) {}
        else if (sc.valueDouble("--fuzz-duration",
                                &fuzz_opts.durationSeconds)) {}
        else if (sc.valueU64("--fuzz-configs", &n,
                             /*nonzero=*/false)) {
            fuzz_opts.configsPerProgram =
                static_cast<unsigned>(n);
        }
        else if (sc.valueU64("--fuzz-budget", &n)) {
            fuzz_opts.sizeBudget = static_cast<unsigned>(n);
        }
        else if (sc.value("--fuzz-langs", &val)) {
            for (size_t s = 0; s <= val.size();) {
                size_t e = val.find(',', s);
                if (e == std::string::npos)
                    e = val.size();
                if (e > s)
                    fuzz_opts.langs.push_back(
                        val.substr(s, e - s));
                s = e + 1;
            }
        }
        else if (sc.value("--fuzz-machines", &val)) {
            for (size_t s = 0; s <= val.size();) {
                size_t e = val.find(',', s);
                if (e == std::string::npos)
                    e = val.size();
                if (e > s)
                    fuzz_opts.machines.push_back(
                        val.substr(s, e - s));
                s = e + 1;
            }
        }
        else if (sc.value("--fuzz-corpus", &fuzz_opts.corpusDir)) {}
        else if (sc.valueDouble("--fuzz-min-rate",
                                &fuzz_min_rate)) {}
        else if (sc.is("--fuzz-no-minimize"))
            fuzz_opts.minimize = false;
        else if (sc.value("--batch", &batch_manifest)) {}
        else if (sc.value("--report", &report_path)) {}
        else if (sc.is("--no-timings")) batch_timings = false;
        else if (sc.value("--resume", &resume_path)) {}
        else if (sc.value("--connect", &connect_path)) {}
        else if (sc.valueDouble("--io-timeout", &io_timeout)) {}
        else if (sc.value("--isolation", &val)) {
            if (val == "thread") {
                isolation = IsolationMode::Thread;
            } else if (val == "process") {
                isolation = IsolationMode::Process;
            } else {
                std::fprintf(stderr,
                             "bad --isolation '%s' "
                             "(thread|process)\n",
                             val.c_str());
                return 2;
            }
        }
        else if (sc.valueU64("--worker-mem-mb",
                             &pool_cfg.memLimitMb)) {}
        else if (sc.valueU64("--worker-cpu-s", &n)) {
            pool_cfg.cpuLimitSeconds = static_cast<uint32_t>(n);
        }
        else if (sc.valueDouble("--hang-timeout",
                                &pool_cfg.hangTimeoutSeconds)) {}
        else if (sc.value("--tenant", &tenant)) {}
        else if (sc.value("--batch-id", &batch_id)) {}
        else if (sc.is("--ping")) svc_ping = true;
        else if (sc.is("--scrape-metrics")) svc_metrics = true;
        else if (sc.is("--shutdown")) svc_shutdown = true;
        else if (sc.valueU64("--jobs", &n)) {
            batch_threads = static_cast<unsigned>(n);
        }
        else if (sc.arg().rfind("-j", 0) == 0 &&
                 sc.arg().size() > 2) {
            batch_threads = static_cast<unsigned>(std::strtoul(
                sc.arg().c_str() + 2, nullptr, 0));
            if (!batch_threads) {
                std::fprintf(stderr, "bad thread count '%s'\n",
                             sc.arg().c_str() + 2);
                return 2;
            }
        }
        else if (sc.valueU64("-j", &n)) {
            batch_threads = static_cast<unsigned>(n);
        }
        else if (sc.value("--stats-json", &stats_json_path)) {}
        else if (sc.value("--trace", &trace_path)) {}
        else if (sc.valueU64("--trace-limit", &trace_limit)) {}
        else if (sc.is("--profile")) profile = true;
        else if (sc.value("--validate-json", &validate_json)) {}
        else if (sc.value("--validate-jsonl", &validate_jsonl)) {}
        else if (sc.value("--inject", &job.faultPlan)) {
            if (job.faultPlan != "-")
                job.faultPlan = readFile(job.faultPlan);
        }
        else if (sc.valueU64("--seed", &job.faultSeed)) {}
        else if (sc.valueU64("--max-restarts", &n)) {
            job.maxRestarts = static_cast<uint32_t>(n);
        }
        else if (sc.is("--quiet")) setLogLevel(LogLevel::Quiet);
        else if (sc.is("--verbose")) setLogLevel(LogLevel::Verbose);
        else if (sc.value("--set", &val)) {
            auto eq = val.find('=');
            if (eq == std::string::npos) {
                std::fprintf(stderr,
                             "--set expects VAR=VALUE, got '%s'\n",
                             val.c_str());
                return 2;
            }
            job.sets.emplace_back(
                val.substr(0, eq),
                std::strtoull(val.c_str() + eq + 1, nullptr, 0));
        } else if (sc.is("--help") || sc.is("-h")) {
            usage();
        } else if (!sc.arg().empty() && sc.arg()[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         sc.arg().c_str());
            usage();
        } else if (file.empty()) {
            file = sc.arg();
        } else {
            usage();
        }
    }

    // Named-flag contradiction diagnostics, before any work -- even
    // --list (the same shape validate() uses for --no-compact
    // --compactor).
    const std::string overr = po.validate();
    if (!overr.empty()) {
        std::fprintf(stderr, "error: %s\n", overr.c_str());
        return 2;
    }

    if (list)
        return listMode();

    try {
        if (!validate_json.empty())
            return validateMode(validate_json, false);
        if (!validate_jsonl.empty())
            return validateMode(validate_jsonl, true);

        if (!connect_path.empty()) {
            return clientMode(connect_path, tenant, batch_id,
                              batch_manifest, report_path,
                              batch_timings, batch_threads, po, so,
                              svc_ping, svc_metrics, svc_shutdown,
                              io_timeout);
        }

        if (fuzz_mode) {
            fuzz_opts.threads = batch_threads;
            return fuzzMode(fuzz_opts, report_path, batch_timings,
                            fuzz_min_rate);
        }

        if (!batch_manifest.empty()) {
            return batchMode(batch_manifest, batch_threads,
                             report_path, batch_timings, so,
                             resume_path, po, to, isolation,
                             pool_cfg);
        }

        if (job.lang.empty() || job.machine.empty() || file.empty())
            usage();
        job.source = readFile(file);
        job.name = file;

        // Overlay the named pipeline/supervision flags, then reject
        // contradictory/unknown combinations before doing any work.
        // (A named compactor that the default would shadow, e.g.
        // --no-compact --compactor tokoro, is an error even though
        // tokoro is the default name.)
        po.apply(&job.options);
        so.applyToJob(&job);
        const std::string verr = job.options.validate();
        if (!verr.empty()) {
            std::fprintf(stderr, "error: %s\n", verr.c_str());
            return 2;
        }

        // Observability sinks are owned here; the Toolchain wires
        // them into the simulator.
        std::unique_ptr<TraceBuffer> trace;
        std::unique_ptr<CycleProfiler> prof;
        if (!trace_path.empty()) {
            trace = std::make_unique<TraceBuffer>(
                static_cast<size_t>(trace_limit));
            job.trace = trace.get();
        }
        if (profile) {
            prof = std::make_unique<CycleProfiler>();
            job.profiler = prof.get();
        }
        const TelemetryOptions tel = to.cli;
        job.captureStats = !stats_json_path.empty() || profile;
        if (!tel.metricsOut.empty()) {
            job.captureMetrics = true;
            job.metricsEveryCycles = tel.metricsEveryCycles;
        }
        if (!tel.otrace.empty()) {
            SpanTracer::instance().enable();
            SpanTracer::instance().setLaneName("main");
        }

        Toolchain tc;
        if (!job.run && !job.verify) {
            // Pure compile: listing/stats only. Let compile errors
            // surface as FatalError (exit 1), as they always have.
            auto art = tc.compile(job);
            std::printf("%s", art->store().listing().c_str());
            if (stats) {
                if (art->isMir()) {
                    const CompileStats &s = art->stats();
                    std::printf(
                        "words: %u (%llu bits), ops: %u, fixups: "
                        "%u, spilled vregs: %u, spill loads/stores: "
                        "%u/%u\n",
                        s.words,
                        (unsigned long long)art->store().sizeBits(),
                        s.opsLowered, s.fixupMovs, s.spilledVRegs,
                        s.spillLoads, s.spillStores);
                } else {
                    std::printf(
                        "words: %zu (%llu bits)\n",
                        art->store().size(),
                        (unsigned long long)art->store().sizeBits());
                }
            }
            if (!tel.otrace.empty()) {
                writeFile(tel.otrace,
                          SpanTracer::instance().chromeJson());
                inform("wrote span trace to %s",
                       tel.otrace.c_str());
            }
            return 0;
        }

        SuperviseContext sctx;
        sctx.policy = so.cli;
        sctx.postmortemDir = tel.postmortemDir;
        JobResult r = tc.run(job, sctx);
        if (!r.artefact) {
            for (const std::string &d : r.diagnostics)
                std::fprintf(stderr, "error: %s\n", d.c_str());
            return 1;
        }
        const ControlStore &store = r.artefact->store();

        if (r.verified)
            std::printf("%s", r.verifyReport.c_str());
        if (r.verified && !r.verifyOk)
            return 1;
        if (listing)
            std::printf("%s", store.listing().c_str());
        if (stats) {
            if (r.artefact->isMir()) {
                const CompileStats &s = r.artefact->stats();
                std::printf(
                    "words: %u (%llu bits), ops: %u, fixups: %u, "
                    "spilled vregs: %u, spill loads/stores: %u/%u\n",
                    s.words, (unsigned long long)store.sizeBits(),
                    s.opsLowered, s.fixupMovs, s.spilledVRegs,
                    s.spillLoads, s.spillStores);
            } else {
                std::printf("words: %zu (%llu bits)\n", store.size(),
                            (unsigned long long)store.sizeBits());
            }
        }

        if (!r.ran) {
            for (const std::string &d : r.diagnostics)
                std::fprintf(stderr, "error: %s\n", d.c_str());
            return r.ok ? 0 : 1;
        }

        const SimResult &res = r.sim;
        std::printf("halted=%d cycles=%llu words=%llu\n",
                    int(res.halted), (unsigned long long)res.cycles,
                    (unsigned long long)res.wordsExecuted);
        if (!job.faultPlan.empty()) {
            std::printf(
                "faults: seed=%llu injected=%llu ecc_corrected=%llu "
                "ecc_double_bit=%llu parity_refetches=%llu "
                "mem_retries=%llu spurious=%llu jitter_cycles=%llu\n",
                (unsigned long long)res.faultSeed,
                (unsigned long long)res.faultsInjected,
                (unsigned long long)res.eccCorrected,
                (unsigned long long)res.eccDoubleBit,
                (unsigned long long)res.parityRefetches,
                (unsigned long long)res.memRetries,
                (unsigned long long)res.spuriousInterrupts,
                (unsigned long long)res.jitterCycles);
        }
        for (const auto &[n2, v] : r.vars)
            std::printf("%s = %llu\n", n2.c_str(),
                        (unsigned long long)v);

        // Renderers over the control store's line table.
        auto describe = [&store](uint32_t addr) -> std::string {
            const SourceNote *note = store.note(addr);
            if (!note)
                return "";
            if (note->line >= 0)
                return strfmt("line %d: %s", note->line,
                              note->what.c_str());
            return note->what;
        };
        auto lineOf = [&store](uint32_t addr) -> int32_t {
            const SourceNote *note = store.note(addr);
            return note ? note->line : -1;
        };

        if (profile) {
            std::printf("\n%s", prof->report(20, describe).c_str());
            // A line table only exists for assembled (masm) input;
            // compiled code is attributed via MIR origin strings.
            if (store.hasLineNumbers())
                std::printf("\n%s",
                            prof->lineReport(10, lineOf, describe)
                                .c_str());
        }
        if (!trace_path.empty()) {
            writeFile(trace_path, trace->toChromeJson(describe));
            inform("wrote %zu trace records to %s (%llu dropped)",
                   trace->size(), trace_path.c_str(),
                   (unsigned long long)trace->dropped());
        }
        if (!tel.otrace.empty()) {
            // Merged document: pipeline spans (pid 0) plus, when a
            // microtrace was recorded, its ring (pid 1).
            writeFile(tel.otrace, SpanTracer::instance().chromeJson(
                                      trace.get(), describe));
            inform("wrote span trace to %s", tel.otrace.c_str());
        }
        if (!tel.metricsOut.empty())
            writeMetrics(tel.metricsOut, r.metrics, batch_timings);
        if (!stats_json_path.empty()) {
            JsonWriter w;
            w.beginObject();
            w.raw("result", res.toJson());
            w.raw("stats", r.statsJson);
            if (prof)
                w.raw("profile", prof->toJson(20, lineOf, describe));
            w.endObject();
            writeFile(stats_json_path, w.str() + "\n");
            inform("wrote stats to %s", stats_json_path.c_str());
        }

        if (!res.ok()) {
            printSimError(res);
            return 3;
        }
        if (!r.ok) {
            for (const std::string &d : r.diagnostics)
                std::fprintf(stderr, "error: %s\n", d.c_str());
        }
        return r.ok ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
