#include "isa/macro.hh"

#include "masm/masm.hh"
#include "support/logging.hh"

#include "lang/common/lexer.hh"

namespace uhll {

namespace {

struct OpInfo {
    const char *name;
    uint16_t opcode;
    bool hasOperand;
};

const OpInfo kOps[] = {
    {"halt", 0, false}, {"ldi", 1, true},  {"lda", 2, true},
    {"sta", 3, true},   {"add", 4, true},  {"sub", 5, true},
    {"and", 6, true},   {"or", 7, true},   {"xor", 8, true},
    {"shl", 9, true},   {"jmp", 10, true}, {"jz", 11, true},
    {"jnz", 12, true},  {"ldax", 13, true}, {"stax", 14, true},
};

const std::pair<const char *, uint16_t> kXops[] = {
    {"tax", 0}, {"txa", 1}, {"inx", 2}, {"dex", 3},
    {"shr1", 4}, {"not", 5},
};

} // namespace

MacroProgram
assembleMacro(const std::string &source, uint16_t origin)
{
    LexOptions lo;
    lo.lineComment = ";";
    lo.significantNewlines = true;
    lo.foldCase = true;
    TokenStream ts(lex(source, lo), "macro-asm");

    MacroProgram prog;
    struct Fixup {
        size_t word;
        std::string label;
    };
    std::vector<Fixup> fixups;

    auto operand = [&](size_t at) -> uint16_t {
        if (ts.peek().kind == Token::Kind::Int) {
            uint64_t v = ts.next().value;
            if (v > 0xFFF)
                fatal("macro-asm: operand %llu exceeds 12 bits",
                      (unsigned long long)v);
            return static_cast<uint16_t>(v);
        }
        fixups.push_back({at, ts.expectIdent("operand")});
        return 0;
    };

    while (!ts.atEnd()) {
        if (ts.acceptNewline())
            continue;
        // label?
        if (ts.peek().kind == Token::Kind::Ident &&
            ts.peek(1).kind == Token::Kind::Punct &&
            ts.peek(1).text == ":") {
            std::string label = ts.next().text;
            ts.next();
            if (prog.labels.count(label))
                fatal("macro-asm: duplicate label '%s'",
                      label.c_str());
            prog.labels[label] = static_cast<uint16_t>(
                origin + prog.words.size());
            continue;
        }
        if (ts.acceptPunct(".")) {
            ts.expectKeyword("word");
            uint64_t v = ts.expectInt("data word");
            prog.words.push_back(static_cast<uint16_t>(v));
            continue;
        }
        std::string mn = ts.expectIdent("instruction");
        bool handled = false;
        for (const OpInfo &op : kOps) {
            if (mn != op.name)
                continue;
            uint16_t w = static_cast<uint16_t>(op.opcode << 12);
            size_t at = prog.words.size();
            prog.words.push_back(w);
            if (op.hasOperand)
                prog.words[at] |= operand(at);
            handled = true;
            break;
        }
        if (!handled) {
            for (auto &[name, code] : kXops) {
                if (mn == name) {
                    prog.words.push_back(
                        static_cast<uint16_t>((15 << 12) | code));
                    handled = true;
                    break;
                }
            }
        }
        if (!handled)
            fatal("macro-asm: unknown instruction '%s'", mn.c_str());
    }

    for (const Fixup &f : fixups) {
        auto it = prog.labels.find(f.label);
        if (it == prog.labels.end())
            fatal("macro-asm: undefined label '%s'", f.label.c_str());
        prog.words[f.word] |= it->second & 0xFFF;
    }
    return prog;
}

void
loadMacro(const MacroProgram &prog, MainMemory &mem, uint16_t base)
{
    for (size_t i = 0; i < prog.words.size(); ++i)
        mem.poke(base + static_cast<uint32_t>(i), prog.words[i]);
}

ControlStore
buildMacroInterpreter(const MachineDescription &hm1)
{
    if (hm1.name() != "HM-1")
        fatal("macro interpreter firmware is written for HM-1");

    // Macro state: ACC=r8, X=r9, PC=r10, IR=r11 (architectural).
    // Micro temps: r0 opcode, r1 operand, r2 scratch.
    // Each fetch is a restart point: a page fault mid-instruction
    // re-runs the current macro instruction, as real firmware did.
    const char *src = R"(
.entry interp
fetch:
.restart
    [ memrd r11, r10 ]
    [ shr r0, r11, #12 | mova r1, r11 ]
    [ andi r1, r1, #0x0FFF ] mbranch r0, #0xF, optable
optable:
    [ ] jump op_halt
    [ ] jump op_ldi
    [ ] jump op_lda
    [ ] jump op_sta
    [ ] jump op_add
    [ ] jump op_sub
    [ ] jump op_and
    [ ] jump op_or
    [ ] jump op_xor
    [ ] jump op_shl
    [ ] jump op_jmp
    [ ] jump op_jz
    [ ] jump op_jnz
    [ ] jump op_ldax
    [ ] jump op_stax
    [ ] jump op_xop
; The program counter commits only here, after every fault point of
; the instruction: a page fault restarts the same macro instruction
; (the trap-safe structure sec. 2.1.5 calls for).
next:
    [ addi r10, r10, #1 ] jump fetch
op_halt:
    [ ] halt
op_ldi:
    [ mova r8, r1 ] jump next
op_lda:
    [ memrd r8, r1 ] jump next
op_sta:
    [ memwr r1, r8 ] jump next
op_add:
    [ memrd r2, r1 ]
    [ add r8, r8, r2 ] jump next
op_sub:
    [ memrd r2, r1 ]
    [ sub r8, r8, r2 ] jump next
op_and:
    [ memrd r2, r1 ]
    [ and r8, r8, r2 ] jump next
op_or:
    [ memrd r2, r1 ]
    [ or r8, r8, r2 ] jump next
op_xor:
    [ memrd r2, r1 ]
    [ xor r8, r8, r2 ] jump next
op_shl:
    [ andi r2, r1, #0xF ]
    [ shl r8, r8, r2 ] jump next
op_jmp:
    [ mova r10, r1 ] jump fetch
op_jz:
    [ cmpi r8, #0 ] if nz jump next
    [ mova r10, r1 ] jump fetch
op_jnz:
    [ cmpi r8, #0 ] if z jump next
    [ mova r10, r1 ] jump fetch
op_ldax:
    [ add r2, r1, r9 ]
    [ memrd r8, r2 ] jump next
op_stax:
    [ add r2, r1, r9 ]
    [ memwr r2, r8 ] jump next
op_xop:
    [ ] mbranch r1, #0x7, xtable
xtable:
    [ ] jump x_tax
    [ ] jump x_txa
    [ ] jump x_inx
    [ ] jump x_dex
    [ ] jump x_shr1
    [ ] jump x_not
    [ ] jump next
    [ ] jump next
x_tax:
    [ mova r9, r8 ] jump next
x_txa:
    [ mova r8, r9 ] jump next
x_inx:
    [ inc r9, r9 ] jump next
x_dex:
    [ dec r9, r9 ] jump next
x_shr1:
    [ shr r8, r8, #1 ] jump next
x_not:
    [ not r8, r8 ] jump next
)";
    MicroAssembler as(hm1);
    return as.assemble(src);
}

} // namespace uhll
