/**
 * @file
 * MacroISA: the conventional (macro) instruction set whose firmware
 * interpreter is the "manufacturer supplied microprograms which
 * interpret the basic instruction set" of the survey's sec. 2.1.5,
 * and the baseline for the sec. 3 speedup claim ("speed up a heavily
 * used procedure by a factor of five ... a factor of ten").
 *
 * A 16-bit single-accumulator machine:
 *
 *   word = opcode[15:12] | operand[11:0]
 *
 *   0 HALT         8 XOR  addr      ACC ^= mem[addr]
 *   1 LDI  imm     9 SHL  imm       ACC <<= imm
 *   2 LDA  addr   10 JMP  addr
 *   3 STA  addr   11 JZ   addr      if ACC == 0
 *   4 ADD  addr   12 JNZ  addr
 *   5 SUB  addr   13 LDAX addr      ACC = mem[addr + X]
 *   6 AND  addr   14 STAX addr      mem[addr + X] = ACC
 *   7 OR   addr   15 XOP  n         0 TAX, 1 TXA, 2 INX, 3 DEX,
 *                                   4 SHR1, 5 NOT
 *
 * Macro state lives in the architectural registers of HM-1:
 * ACC = r8, X = r9, PC = r10, IR = r11 (saved/restored by the OS
 * across microtraps, which is what makes the incread discussion
 * concrete).
 */

#ifndef UHLL_ISA_MACRO_HH
#define UHLL_ISA_MACRO_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/control_store.hh"
#include "machine/machine_desc.hh"
#include "machine/memory.hh"

namespace uhll {

/** An assembled macro program. */
struct MacroProgram {
    std::vector<uint16_t> words;
    std::unordered_map<std::string, uint16_t> labels;
};

/**
 * Assemble macro source. One instruction or directive per line;
 * ';' comments; 'label:' definitions; '.word n' data. Operands are
 * integers or label names. @p origin is the load address: label
 * operands resolve to absolute addresses.
 */
MacroProgram assembleMacro(const std::string &source,
                           uint16_t origin = 0);

/** Load @p prog into @p mem at @p base. */
void loadMacro(const MacroProgram &prog, MainMemory &mem,
               uint16_t base);

/**
 * Build the firmware interpreter for @p hm1 (must be an HM-1
 * instance: the firmware is hand-written HM-1 microassembly).
 * Entry point "interp"; set r10 (PC) before running; each macro
 * instruction's interpretation is a restartable unit.
 */
ControlStore buildMacroInterpreter(const MachineDescription &hm1);

} // namespace uhll

#endif // UHLL_ISA_MACRO_HH
