#include "driver/options.hh"

#include <cstdio>
#include <cstdlib>

#include "obs/json.hh"
#include "support/logging.hh"

namespace uhll {

// ----------------------------------------------------------------
// ArgScanner
// ----------------------------------------------------------------

bool
ArgScanner::next()
{
    if (i_ + 1 >= argc_)
        return false;
    arg_ = argv_[++i_];
    return true;
}

bool
ArgScanner::value(const char *name, std::string *out)
{
    if (arg_ == name) {
        if (i_ + 1 >= argc_) {
            std::fprintf(stderr, "option '%s' requires a value\n",
                         name);
            std::exit(2);
        }
        *out = argv_[++i_];
        return true;
    }
    const std::string prefix = std::string(name) + "=";
    if (arg_.rfind(prefix, 0) == 0) {
        *out = arg_.substr(prefix.size());
        return true;
    }
    return false;
}

bool
ArgScanner::valueU64(const char *name, uint64_t *out, bool nonzero)
{
    std::string v;
    if (!value(name, &v))
        return false;
    char *end = nullptr;
    *out = std::strtoull(v.c_str(), &end, 0);
    if ((end && *end) || (nonzero && *out == 0)) {
        std::fprintf(stderr,
                     "option '%s' expects a %s integer, got '%s'\n",
                     name, nonzero ? "positive" : "valid", v.c_str());
        std::exit(2);
    }
    return true;
}

bool
ArgScanner::valueU32(const char *name, uint32_t *out, bool nonzero)
{
    uint64_t v = 0;
    if (!valueU64(name, &v, nonzero))
        return false;
    *out = static_cast<uint32_t>(v);
    return true;
}

bool
ArgScanner::valueDouble(const char *name, double *out, bool positive)
{
    std::string v;
    if (!value(name, &v))
        return false;
    char *end = nullptr;
    *out = std::strtod(v.c_str(), &end);
    if ((end && *end) || (positive && *out <= 0)) {
        std::fprintf(stderr,
                     "option '%s' expects a %s number, got '%s'\n",
                     name, positive ? "positive" : "valid",
                     v.c_str());
        std::exit(2);
    }
    return true;
}

// ----------------------------------------------------------------
// The pipeline options table
// ----------------------------------------------------------------

const std::vector<OptionSpec> &
pipelineOptionSpecs()
{
    static const std::vector<OptionSpec> specs = {
        {"--compactor", "compactor", "name",
         "microcode compactor (default tokoro)"},
        {"--allocator", "allocator", "name",
         "register allocator (default graph_coloring)"},
        {"--no-compact", "compact", "bool",
         "one microoperation per word"},
        {"--polls", "polls", "bool",
         "insert interrupt polls on loop back edges"},
        {"--trap-safe", "trap_safe", "bool",
         "apply the microtrap safety transformation"},
        {"", "stack_ops", "bool",
         "recognize stack-idiom sequences (manifest only)"},
        {"", "optimize", "bool",
         "run the MIR optimizer (manifest only)"},
        {"--jit", "jit", "bool",
         "native execution tier on/off (--no-jit)"},
        {"--jit-threshold", "jit_threshold", "u64",
         "region-entry hotness threshold (1 = always compile)"},
        {"", "empl_microops", "bool",
         "EMPL: lower builtins to microops (manifest only)"},
        {"", "empl_data_base", "u64",
         "EMPL: static data base address (manifest only)"},
    };
    return specs;
}

// ----------------------------------------------------------------
// PipelineOverrides
// ----------------------------------------------------------------

bool
PipelineOverrides::parse(ArgScanner &sc)
{
    if (sc.value("--compactor", &compactor))
        return true;
    if (sc.value("--allocator", &allocator))
        return true;
    if (sc.is("--no-compact")) {
        compact = 0;
        return true;
    }
    if (sc.is("--polls")) {
        polls = 1;
        return true;
    }
    if (sc.is("--trap-safe")) {
        trapSafe = 1;
        return true;
    }
    if (sc.is("--jit")) {
        if (jit == 0)
            jitContradiction = true;
        jit = 1;
        return true;
    }
    if (sc.is("--no-jit")) {
        if (jit == 1)
            jitContradiction = true;
        jit = 0;
        return true;
    }
    uint64_t jt = 0;
    if (sc.valueU64("--jit-threshold", &jt)) {
        jitThreshold = static_cast<uint32_t>(jt);
        return true;
    }
    return false;
}

std::string
PipelineOverrides::validate() const
{
    if (jitContradiction) {
        return "contradictory options: --jit and --no-jit were both "
               "named";
    }
    if (jit == 0 && jitThreshold) {
        return strfmt("contradictory options: --no-jit disables the "
                      "native tier but --jit-threshold %u was named",
                      jitThreshold);
    }
    return "";
}

bool
PipelineOverrides::any() const
{
    return !compactor.empty() || !allocator.empty() || compact != -1
           || polls != -1 || trapSafe != -1 || jit != -1
           || jitThreshold != 0;
}

void
PipelineOverrides::apply(PipelineOptions *opts) const
{
    if (!compactor.empty())
        opts->compactor = compactor;
    if (!allocator.empty())
        opts->allocator = allocator;
    if (compact != -1)
        opts->compact = compact == 1;
    if (polls != -1)
        opts->insertInterruptPolls = polls == 1;
    if (trapSafe != -1)
        opts->trapSafety = trapSafe == 1;
    if (jit != -1)
        opts->jit = jit == 1;
    if (jit == 0)
        opts->jitThreshold = 0;
    if (jitThreshold)
        opts->jitThreshold = jitThreshold;
}

void
PipelineOverrides::applyToJobs(std::vector<Job> *jobs) const
{
    if (!any())
        return;
    for (Job &j : *jobs)
        apply(&j.options);
}

std::string
PipelineOverrides::toJson() const
{
    JsonWriter w(false);
    w.beginObject();
    if (!compactor.empty())
        w.value("compactor", compactor);
    if (!allocator.empty())
        w.value("allocator", allocator);
    if (compact != -1)
        w.value("compact", compact == 1);
    if (polls != -1)
        w.value("polls", polls == 1);
    if (trapSafe != -1)
        w.value("trap_safe", trapSafe == 1);
    if (jit != -1)
        w.value("jit", jit == 1);
    if (jitThreshold)
        w.value("jit_threshold",
                static_cast<uint64_t>(jitThreshold));
    w.endObject();
    return w.str();
}

PipelineOverrides
PipelineOverrides::fromJson(const JsonValue &v)
{
    PipelineOverrides po;
    if (!v.isObject())
        return po;
    if (const JsonValue *f = v.get("compactor"))
        po.compactor = f->asString();
    if (const JsonValue *f = v.get("allocator"))
        po.allocator = f->asString();
    if (const JsonValue *f = v.get("compact"))
        po.compact = f->asBool(true) ? 1 : 0;
    if (const JsonValue *f = v.get("polls"))
        po.polls = f->asBool() ? 1 : 0;
    if (const JsonValue *f = v.get("trap_safe"))
        po.trapSafe = f->asBool() ? 1 : 0;
    if (const JsonValue *f = v.get("jit"))
        po.jit = f->asBool(true) ? 1 : 0;
    if (const JsonValue *f = v.get("jit_threshold"))
        po.jitThreshold = static_cast<uint32_t>(f->asU64());
    return po;
}

// ----------------------------------------------------------------
// SuperviseOverrides
// ----------------------------------------------------------------

bool
SuperviseOverrides::parse(ArgScanner &sc)
{
    if (sc.valueDouble("--deadline", &cli.deadlineSeconds))
        return true;
    if (sc.valueU32("--retries", &cli.maxRetries))
        return true;
    if (sc.valueU64("--checkpoint-every",
                    &cli.checkpointEveryCycles))
        return true;
    if (sc.is("--dmr")) {
        cli.dmr = true;
        return true;
    }
    if (sc.valueU64("--dmr-interval", &cli.dmrIntervalWords))
        return true;
    if (sc.valueU64("--dmr-seed-b", &cli.dmrSeedB))
        return true;
    if (sc.is("--no-ecc")) {
        noEcc = true;
        return true;
    }
    return false;
}

SupervisePolicy
SuperviseOverrides::mergedWith(const SupervisePolicy &base) const
{
    SupervisePolicy pol = base;
    const SupervisePolicy dflt;
    if (cli.maxRetries)
        pol.maxRetries = cli.maxRetries;
    if (cli.backoffBaseMs != dflt.backoffBaseMs)
        pol.backoffBaseMs = cli.backoffBaseMs;
    if (cli.backoffMaxMs != dflt.backoffMaxMs)
        pol.backoffMaxMs = cli.backoffMaxMs;
    if (cli.deadlineSeconds > 0)
        pol.deadlineSeconds = cli.deadlineSeconds;
    if (cli.checkpointEveryCycles)
        pol.checkpointEveryCycles = cli.checkpointEveryCycles;
    if (cli.dmr)
        pol.dmr = true;
    if (cli.dmrIntervalWords != dflt.dmrIntervalWords)
        pol.dmrIntervalWords = cli.dmrIntervalWords;
    if (cli.dmrSeedB)
        pol.dmrSeedB = cli.dmrSeedB;
    return pol;
}

void
SuperviseOverrides::applyToJob(Job *job) const
{
    if (cli.deadlineSeconds > 0)
        job->deadlineSeconds = cli.deadlineSeconds;
    if (cli.dmr)
        job->dmr = true;
    if (cli.dmrSeedB)
        job->dmrSeedB = cli.dmrSeedB;
    if (noEcc)
        job->ecc = false;
}

std::string
SuperviseOverrides::toJson() const
{
    const SupervisePolicy dflt;
    JsonWriter w(false);
    w.beginObject();
    if (cli.maxRetries)
        w.value("retries", static_cast<uint64_t>(cli.maxRetries));
    if (cli.backoffBaseMs != dflt.backoffBaseMs)
        w.value("backoff_base_ms",
                static_cast<uint64_t>(cli.backoffBaseMs));
    if (cli.backoffMaxMs != dflt.backoffMaxMs)
        w.value("backoff_max_ms",
                static_cast<uint64_t>(cli.backoffMaxMs));
    if (cli.deadlineSeconds > 0)
        w.value("deadline_seconds", cli.deadlineSeconds);
    if (cli.checkpointEveryCycles)
        w.value("checkpoint_every_cycles",
                cli.checkpointEveryCycles);
    if (cli.dmr)
        w.value("dmr", true);
    if (cli.dmrIntervalWords != dflt.dmrIntervalWords)
        w.value("dmr_interval_words", cli.dmrIntervalWords);
    if (cli.dmrSeedB)
        w.value("dmr_seed_b", cli.dmrSeedB);
    w.endObject();
    return w.str();
}

SuperviseOverrides
SuperviseOverrides::fromJson(const JsonValue &v)
{
    SuperviseOverrides so;
    so.cli = parseSupervisePolicy(&v);
    return so;
}

// ----------------------------------------------------------------
// TelemetryOverrides
// ----------------------------------------------------------------

bool
TelemetryOverrides::parse(ArgScanner &sc)
{
    if (sc.value("--otrace", &cli.otrace))
        return true;
    if (sc.value("--metrics-out", &cli.metricsOut))
        return true;
    if (sc.valueU64("--metrics-every", &cli.metricsEveryCycles))
        return true;
    if (sc.value("--postmortem-dir", &cli.postmortemDir))
        return true;
    return false;
}

TelemetryOptions
TelemetryOverrides::mergedWith(const TelemetryOptions &base) const
{
    TelemetryOptions tel = base;
    if (!cli.otrace.empty())
        tel.otrace = cli.otrace;
    if (!cli.metricsOut.empty())
        tel.metricsOut = cli.metricsOut;
    if (cli.metricsEveryCycles)
        tel.metricsEveryCycles = cli.metricsEveryCycles;
    if (!cli.postmortemDir.empty())
        tel.postmortemDir = cli.postmortemDir;
    return tel;
}

// ----------------------------------------------------------------
// Manifest "options" object
// ----------------------------------------------------------------

PipelineOptions
parsePipelineOptions(const JsonValue *o)
{
    PipelineOptions opts;
    if (!o)
        return opts;
    if (!o->isObject())
        fatal("manifest: 'options' must be an object");
    for (const auto &[key, v] : o->fields) {
        if (key == "compactor")
            opts.compactor = v.asString();
        else if (key == "allocator")
            opts.allocator = v.asString();
        else if (key == "compact")
            opts.compact = v.asBool(true);
        else if (key == "polls")
            opts.insertInterruptPolls = v.asBool();
        else if (key == "trap_safe")
            opts.trapSafety = v.asBool();
        else if (key == "stack_ops")
            opts.recognizeStackOps = v.asBool();
        else if (key == "optimize")
            opts.optimize = v.asBool(true);
        else if (key == "jit")
            opts.jit = v.asBool(true);
        else if (key == "jit_threshold")
            opts.jitThreshold = static_cast<uint32_t>(v.asU64());
        else if (key == "empl_microops")
            opts.frontend.emplUseMicroOps = v.asBool(true);
        else if (key == "empl_data_base")
            opts.frontend.emplDataBase =
                static_cast<uint32_t>(v.asU64(0x2000));
        else {
            std::string known;
            for (const OptionSpec &s : pipelineOptionSpecs()) {
                if (s.manifestKey[0])
                    known += (known.empty() ? "" : "|")
                             + std::string(s.manifestKey);
            }
            fatal("manifest: unknown option '%s' (known: %s)",
                  key.c_str(), known.c_str());
        }
    }
    return opts;
}

} // namespace uhll
