#include "driver/supervisor.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "driver/toolchain.hh"
#include "fault/fault.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::unique_ptr<FaultInjector>
makeInjector(const Job &job, uint64_t seed)
{
    if (job.faultPlan.empty())
        return nullptr;
    FaultPlan plan = job.faultPlan == "-"
                         ? FaultPlan::recoverable(seed ? seed : 1)
                         : FaultPlan::parse(job.faultPlan);
    return std::make_unique<FaultInjector>(std::move(plan), seed);
}

/**
 * Deterministic backoff jitter in [0, 16) ms, a pure function of the
 * job name and attempt number: retried batch runs stay reproducible
 * while jobs sharing a failure cause still decorrelate.
 */
uint32_t
backoffJitterMs(const std::string &name, uint32_t attempt)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    h ^= attempt;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 33;
    return static_cast<uint32_t>(h & 15);
}

uint32_t
backoffMs(const SupervisePolicy &pol, const std::string &name,
          uint32_t attempt)
{
    const unsigned shift = std::min<uint32_t>(attempt - 1, 31);
    const uint64_t base =
        static_cast<uint64_t>(pol.backoffBaseMs) << shift;
    return static_cast<uint32_t>(
               std::min<uint64_t>(base, pol.backoffMaxMs)) +
           backoffJitterMs(name, attempt);
}

void
note(TraceBuffer *t, const MicroSimulator &sim, SuperviseAction a,
     uint32_t b)
{
    if (t) {
        t->record(TraceCat::Supervise, TraceSev::Info,
                  sim.result().cycles, 0, static_cast<uint32_t>(a),
                  b);
    }
    // Mirror every supervisor action onto the span timeline as an
    // instant, using the microtrace's own payload renderer so both
    // views read identically.
    if (SpanTracer::instance().enabled()) {
        TraceRecord rec;
        rec.cat = TraceCat::Supervise;
        rec.a = static_cast<uint32_t>(a);
        rec.b = b;
        SpanTracer::instance().instant(SpanCat::Supervise,
                                       traceRecordText(rec));
    }
}

std::string
simErrorJson(const SimError &e)
{
    JsonWriter w(false);
    w.beginObject();
    w.value("kind", simErrorKindName(e.kind));
    w.value("message", e.message);
    w.value("cycle", e.cycle);
    w.value("upc", static_cast<uint64_t>(e.upc));
    w.value("restart_point", static_cast<uint64_t>(e.restartPoint));
    w.endObject();
    return w.str();
}

std::string
finalRegistersJson(const MicroSimulator &sim)
{
    const SimSnapshot s = sim.snapshot();
    JsonWriter w(false);
    w.beginObject();
    w.value("upc", static_cast<uint64_t>(s.upc));
    w.beginObject("regs");
    for (size_t i = 0; i < s.regs.size(); ++i) {
        w.value(sim.machine().reg(static_cast<RegId>(i)).name,
                s.regs[i]);
    }
    w.endObject();
    w.endObject();
    return w.str();
}

/** Cancel/deadline verdicts end the job; they are never divergence. */
bool
supervisionStop(const SimResult &res)
{
    return res.error.kind == SimErrorKind::Cancelled ||
           res.error.kind == SimErrorKind::DeadlineExceeded;
}

/**
 * One redundant execution lane: private memory image, private fault
 * injector (its own seed), one simulator. Mirrors the plain
 * Toolchain::run simulate setup; `obs` gates the caller-owned
 * trace/profiler sinks so only the primary lane reports.
 */
struct Lane {
    MainMemory mem;
    std::unique_ptr<FaultInjector> inj;
    std::unique_ptr<MicroSimulator> sim;
    //! memory contents right after job setup: the checkpoint
    //! delta-compression baseline
    std::vector<uint64_t> baseline;

    Lane(const Job &job, const Artefact &art, uint64_t seed, bool obs,
         const std::atomic<bool> *cancel,
         std::chrono::steady_clock::time_point deadline)
        : mem(0x10000, art.machine->dataWidth())
    {
        if (job.setupMemory)
            job.setupMemory(mem);

        SimConfig cfg;
        if (job.maxCycles)
            cfg.maxCycles = job.maxCycles;
        cfg.forceSlowPath = job.forceSlowPath;
        cfg.jit = job.options.jit;
        cfg.jitThreshold = job.options.jitThreshold;
        cfg.jitCache = art.jitCache.get();
        cfg.decoded = art.decoded.get();
        cfg.ecc = job.ecc;
        if (obs) {
            cfg.trace = job.trace;
            cfg.profiler = job.profiler;
        }
        inj = makeInjector(job, seed);
        if (inj) {
            cfg.injector = inj.get();
            cfg.maxRestarts = job.maxRestarts;
        }
        cfg.cancel = cancel;
        cfg.deadline = deadline;

        sim = std::make_unique<MicroSimulator>(art.store(), mem, cfg);
        // Inputs go in before the baseline is captured: variables may
        // live in memory, and a restored run must not lose them.
        for (const auto &[n, v] : job.sets)
            art.setVariable(*sim, mem, n, v);
        baseline = mem.words();
    }
};

/**
 * Capture a fresh rollback target for @p lane: architectural state
 * *and* the current fault-stream cursors, so applying it replays
 * exactly the execution that follows it.
 */
Checkpoint
captureLane(const Lane &lane)
{
    return Checkpoint::capture(*lane.sim, lane.baseline);
}

/**
 * Roll @p lane back to @p ck, *keeping* the fault streams where they
 * are now instead of rewinding them to the checkpoint's cursors.
 *
 * This is the retry model: injected faults are environmental, and a
 * re-execution happens later in "wall-clock" fault time, so the
 * transient pile-up that stalled the first attempt is not replayed
 * verbatim -- which is what makes retrying recoverable errors able to
 * succeed at all in a deterministic simulator. (Resume-from-file
 * goes through Checkpoint::apply directly and *does* rewind the
 * cursors: a resumed run injects the same remaining faults.)
 */
void
rollbackEnvironmental(Lane &lane, const Checkpoint &ck)
{
    if (lane.inj) {
        FaultStreamState env = lane.inj->cursor();
        ck.apply(*lane.sim, lane.baseline);
        lane.inj->restoreCursor(env);
    } else {
        ck.apply(*lane.sim, lane.baseline);
    }
}

/** Differing-register report rows for the divergence JSON. */
std::string
divergenceReport(const MicroSimulator &a, const MicroSimulator &b,
                 uint64_t word, uint32_t rollbacks)
{
    const SimSnapshot sa = a.snapshot();
    const SimSnapshot sb = b.snapshot();

    JsonWriter w(false);
    w.beginObject();
    w.value("word", word);
    w.value("first_diff_cycle",
            std::min(sa.res.cycles, sb.res.cycles));
    w.value("cycle_a", sa.res.cycles);
    w.value("cycle_b", sb.res.cycles);
    w.value("upc_a", static_cast<uint64_t>(sa.upc));
    w.value("upc_b", static_cast<uint64_t>(sb.upc));
    w.value("halted_a", sa.res.halted);
    w.value("halted_b", sb.res.halted);
    w.value("rollbacks", static_cast<uint64_t>(rollbacks));
    w.value("digest_a", a.archDigest());
    w.value("digest_b", b.archDigest());
    w.beginArray("regs");
    const size_t nregs = std::min(sa.regs.size(), sb.regs.size());
    for (size_t i = 0; i < nregs; ++i) {
        if (sa.regs[i] == sb.regs[i])
            continue;
        w.beginObject();
        w.value("name",
                a.machine().reg(static_cast<RegId>(i)).name);
        w.value("a", sa.regs[i]);
        w.value("b", sb.regs[i]);
        w.endObject();
    }
    w.endArray();
    uint64_t mem_diffs = 0;
    const auto &ma = a.memory().words();
    const auto &mb = b.memory().words();
    const size_t nwords = std::min(ma.size(), mb.size());
    uint32_t first_addr = 0;
    bool have_addr = false;
    for (size_t i = 0; i < nwords; ++i) {
        if (ma[i] != mb[i]) {
            if (!have_addr) {
                first_addr = static_cast<uint32_t>(i);
                have_addr = true;
            }
            ++mem_diffs;
        }
    }
    w.value("mem_diff_words", mem_diffs);
    if (have_addr)
        w.value("mem_first_diff_addr",
                static_cast<uint64_t>(first_addr));
    w.endObject();
    return w.str();
}

/**
 * Run both lanes forward in lockstep and compare at retired-word
 * boundaries. Returns true when the lanes agreed to completion;
 * false on a confirmed divergence (r.divergenceJson filled).
 */
bool
runDmr(const Job &job, const SuperviseContext &ctx, JobResult &r,
       Lane &a, Lane &b, uint32_t entry)
{
    const SupervisePolicy &pol = ctx.policy;
    const uint64_t interval =
        pol.dmrIntervalWords ? pol.dmrIntervalWords : 4096;

    MicroSimulator &sa = *a.sim;
    MicroSimulator &sb = *b.sim;
    sa.begin(entry);
    sb.begin(entry);

    Checkpoint cka = captureLane(a);
    Checkpoint ckb = captureLane(b);
    uint64_t agreed_words = 0;
    uint32_t ckpt_ord = 0;
    bool rolled_back = false;

    for (;;) {
        const uint64_t target = sa.result().wordsExecuted + interval;
        sa.runUntilWords(target);
        if (supervisionStop(sa.result()))
            return true;    // a verdict, not a divergence
        sb.runUntilWords(target);

        const bool agree =
            sa.archDigest() == sb.archDigest() &&
            sa.result().wordsExecuted == sb.result().wordsExecuted &&
            sa.finished() == sb.finished();
        if (agree) {
            if (sa.finished())
                return true;
            cka = captureLane(a);
            ckb = captureLane(b);
            agreed_words = sa.result().wordsExecuted;
            ++ckpt_ord;
            ++r.checkpoints;
            note(job.trace, sa, SuperviseAction::Checkpoint,
                 ckpt_ord);
            continue;
        }

        note(job.trace, sa, SuperviseAction::Divergence,
             static_cast<uint32_t>(sa.result().wordsExecuted));
        if (!rolled_back) {
            // One benefit-of-the-doubt re-execution from the last
            // agreeing checkpoint, with the fault environment moved
            // on (a transient upset is not replayed). Re-capture the
            // rollback targets afterwards so a second divergence can
            // be replayed exactly for pinpointing.
            rolled_back = true;
            ++r.rollbacks;
            rollbackEnvironmental(a, cka);
            rollbackEnvironmental(b, ckb);
            cka = captureLane(a);
            ckb = captureLane(b);
            note(job.trace, sa, SuperviseAction::Rollback,
                 static_cast<uint32_t>(agreed_words));
            continue;
        }

        // Confirmed. Replay the diverging stretch word by word to
        // pinpoint the first retired word where the lanes disagree.
        const uint64_t diverged_at = sa.result().wordsExecuted;
        cka.apply(sa, a.baseline);
        ckb.apply(sb, b.baseline);
        uint64_t w = sa.result().wordsExecuted;
        while (!sa.finished() && !sb.finished() &&
               w < diverged_at + interval) {
            ++w;
            sa.runUntilWords(w);
            sb.runUntilWords(w);
            if (sa.archDigest() != sb.archDigest() ||
                sa.finished() != sb.finished()) {
                break;
            }
        }
        r.divergenceJson =
            divergenceReport(sa, sb, w, r.rollbacks);
        r.diagnostics.push_back(strfmt(
            "dmr: lanes diverged at word %llu (first differing "
            "cycle %llu) after %u rollback(s)",
            (unsigned long long)w,
            (unsigned long long)std::min(sa.result().cycles,
                                         sb.result().cycles),
            r.rollbacks));
        return false;
    }
}

} // namespace

bool
superviseSimulation(const Job &job, const SuperviseContext &ctx,
                    JobResult &r)
{
    const SupervisePolicy &pol = ctx.policy;
    const Artefact &art = *r.artefact;
    const uint32_t entry = art.store().entry(
        job.entry.empty() ? art.defaultEntry() : job.entry);
    const uint64_t max_cycles =
        job.maxCycles ? job.maxCycles : SimConfig{}.maxCycles;

    const double deadline_s = job.deadlineSeconds > 0
                                  ? job.deadlineSeconds
                                  : pol.deadlineSeconds;
    std::chrono::steady_clock::time_point deadline{};
    if (deadline_s > 0) {
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(deadline_s));
    }

    const bool dmr = pol.dmr || job.dmr;
    const auto trun = std::chrono::steady_clock::now();

    // A failed job's post-mortem wants the tail of a microtrace even
    // when the caller attached none: give such jobs a small private
    // ring. Determinism is preserved -- any trace stands the JIT tier
    // down, but native words fold into the same fast-path counters,
    // so the deterministic report bytes are unchanged.
    std::optional<TraceBuffer> pmTrace;
    Job patched;
    const Job *jp = &job;
    if (!ctx.postmortemDir.empty() && !job.trace) {
        pmTrace.emplace(512);
        patched = job;
        patched.trace = &*pmTrace;
        jp = &patched;
    }
    SpanScope simSpan(SpanCat::Sim, "sim " + r.name);

    auto sampleMetrics = [&](MicroSimulator &s) {
        if (!job.captureMetrics)
            return;
        MetricsSample ms;
        ms.seq = static_cast<uint64_t>(r.metrics.size());
        ms.cycles = s.result().cycles;
        ms.label = r.name;
        ms.statsFull = s.stats().toJson(false, true);
        ms.statsClean = s.stats().toJson(false, false);
        r.metrics.push_back(std::move(ms));
    };

    Lane a(*jp, art, job.faultSeed, true, ctx.cancel, deadline);
    MicroSimulator &sim = *a.sim;

    bool diverged = false;
    if (dmr) {
        // The secondary lane: its own memory and its own fault seed
        // (so two noisy executions cross-check each other), no
        // caller-visible observability, no cancel/deadline -- the
        // primary lane's verdicts end the job for both.
        uint64_t seed_b = job.dmrSeedB ? job.dmrSeedB : pol.dmrSeedB;
        if (!seed_b)
            seed_b = job.faultSeed;
        Lane b(*jp, art, seed_b, false, nullptr,
               std::chrono::steady_clock::time_point{});
        if (ctx.resumeFrom) {
            warn("job '%s': checkpoints resume a single lane only; "
                 "dmr job restarts from cycle 0",
                 r.name.c_str());
        }
        // DMR jobs get the final-only metrics sample (the lockstep
        // loop owns the slicing); documented limitation.
        diverged = !runDmr(*jp, ctx, r, a, b, entry);
    } else {
        sim.begin(entry);
        Checkpoint last = captureLane(a);
        uint32_t ckpt_ord = 0;

        if (ctx.resumeFrom) {
            const std::string why = ctx.resumeFrom->compatible(sim);
            if (why.empty()) {
                ctx.resumeFrom->apply(sim, a.baseline);
                last = *ctx.resumeFrom;
                r.resumedFromCycle = sim.result().cycles;
                note(jp->trace, sim, SuperviseAction::Restore,
                     ckpt_ord);
            } else {
                warn("job '%s': ignoring incompatible checkpoint "
                     "(%s); running from cycle 0",
                     r.name.c_str(), why.c_str());
            }
        }

        // Both periodic duties run off the same sliced loop: the
        // next stop is the nearer of the checkpoint and metrics
        // targets, both keyed to *simulated* cycles so the series is
        // a pure function of the job.
        const uint64_t metrics_every =
            job.captureMetrics ? job.metricsEveryCycles : 0;
        uint64_t next_metrics =
            metrics_every ? sim.result().cycles + metrics_every : 0;
        uint64_t next_ckpt =
            pol.checkpointEveryCycles
                ? sim.result().cycles + pol.checkpointEveryCycles
                : 0;
        uint32_t attempt = 0;
        for (;;) {
            while (!sim.finished()) {
                uint64_t stop = ~0ULL;
                if (next_ckpt)
                    stop = std::min(stop, next_ckpt);
                if (metrics_every)
                    stop = std::min(stop, next_metrics);
                sim.runUntilCycle(stop);
                if (sim.finished())
                    break;
                const uint64_t now = sim.result().cycles;
                if (metrics_every && now >= next_metrics) {
                    sampleMetrics(sim);
                    next_metrics = now + metrics_every;
                }
                if (next_ckpt && now >= next_ckpt) {
                    last = captureLane(a);
                    ++ckpt_ord;
                    ++r.checkpoints;
                    note(jp->trace, sim, SuperviseAction::Checkpoint,
                         ckpt_ord);
                    if (!ctx.checkpointFile.empty())
                        last.writeFile(ctx.checkpointFile);
                    next_ckpt = now + pol.checkpointEveryCycles;
                }
                if (stop == ~0ULL)
                    break;
            }
            const SimResult &res = sim.result();
            if (res.ok() || !simErrorRecoverable(res.error.kind) ||
                attempt >= pol.maxRetries) {
                break;
            }
            ++attempt;
            ++r.retries;
            const uint32_t delay = backoffMs(pol, r.name, attempt);
            r.backoffMsTotal += delay;
            note(jp->trace, sim, SuperviseAction::Backoff, delay);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            rollbackEnvironmental(a, last);
            if (metrics_every)
                next_metrics = sim.result().cycles + metrics_every;
            if (pol.checkpointEveryCycles)
                next_ckpt = sim.result().cycles +
                            pol.checkpointEveryCycles;
            note(jp->trace, sim, SuperviseAction::Retry, attempt);
        }
    }

    r.sim = sim.result();
    r.runSeconds = secondsSince(trun);
    r.ran = true;

    for (const auto &[n, v] : job.sets) {
        (void)v;
        r.vars.emplace_back(n, art.readVariable(sim, a.mem, n));
    }
    if (job.onFinish)
        job.onFinish(sim, a.mem);
    if (job.captureStats) {
        // Supervision counters join the registry only under an
        // active policy, so plain jobs' stats dumps are unchanged.
        // A resumed job reports its post-resume counts.
        if (pol.active() || job.dmr || job.deadlineSeconds > 0) {
            StatsRegistry &st = sim.stats();
            st.scalar("sup.retries",
                      "supervision: retry attempts") = r.retries;
            st.scalar("sup.checkpoints",
                      "supervision: checkpoints captured") =
                r.checkpoints;
            st.scalar("sup.rollbacks",
                      "supervision: dmr rollbacks") = r.rollbacks;
            st.scalar("sup.backoffMs",
                      "supervision: total backoff delay (ms)") =
                r.backoffMsTotal;
            // Retry/backoff counts depend on wall-clock scheduling;
            // keep them out of the deterministic dump like the JIT
            // tier counters.
            for (const char *n : {"sup.retries", "sup.checkpoints",
                                  "sup.rollbacks", "sup.backoffMs"}) {
                st.markVolatile(n);
            }
        }
        r.statsJson = sim.stats().toJson();
        r.statsJsonClean =
            sim.stats().toJson(true, /*include_volatile=*/false);
    }
    // Metrics jobs always get a final sample; it sees the sup.*
    // counters registered above when stats capture is on too.
    sampleMetrics(sim);

    bool failed = false;
    if (diverged) {
        failed = true;   // runDmr pushed the divergence diagnostic
    } else if (!r.sim.ok()) {
        failed = true;
        r.diagnostics.push_back(strfmt(
            "sim error: %s: %s (cycle %llu, upc 0x%04x)%s",
            simErrorKindName(r.sim.error.kind),
            r.sim.error.message.c_str(),
            (unsigned long long)r.sim.error.cycle, r.sim.error.upc,
            r.retries ? strfmt(" after %u retries", r.retries)
                            .c_str()
                      : ""));
    } else if (!r.sim.halted) {
        failed = true;
        r.diagnostics.push_back(
            strfmt("sim: cycle budget (%llu) exhausted",
                   (unsigned long long)max_cycles));
    }
    if (job.checkMemory && !failed && r.sim.ok() && r.sim.halted) {
        std::string why;
        if (!job.checkMemory(a.mem, &why)) {
            failed = true;
            r.diagnostics.push_back("check: " + why);
        }
    }

    // Flight recorder: bundle everything a post-mortem reader needs
    // -- job spec, structured error, divergence report, final stats,
    // registers, the microtrace tail and this thread's recent spans
    // -- into one atomically-written artifact next to the journal.
    if (failed && !ctx.postmortemDir.empty()) {
        PostmortemReport p;
        p.reason = diverged        ? "dmr_divergence"
                   : !r.sim.ok()   ? "sim_error"
                                   : "job_failed";
        p.jobJson = jobSpecJson(job);
        p.diagnostics = r.diagnostics;
        if (!r.sim.ok())
            p.errorJson = simErrorJson(r.sim.error);
        p.divergenceJson = r.divergenceJson;
        p.statsJson = sim.stats().toJson(false);
        p.registersJson = finalRegistersJson(sim);
        if (jp->trace)
            p.microtraceJson = microtraceJson(*jp->trace, 256);
        p.spansJson = spanEventsJson(
            SpanTracer::instance().recentOnThread(64));
        writePostmortem(ctx.postmortemDir, r.name, p);
    }

    // The job reached a verdict: its on-disk checkpoint is obsolete
    // (--resume re-runs failed jobs from scratch). Only a killed
    // process leaves the file behind.
    if (!ctx.checkpointFile.empty())
        std::remove(ctx.checkpointFile.c_str());

    return !failed;
}

} // namespace uhll
