#include "driver/batch.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "driver/options.hh"
#include "machine/checkpoint.hh"
#include "obs/json.hh"
#include "obs/schema.hh"
#include "obs/telemetry.hh"
#include "proc/pool.hh"
#include "proc/wire.hh"
#include "support/fsio.hh"
#include "support/logging.hh"

namespace uhll {

namespace {

std::string
readTextFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::string
joinPath(const std::string &dir, const std::string &rel)
{
    if (dir.empty() || (!rel.empty() && rel[0] == '/'))
        return rel;
    return dir + "/" + rel;
}

} // namespace

// ----------------------------------------------------------------
// BatchReport
// ----------------------------------------------------------------

size_t
BatchReport::okCount() const
{
    size_t n = 0;
    for (const JobResult &r : results)
        n += r.ok ? 1 : 0;
    return n;
}

std::string
BatchReport::toJson(bool pretty, bool timings) const
{
    JsonWriter w(pretty);
    w.beginObject();
    writeSchemaField(w);
    w.beginObject("batch");
    w.value("jobs", static_cast<uint64_t>(results.size()));
    w.value("ok", static_cast<uint64_t>(okCount()));
    w.value("failed",
            static_cast<uint64_t>(results.size() - okCount()));
    if (results.size() != okCount()) {
        w.beginArray("failed_jobs");
        for (const JobResult &r : results) {
            if (!r.ok)
                w.value("", r.name);
        }
        w.endArray();
    }
    if (timings) {
        w.value("threads", static_cast<uint64_t>(threads));
        w.value("wall_seconds", wallSeconds);
        w.value("cpu_seconds", cpuSeconds);
        if (wallSeconds > 0)
            w.value("speedup", cpuSeconds / wallSeconds);
    }
    w.endObject();
    w.beginArray("results");
    for (const JobResult &r : results)
        w.raw("", r.toJson(pretty, timings));
    w.endArray();
    w.endObject();
    return w.str();
}

// ----------------------------------------------------------------
// BatchRunner
// ----------------------------------------------------------------

namespace {

/** One journaled job outcome (the fields --resume needs). */
struct JournalEntry {
    std::string name;
    bool ok = false;
    //! the job's exact toJson(pretty=true, timings=false) string,
    //! spliced verbatim into a resumed report so reusing a result
    //! is byte-identical to having just computed it
    std::string json;
};

/**
 * Load a journal, tolerating what a SIGKILL leaves behind: a torn
 * trailing line, blank lines, duplicate entries (last one wins). A
 * missing file is an empty journal.
 */
std::map<size_t, JournalEntry>
loadJournal(const std::string &path)
{
    std::map<size_t, JournalEntry> out;
    std::ifstream f(path);
    if (!f)
        return out;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty())
            continue;
        try {
            JsonValue v = JsonValue::parse(line);
            if (!v.isObject())
                continue;
            const JsonValue *idx = v.get("index");
            const JsonValue *json = v.get("json");
            if (!idx || !json)
                continue;
            JournalEntry e;
            if (const JsonValue *n = v.get("name"))
                e.name = n->asString();
            if (const JsonValue *ok = v.get("ok"))
                e.ok = ok->asBool();
            e.json = json->asString();
            out[static_cast<size_t>(idx->asU64())] = std::move(e);
        } catch (const FatalError &) {
            // a torn line from a killed writer: skip it
        }
    }
    return out;
}

} // namespace

BatchReport
BatchRunner::run(const std::vector<Job> &jobs) const
{
    BatchReport report;
    report.results.resize(jobs.size());

    // Resume: adopt every journaled ok result up front; only the
    // rest (failed, incomplete, never-started) run below.
    std::map<size_t, JournalEntry> journaled;
    if (resume_ && !journal_.empty())
        journaled = loadJournal(journal_);
    std::vector<bool> reuse(jobs.size(), false);
    size_t to_run = jobs.size();
    for (auto &[i, e] : journaled) {
        if (i >= jobs.size() || !e.ok)
            continue;
        JobResult &r = report.results[i];
        r.name = e.name.empty() ? jobs[i].name : e.name;
        r.lang = jobs[i].lang;
        r.machine = jobs[i].machine;
        r.ok = true;
        r.prerendered = std::move(e.json);
        reuse[i] = true;
        --to_run;
    }

    // The journal is the crash-recovery record: every line is
    // fsync()ed (DurableAppender), so a host power-cut -- not just
    // a killed process -- loses at most the in-flight job.
    DurableAppender jf;
    std::mutex jmu;
    if (!journal_.empty()) {
        std::string jerr;
        if (!jf.open(journal_, resume_, &jerr))
            fatal("cannot write journal '%s': %s", journal_.c_str(),
                  jerr.c_str());
        // A killed writer may have left a torn, unterminated final
        // line; a fresh newline fences our appends off from it.
        if (resume_)
            jf.append("\n");
    }

    auto runOne = [&](size_t i) {
        SuperviseContext ctx;
        ctx.policy = policy_;
        ctx.postmortemDir = postmortemDir_;
        std::optional<Checkpoint> ck;
        std::string ckpath;
        if (!journal_.empty()) {
            ckpath = journal_ + ".ckpt." + std::to_string(i);
            if (policy_.checkpointEveryCycles)
                ctx.checkpointFile = ckpath;
        }

        std::string why;
        if (pool_ && jobWireSerializable(jobs[i], &why)) {
            // process isolation: the worker reads the checkpoint
            // file itself (both for --resume and for its own crash
            // retries), so ctx.resumeFrom stays null here
            report.results[i] =
                pool_->runJob(jobs[i], ctx, resume_);
        } else {
            if (pool_) {
                warn("batch: job '%s' cannot run out-of-process "
                     "(%s); running in-thread",
                     jobs[i].name.c_str(), why.c_str());
            }
            if (resume_ && !ckpath.empty()) {
                ck = Checkpoint::readFile(ckpath);
                if (ck)
                    ctx.resumeFrom = &*ck;
            }
            report.results[i] = tc_->run(jobs[i], ctx);
        }
        if (jf.isOpen()) {
            const JobResult &r = report.results[i];
            JsonWriter w(false);
            w.beginObject();
            w.value("index", static_cast<uint64_t>(i));
            w.value("name", r.name);
            w.value("ok", r.ok);
            w.value("sim_error", r.ran && !r.sim.ok());
            w.value("json", r.toJson(true, false));
            w.endObject();
            std::lock_guard<std::mutex> lock(jmu);
            jf.appendLine(w.str());
        }
    };

    unsigned threads = threads_;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (threads > to_run)
        threads = static_cast<unsigned>(to_run);
    if (threads == 0)
        threads = 1;
    report.threads = threads;

    auto t0 = std::chrono::steady_clock::now();
    SpanScope batchSpan(SpanCat::Batch,
                        strfmt("batch %zu jobs -j%u", jobs.size(),
                               threads));
    if (threads == 1) {
        SpanTracer::instance().setLaneName("worker-0");
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (!reuse[i])
                runOne(i);
        }
    } else {
        // Work stealing off one shared counter: a worker that draws
        // a short job simply draws again, so long jobs never gate
        // the queue. Results land at their job's index; nothing else
        // is shared mutably (the Toolchain handles its own locking).
        std::atomic<size_t> next{0};
        auto worker = [&](unsigned lane) {
            SpanTracer::instance().setLaneName(
                strfmt("worker-%u", lane));
            for (;;) {
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                if (!reuse[i])
                    runOne(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
    }
    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - t0)
            .count();
    for (const JobResult &r : report.results)
        report.cpuSeconds += r.compileSeconds + r.runSeconds;
    return report;
}

// ----------------------------------------------------------------
// Manifest loading
// ----------------------------------------------------------------

namespace {

Job
parseJob(const JsonValue &j, const std::string &base_dir, size_t idx)
{
    if (!j.isObject())
        fatal("manifest: jobs[%zu] is not an object", idx);

    const bool has_file = j.has("file");
    const bool has_source = j.has("source");
    const bool has_workload = j.has("workload");
    if (int(has_file) + int(has_source) + int(has_workload) != 1) {
        fatal("manifest: jobs[%zu] needs exactly one of "
              "'file' / 'source' / 'workload'",
              idx);
    }

    const std::string machine = j.require("machine").asString();
    Job job;
    if (has_workload) {
        const std::string wname = j.require("workload").asString();
        const Workload *w = nullptr;
        for (const Workload &cand : workloadSuite()) {
            if (cand.name == wname)
                w = &cand;
        }
        if (!w) {
            std::string known;
            for (const Workload &cand : workloadSuite())
                known += (known.empty() ? "" : "|") + cand.name;
            fatal("manifest: jobs[%zu]: unknown workload '%s' "
                  "(known: %s)",
                  idx, wname.c_str(), known.c_str());
        }
        const bool hand =
            j.get("hand") && j.get("hand")->asBool(false);
        job = workloadJob(*w, machine, hand,
                          parsePipelineOptions(j.get("options")));
    } else {
        job.machine = machine;
        job.lang = j.require("lang").asString();
        job.source = has_file
                         ? readTextFile(joinPath(
                               base_dir,
                               j.require("file").asString()))
                         : j.require("source").asString();
        job.options = parsePipelineOptions(j.get("options"));
    }

    if (const JsonValue *v = j.get("name"))
        job.name = v->asString(job.name);
    if (job.name.empty()) {
        job.name = strfmt("job%zu:%s:%s", idx, job.lang.c_str(),
                          job.machine.c_str());
    }
    if (const JsonValue *v = j.get("entry"))
        job.entry = v->asString();
    if (const JsonValue *v = j.get("run"))
        job.run = v->asBool(true);
    if (const JsonValue *v = j.get("verify"))
        job.verify = v->asBool();
    if (const JsonValue *sets = j.get("sets")) {
        if (!sets->isObject())
            fatal("manifest: jobs[%zu]: 'sets' must be an object",
                  idx);
        for (const auto &[k, v] : sets->fields)
            job.sets.emplace_back(k, v.asU64());
    }
    if (const JsonValue *v = j.get("inject")) {
        const std::string spec = v->asString();
        job.faultPlan =
            spec == "-" ? spec
                        : readTextFile(joinPath(base_dir, spec));
    }
    if (const JsonValue *v = j.get("seed"))
        job.faultSeed = v->asU64();
    if (const JsonValue *v = j.get("max_restarts"))
        job.maxRestarts = static_cast<uint32_t>(v->asU64());
    if (const JsonValue *v = j.get("max_cycles"))
        job.maxCycles = v->asU64();
    if (const JsonValue *v = j.get("force_slow"))
        job.forceSlowPath = v->asBool();
    if (const JsonValue *v = j.get("deadline_seconds"))
        job.deadlineSeconds = v->asNumber();
    if (const JsonValue *v = j.get("dmr"))
        job.dmr = v->asBool();
    if (const JsonValue *v = j.get("dmr_seed_b"))
        job.dmrSeedB = v->asU64();
    if (const JsonValue *v = j.get("ecc"))
        job.ecc = v->asBool(true);
    return job;
}

} // namespace

std::vector<Job>
parseManifest(const JsonValue &root, const std::string &base_dir)
{
    if (!root.isObject())
        fatal("manifest: top level must be an object");
    if (root.has("fuzz")) {
        if (root.has("jobs"))
            fatal("manifest: 'fuzz' and 'jobs' are mutually "
                  "exclusive");
        return {};
    }
    const JsonValue &jobs = root.require("jobs");
    if (!jobs.isArray())
        fatal("manifest: 'jobs' must be an array");
    if (jobs.items.empty())
        fatal("manifest: 'jobs' is empty");
    std::vector<Job> out;
    out.reserve(jobs.items.size());
    for (size_t i = 0; i < jobs.items.size(); ++i)
        out.push_back(parseJob(jobs.items[i], base_dir, i));
    return out;
}

std::vector<Job>
loadManifest(const std::string &path)
{
    return loadBatchSpec(path).jobs;
}

SupervisePolicy
parseSupervisePolicy(const JsonValue *s)
{
    SupervisePolicy pol;
    if (!s)
        return pol;
    if (!s->isObject())
        fatal("manifest: 'supervise' must be an object");
    if (const JsonValue *v = s->get("retries"))
        pol.maxRetries = static_cast<uint32_t>(v->asU64());
    if (const JsonValue *v = s->get("backoff_base_ms"))
        pol.backoffBaseMs = static_cast<uint32_t>(v->asU64(5));
    if (const JsonValue *v = s->get("backoff_max_ms"))
        pol.backoffMaxMs = static_cast<uint32_t>(v->asU64(250));
    if (const JsonValue *v = s->get("deadline_seconds"))
        pol.deadlineSeconds = v->asNumber();
    if (const JsonValue *v = s->get("checkpoint_every_cycles"))
        pol.checkpointEveryCycles = v->asU64();
    if (const JsonValue *v = s->get("dmr"))
        pol.dmr = v->asBool();
    if (const JsonValue *v = s->get("dmr_interval_words"))
        pol.dmrIntervalWords = v->asU64(4096);
    if (const JsonValue *v = s->get("dmr_seed_b"))
        pol.dmrSeedB = v->asU64();
    return pol;
}

TelemetryOptions
parseTelemetryOptions(const JsonValue *t, const std::string &base_dir)
{
    TelemetryOptions opts;
    if (!t)
        return opts;
    if (!t->isObject())
        fatal("manifest: 'telemetry' must be an object");
    if (const JsonValue *v = t->get("otrace"))
        opts.otrace = joinPath(base_dir, v->asString());
    if (const JsonValue *v = t->get("metrics_out"))
        opts.metricsOut = joinPath(base_dir, v->asString());
    if (const JsonValue *v = t->get("metrics_every_cycles"))
        opts.metricsEveryCycles = v->asU64();
    if (const JsonValue *v = t->get("postmortem_dir"))
        opts.postmortemDir = joinPath(base_dir, v->asString());
    return opts;
}

BatchSpec
loadBatchSpec(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const JsonValue root = JsonValue::parse(readTextFile(path));
    BatchSpec spec;
    spec.jobs = parseManifest(root, dir);
    if (root.isObject()) {
        spec.policy = parseSupervisePolicy(root.get("supervise"));
        spec.telemetry =
            parseTelemetryOptions(root.get("telemetry"), dir);
        if (const JsonValue *f = root.get("fuzz")) {
            spec.fuzz = parseFuzzOptions(*f);
            if (!spec.fuzz->corpusDir.empty())
                spec.fuzz->corpusDir =
                    joinPath(dir, spec.fuzz->corpusDir);
        }
    }
    return spec;
}

} // namespace uhll
