/**
 * @file
 * uhll::Toolchain -- the unified entry point to the whole pipeline.
 *
 * The survey's thesis is that every high-level microprogramming
 * language decomposes into the same stages: frontend,
 * machine-independent MIR, machine-specific compaction/allocation,
 * control store (sec. 2.1). The Toolchain realises that as one
 * facade: a Job names a (language, machine, source) triple plus
 * pipeline knobs, and run() takes it through translate -> compile ->
 * simulate, returning a JobResult with the artefact, statistics,
 * simulation counters and diagnostics.
 *
 * The facade is thread-safe and shares the expensive immutable
 * state: one MachineDescription per machine name, and one compiled
 * Artefact -- control store plus a fully pre-decoded word cache --
 * per (machine, language, options, source) key. N concurrent
 * simulations of the same program touch one decode (see
 * SimConfig::decoded and driver/batch.hh's BatchRunner).
 */

#ifndef UHLL_DRIVER_TOOLCHAIN_HH
#define UHLL_DRIVER_TOOLCHAIN_HH

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "codegen/compiler.hh"
#include "driver/frontend.hh"
#include "jit/jit.hh"
#include "machine/memory.hh"
#include "machine/simulator.hh"
#include "obs/telemetry.hh"
#include "workloads/workloads.hh"

namespace uhll {

class TraceBuffer;
class CycleProfiler;
struct SuperviseContext;

/**
 * Pipeline knobs by name: the manifest/CLI-facing mirror of
 * CompileOptions. Resolution to Compactor/RegisterAllocator
 * instances happens inside the Toolchain; validate() rejects
 * contradictory or unknown combinations up front instead of
 * silently ignoring one side.
 */
struct PipelineOptions {
    std::string compactor;  //!< "" = default (tokoro)
    std::string allocator;  //!< "" = default (graph_coloring)
    bool compact = true;    //!< false = one microoperation per word
    bool insertInterruptPolls = false;
    bool trapSafety = false;
    bool recognizeStackOps = false;
    bool optimize = true;
    //! enable the native execution tier (JitTier); ignored -- with a
    //! transparent interpreter fallback -- on hosts where
    //! JitTier::available() is false
    bool jit = true;
    //! region-entry hotness threshold (0 = the simulator default,
    //! 1 = compile on first execution; forced-tier tests)
    uint32_t jitThreshold = 0;
    FrontendOptions frontend;

    /**
     * All problems with this combination, or "" when it is valid.
     * Catches: --no-compact together with a named --compactor (the
     * compactor would never run), --no-jit together with a named
     * --jit-threshold (the threshold would never trigger), and
     * unknown compactor or allocator names.
     */
    std::string validate() const;

    /** Canonical encoding for artefact-cache keying. */
    std::string cacheKey() const;
};

/** One unit of work for the Toolchain. */
struct Job {
    std::string name;       //!< report label ("" = derived)
    std::string lang;       //!< frontend name (FrontendRegistry)
    std::string machine;    //!< machine name (machineNames())
    std::string source;     //!< program text
    std::string entry;      //!< "" = "main" / first MIR function
    //! (variable, value) pairs applied before the run and read back
    //! into JobResult::vars afterwards
    std::vector<std::pair<std::string, uint64_t>> sets;
    PipelineOptions options;
    bool run = true;        //!< simulate after compiling
    bool verify = false;    //!< run the bounded verifier (sstar only)

    /** @name Wire identity (see src/proc/wire.hh) */
    /// @{
    //! non-empty when this job was built by workloadJob(): names the
    //! suite kernel, so an out-of-process worker can rebuild the
    //! setup/check hooks from (workload, hand) instead of shipping
    //! unserializable std::functions
    std::string workload;
    bool hand = false;      //!< workload: masm baseline variant
    /// @}

    /** @name Fault injection (see src/fault/) */
    /// @{
    //! FaultPlan spec text; "-" = the built-in recoverable mix,
    //! "" = no injection
    std::string faultPlan;
    uint64_t faultSeed = 0;     //!< nonzero: override the plan seed
    uint32_t maxRestarts = 0;   //!< nonzero: livelock limit override
    /// @}

    /** @name Supervision (see src/driver/supervisor.hh) */
    /// @{
    //! wall-clock budget for this job (0 = the batch policy's)
    double deadlineSeconds = 0;
    //! run in lockstep dual modular redundancy
    bool dmr = false;
    //! DMR secondary-lane fault seed (0 = the batch policy's, then
    //! the primary seed)
    uint64_t dmrSeedB = 0;
    //! memory ECC (false = injected flips corrupt silently -- the
    //! deliberate-divergence knob for DMR tests)
    bool ecc = true;
    /// @}

    /** @name Simulation knobs */
    /// @{
    uint64_t maxCycles = 0;     //!< 0 = SimConfig default
    bool forceSlowPath = false;
    //! capture the stats registry as JSON into JobResult::statsJson
    bool captureStats = false;
    TraceBuffer *trace = nullptr;       //!< caller-owned sink
    CycleProfiler *profiler = nullptr;  //!< caller-owned sink
    /// @}

    /** @name Metrics sampling (see obs/telemetry.hh) */
    /// @{
    //! capture stats snapshots into JobResult::metrics (at least the
    //! final one)
    bool captureMetrics = false;
    //! also sample every N *simulated* cycles (0 = final-only);
    //! samples are keyed to cycles, not wall time, so the series is
    //! deterministic
    uint64_t metricsEveryCycles = 0;
    /// @}

    /** @name Programmatic hooks (not expressible in a manifest) */
    /// @{
    //! prepare input memory before the run (workload setup)
    std::function<void(MainMemory &)> setupMemory;
    //! verify output memory; a false return fails the job and the
    //! filled `why` lands in JobResult::diagnostics
    std::function<bool(const MainMemory &, std::string *)>
        checkMemory;
    //! inspect final simulator state before teardown (snapshots)
    std::function<void(const MicroSimulator &, const MainMemory &)>
        onFinish;
    /// @}
};

/**
 * A compiled, immutable, shareable artefact: the control store with
 * everything needed to run it and to resolve variables, plus the
 * pre-decoded word cache concurrent simulators share. Always held
 * by shared_ptr<const Artefact>; the Toolchain caches and reuses
 * artefacts across jobs with equal (machine, lang, options, source).
 */
class Artefact
{
  public:
    std::shared_ptr<const MachineDescription> machine;
    //! MIR pipeline: the parsed program + the compiled result
    std::optional<MirProgram> mir;
    std::optional<CompiledProgram> compiled;
    //! direct pipeline (sstar/masm): store + assertions + bindings
    std::optional<SstarProgram> direct;
    //! pre-decoded word cache (DecodedStore::decodeAll has run);
    //! references store() and *machine, hence the fixed address
    std::unique_ptr<DecodedStore> decoded;
    //! shared native-region cache (SimConfig::jitCache); null when
    //! the job disables the tier or the host cannot run it
    std::unique_ptr<JitRegionCache> jitCache;

    Artefact() = default;
    Artefact(const Artefact &) = delete;
    Artefact &operator=(const Artefact &) = delete;

    /** Rough resident size (store + decoded words + MIR), the unit
     *  the Toolchain's LRU byte cap accounts in. */
    uint64_t approxBytes() const;

    const ControlStore &store() const;
    bool isMir() const { return compiled.has_value(); }
    const CompileStats &stats() const;
    std::string defaultEntry() const;

    /** Set variable/register @p name in a simulator over this
     *  artefact (MIR variables, S* bindings, or register names). */
    void setVariable(MicroSimulator &sim, MainMemory &mem,
                     const std::string &name, uint64_t value) const;

    /** Read variable/register @p name back. */
    uint64_t readVariable(const MicroSimulator &sim,
                          const MainMemory &mem,
                          const std::string &name) const;
};

/** The outcome of one Job. */
struct JobResult {
    std::string name;
    std::string lang;
    std::string machine;
    bool ok = false;
    //! compile errors, validation failures, check mismatches
    std::vector<std::string> diagnostics;
    //! null when compilation failed
    std::shared_ptr<const Artefact> artefact;

    bool ran = false;
    SimResult sim;          //!< valid when ran
    //! final values of the names in Job::sets, in order
    std::vector<std::pair<std::string, uint64_t>> vars;

    bool verified = false;  //!< the verifier ran
    bool verifyOk = false;
    std::string verifyReport;

    //! stats registry dump (Job::captureStats)
    std::string statsJson;
    //! the same dump without volatile stats (wall-clock scalars, JIT
    //! tier counters) -- what toJson(timings=false) embeds so batch
    //! byte-identity cannot regress on host-side measurements
    std::string statsJsonClean;

    //! stats time series (Job::captureMetrics), ordered by seq; each
    //! sample carries both the full and the volatile-scrubbed dump
    std::vector<MetricsSample> metrics;

    /** @name Supervision outcome (see src/driver/supervisor.hh) */
    /// @{
    uint32_t retries = 0;       //!< recoverable-error re-executions
    uint32_t checkpoints = 0;   //!< auto-checkpoints captured
    uint32_t rollbacks = 0;     //!< DMR rollback re-executions
    uint64_t backoffMsTotal = 0;    //!< summed retry delays
    //! cycle count the run resumed at (0 = ran from the start)
    uint64_t resumedFromCycle = 0;
    //! structured DMR divergence report ("" = no divergence):
    //! first differing word/cycle, per-register diff, memory diff
    std::string divergenceJson;
    /// @}

    //! when nonempty, toJson() returns this verbatim -- how a batch
    //! --resume splices journaled results into the merged report
    //! byte-identically
    std::string prerendered;
    //! the timings=true render, when a worker process shipped both
    //! forms (see src/proc/wire.hh); toJson(_, true) prefers it and
    //! falls back to prerendered
    std::string prerenderedTimed;

    double compileSeconds = 0;  //!< wall time in compile (0 on cache hit)
    double runSeconds = 0;      //!< wall time in the simulator

    /**
     * The result as a JSON object. With @p timings false the output
     * is a pure function of the job -- byte-identical between serial
     * and parallel batch runs (the determinism tests compare it).
     * The supervision counters depend on where a run was resumed or
     * killed, so they are emitted only with @p timings true; the
     * divergence report is deterministic and always emitted.
     */
    std::string toJson(bool pretty = true, bool timings = true) const;
};

/** @p job's spec as a compact JSON object (the flight recorder's
 *  "job" fragment; hooks and source text are not serialized). */
std::string jobSpecJson(const Job &job);

/** @name Machine registry */
/// @{
/** Canonical machine names, sorted ("hm1", "vm2", "vs3"). */
std::vector<std::string> machineNames();

/** One-line description of machine @p name (uhllc --list). */
std::string machineDescribe(const std::string &name);

/** True when @p name (any case, with or without '-') is bundled. */
bool knownMachine(const std::string &name);
/// @}

/** The facade. One instance per process is typical; all methods are
 *  thread-safe. */
class Toolchain
{
  public:
    Toolchain() = default;
    Toolchain(const Toolchain &) = delete;
    Toolchain &operator=(const Toolchain &) = delete;

    /**
     * Artefact-cache counters (see setCacheCapBytes). `bytes` and
     * `entries` describe what the cache currently retains; an
     * evicted artefact that a running simulation still holds by
     * shared_ptr stays alive but is no longer counted.
     */
    struct CacheStats {
        uint64_t hits = 0;        //!< compile() served from cache
        uint64_t misses = 0;      //!< compile() had to build
        uint64_t evictions = 0;   //!< entries dropped by the cap
        uint64_t bytes = 0;       //!< approx resident cache bytes
        uint64_t entries = 0;     //!< cached (machine,lang,opts,src)
    };

    /**
     * Bound the artefact cache to roughly @p cap bytes (default
     * 256 MiB; 0 = unbounded). Least-recently-used entries are
     * dropped past the cap -- the map entry only; simulations
     * holding the shared_ptr keep their artefact alive. The
     * most-recently compiled entry is never evicted, so a single
     * oversized program still caches.
     */
    void setCacheCapBytes(uint64_t cap);

    /** Current cache counters (consistent snapshot). */
    CacheStats cacheStats() const;

    /** Register toolchain.cache* formulas into @p reg (the daemon's
     *  metrics registry; values read live from this instance). */
    void bindCacheStats(class StatsRegistry &reg) const;

    /**
     * The shared immutable MachineDescription for @p name
     * ("hm1"/"HM-1"/...), built on first use. fatal() on unknown
     * names.
     */
    std::shared_ptr<const MachineDescription>
    machine(const std::string &name) const;

    /**
     * Translate + compile @p job (no simulation), sharing one
     * Artefact across equal (machine, lang, options, source) keys.
     * Throws FatalError on frontend/compiler diagnostics and invalid
     * option combinations.
     */
    std::shared_ptr<const Artefact> compile(const Job &job) const;

    /**
     * The full pipeline: validate, compile, optionally verify and
     * simulate. Never throws for job-level failures -- they land in
     * JobResult::diagnostics with ok=false (so batch runs report
     * per-job status instead of dying).
     */
    JobResult run(const Job &job) const;

    /**
     * run() under a supervision context: deadlines, cancellation,
     * retry with backoff, auto-checkpointing, resume-from-checkpoint
     * and lockstep DMR (see driver/supervisor.hh). run(job) is
     * run(job, default-constructed context).
     */
    JobResult run(const Job &job, const SuperviseContext &ctx) const;

    /** Registered language names (FrontendRegistry::names()). */
    static std::vector<std::string> frontendNames();

    /** Bundled machine names (machineNames()). */
    static std::vector<std::string> machines();

  private:
    struct CacheEntry;

    std::shared_ptr<Artefact>
    compileUncached(const Job &job,
                    const MachineDescription &mach) const;

    /** Charge @p entry's finished size and evict past the cap.
     *  Caller must NOT hold mu_. */
    void accountAndEvict(const std::string &key,
                         const std::shared_ptr<CacheEntry> &entry,
                         uint64_t bytes) const;

    /** Drop cold entries until under the cap (mu_ held; @p keep and
     *  still-compiling entries are never dropped). */
    void evictLocked(const CacheEntry *keep) const;

    mutable std::mutex mu_;
    mutable std::map<std::string,
                     std::shared_ptr<const MachineDescription>>
        machines_;
    mutable std::map<std::string, std::shared_ptr<CacheEntry>>
        artefacts_;
    //! LRU order over artefacts_ keys, most recent at the front
    mutable std::list<std::string> lru_;
    mutable uint64_t cacheCapBytes_ = 256ull << 20;
    mutable uint64_t cacheBytes_ = 0;
    mutable uint64_t cacheHits_ = 0;
    mutable uint64_t cacheMisses_ = 0;
    mutable uint64_t cacheEvictions_ = 0;
};

/** @name Workload job builders (bench, tests, manifests) */
/// @{
/**
 * A Job for one workload-suite kernel on @p machine_name: YALLL
 * compiled (@p hand false) or the hand microassembly baseline
 * (@p hand true; HM-1 and VM-2 only -- fatal otherwise). Inputs,
 * memory setup and the output check are wired into the job hooks.
 */
Job workloadJob(const Workload &w, const std::string &machine_name,
                bool hand, const PipelineOptions &opts = {});

/**
 * The full workload x machine matrix: every kernel compiled for
 * every bundled machine plus the hand baselines on HM-1 and VM-2
 * (the batch stress corpus; 25 jobs).
 */
std::vector<Job> workloadMatrixJobs();
/// @}

} // namespace uhll

#endif // UHLL_DRIVER_TOOLCHAIN_HH
