/**
 * @file
 * The frontend registry: one uniform entry point per source
 * language.
 *
 * The survey's core observation (sec. 2.1) is that every high-level
 * microprogramming language feeds the same pipeline -- frontend,
 * machine-independent representation, machine-specific compaction
 * and allocation, control store. This header makes the first stage
 * pluggable: each language registers a Frontend in its own
 * translation unit (yalll.cc, simpl.cc, empl.cc, sstar.cc, masm.cc)
 * and every driver -- uhllc, the Toolchain facade, benchmarks --
 * resolves languages by name through FrontendRegistry instead of
 * hard-coded `lang ==` chains. Adding a language means adding one
 * frontend TU; nothing else changes.
 */

#ifndef UHLL_DRIVER_FRONTEND_HH
#define UHLL_DRIVER_FRONTEND_HH

#include <optional>
#include <string>
#include <vector>

#include "lang/sstar/sstar.hh"
#include "machine/machine_desc.hh"
#include "mir/mir.hh"

namespace uhll {

/** Per-frontend knobs a driver may pass through. */
struct FrontendOptions {
    //! EMPL: honour MICROOP bindings (false forces body expansion,
    //! the E7 benchmark's knob)
    bool emplUseMicroOps = true;
    //! EMPL: base address for memory-allocated arrays
    uint32_t emplDataBase = 0x2000;
};

/**
 * What one frontend produced from one source text: either a
 * machine-independent MIR program (YALLL, SIMPL, EMPL -- the
 * Compiler finishes the pipeline) or a finished control store
 * (S*, masm -- `direct`, reusing SstarProgram as the carrier of
 * store + assertions + variable bindings; masm leaves the latter
 * two empty).
 */
struct Translation {
    std::optional<MirProgram> mir;
    std::optional<SstarProgram> direct;

    bool isMir() const { return mir.has_value(); }
};

/** One source language's entry into the pipeline. */
class Frontend
{
  public:
    virtual ~Frontend() = default;

    /** The language name drivers select by ("yalll", "masm", ...). */
    virtual const char *name() const = 0;

    /** One-line description for `uhllc --list`. */
    virtual const char *describe() const = 0;

    /** False: translate() yields a finished control store. */
    virtual bool producesMir() const = 0;

    /**
     * Translate @p source for @p mach. Throws FatalError with the
     * frontend's own diagnostics on any error.
     */
    virtual Translation translate(const std::string &source,
                                  const MachineDescription &mach,
                                  const FrontendOptions &opts) const
        = 0;
};

/**
 * The process-wide frontend table. Frontends self-register from
 * their own translation units via a static Registrar, during static
 * initialisation (single-threaded); lookups after main() starts are
 * lock-free reads.
 */
class FrontendRegistry
{
  public:
    /** Self-registration handle: define one per frontend TU. */
    struct Registrar {
        explicit Registrar(const Frontend *fe);
    };

    /** The frontend named @p name, or null when unknown. */
    static const Frontend *find(const std::string &name);

    /** The frontend named @p name; fatal() listing the known names
     *  when unknown. */
    static const Frontend &get(const std::string &name);

    /** All registered language names, sorted. */
    static std::vector<std::string> names();
};

/**
 * Translate @p source with the frontend named @p lang and return the
 * MIR program; fatal() when the language is unknown or produces a
 * control store directly (sstar, masm). The convenience entry for
 * call sites that drive individual compiler passes themselves --
 * full pipelines should build a Toolchain Job instead.
 */
MirProgram translateToMir(const std::string &lang,
                          const std::string &source,
                          const MachineDescription &mach,
                          const FrontendOptions &opts = {});

} // namespace uhll

#endif // UHLL_DRIVER_FRONTEND_HH
