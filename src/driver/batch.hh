/**
 * @file
 * BatchRunner: N Toolchain jobs over a fixed thread pool, plus the
 * JSON manifest loader behind `uhllc --batch`.
 *
 * The design leans on what the Toolchain already guarantees: machine
 * descriptions and compiled artefacts are shared immutable state
 * (one decode per (machine, program) pair, see SimConfig::decoded),
 * and JobResult::toJson(pretty, timings=false) is a pure
 * function of the job. So a batch at -j8 must be bit-identical to
 * the same batch at -j1 -- the determinism tests and the
 * uhllc_batch_smoke CTest hold it to that.
 *
 * Manifest format (JSON):
 *
 *     {
 *       "jobs": [
 *         {
 *           "name":     "label",            // optional
 *           "lang":     "yalll",            // required unless workload
 *           "machine":  "hm1",              // required
 *           // exactly one program source:
 *           "file":     "prog.yll",         // relative to manifest
 *           "source":   "program text",
 *           "workload": "checksum",         // suite kernel by name
 *           "hand":     false,              // workload: masm baseline
 *           "entry":    "main",             // optional
 *           "run":      true,               // default true
 *           "verify":   false,              // sstar only
 *           "sets":     {"r1": 1024, "r5": "0x10"},
 *           "options": {
 *             "compactor": "tokoro", "allocator": "graph_coloring",
 *             "compact": true, "polls": false, "trap_safe": false,
 *             "stack_ops": false, "optimize": true,
 *             "empl_microops": true, "empl_data_base": 8192
 *           },
 *           "inject":       "plan.fp",      // or "-" for chaos mix
 *           "seed":         7,
 *           "max_restarts": 4,
 *           "max_cycles":   1000000,
 *           "force_slow":   false
 *         }
 *       ]
 *     }
 */

#ifndef UHLL_DRIVER_BATCH_HH
#define UHLL_DRIVER_BATCH_HH

#include <string>
#include <vector>

#include "driver/toolchain.hh"

namespace uhll {

struct JsonValue;

/** The aggregate outcome of one batch. */
struct BatchReport {
    std::vector<JobResult> results;     //!< in job order
    unsigned threads = 1;               //!< pool size actually used
    double wallSeconds = 0;
    //! sum of per-job compile+run wall time: what a serial run would
    //! roughly cost, so wallSeconds vs cpuSeconds shows the speedup
    double cpuSeconds = 0;

    size_t okCount() const;
    bool allOk() const { return okCount() == results.size(); }

    /**
     * The aggregate report: a "batch" summary object plus the
     * per-job results. With @p timings false every timing field
     * (and the thread count) is omitted -- the remainder is
     * byte-identical across -j values.
     */
    std::string toJson(bool pretty = true, bool timings = true) const;
};

/**
 * Runs jobs over a fixed pool of @p threads worker threads
 * (0 = std::thread::hardware_concurrency), pulling from a shared
 * queue. Results land at their job's index regardless of completion
 * order. threads=1 executes inline on the calling thread.
 */
class BatchRunner
{
  public:
    explicit BatchRunner(const Toolchain &tc, unsigned threads = 0)
        : tc_(&tc), threads_(threads)
    {}

    BatchReport run(const std::vector<Job> &jobs) const;

  private:
    const Toolchain *tc_;
    unsigned threads_;
};

/** @name Manifest loading */
/// @{
/**
 * Build the job list from a parsed manifest. File references are
 * resolved relative to @p base_dir. fatal() on structural problems
 * (missing keys, unknown workloads, conflicting source fields);
 * per-job semantic problems (unknown language, bad options) surface
 * later as that job's diagnostics.
 */
std::vector<Job> parseManifest(const JsonValue &root,
                               const std::string &base_dir);

/** Read, parse and convert the manifest at @p path. */
std::vector<Job> loadManifest(const std::string &path);
/// @}

} // namespace uhll

#endif // UHLL_DRIVER_BATCH_HH
